//! `sigfim` — command-line significance analysis of a transactional dataset.
//!
//! ```text
//! sigfim <dataset.dat> [--k <size>] [--alpha <a>] [--beta <b>] [--epsilon <e>]
//!        [--replicates <n>] [--threads <n>] [--seed <n>]
//!        [--miner apriori|eclat|fp-growth] [--backend auto|csr|bitmap]
//!        [--swap-null [<swaps-per-entry>]] [--conservative-lambda]
//!        [--no-baseline] [--list <n>]
//! ```
//!
//! The dataset must be in the FIMI `.dat` format (one whitespace-separated
//! transaction per line, arbitrary integer item labels). The tool runs the full
//! pipeline of Kirsch et al. (PODS 2009): Algorithm 1 to find the Poisson threshold
//! `s_min`, Procedure 2 to pick the significance threshold `s*` with FDR control,
//! and (unless `--no-baseline`) the Benjamini–Yekutieli baseline of Procedure 1 for
//! comparison. The exit code is 0 if the analysis ran, regardless of whether any
//! significant itemsets were found.

use std::process::ExitCode;

use sigfim::datasets::bitmap::DatasetBackend;
use sigfim::datasets::fimi::read_fimi_file;
use sigfim::datasets::random::SwapRandomizationModel;
use sigfim::datasets::summary::DatasetSummary;
use sigfim::mining::miner::MinerKind;
use sigfim::SignificanceAnalyzer;

struct CliOptions {
    path: String,
    k: usize,
    alpha: f64,
    beta: f64,
    epsilon: f64,
    replicates: usize,
    seed: u64,
    miner: MinerKind,
    /// Physical dataset backend ({auto, csr, bitmap}); `auto` resolves per
    /// workload from the density/size heuristic. The analysis result is
    /// identical either way.
    backend: DatasetBackend,
    /// Monte-Carlo worker threads: 0 = all cores (the default), 1 = strictly
    /// sequential. The result is bit-identical either way.
    threads: usize,
    swap_null: Option<f64>,
    conservative_lambda: bool,
    baseline: bool,
    list: usize,
}

const USAGE: &str = "usage: sigfim <dataset.dat> [--k <size>] [--alpha <a>] [--beta <b>] \
    [--epsilon <e>] [--replicates <n>] [--threads <n>] [--seed <n>] \
    [--miner apriori|eclat|fp-growth] [--backend auto|csr|bitmap] \
    [--swap-null [<swaps-per-entry>]] [--conservative-lambda] [--no-baseline] [--list <n>]";

fn parse_options(mut args: std::env::Args) -> Result<CliOptions, String> {
    let _program = args.next();
    let mut options = CliOptions {
        path: String::new(),
        k: 2,
        alpha: 0.05,
        beta: 0.05,
        epsilon: 0.01,
        replicates: 64,
        seed: 0xC0FFEE,
        miner: MinerKind::Apriori,
        backend: DatasetBackend::Auto,
        threads: 0,
        swap_null: None,
        conservative_lambda: false,
        baseline: true,
        list: 25,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--k" => options.k = parse_value(&mut args, "--k")?,
            "--alpha" => options.alpha = parse_value(&mut args, "--alpha")?,
            "--beta" => options.beta = parse_value(&mut args, "--beta")?,
            "--epsilon" => options.epsilon = parse_value(&mut args, "--epsilon")?,
            "--replicates" => options.replicates = parse_value(&mut args, "--replicates")?,
            "--threads" => options.threads = parse_value(&mut args, "--threads")?,
            "--seed" => options.seed = parse_value(&mut args, "--seed")?,
            "--list" => options.list = parse_value(&mut args, "--list")?,
            "--no-baseline" => options.baseline = false,
            "--conservative-lambda" => options.conservative_lambda = true,
            "--swap-null" => {
                // Optional numeric argument (swaps per incidence); default 3.
                let swaps = match args.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let parsed = next
                            .parse::<f64>()
                            .map_err(|_| format!("--swap-null expects a number, got `{next}`"))?;
                        args.next();
                        parsed
                    }
                    _ => 3.0,
                };
                options.swap_null = Some(swaps);
            }
            "--backend" => {
                let name = args.next().ok_or("--backend requires a value")?;
                options.backend = name.parse::<DatasetBackend>()?;
            }
            "--miner" => {
                let name = args.next().ok_or("--miner requires a value")?;
                options.miner = match name.as_str() {
                    "apriori" => MinerKind::Apriori,
                    "eclat" => MinerKind::Eclat,
                    "fp-growth" | "fpgrowth" => MinerKind::FpGrowth,
                    other => return Err(format!("unknown miner `{other}`")),
                };
            }
            path if !path.starts_with("--") && options.path.is_empty() => {
                options.path = path.to_string();
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if options.path.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(options)
}

fn parse_value<T: std::str::FromStr, I: Iterator<Item = String>>(
    args: &mut std::iter::Peekable<I>,
    flag: &str,
) -> Result<T, String> {
    let value = args
        .next()
        .ok_or_else(|| format!("{flag} requires a value"))?;
    value
        .parse()
        .map_err(|_| format!("{flag}: could not parse `{value}`"))
}

fn main() -> ExitCode {
    let options = match parse_options(std::env::args()) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let labeled = match read_fimi_file(&options.path) {
        Ok(labeled) => labeled,
        Err(error) => {
            eprintln!("sigfim: cannot read `{}`: {error}", options.path);
            return ExitCode::FAILURE;
        }
    };
    let dataset = &labeled.dataset;
    let summary = DatasetSummary::from_dataset(dataset);
    println!("{}", summary.table1_row(&options.path));
    println!();

    let analyzer = SignificanceAnalyzer::new(options.k)
        .with_alpha(options.alpha)
        .with_beta(options.beta)
        .with_epsilon(options.epsilon)
        .with_replicates(options.replicates)
        .with_threads(options.threads)
        .with_seed(options.seed)
        .with_miner(options.miner)
        .with_backend(options.backend)
        .with_procedure1(options.baseline)
        .with_conservative_lambda(options.conservative_lambda);

    let report = if let Some(swaps) = options.swap_null {
        let model = match SwapRandomizationModel::new(dataset.clone(), swaps) {
            Ok(model) => model,
            Err(error) => {
                eprintln!("sigfim: cannot build the swap-randomization null model: {error}");
                return ExitCode::FAILURE;
            }
        };
        analyzer.analyze_with_model(dataset, &model)
    } else {
        analyzer.analyze(dataset)
    };
    let report = match report {
        Ok(report) => report,
        Err(error) => {
            eprintln!("sigfim: analysis failed: {error}");
            return ExitCode::FAILURE;
        }
    };

    print!("{report}");
    if !report.procedure2.significant.is_empty() {
        println!();
        println!(
            "top {} significant {}-itemsets (original item labels):",
            options.list.min(report.procedure2.significant.len()),
            options.k
        );
        let mut ranked = report.procedure2.significant.clone();
        ranked.sort_by_key(|m| std::cmp::Reverse(m.support));
        for itemset in ranked.iter().take(options.list) {
            println!(
                "  {:?}  support {}",
                labeled.labels_of(&itemset.items),
                itemset.support
            );
        }
    }
    ExitCode::SUCCESS
}

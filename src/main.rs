//! `sigfim` — command-line significance analysis of a transactional dataset.
//!
//! ```text
//! sigfim <dataset.dat> [--k <size|a,b,c|lo..hi>] [--alpha <a>] [--beta <b>]
//!        [--epsilon <e>] [--replicates <n>] [--threads <n>] [--seed <n>]
//!        [--miner apriori|eclat|fp-growth|par-eclat|auto]
//!        [--backend auto|csr|bitmap|sharded]
//!        [--kernels scalar|unrolled|avx2|avx512|auto]
//!        [--sampler cellwise|gaps|auto]
//!        [--shard-residency <bytes[K|M|G]>]
//!        [--max-restarts <n>] [--swap-null [<swaps-per-entry>]]
//!        [--cache-capacity <n>] [--conservative-lambda] [--no-baseline]
//!        [--list <n>]
//!
//! sigfim serve [<id>=]<dataset.dat>... [--addr <host:port>] [--workers <n>]
//!        [--cache-capacity <n>] [--threads <n>] [--backend auto|csr|bitmap|sharded]
//!        [--kernels scalar|unrolled|avx2|avx512|auto]
//!        [--sampler cellwise|gaps|auto]
//!        [--shard-residency <bytes[K|M|G]>]
//!        [--swap-null [<swaps-per-entry>]]
//!        [--data-dir <dir>] [--queue-capacity <n>] [--job-workers <n>]
//! ```
//!
//! The dataset must be in the FIMI `.dat` format (one whitespace-separated
//! transaction per line, arbitrary integer item labels). The tool runs the full
//! pipeline of Kirsch et al. (PODS 2009) through the session-oriented
//! [`AnalysisEngine`]: Algorithm 1 to find the Poisson threshold `s_min`,
//! Procedure 2 to pick the significance threshold `s*` with FDR control, and
//! (unless `--no-baseline`) the Benjamini–Yekutieli baseline of Procedure 1 for
//! comparison.
//!
//! `--k` accepts a single size (`--k 3`), a comma list (`--k 2,3,4`), or an
//! inclusive range (`--k 2..5`, equivalently `2..=5`): a range runs as **one
//! multi-k batch** on the engine, which builds the dataset view once and serves
//! repeated thresholds from its cache. The exit code is 0 if the analysis ran,
//! regardless of whether any significant itemsets were found.
//!
//! `sigfim serve` registers each dataset as a tenant of a multi-tenant
//! HTTP/JSON service (one dyn-erased engine per dataset, one shared
//! LRU-bounded threshold store across all of them) and serves
//! `POST /v1/analyze`, `POST /v1/thresholds`, `PUT|DELETE /v1/datasets/<id>`,
//! `GET /v1/jobs/<id>`, `GET /v1/engines`, `GET /v1/stats` and `GET /healthz`
//! until killed. With `--data-dir` the service opens a [`sigfim-store`]
//! database there: uploaded datasets, estimated thresholds and job records
//! are persisted, and a restarted server replays them — same datasets, warm
//! threshold cache, queued jobs re-enqueued, interrupted jobs failed
//! deterministically. Detached analyses (`"detach": true` on the analyze
//! envelope) return a job id immediately; `--job-workers` background threads
//! drain the queue, which sheds with HTTP 429 + `Retry-After` past
//! `--queue-capacity` pending jobs.
//!
//! [`sigfim-store`]: sigfim::service::ServiceDb

use std::process::ExitCode;
use std::sync::Arc;

use sigfim::core::engine::DEFAULT_SEED;
use sigfim::core::ExecutionPolicy;
use sigfim::datasets::bitmap::{DatasetBackend, ResolvedBackend};
use sigfim::datasets::fimi::read_fimi_file;
use sigfim::datasets::kernels::{configure_kernels, KernelMode};
use sigfim::datasets::transaction::TransactionDataset;
use sigfim::datasets::tune::startup_tune_request;
use sigfim::datasets::{
    configure_residency, configure_sampler, configure_spill, parse_budget_bytes,
    set_default_spill_dir, SamplerMode,
};
use sigfim::mining::miner::MinerKind;
use sigfim::mining::tuned_miner;
use sigfim::prelude::{
    AnalysisEngine, AnalysisRequest, CacheStatus, DatasetSummary, DynAnalysisEngine, LambdaMode,
};
use sigfim::service::http::{serve, ServerConfig};
use sigfim::service::EngineRegistry;

#[derive(Debug)]
struct CliOptions {
    path: String,
    ks: Vec<usize>,
    alpha: f64,
    beta: f64,
    epsilon: f64,
    replicates: usize,
    seed: u64,
    /// `--miner` selection; `None` is `auto`, resolved after the dataset
    /// loads: the parallel Eclat when the resolved backend is dense
    /// (bitmap/sharded) and more than one worker is available, Apriori
    /// otherwise. Every choice yields bit-identical reports.
    miner: Option<MinerKind>,
    /// Physical dataset backend ({auto, csr, bitmap, sharded}); `auto` resolves per
    /// workload from the density/size heuristic. The analysis result is
    /// identical either way.
    backend: DatasetBackend,
    /// Monte-Carlo worker threads: 0 = all cores (the default), 1 = strictly
    /// sequential. The result is bit-identical either way.
    threads: usize,
    max_restarts: usize,
    swap_null: Option<f64>,
    /// LRU bound on the engine's threshold cache (None = unbounded; mostly
    /// relevant for scripted multi-invocation loops and the serve mode).
    cache_capacity: Option<usize>,
    conservative_lambda: bool,
    baseline: bool,
    list: usize,
    /// `--kernels` counting-kernel selection, validated against this CPU at
    /// startup. `None` defers to `SIGFIM_KERNELS`, then the auto-tuner; a
    /// flag that conflicts with a set `SIGFIM_KERNELS` is a startup error.
    kernels: Option<KernelMode>,
    /// `--sampler` replicate-sampler selection. `None` defers to
    /// `SIGFIM_SAMPLER` (default `cellwise`); a flag that conflicts with a
    /// set `SIGFIM_SAMPLER` is a startup error, mirroring `--kernels`.
    sampler: Option<SamplerMode>,
    /// `--shard-residency <bytes>`: byte budget on resident shards of the
    /// sharded backend — beyond it, shards spill to per-shard files and
    /// fault back in on demand (LRU). `None` defers to `SIGFIM_RESIDENCY`;
    /// results are bit-identical at every budget.
    shard_residency: Option<u64>,
}

const USAGE: &str = "usage: sigfim <dataset.dat> [--k <size|a,b,c|lo..hi>] [--alpha <a>] \
    [--beta <b>] [--epsilon <e>] [--replicates <n>] [--threads <n>] [--seed <n>] \
    [--miner apriori|eclat|fp-growth|par-eclat|auto] [--backend auto|csr|bitmap|sharded] \
    [--kernels scalar|unrolled|avx2|avx512|auto] [--sampler cellwise|gaps|auto] \
    [--shard-residency <bytes[K|M|G]>] [--max-restarts <n>] \
    [--swap-null [<swaps-per-entry>]] [--cache-capacity <n>] [--conservative-lambda] \
    [--no-baseline] [--list <n>]\n\
    \n\
    sigfim serve [<id>=]<dataset.dat>... [--addr <host:port>] [--workers <n>]\n\
    \x20       [--cache-capacity <n>] [--threads <n>] [--backend auto|csr|bitmap|sharded]\n\
    \x20       [--kernels scalar|unrolled|avx2|avx512|auto] [--sampler cellwise|gaps|auto]\n\
    \x20       [--shard-residency <bytes[K|M|G]>] [--swap-null [<swaps-per-entry>]]\n\
    \x20       [--data-dir <dir>] [--queue-capacity <n>] [--job-workers <n>]\n\
    \n\
    --k accepts a single itemset size, a comma list (2,3,4), or an inclusive\n\
    range (2..5 == 2..=5) that runs as one cached multi-k batch.\n\
    --seed defaults to the library default 0x51F1D009, so the CLI, the engine\n\
    API and the SignificanceAnalyzer all reproduce each other bit for bit.\n\
    --miner auto picks the subtree-parallel Eclat on dense (bitmap/sharded)\n\
    datasets when more than one worker thread is available and the startup\n\
    tuner measured it as a win, the sequential miners otherwise; every miner\n\
    produces bit-identical reports.\n\
    --kernels selects the counting kernel, validated against this CPU at\n\
    startup; it mirrors SIGFIM_KERNELS, and a conflicting combination of flag\n\
    and environment is an error rather than a silent preference.\n\
    --sampler selects the null-replicate sampler (mirrors SIGFIM_SAMPLER):\n\
    cellwise is the legacy per-cell Bernoulli draw, gaps draws only the set\n\
    bits via geometric jumps (a different RNG stream, so estimates differ\n\
    numerically but not statistically), auto lets the density gate and the\n\
    startup tuner choose per run.\n\
    --shard-residency bounds the bytes of sharded-backend shards kept in\n\
    memory (suffixes K/M/G, powers of 1024; mirrors SIGFIM_RESIDENCY): cold\n\
    shards spill to per-shard files and fault back on demand via mmap or a\n\
    portable read path (SIGFIM_SPILL=mmap|read|off), with bit-identical\n\
    reports at every budget. In serve mode with --data-dir the spill files\n\
    live under <data-dir>/spill.\n\
    `serve` starts the multi-tenant HTTP/JSON front-end: one engine per\n\
    dataset, one shared LRU threshold store (--cache-capacity bounds it),\n\
    endpoints POST /v1/analyze, POST /v1/thresholds, PUT|DELETE\n\
    /v1/datasets/<id>, GET /v1/jobs/<id>, GET /v1/engines, GET /v1/stats,\n\
    GET /healthz. --data-dir makes the service durable: uploaded datasets,\n\
    thresholds and job records persist there and a restarted server replays\n\
    them (warm cache, re-queued jobs); with it, the dataset list may be\n\
    empty. Detached analyses queue up to --queue-capacity jobs (shed with\n\
    429 beyond that) drained by --job-workers background threads.";

/// Parse a `--k` specification: `3`, `2,3,4`, `2..5` or `2..=5` (both
/// range forms are inclusive of the upper bound).
fn parse_k_spec(spec: &str) -> Result<Vec<usize>, String> {
    let parse_one = |s: &str| -> Result<usize, String> {
        s.trim()
            .parse::<usize>()
            .map_err(|_| format!("--k: could not parse `{s}` as an itemset size"))
    };
    if let Some((lo, hi)) = spec.split_once("..") {
        let hi = hi.strip_prefix('=').unwrap_or(hi);
        let (lo, hi) = (parse_one(lo)?, parse_one(hi)?);
        if lo > hi {
            return Err(format!("--k: empty range `{spec}` (lo > hi)"));
        }
        return Ok((lo..=hi).collect());
    }
    // split(',') yields at least one piece, so the list is never empty (an
    // empty spec fails inside parse_one).
    spec.split(',').map(parse_one).collect()
}

fn parse_options<I: Iterator<Item = String>>(mut args: I) -> Result<CliOptions, String> {
    let _program = args.next();
    let mut options = CliOptions {
        path: String::new(),
        ks: vec![2],
        alpha: 0.05,
        beta: 0.05,
        epsilon: 0.01,
        replicates: 64,
        seed: DEFAULT_SEED,
        miner: Some(MinerKind::Apriori),
        backend: DatasetBackend::Auto,
        threads: 0,
        max_restarts: 4,
        swap_null: None,
        cache_capacity: None,
        conservative_lambda: false,
        baseline: true,
        list: 25,
        kernels: None,
        sampler: None,
        shard_residency: None,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--k" => {
                let spec = args.next().ok_or("--k requires a value")?;
                options.ks = parse_k_spec(&spec)?;
            }
            "--alpha" => options.alpha = parse_value(&mut args, "--alpha")?,
            "--beta" => options.beta = parse_value(&mut args, "--beta")?,
            "--epsilon" => options.epsilon = parse_value(&mut args, "--epsilon")?,
            "--replicates" => options.replicates = parse_value(&mut args, "--replicates")?,
            "--threads" => options.threads = parse_value(&mut args, "--threads")?,
            "--seed" => options.seed = parse_value(&mut args, "--seed")?,
            "--max-restarts" => options.max_restarts = parse_value(&mut args, "--max-restarts")?,
            "--cache-capacity" => {
                options.cache_capacity = Some(parse_value(&mut args, "--cache-capacity")?)
            }
            "--list" => options.list = parse_value(&mut args, "--list")?,
            "--no-baseline" => options.baseline = false,
            "--conservative-lambda" => options.conservative_lambda = true,
            "--swap-null" => {
                // Optional numeric argument (swaps per incidence); default 3.
                let swaps = match args.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let parsed = next
                            .parse::<f64>()
                            .map_err(|_| format!("--swap-null expects a number, got `{next}`"))?;
                        args.next();
                        parsed
                    }
                    _ => 3.0,
                };
                options.swap_null = Some(swaps);
            }
            "--backend" => {
                let name = args.next().ok_or("--backend requires a value")?;
                options.backend = name.parse::<DatasetBackend>()?;
            }
            "--miner" => {
                let name = args.next().ok_or("--miner requires a value")?;
                options.miner = match name.as_str() {
                    "apriori" => Some(MinerKind::Apriori),
                    "eclat" => Some(MinerKind::Eclat),
                    "fp-growth" | "fpgrowth" => Some(MinerKind::FpGrowth),
                    "par-eclat" | "pareclat" => Some(MinerKind::ParEclat),
                    "auto" => None,
                    other => return Err(format!("unknown miner `{other}`")),
                };
            }
            "--kernels" => {
                let name = args.next().ok_or("--kernels requires a value")?;
                options.kernels = Some(name.parse::<KernelMode>()?);
            }
            "--sampler" => {
                let name = args.next().ok_or("--sampler requires a value")?;
                options.sampler = Some(name.parse::<SamplerMode>()?);
            }
            "--shard-residency" => {
                let value = args.next().ok_or("--shard-residency requires a value")?;
                options.shard_residency = Some(
                    parse_budget_bytes(&value)
                        .map_err(|error| format!("--shard-residency: {error}"))?,
                );
            }
            path if !path.starts_with("--") && options.path.is_empty() => {
                options.path = path.to_string();
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if options.path.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(options)
}

fn parse_value<T: std::str::FromStr, I: Iterator<Item = String>>(
    args: &mut std::iter::Peekable<I>,
    flag: &str,
) -> Result<T, String> {
    let value = args
        .next()
        .ok_or_else(|| format!("{flag} requires a value"))?;
    value
        .parse()
        .map_err(|_| format!("{flag}: could not parse `{value}`"))
}

/// Validate the kernel, sampler, and out-of-core configuration (the
/// `--kernels` / `--sampler` / `--shard-residency` flags against
/// `SIGFIM_KERNELS` / `SIGFIM_SAMPLER` / `SIGFIM_SPILL` / `SIGFIM_RESIDENCY`
/// and this CPU) and the `SIGFIM_TUNE` setting at startup, so
/// misconfiguration is a clean error here instead of a panic at the first
/// dispatch deep inside the analysis.
fn configure_kernel_startup(
    kernels: Option<KernelMode>,
    sampler: Option<SamplerMode>,
    shard_residency: Option<u64>,
) -> Result<(), String> {
    startup_tune_request()?;
    configure_kernels(kernels)?;
    configure_sampler(sampler)?;
    configure_spill(None)?;
    configure_residency(shard_residency)?;
    Ok(())
}

/// Resolve `--miner auto` once the dataset is loaded: the subtree-parallel
/// Eclat wherever it can actually help — a dense (bitmap or sharded) resolved
/// backend, more than one worker, and a startup-tuner measurement that says
/// the frame queue pays for itself (falling back to the sequential bitset
/// Eclat when it does not) — and the Apriori default otherwise.
fn resolve_miner(options: &CliOptions, dataset: &TransactionDataset) -> MinerKind {
    match options.miner {
        Some(miner) => miner,
        None => {
            let dense = options.backend.resolve_for_dataset(dataset) != ResolvedBackend::Csr;
            let workers = ExecutionPolicy::from_threads(options.threads).worker_threads();
            if dense && workers > 1 {
                tuned_miner(true, workers)
            } else {
                MinerKind::Apriori
            }
        }
    }
}

fn request_from(options: &CliOptions, miner: MinerKind) -> AnalysisRequest {
    AnalysisRequest::for_ks(options.ks.iter().copied())
        .with_alpha(options.alpha)
        .with_beta(options.beta)
        .with_epsilon(options.epsilon)
        .with_replicates(options.replicates)
        .with_seed(options.seed)
        .with_miner(miner)
        .with_lambda_mode(if options.conservative_lambda {
            LambdaMode::Conservative
        } else {
            LambdaMode::Faithful
        })
        .with_baseline(options.baseline)
        .with_max_restarts(options.max_restarts)
}

/// Options of the `sigfim serve` subcommand.
#[derive(Debug)]
struct ServeOptions {
    /// `(id, path)` dataset registrations; the id defaults to the file stem.
    datasets: Vec<(String, String)>,
    addr: String,
    /// Connection worker threads (0 = one per core, the ExecutionPolicy
    /// thread-accounting convention).
    workers: usize,
    /// LRU bound of the shared threshold store (None = unbounded).
    cache_capacity: Option<usize>,
    /// Monte-Carlo worker threads per engine.
    threads: usize,
    backend: DatasetBackend,
    swap_null: Option<f64>,
    /// `--kernels` counting-kernel selection (see [`CliOptions::kernels`]).
    kernels: Option<KernelMode>,
    /// `--sampler` replicate-sampler selection (see [`CliOptions::sampler`]).
    sampler: Option<SamplerMode>,
    /// `--shard-residency` byte budget (see [`CliOptions::shard_residency`]).
    shard_residency: Option<u64>,
    /// `--data-dir`: directory of the durable store. `None` runs the service
    /// purely in memory, exactly as before the store existed.
    data_dir: Option<String>,
    /// `--queue-capacity`: pending detached jobs before submissions shed
    /// with 429.
    queue_capacity: usize,
    /// `--job-workers`: background threads draining the job queue.
    job_workers: usize,
}

/// Split a `id=path` registration spec; a bare path registers under its file
/// stem (`data/retail.dat` → `retail`).
fn parse_dataset_spec(spec: &str) -> Result<(String, String), String> {
    if let Some((id, path)) = spec.split_once('=') {
        if id.is_empty() || path.is_empty() {
            return Err(format!("serve: malformed dataset spec `{spec}`"));
        }
        return Ok((id.to_string(), path.to_string()));
    }
    let stem = std::path::Path::new(spec)
        .file_stem()
        .and_then(|stem| stem.to_str())
        .filter(|stem| !stem.is_empty())
        .ok_or_else(|| format!("serve: cannot derive a dataset id from `{spec}`"))?;
    Ok((stem.to_string(), spec.to_string()))
}

fn parse_serve_options<I: Iterator<Item = String>>(args: I) -> Result<ServeOptions, String> {
    let mut options = ServeOptions {
        datasets: Vec::new(),
        addr: "127.0.0.1:7878".to_string(),
        workers: 0,
        cache_capacity: None,
        threads: 0,
        backend: DatasetBackend::Auto,
        swap_null: None,
        kernels: None,
        sampler: None,
        shard_residency: None,
        data_dir: None,
        queue_capacity: sigfim::service::DEFAULT_QUEUE_CAPACITY,
        job_workers: 1,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--addr" => options.addr = args.next().ok_or("--addr requires a value")?,
            "--data-dir" => {
                options.data_dir = Some(args.next().ok_or("--data-dir requires a value")?)
            }
            "--queue-capacity" => {
                options.queue_capacity = parse_value(&mut args, "--queue-capacity")?
            }
            "--job-workers" => options.job_workers = parse_value(&mut args, "--job-workers")?,
            "--kernels" => {
                let name = args.next().ok_or("--kernels requires a value")?;
                options.kernels = Some(name.parse::<KernelMode>()?);
            }
            "--sampler" => {
                let name = args.next().ok_or("--sampler requires a value")?;
                options.sampler = Some(name.parse::<SamplerMode>()?);
            }
            "--shard-residency" => {
                let value = args.next().ok_or("--shard-residency requires a value")?;
                options.shard_residency = Some(
                    parse_budget_bytes(&value)
                        .map_err(|error| format!("--shard-residency: {error}"))?,
                );
            }
            "--workers" => options.workers = parse_value(&mut args, "--workers")?,
            "--cache-capacity" => {
                options.cache_capacity = Some(parse_value(&mut args, "--cache-capacity")?)
            }
            "--threads" => options.threads = parse_value(&mut args, "--threads")?,
            "--backend" => {
                let name = args.next().ok_or("--backend requires a value")?;
                options.backend = name.parse::<DatasetBackend>()?;
            }
            "--swap-null" => {
                let swaps = match args.peek() {
                    Some(next) if !next.starts_with("--") && next.parse::<f64>().is_ok() => {
                        let parsed = next.parse::<f64>().expect("checked above");
                        args.next();
                        parsed
                    }
                    _ => 3.0,
                };
                options.swap_null = Some(swaps);
            }
            spec if !spec.starts_with("--") => options.datasets.push(parse_dataset_spec(spec)?),
            other => return Err(format!("serve: unknown argument `{other}`\n{USAGE}")),
        }
    }
    if options.datasets.is_empty() && options.data_dir.is_none() {
        return Err(format!(
            "serve: at least one dataset (or --data-dir) is required\n{USAGE}"
        ));
    }
    Ok(options)
}

/// Run the service front-end until killed.
fn serve_main(options: &ServeOptions) -> Result<(), String> {
    configure_kernel_startup(options.kernels, options.sampler, options.shard_residency)?;
    // Spill files belong next to the rest of the service state: under
    // --data-dir they survive operator inspection and share the volume's
    // capacity planning. Must happen before any engine builds its views.
    if let Some(dir) = &options.data_dir {
        set_default_spill_dir(std::path::Path::new(dir).join("spill"))?;
    }
    let registry = Arc::new(EngineRegistry::with_capacities(
        options.cache_capacity,
        options.queue_capacity,
    ));
    for (id, path) in &options.datasets {
        let labeled =
            read_fimi_file(path).map_err(|error| format!("cannot read `{path}`: {error}"))?;
        let dataset = labeled.dataset;
        let summary = DatasetSummary::from_dataset(&dataset);
        let engine: DynAnalysisEngine = match options.swap_null {
            Some(swaps) => AnalysisEngine::with_swap_null_dyn(dataset, swaps),
            None => AnalysisEngine::from_dataset_dyn(dataset),
        }
        .map_err(|error| format!("cannot build an engine for `{id}`: {error}"))?
        .with_backend(options.backend)
        .with_threads(options.threads);
        registry
            .register_engine(id.clone(), engine)
            .map_err(|error| format!("cannot register `{id}`: {error}"))?;
        println!(
            "registered `{id}`: {} transactions, {} items, avg length {:.2}",
            summary.num_transactions, summary.num_items, summary.avg_transaction_len
        );
    }

    // Durable mode: replay the store *after* the CLI datasets register, so a
    // file passed on the command line wins over a stale persisted copy of
    // the same id, then start the workers so recovered jobs drain.
    if let Some(dir) = &options.data_dir {
        let db = sigfim::service::ServiceDb::open(dir)
            .map_err(|error| format!("cannot open --data-dir `{dir}`: {error}"))?;
        let summary = registry
            .attach_db(db)
            .map_err(|error| format!("cannot replay --data-dir `{dir}`: {error}"))?;
        println!(
            "restored from `{dir}`: {} datasets, {} thresholds, {} jobs re-queued, {} interrupted",
            summary.datasets, summary.thresholds, summary.jobs_requeued, summary.jobs_interrupted
        );
    }
    registry.start_job_workers(options.job_workers);

    let server = serve(
        Arc::clone(&registry),
        &ServerConfig {
            addr: options.addr.clone(),
            workers: options.workers,
        },
    )
    .map_err(|error| format!("cannot bind `{}`: {error}", options.addr))?;
    println!("sigfim service listening on http://{}", server.addr());
    println!("  POST /v1/analyze     {{protocol_version, kind: \"analyze\", dataset, request}}");
    println!("                       (+ \"detach\": true to queue a background job)");
    println!("  POST /v1/thresholds  {{protocol_version, kind: \"thresholds\", model, request}}");
    println!("  PUT|DELETE /v1/datasets/<id>   (PUT body: raw FIMI)");
    println!("  GET  /v1/jobs/<id> | /v1/engines | /v1/stats | /healthz");
    server.join();
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _program = args.next();
    let mut args = args.peekable();
    if args.peek().map(String::as_str) == Some("serve") {
        args.next();
        let result = parse_serve_options(args).and_then(|options| serve_main(&options));
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }

    let options = match parse_options(std::iter::once("sigfim".to_string()).chain(args)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(message) =
        configure_kernel_startup(options.kernels, options.sampler, options.shard_residency)
    {
        eprintln!("sigfim: {message}");
        return ExitCode::FAILURE;
    }

    let labeled = match read_fimi_file(&options.path) {
        Ok(labeled) => labeled,
        Err(error) => {
            eprintln!("sigfim: cannot read `{}`: {error}", options.path);
            return ExitCode::FAILURE;
        }
    };
    let dataset = &labeled.dataset;
    let summary = DatasetSummary::from_dataset(dataset);
    println!("{}", summary.table1_row(&options.path));
    println!();

    // One engine per invocation: the dataset view is built once and shared by
    // every k of the sweep, and the threshold cache collapses duplicate keys.
    let request = request_from(&options, resolve_miner(&options, dataset));
    let configure = |mut engine: DynAnalysisEngine| {
        engine = engine
            .with_backend(options.backend)
            .with_threads(options.threads);
        if let Some(capacity) = options.cache_capacity {
            engine = engine.with_cache_capacity(capacity);
        }
        engine
            .run(&request)
            .map_err(|e| format!("analysis failed: {e}"))
    };
    let response = match options.swap_null {
        Some(swaps) => AnalysisEngine::with_swap_null_dyn(dataset.clone(), swaps)
            .map_err(|e| format!("cannot build the swap-randomization null model: {e}"))
            .and_then(configure),
        None => AnalysisEngine::from_dataset_dyn(dataset.clone())
            .map_err(|e| format!("analysis failed: {e}"))
            .and_then(configure),
    };
    let response = match response {
        Ok(response) => response,
        Err(message) => {
            eprintln!("sigfim: {message}");
            return ExitCode::FAILURE;
        }
    };

    let multi_k = response.runs.len() > 1;
    for run in &response.runs {
        if multi_k {
            println!("==== k = {} ====", run.k);
        }
        print!("{}", run.report);
        if run.threshold_cache == CacheStatus::Hit {
            println!("  (threshold served from the engine cache)");
        }
        let significant = &run.report.procedure2.significant;
        if !significant.is_empty() {
            println!();
            println!(
                "top {} significant {}-itemsets (original item labels):",
                options.list.min(significant.len()),
                run.k
            );
            let mut ranked = significant.clone();
            ranked.sort_by_key(|m| std::cmp::Reverse(m.support));
            for itemset in ranked.iter().take(options.list) {
                println!(
                    "  {:?}  support {}",
                    labeled.labels_of(&itemset.items),
                    itemset.support
                );
            }
        }
        if multi_k {
            println!();
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, String> {
        parse_options(
            std::iter::once("sigfim".to_string()).chain(args.iter().map(|s| s.to_string())),
        )
    }

    #[test]
    fn k_spec_forms() {
        assert_eq!(parse_k_spec("3").unwrap(), vec![3]);
        assert_eq!(parse_k_spec("2,4,3").unwrap(), vec![2, 4, 3]);
        assert_eq!(parse_k_spec("2..5").unwrap(), vec![2, 3, 4, 5]);
        assert_eq!(parse_k_spec("2..=5").unwrap(), vec![2, 3, 4, 5]);
        assert_eq!(parse_k_spec("4..4").unwrap(), vec![4]);
        assert!(parse_k_spec("5..2").is_err());
        assert!(parse_k_spec("two").is_err());
        assert!(parse_k_spec("2..x").is_err());
    }

    #[test]
    fn cli_defaults_match_the_library() {
        let options = parse(&["data.dat"]).unwrap();
        // The satellite contract: the CLI inherits the library default seed
        // instead of carrying its own.
        assert_eq!(options.seed, DEFAULT_SEED);
        assert_eq!(options.ks, vec![2]);
        assert_eq!(options.max_restarts, 4);
        assert_eq!(options.miner, Some(MinerKind::Apriori));
        assert_eq!(options.kernels, None);
        let request = request_from(&options, MinerKind::Apriori);
        assert_eq!(request, AnalysisRequest::for_k(2));
    }

    #[test]
    fn cli_flags_reach_the_request() {
        let options = parse(&[
            "data.dat",
            "--k",
            "2..4",
            "--alpha",
            "0.01",
            "--replicates",
            "128",
            "--seed",
            "7",
            "--max-restarts",
            "2",
            "--conservative-lambda",
            "--no-baseline",
        ])
        .unwrap();
        let request = request_from(&options, options.miner.unwrap());
        assert_eq!(request.ks, vec![2, 3, 4]);
        assert!((request.alpha - 0.01).abs() < 1e-15);
        assert_eq!(request.replicates, 128);
        assert_eq!(request.seed, 7);
        assert_eq!(request.max_restarts, 2);
        assert_eq!(request.lambda_mode, LambdaMode::Conservative);
        assert!(!request.baseline);
    }

    #[test]
    fn usage_documents_the_default_seed() {
        assert!(USAGE.contains("0x51F1D009"));
        assert!(parse(&["--help"]).unwrap_err().contains("0x51F1D009"));
    }

    #[test]
    fn miner_flag_accepts_par_eclat_and_auto() {
        let explicit = parse(&["data.dat", "--miner", "par-eclat"]).unwrap();
        assert_eq!(explicit.miner, Some(MinerKind::ParEclat));
        let auto = parse(&["data.dat", "--miner", "auto"]).unwrap();
        assert_eq!(auto.miner, None);
        assert!(parse(&["data.dat", "--miner", "warp"]).is_err());

        // `auto` resolution: par-eclat only when the backend is dense AND
        // more than one worker is available; Apriori otherwise. A forced
        // bitmap backend makes the density check deterministic.
        let dataset = TransactionDataset::from_transactions(
            3,
            vec![vec![0, 1, 2], vec![0, 1], vec![1, 2], vec![0, 2]],
        )
        .unwrap();
        let parallel = CliOptions {
            backend: DatasetBackend::Bitmap,
            threads: 4,
            ..auto
        };
        // Dense + multi-worker defers to the startup tuner's measured
        // preference between the parallel and sequential bitset Eclat.
        assert_eq!(resolve_miner(&parallel, &dataset), tuned_miner(true, 4));
        assert!(matches!(
            resolve_miner(&parallel, &dataset),
            MinerKind::ParEclat | MinerKind::Eclat
        ));
        let sequential = CliOptions {
            backend: DatasetBackend::Bitmap,
            threads: 1,
            ..parallel
        };
        assert_eq!(resolve_miner(&sequential, &dataset), MinerKind::Apriori);
        let csr = CliOptions {
            backend: DatasetBackend::Csr,
            threads: 4,
            ..sequential
        };
        assert_eq!(resolve_miner(&csr, &dataset), MinerKind::Apriori);
        // An explicit miner always wins over the heuristic.
        let explicit = CliOptions {
            miner: Some(MinerKind::Eclat),
            ..csr
        };
        assert_eq!(resolve_miner(&explicit, &dataset), MinerKind::Eclat);
    }

    #[test]
    fn kernels_flag_is_parsed_on_both_subcommands() {
        let options = parse(&["data.dat", "--kernels", "scalar"]).unwrap();
        assert_eq!(options.kernels, Some(KernelMode::Scalar));
        let auto = parse(&["data.dat", "--kernels", "auto"]).unwrap();
        assert_eq!(auto.kernels, Some(KernelMode::Auto));
        let err = parse(&["data.dat", "--kernels", "sse9"]).unwrap_err();
        assert!(err.contains("sse9"), "{err}");
        assert!(parse(&["data.dat", "--kernels"]).is_err());

        let serve = parse_serve(&["x.dat", "--kernels", "unrolled"]).unwrap();
        assert_eq!(serve.kernels, Some(KernelMode::Unrolled));
        assert!(parse_serve(&["x.dat", "--kernels", "fast"]).is_err());
        assert!(USAGE.contains("--kernels"));
    }

    #[test]
    fn sampler_flag_is_parsed_on_both_subcommands() {
        assert_eq!(parse(&["data.dat"]).unwrap().sampler, None);
        let options = parse(&["data.dat", "--sampler", "gaps"]).unwrap();
        assert_eq!(options.sampler, Some(SamplerMode::Gaps));
        let cellwise = parse(&["data.dat", "--sampler", "cellwise"]).unwrap();
        assert_eq!(cellwise.sampler, Some(SamplerMode::Cellwise));
        let auto = parse(&["data.dat", "--sampler", "auto"]).unwrap();
        assert_eq!(auto.sampler, Some(SamplerMode::Auto));
        let err = parse(&["data.dat", "--sampler", "dense"]).unwrap_err();
        assert!(err.contains("dense"), "{err}");
        assert!(parse(&["data.dat", "--sampler"]).is_err());

        let serve = parse_serve(&["x.dat", "--sampler", "gaps"]).unwrap();
        assert_eq!(serve.sampler, Some(SamplerMode::Gaps));
        assert!(parse_serve(&["x.dat", "--sampler", "jump"]).is_err());
        assert!(USAGE.contains("--sampler"));
    }

    #[test]
    fn shard_residency_flag_is_parsed_on_both_subcommands() {
        assert_eq!(parse(&["data.dat"]).unwrap().shard_residency, None);
        let bytes = parse(&["data.dat", "--shard-residency", "4096"]).unwrap();
        assert_eq!(bytes.shard_residency, Some(4096));
        // Suffixes are powers of 1024, case-insensitive.
        let mega = parse(&["data.dat", "--shard-residency", "64M"]).unwrap();
        assert_eq!(mega.shard_residency, Some(64 << 20));
        let giga = parse(&["data.dat", "--shard-residency", "2g"]).unwrap();
        assert_eq!(giga.shard_residency, Some(2 << 30));
        let err = parse(&["data.dat", "--shard-residency", "lots"]).unwrap_err();
        assert!(err.contains("--shard-residency"), "{err}");
        assert!(parse(&["data.dat", "--shard-residency"]).is_err());

        let serve = parse_serve(&["x.dat", "--shard-residency", "512K"]).unwrap();
        assert_eq!(serve.shard_residency, Some(512 << 10));
        assert!(parse_serve(&["x.dat", "--shard-residency", "-3"]).is_err());
        assert!(USAGE.contains("--shard-residency"));
        assert!(USAGE.contains("SIGFIM_RESIDENCY"));
        assert!(USAGE.contains("SIGFIM_SPILL"));
    }

    #[test]
    fn cache_capacity_flag_is_parsed() {
        assert_eq!(parse(&["data.dat"]).unwrap().cache_capacity, None);
        let options = parse(&["data.dat", "--cache-capacity", "64"]).unwrap();
        assert_eq!(options.cache_capacity, Some(64));
        assert!(parse(&["data.dat", "--cache-capacity", "lots"]).is_err());
    }

    fn parse_serve(args: &[&str]) -> Result<ServeOptions, String> {
        parse_serve_options(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn dataset_specs_split_ids_and_paths() {
        assert_eq!(
            parse_dataset_spec("retail=data/retail.dat").unwrap(),
            ("retail".into(), "data/retail.dat".into())
        );
        assert_eq!(
            parse_dataset_spec("data/retail.dat").unwrap(),
            ("retail".into(), "data/retail.dat".into())
        );
        assert!(parse_dataset_spec("=x.dat").is_err());
        assert!(parse_dataset_spec("name=").is_err());
    }

    #[test]
    fn serve_options_parse_and_validate() {
        let options = parse_serve(&[
            "a=one.dat",
            "two.dat",
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "8",
            "--cache-capacity",
            "256",
            "--threads",
            "2",
            "--backend",
            "bitmap",
        ])
        .unwrap();
        assert_eq!(
            options.datasets,
            vec![
                ("a".to_string(), "one.dat".to_string()),
                ("two".to_string(), "two.dat".to_string())
            ]
        );
        assert_eq!(options.addr, "0.0.0.0:9000");
        assert_eq!(options.workers, 8);
        assert_eq!(options.cache_capacity, Some(256));
        assert_eq!(options.threads, 2);
        assert_eq!(options.backend, DatasetBackend::Bitmap);
        assert_eq!(options.swap_null, None);

        // Defaults, the optional swap-null argument, and failure modes.
        let defaults = parse_serve(&["x.dat"]).unwrap();
        assert_eq!(defaults.addr, "127.0.0.1:7878");
        assert_eq!(defaults.workers, 0);
        assert_eq!(defaults.cache_capacity, None);
        let swap = parse_serve(&["x.dat", "--swap-null", "2.5"]).unwrap();
        assert_eq!(swap.swap_null, Some(2.5));
        let swap_default = parse_serve(&["--swap-null", "x.dat"]).unwrap();
        assert_eq!(swap_default.swap_null, Some(3.0));
        assert!(parse_serve(&[]).is_err());
        assert!(parse_serve(&["x.dat", "--nope"]).is_err());
        assert!(parse_serve(&["--help"]).unwrap_err().contains("serve"));
    }

    #[test]
    fn serve_durability_flags_are_parsed() {
        let defaults = parse_serve(&["x.dat"]).unwrap();
        assert_eq!(defaults.data_dir, None);
        assert_eq!(
            defaults.queue_capacity,
            sigfim::service::DEFAULT_QUEUE_CAPACITY
        );
        assert_eq!(defaults.job_workers, 1);

        let durable = parse_serve(&[
            "x.dat",
            "--data-dir",
            "/var/lib/sigfim",
            "--queue-capacity",
            "16",
            "--job-workers",
            "3",
        ])
        .unwrap();
        assert_eq!(durable.data_dir.as_deref(), Some("/var/lib/sigfim"));
        assert_eq!(durable.queue_capacity, 16);
        assert_eq!(durable.job_workers, 3);

        // With a data dir the dataset list may be empty (persisted datasets
        // come back on their own); without one it may not.
        let storeless = parse_serve(&["--data-dir", "/tmp/sigfim"]).unwrap();
        assert!(storeless.datasets.is_empty());
        assert!(parse_serve(&["--queue-capacity", "8"]).is_err());
        assert!(parse_serve(&["x.dat", "--data-dir"]).is_err());
        assert!(parse_serve(&["x.dat", "--queue-capacity", "many"]).is_err());
        assert!(USAGE.contains("--data-dir"));
        assert!(USAGE.contains("--job-workers"));
    }
}

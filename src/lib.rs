//! # sigfim — statistically significant frequent itemset mining
//!
//! A from-scratch Rust implementation of
//! *"An Efficient Rigorous Approach for Identifying Statistically Significant
//! Frequent Itemsets"* (Kirsch, Mitzenmacher, Pietracaprina, Pucci, Upfal, Vandin;
//! ACM PODS 2009).
//!
//! Classical frequent itemset mining asks the user to pick a support threshold and
//! returns everything above it — with no guarantee that any of it is more than
//! random co-occurrence. This crate instead identifies a threshold `s*` such that
//! the k-itemsets with support at least `s*` deviate significantly from what a
//! random dataset (same size, same item frequencies, no correlations) would produce,
//! and bounds the false discovery rate of the returned family.
//!
//! This is the facade crate: it re-exports the workspace crates that make up
//! the system.
//!
//! | crate | contents |
//! |-------|----------|
//! | [`stats`] | special functions, Binomial/Poisson/Normal/Hypergeometric distributions, multiple-testing corrections |
//! | [`datasets`] | transaction storage, FIMI I/O, the paper's random null model, planted/Quest/swap generators, Table-1 benchmark stand-ins |
//! | [`mining`] | Apriori, Eclat, FP-Growth, closed itemsets, support counting |
//! | [`core`] | Chen–Stein bounds, Algorithm 1 (FindPoissonThreshold), Procedures 1 and 2, the session-oriented [`AnalysisEngine`] and the one-shot [`SignificanceAnalyzer`] |
//! | [`service`] | the multi-tenant HTTP/JSON front-end: engine registry, versioned wire protocol, shared threshold store (`sigfim serve`) |
//!
//! ## Quickstart
//!
//! ```
//! use sigfim::prelude::*;
//! use rand::SeedableRng;
//!
//! // Build (or load) a transactional dataset. Here: 500 transactions over 30
//! // items where items occur independently with frequency 4%, except that the
//! // pair {5, 9} has been planted into 80 extra transactions.
//! let background = BernoulliModel::new(500, vec![0.04; 30]).unwrap();
//! let model = PlantedModel::new(PlantedConfig {
//!     background,
//!     patterns: vec![PlantedPattern::new(vec![5, 9], 80).unwrap()],
//! }).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let dataset = model.sample(&mut rng);
//!
//! // Ask: which pairs (k = 2) are statistically significant at FDR <= 5%?
//! let report = SignificanceAnalyzer::new(2)
//!     .with_replicates(40)
//!     .with_seed(11)
//!     .analyze(&dataset)
//!     .unwrap();
//!
//! assert!(report.procedure2.s_star.is_some());
//! assert!(report.procedure2.significant.iter().any(|i| i.items == vec![5, 9]));
//! ```

pub use sigfim_core as core;
pub use sigfim_datasets as datasets;
pub use sigfim_mining as mining;
pub use sigfim_service as service;
pub use sigfim_stats as stats;

pub use sigfim_core::{AnalysisEngine, AnalysisReport, AnalysisRequest, SignificanceAnalyzer};

/// The most common imports, bundled for `use sigfim::prelude::*`.
pub mod prelude {
    pub use sigfim_core::analyzer::SignificanceAnalyzer;
    pub use sigfim_core::engine::{
        AnalysisEngine, AnalysisRequest, AnalysisResponse, AnalysisStage, CacheStatus,
        DynAnalysisEngine, LambdaMode, ProgressObserver, ThresholdStore,
    };
    pub use sigfim_core::lambda::{ExactLambda, LambdaEstimator};
    pub use sigfim_core::montecarlo::FindPoissonThreshold;
    pub use sigfim_core::procedure1::Procedure1;
    pub use sigfim_core::procedure2::Procedure2;
    pub use sigfim_core::report::AnalysisReport;
    pub use sigfim_datasets::benchmarks::{BenchmarkDataset, BenchmarkSpec};
    pub use sigfim_datasets::bitmap::{BitmapDataset, DatasetBackend};
    pub use sigfim_datasets::random::{
        BernoulliModel, NullModel, PlantedConfig, PlantedModel, PlantedPattern,
        SwapRandomizationModel,
    };
    pub use sigfim_datasets::summary::DatasetSummary;
    pub use sigfim_datasets::transaction::{ItemId, TransactionDataset};
    pub use sigfim_datasets::view::DatasetView;
    pub use sigfim_mining::miner::{KItemsetMiner, MinerKind};
    pub use sigfim_mining::ItemsetSupport;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_re_exports_are_reachable() {
        // Types from every sub-crate are visible through the facade.
        let _ = crate::prelude::MinerKind::Apriori;
        let _ = crate::stats::Poisson::new(1.0).unwrap();
        let _ = crate::datasets::transaction::TransactionDataset::empty(3);
        let analyzer = crate::SignificanceAnalyzer::new(2);
        let _ = analyzer.parameters();
    }
}

//! Sampler-mode contracts of the zero-waste replicate pipeline.
//!
//! The `gaps` sampler reads a *different* RNG stream than the legacy
//! `cellwise` sampler, so the two produce different (equally valid) estimate
//! values. What must hold instead:
//!
//! * **determinism within a mode** — for a fixed sampler, estimates are
//!   bit-identical at any thread count and under every configured backend
//!   (the gaps sampler rides the scratch-bitmap path whatever the backend);
//! * **statistical agreement** — both samplers draw from the same null model,
//!   so their `ŝ_min` estimates land in the same neighbourhood;
//! * **zero-RNG reuse** — a warm `ObservationStore` serves a same-key re-run
//!   without a single new null-model sampling call, because replicate
//!   substreams derive from the batch key, never from the caller's RNG.

use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim_core::{ExecutionPolicy, FindPoissonThreshold, ObservationStore, ThresholdEstimate};
use sigfim_datasets::bitmap::BitmapDataset;
use sigfim_datasets::random::{BernoulliModel, NullModel};
use sigfim_datasets::transaction::TransactionDataset;
use sigfim_datasets::{DatasetBackend, SamplerMode};
use sigfim_exec::NoopObserver;

fn sparse_model() -> BernoulliModel {
    BernoulliModel::new(800, vec![0.03; 14]).unwrap()
}

fn run_with(
    model: &BernoulliModel,
    sampler: SamplerMode,
    backend: DatasetBackend,
    threads: usize,
    seed: u64,
    replicates: usize,
) -> ThresholdEstimate {
    let algo = FindPoissonThreshold {
        replicates,
        policy: ExecutionPolicy::from_threads(threads),
        backend,
        sampler,
        ..FindPoissonThreshold::new(2)
    };
    let mut rng = StdRng::seed_from_u64(seed);
    algo.run(model, &mut rng).unwrap()
}

#[test]
fn gaps_estimates_are_bit_identical_across_threads_and_backends() {
    let model = sparse_model();
    let reference = run_with(&model, SamplerMode::Gaps, DatasetBackend::Auto, 1, 17, 24);
    for backend in DatasetBackend::ALL {
        for threads in [1usize, 2, 8] {
            let estimate = run_with(&model, SamplerMode::Gaps, backend, threads, 17, 24);
            assert_eq!(
                estimate, reference,
                "gaps diverged (backend {backend}, {threads} thread(s))"
            );
        }
    }
}

#[test]
fn cellwise_estimates_are_bit_identical_across_threads_and_backends() {
    // The legacy sampler keeps its PR 2–6 cross-backend/cross-policy parity
    // under the sampler-dispatch refactor.
    let model = sparse_model();
    let reference = run_with(
        &model,
        SamplerMode::Cellwise,
        DatasetBackend::Auto,
        1,
        17,
        24,
    );
    for backend in DatasetBackend::ALL {
        for threads in [1usize, 2, 8] {
            let estimate = run_with(&model, SamplerMode::Cellwise, backend, threads, 17, 24);
            assert_eq!(
                estimate, reference,
                "cellwise diverged (backend {backend}, {threads} thread(s))"
            );
        }
    }
}

#[test]
fn gaps_and_cellwise_agree_statistically() {
    // Both samplers draw exact datasets from the same Bernoulli null, so with
    // a healthy Δ their ŝ_min estimates must land within a couple of support
    // units of each other (they need not be equal: different RNG streams).
    let model = sparse_model();
    let gaps = run_with(&model, SamplerMode::Gaps, DatasetBackend::Auto, 1, 29, 200);
    let cell = run_with(
        &model,
        SamplerMode::Cellwise,
        DatasetBackend::Auto,
        1,
        29,
        200,
    );
    let spread = gaps.s_min.abs_diff(cell.s_min);
    assert!(
        spread <= 2,
        "gaps ŝ_min = {} vs cellwise ŝ_min = {} (spread {spread})",
        gaps.s_min,
        cell.s_min
    );
    assert_eq!(gaps.s_tilde, cell.s_tilde, "the initial floor is RNG-free");
}

/// Counts null-model sampling calls: a direct measurement of whether the
/// replicate loop actually sampled anything.
struct CountingModel {
    inner: BernoulliModel,
    samples: AtomicUsize,
}

impl CountingModel {
    fn new(inner: BernoulliModel) -> Self {
        CountingModel {
            inner,
            samples: AtomicUsize::new(0),
        }
    }

    fn samples(&self) -> usize {
        self.samples.load(Ordering::SeqCst)
    }
}

impl NullModel for CountingModel {
    fn num_items(&self) -> usize {
        NullModel::num_items(&self.inner)
    }

    fn num_transactions(&self) -> usize {
        NullModel::num_transactions(&self.inner)
    }

    fn item_frequencies(&self) -> Vec<f64> {
        NullModel::item_frequencies(&self.inner)
    }

    fn sample_dataset<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> TransactionDataset {
        self.samples.fetch_add(1, Ordering::SeqCst);
        self.inner.sample_dataset(rng)
    }

    fn sample_into_bitmap<R: rand::Rng + ?Sized>(&self, rng: &mut R, out: &mut BitmapDataset) {
        self.samples.fetch_add(1, Ordering::SeqCst);
        NullModel::sample_into_bitmap(&self.inner, rng, out);
    }

    fn supports_gaps_sampler(&self) -> bool {
        true
    }

    fn sample_into_bitmap_gaps<R: rand::Rng + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut BitmapDataset,
    ) -> Vec<u64> {
        self.samples.fetch_add(1, Ordering::SeqCst);
        self.inner.sample_into_bitmap_gaps(rng, out)
    }

    fn fingerprint(&self) -> u64 {
        self.inner.fingerprint()
    }
}

#[test]
fn observation_store_reuse_consumes_zero_model_rng() {
    for sampler in [SamplerMode::Cellwise, SamplerMode::Gaps] {
        let model = CountingModel::new(sparse_model());
        let algo = FindPoissonThreshold {
            replicates: 16,
            sampler,
            ..FindPoissonThreshold::new(2)
        };
        let store = ObservationStore::new();
        let mut rng = StdRng::seed_from_u64(41);
        let cold = algo
            .run_with_store(&model, &mut rng, &NoopObserver, &store)
            .unwrap();
        let cold_samples = model.samples();
        assert!(cold_samples >= 16, "{sampler}: cold run must sample");

        // Same seed → same batch key(s) → every replicate served from the
        // store; the model is never asked for another dataset.
        let mut rng = StdRng::seed_from_u64(41);
        let warm = algo
            .run_with_store(&model, &mut rng, &NoopObserver, &store)
            .unwrap();
        assert_eq!(warm, cold, "{sampler}: warm replay must be bit-identical");
        assert_eq!(
            model.samples(),
            cold_samples,
            "{sampler}: store reuse must consume zero model RNG"
        );
    }
}

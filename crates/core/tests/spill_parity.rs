//! Out-of-core parity contract: an engine whose sharded view is spilled to
//! disk under a residency budget produces **bit-identical** reports to the
//! fully-resident engine — at any budget (including one that forces every
//! shard cold), in both fault modes (`mmap` and `read`), under every miner
//! and worker count. Spilling is a pure footprint knob, exactly like
//! `--backend` is a pure performance knob.
//!
//! The suite also pins the footprint claim itself: on Linux, analyzing a
//! dataset whose bit matrix is ≥ 4× the residency budget keeps the peak-RSS
//! *growth* of the measured analysis bounded by the budget plus a constant
//! overhead — far below the matrix size — while returning byte-identical
//! results (`VmHWM` from `/proc/self/status`, reset via
//! `/proc/self/clear_refs`).

use sigfim_core::engine::{AnalysisEngine, AnalysisRequest};
use sigfim_core::DatasetBackend;
use sigfim_datasets::random::{BernoulliModel, PlantedConfig, PlantedModel, PlantedPattern};
use sigfim_datasets::spill::{ShardResidency, SpillMode, MMAP_SUPPORTED};
use sigfim_datasets::transaction::TransactionDataset;
use sigfim_mining::miner::MinerKind;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A residency that explicitly disables spilling, pinning the reference
/// engine to the fully-resident sharded view even when the process runs
/// under `SIGFIM_RESIDENCY` (as the CI spill-parity step does).
fn resident() -> ShardResidency {
    ShardResidency {
        budget_bytes: 0,
        mode: SpillMode::Off,
        dir: None,
    }
}

/// The spill modes this process can exercise.
fn modes() -> Vec<SpillMode> {
    if MMAP_SUPPORTED {
        vec![SpillMode::Mmap, SpillMode::Read]
    } else {
        vec![SpillMode::Read]
    }
}

fn planted_dataset(seed: u64) -> TransactionDataset {
    let background = BernoulliModel::new(350, vec![0.06; 18]).unwrap();
    let model = PlantedModel::new(PlantedConfig {
        background,
        patterns: vec![PlantedPattern::new(vec![3, 11], 70).unwrap()],
    })
    .unwrap();
    model.sample(&mut StdRng::seed_from_u64(seed))
}

#[test]
fn spilled_engine_reports_match_resident_bit_for_bit() {
    let dataset = planted_dataset(5);
    let request = |miner: MinerKind| {
        AnalysisRequest::for_k_range(2..=3)
            .with_replicates(20)
            .with_seed(11)
            .with_miner(miner)
    };

    for miner in [MinerKind::Apriori, MinerKind::ParEclat] {
        let reference = AnalysisEngine::from_dataset(dataset.clone())
            .unwrap()
            .with_backend(DatasetBackend::Sharded)
            .with_shard_residency(resident())
            .run(&request(miner))
            .unwrap();
        for mode in modes() {
            // Budget 1 forces every shard cold (evict-after-use); the huge
            // budget takes the all-pinned fast path. Both must agree with
            // the resident run at every worker count.
            for budget in [1u64, 1 << 30] {
                for threads in [1usize, 2, 8] {
                    let mut engine = AnalysisEngine::from_dataset(dataset.clone())
                        .unwrap()
                        .with_backend(DatasetBackend::Sharded)
                        .with_threads(threads)
                        .with_shard_residency(ShardResidency {
                            budget_bytes: budget,
                            mode,
                            dir: None,
                        });
                    let snapshot = engine
                        .spill_snapshot()
                        .expect("an active residency must spill the sharded view");
                    assert_eq!(snapshot.budget_bytes, budget);
                    let spilled = engine.run(&request(miner)).unwrap();
                    assert_eq!(
                        spilled, reference,
                        "{miner:?}/{mode}/budget {budget}/{threads} thread(s) \
                         diverged from the resident engine"
                    );
                    if budget == 1 {
                        let snapshot = engine.spill_snapshot().unwrap();
                        assert!(
                            snapshot.refaults > 0,
                            "a 1-byte budget must fault shards back in ({miner:?}/{mode})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn inactive_residency_keeps_the_view_resident() {
    let engine = AnalysisEngine::from_dataset(planted_dataset(9))
        .unwrap()
        .with_backend(DatasetBackend::Sharded)
        .with_shard_residency(resident());
    assert!(engine.spill_snapshot().is_none());
}

/// `VmHWM` (peak resident set, kB) from `/proc/self/status`.
#[cfg(target_os = "linux")]
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Reset the peak-RSS watermark to the current RSS (`5` → `clear_refs`).
#[cfg(target_os = "linux")]
fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// The acceptance criterion of the out-of-core work: a dataset whose sharded
/// bit matrix is ≥ 4× the residency budget analyzes to completion with the
/// measured peak-RSS growth bounded by `budget + constant overhead` — well
/// below the matrix size — and the spill-forced report byte-identical to the
/// fully-resident one.
#[cfg(target_os = "linux")]
#[test]
fn spilled_analysis_peak_rss_is_bounded_by_the_residency_budget() {
    const NUM_ITEMS: u32 = 64;
    const NUM_TRANSACTIONS: usize = 1 << 20;
    const BUDGET: u64 = 1 << 20; // 1 MiB resident shard payload
    /// Constant overhead allowance on top of the budget: one pinned shard
    /// (≤ 1 MiB at the largest tuned width), the per-shard partial-count
    /// vectors, the floor profile, and allocator slack.
    const SLACK: u64 = 4 << 20;

    // ~2 items per transaction; every pair recurs every 64 transactions, so
    // supports are high and the k = 2 profile is non-trivial.
    let mut transactions = Vec::with_capacity(NUM_TRANSACTIONS);
    for tid in 0..NUM_TRANSACTIONS {
        let a = ((tid * 7 + 3) % NUM_ITEMS as usize) as u32;
        let b = ((tid * 13 + 5) % NUM_ITEMS as usize) as u32;
        let mut txn = vec![a, b];
        txn.sort_unstable();
        txn.dedup();
        transactions.push(txn);
    }
    let dataset = TransactionDataset::from_transactions(NUM_ITEMS, transactions).unwrap();

    let matrix_bytes = NUM_ITEMS as u64
        * (NUM_TRANSACTIONS as u64).div_ceil(64)
        * std::mem::size_of::<u64>() as u64;
    assert!(
        matrix_bytes >= 4 * BUDGET,
        "the matrix ({matrix_bytes} B) must exceed the budget ({BUDGET} B) at least 4x"
    );
    // The bound we assert must itself be able to fail if the matrix were
    // fully resident during the measured run.
    assert!(BUDGET + SLACK < matrix_bytes);

    let request = AnalysisRequest::for_k(2)
        .with_replicates(4)
        .with_seed(41)
        .with_baseline(false);

    // Resident reference run — also warms the threshold store that the
    // spilled engine shares, so the measured region below never runs the
    // Monte-Carlo replicate loop (whose scratch bitmap is intentionally
    // unspillable and full-size).
    let mut reference_engine = AnalysisEngine::from_dataset(dataset.clone())
        .unwrap()
        .with_backend(DatasetBackend::Sharded)
        .with_threads(1)
        .with_shard_residency(resident());
    let reference = reference_engine.run(&request).unwrap();
    let store = reference_engine.threshold_store();
    drop(reference_engine);

    let mode = if MMAP_SUPPORTED {
        SpillMode::Mmap
    } else {
        SpillMode::Read
    };
    let mut engine = AnalysisEngine::from_dataset(dataset)
        .unwrap()
        .with_backend(DatasetBackend::Sharded)
        .with_threads(1)
        .with_threshold_store(store)
        .with_shard_residency(ShardResidency {
            budget_bytes: BUDGET,
            mode,
            dir: None,
        });

    if !reset_peak_rss() {
        eprintln!("skipping: /proc/self/clear_refs is not writable here");
        return;
    }
    let before_kb = vm_hwm_kb().expect("/proc/self/status must report VmHWM");
    let spilled = engine.run(&request).unwrap();
    let after_kb = vm_hwm_kb().expect("/proc/self/status must report VmHWM");

    let growth = (after_kb.saturating_sub(before_kb)) * 1024;
    assert!(
        growth <= BUDGET + SLACK,
        "peak-RSS growth {growth} B exceeds budget {BUDGET} B + slack {SLACK} B \
         (matrix is {matrix_bytes} B)"
    );
    assert_eq!(
        spilled.runs.len(),
        reference.runs.len(),
        "spilled and resident sweeps must cover the same ks"
    );
    for (s, r) in spilled.runs.iter().zip(&reference.runs) {
        assert_eq!(
            s.report, r.report,
            "the spill-forced report must be byte-identical to the resident one"
        );
    }
    let snapshot = engine.spill_snapshot().unwrap();
    assert!(
        snapshot.refaults > 0,
        "a budget 8x below the matrix must fault shards during counting"
    );
}

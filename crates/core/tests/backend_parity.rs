//! Backend-parity contract: the CSR, bitmap and transaction-sharded dataset
//! backends produce **identical supports** and **bit-identical** Monte-Carlo
//! estimates for the same seed, at every thread count. This is what makes
//! `--backend` a pure performance knob.
//!
//! CI runs this suite twice per kernel dispatch mode — with
//! `SIGFIM_KERNELS=scalar` and `SIGFIM_KERNELS=auto` — and with test-harness
//! worker counts of 1 and 8 on top of the explicit `ExecutionPolicy` matrix
//! below, so a regression in the RNG-consumption contract of
//! `sample_into_bitmap`, the bitset Eclat, the SIMD counting kernels, or the
//! fixed-order shard reduction shows up as a hard failure.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim_core::montecarlo::FindPoissonThreshold;
use sigfim_core::procedure2::Procedure2;
use sigfim_core::validation::poisson_fit_with_backend;
use sigfim_core::{DatasetBackend, ExecutionPolicy, SignificanceAnalyzer, ThresholdEstimate};
use sigfim_datasets::random::{
    BernoulliModel, PlantedConfig, PlantedModel, PlantedPattern, SwapRandomizationModel,
};
use sigfim_datasets::transaction::TransactionDataset;

/// The worker counts the parity matrix covers (1 = strictly sequential).
const THREAD_MATRIX: [usize; 3] = [1, 2, 8];

fn planted_dataset(seed: u64) -> TransactionDataset {
    let background = BernoulliModel::new(350, vec![0.06; 18]).unwrap();
    let model = PlantedModel::new(PlantedConfig {
        background,
        patterns: vec![PlantedPattern::new(vec![3, 11], 70).unwrap()],
    })
    .unwrap();
    model.sample(&mut StdRng::seed_from_u64(seed))
}

fn estimate(backend: DatasetBackend, threads: usize, seed: u64) -> ThresholdEstimate {
    let model = BernoulliModel::new(320, vec![0.1; 16]).unwrap();
    let algo = FindPoissonThreshold {
        replicates: 36,
        policy: ExecutionPolicy::from_threads(threads),
        backend,
        ..FindPoissonThreshold::new(2)
    };
    let mut rng = StdRng::seed_from_u64(seed);
    algo.run(&model, &mut rng).unwrap()
}

#[test]
fn backend_parity_threshold_estimates_at_1_2_and_8_threads() {
    let reference = estimate(DatasetBackend::Csr, 1, 99);
    for threads in THREAD_MATRIX {
        for backend in DatasetBackend::ALL {
            assert_eq!(
                estimate(backend, threads, 99),
                reference,
                "backend {} at {threads} thread(s) diverged from csr/sequential",
                backend.name()
            );
        }
    }
}

#[test]
fn backend_parity_procedure2_supports_and_family() {
    let dataset = planted_dataset(5);
    let lambda =
        sigfim_core::lambda::MonteCarloLambda::new(6, vec![1.5, 0.7, 0.3, 0.1, 0.04, 0.01, 0.0])
            .unwrap();
    let run = |backend: DatasetBackend| {
        Procedure2 {
            backend,
            ..Procedure2::new(2)
        }
        .run(&dataset, 6, &lambda)
        .unwrap()
    };
    let csr = run(DatasetBackend::Csr);
    for backend in [
        DatasetBackend::Bitmap,
        DatasetBackend::Auto,
        DatasetBackend::Sharded,
    ] {
        let other = run(backend);
        assert_eq!(csr.s_star, other.s_star, "{backend}");
        assert_eq!(
            csr.tests, other.tests,
            "Q_{{k,s}} traces must be identical ({backend})"
        );
        assert_eq!(csr.significant, other.significant, "{backend}");
    }
    assert!(csr.s_star.is_some(), "the planted pair must be detected");
}

#[test]
fn backend_parity_procedure2_sharded_at_1_2_and_8_counting_workers() {
    // The sharded backend's counting pass fans out across workers; the trace
    // and family must be bit-identical at every worker count (fixed-order
    // shard reduction over exact partial counts).
    let dataset = planted_dataset(5);
    let lambda =
        sigfim_core::lambda::MonteCarloLambda::new(6, vec![1.5, 0.7, 0.3, 0.1, 0.04, 0.01, 0.0])
            .unwrap();
    let run = |threads: usize| {
        Procedure2 {
            backend: DatasetBackend::Sharded,
            policy: ExecutionPolicy::from_threads(threads),
            ..Procedure2::new(2)
        }
        .run(&dataset, 6, &lambda)
        .unwrap()
    };
    let reference = run(1);
    assert!(reference.s_star.is_some());
    for threads in THREAD_MATRIX {
        assert_eq!(run(threads), reference, "{threads} counting worker(s)");
    }
}

#[test]
fn backend_parity_full_reports_at_1_2_and_8_threads() {
    let dataset = planted_dataset(23);
    let analyze = |backend: DatasetBackend, threads: usize| {
        SignificanceAnalyzer::new(2)
            .with_replicates(24)
            .with_seed(13)
            .with_threads(threads)
            .with_backend(backend)
            .analyze(&dataset)
            .unwrap()
    };
    let reference = analyze(DatasetBackend::Csr, 1);
    for threads in THREAD_MATRIX {
        for backend in [
            DatasetBackend::Csr,
            DatasetBackend::Bitmap,
            DatasetBackend::Sharded,
        ] {
            let report = analyze(backend, threads);
            // Everything except the recorded backend parameter must agree bit
            // for bit.
            assert_eq!(report.threshold, reference.threshold);
            assert_eq!(report.procedure2, reference.procedure2);
            assert_eq!(report.procedure1, reference.procedure1);
            assert_eq!(report.dataset, reference.dataset);
            assert_eq!(report.parameters.backend, backend);
        }
    }
}

#[test]
fn backend_parity_swap_null_model() {
    // The swap model's `sample_into_bitmap` is implemented *natively* on the
    // bit-columns (margin-preserving swaps as paired bit flips), so this pins
    // the contract that native swap sampling consumes the RNG exactly like the
    // CSR sampler: the pooled observations — and therefore the estimates — are
    // bit-identical across backends at every worker count.
    let reference_data = planted_dataset(31);
    let model = SwapRandomizationModel::new(reference_data, 3.0).unwrap();
    let run = |backend: DatasetBackend, threads: usize| {
        let algo = FindPoissonThreshold {
            replicates: 16,
            policy: ExecutionPolicy::from_threads(threads),
            backend,
            ..FindPoissonThreshold::new(2)
        };
        let mut rng = StdRng::seed_from_u64(3);
        algo.run(&model, &mut rng).unwrap()
    };
    let reference = run(DatasetBackend::Csr, 1);
    for threads in THREAD_MATRIX {
        for backend in [
            DatasetBackend::Csr,
            DatasetBackend::Bitmap,
            DatasetBackend::Sharded,
        ] {
            assert_eq!(
                run(backend, threads),
                reference,
                "swap-null backend {} at {threads} thread(s) diverged",
                backend.name()
            );
        }
    }
}

#[test]
fn backend_parity_swap_null_full_reports() {
    // End to end through the analyzer: the whole swap-null report (threshold,
    // Procedure 2 trace, significant family) is backend-invariant.
    let dataset = planted_dataset(47);
    let analyze = |backend: DatasetBackend| {
        SignificanceAnalyzer::new(2)
            .with_replicates(12)
            .with_seed(8)
            .with_backend(backend)
            .with_procedure1(false)
            .analyze_with_swap_null(&dataset, 3.0)
            .unwrap()
    };
    let csr = analyze(DatasetBackend::Csr);
    let bitmap = analyze(DatasetBackend::Bitmap);
    assert_eq!(csr.threshold, bitmap.threshold);
    assert_eq!(csr.procedure2, bitmap.procedure2);
}

#[test]
fn backend_parity_poisson_fit_replicate_loop() {
    let model = BernoulliModel::new(150, vec![0.1; 10]).unwrap();
    let fit = |backend: DatasetBackend| {
        let mut rng = StdRng::seed_from_u64(17);
        poisson_fit_with_backend(&model, 2, 4, 60, backend, &mut rng).unwrap()
    };
    let csr = fit(DatasetBackend::Csr);
    let bitmap = fit(DatasetBackend::Bitmap);
    assert_eq!(csr, bitmap);
    assert_eq!(fit(DatasetBackend::Auto), csr);
    assert_eq!(fit(DatasetBackend::Sharded), csr);
}

#[test]
fn kernel_dispatch_is_invisible_to_full_reports() {
    // Whatever SIGFIM_KERNELS selected for this process (CI runs the suite
    // under both `scalar` and `auto`), the dispatched kernel must agree with
    // the forced-scalar kernel on live column data — the in-process half of
    // the cross-process dispatch-parity contract.
    use sigfim_datasets::kernels::{kernels, kernels_for, KernelMode};
    let dataset = planted_dataset(61);
    let bitmap = sigfim_datasets::BitmapDataset::from_dataset(&dataset);
    let scalar = kernels_for(KernelMode::Scalar);
    let dispatched = kernels();
    let columns: Vec<&[u64]> = (0..dataset.num_items()).map(|i| bitmap.column(i)).collect();
    for pair in columns.windows(2) {
        assert_eq!(
            dispatched.and_count(pair[0], pair[1]),
            scalar.and_count(pair[0], pair[1])
        );
        assert_eq!(
            dispatched.popcount_slice(pair[0]),
            scalar.popcount_slice(pair[0])
        );
    }
}

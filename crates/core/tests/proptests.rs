//! Property-based tests for the core pipeline invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use sigfim_core::chen_stein::{theorem2_bounds, ExactChenStein};
use sigfim_core::lambda::{ExactLambda, LambdaEstimator, MonteCarloLambda};
use sigfim_core::procedure2::Procedure2;
use sigfim_core::validation::{empirical_fdr, empirical_power, is_true_discovery};
use sigfim_datasets::transaction::TransactionDataset;

/// A small frequency profile: 3..7 items with frequencies in (0.01, 0.4).
fn frequency_profile() -> impl Strategy<Value = Vec<f64>> {
    vec(0.01f64..0.4, 3..7)
}

/// A small random dataset over up to 8 items.
fn small_dataset() -> impl Strategy<Value = TransactionDataset> {
    vec(vec(0u32..8, 0..5), 4..40)
        .prop_map(|txns| TransactionDataset::from_transactions(8, txns).expect("items < 8"))
}

/// A constant λ estimator used to exercise Procedure 2's decision logic.
struct ConstantLambda(f64);
impl LambdaEstimator for ConstantLambda {
    fn lambda(&self, _s: u64) -> f64 {
        self.0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chen_stein_bounds_are_nonnegative_and_lambda_monotone(
        freqs in frequency_profile(),
        t in 20u64..200,
    ) {
        let cs = ExactChenStein::new(&freqs, t, 2).unwrap();
        let mut prev_lambda = f64::INFINITY;
        for s in 1..12u64 {
            let b = cs.bounds(s);
            prop_assert!(b.b1 >= 0.0);
            prop_assert!(b.b2 >= 0.0);
            prop_assert!(b.b1.is_finite() && b.b2.is_finite());
            let lambda = cs.lambda(s);
            prop_assert!(lambda >= 0.0);
            prop_assert!(lambda <= prev_lambda + 1e-9);
            prev_lambda = lambda;
        }
    }

    #[test]
    fn theorem2_b1_equals_exact_b1_for_uniform_profiles(
        n in 4u64..9,
        p in 0.02f64..0.3,
        t in 50u64..400,
        s in 2u64..8,
    ) {
        let freqs = vec![p; n as usize];
        let exact = ExactChenStein::new(&freqs, t, 2).unwrap();
        let closed = theorem2_bounds(n, t, 2, s, p).unwrap();
        let a = exact.b1(s);
        let b = closed.b1;
        prop_assert!((a - b).abs() <= 1e-9 + 1e-6 * b.max(a), "exact {a} vs closed {b}");
    }

    #[test]
    fn pruned_lambda_matches_exhaustive_lambda(
        freqs in frequency_profile(),
        t in 20u64..300,
        s in 2u64..10,
    ) {
        let exact = ExactLambda::new(&freqs, t, 2, 1e-15).unwrap();
        let reference = ExactChenStein::new(&freqs, t, 2).unwrap();
        let a = LambdaEstimator::lambda(&exact, s);
        let b = reference.lambda(s);
        prop_assert!((a - b).abs() <= 1e-9 + 1e-6 * b.max(a), "pruned {a} vs exhaustive {b}");
    }

    #[test]
    fn support_grid_invariants(s_min in 1u64..10_000, span in 0u64..1_000_000) {
        let s_max = s_min.saturating_add(span);
        let grid = Procedure2::support_grid(s_min, s_max);
        prop_assert!(!grid.is_empty());
        prop_assert_eq!(grid[0], s_min);
        prop_assert!(grid.windows(2).all(|w| w[0] < w[1]), "grid must be strictly increasing");
        // h = floor(log2(s_max - s_min)) + 1 grid points when the range is non-trivial.
        if s_max > s_min {
            let h = ((s_max - s_min) as f64).log2().floor() as usize + 1;
            prop_assert_eq!(grid.len(), h);
            // Every probe lies within [s_min, s_min + 2^h).
            let limit = s_min + (1u64 << h.min(63));
            prop_assert!(grid.iter().all(|&s| s >= s_min && s < limit));
        } else {
            prop_assert_eq!(grid.len(), 1);
        }
    }

    #[test]
    fn monte_carlo_lambda_is_monotone_non_increasing(
        start in 1u64..100,
        raw in vec(0.0f64..50.0, 1..20),
    ) {
        // Sort descending to build a valid table, then check the estimator output is
        // monotone over a wide query range including values outside the table.
        let mut values = raw;
        values.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let table = MonteCarloLambda::new(start, values).unwrap();
        let mut prev = f64::INFINITY;
        for s in 0..(start + 30) {
            let l = table.lambda(s);
            prop_assert!(l >= 0.0);
            prop_assert!(l <= prev + 1e-12);
            prev = l;
        }
    }

    #[test]
    fn procedure2_output_is_coherent(dataset in small_dataset(), lambda in 0.0f64..3.0) {
        let estimator = ConstantLambda(lambda);
        let result = Procedure2::new(2).run(&dataset, 1, &estimator).unwrap();
        // Grid and trace shapes.
        prop_assert_eq!(result.tests.len(), Procedure2::support_grid(1, dataset.max_item_support()).len());
        prop_assert!(result.tests.windows(2).all(|w| w[0].s < w[1].s));
        for t in &result.tests {
            prop_assert!(t.p_value >= 0.0 && t.p_value <= 1.0);
            prop_assert_eq!(t.rejected, t.poisson_reject && t.magnitude_reject);
        }
        match result.s_star {
            Some(s_star) => {
                prop_assert!(s_star >= 1);
                // s_star is the first rejected grid point.
                let first = result.tests.iter().find(|t| t.rejected).unwrap();
                prop_assert_eq!(first.s, s_star);
                // Every significant itemset has support >= s_star and size 2, and the
                // count matches Q_{k,s_star} recomputed directly.
                for i in &result.significant {
                    prop_assert!(i.support >= s_star);
                    prop_assert_eq!(i.items.len(), 2);
                    prop_assert_eq!(i.support, dataset.itemset_support(&i.items));
                }
                let q = sigfim_mining::q_k_s(&dataset, 2, s_star).unwrap();
                prop_assert_eq!(result.significant.len() as u64, q);
            }
            None => prop_assert!(result.significant.is_empty()),
        }
    }

    #[test]
    fn fdr_and_power_are_proportions(
        discoveries in vec(vec(0u32..10, 1..4), 0..12),
        patterns in vec(vec(0u32..10, 1..5), 1..4),
    ) {
        let normalize = |sets: Vec<Vec<u32>>| -> Vec<Vec<u32>> {
            sets.into_iter()
                .map(|mut s| {
                    s.sort_unstable();
                    s.dedup();
                    s
                })
                .collect()
        };
        let discoveries = normalize(discoveries);
        let patterns = normalize(patterns);
        let fdr = empirical_fdr(&discoveries, &patterns);
        let power = empirical_power(&discoveries, &patterns, 2);
        prop_assert!((0.0..=1.0).contains(&fdr));
        prop_assert!((0.0..=1.0).contains(&power));
        // A discovery that is itself a planted pattern is always "true".
        for p in &patterns {
            prop_assert!(is_true_discovery(p, &patterns));
        }
        // FDR of the planted patterns themselves is zero.
        prop_assert_eq!(empirical_fdr(&patterns, &patterns), 0.0);
    }
}

proptest! {
    // The pipeline runs per case, so keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The engine cache contract, property-tested: a multi-k batch response
    /// equals the k-by-k single requests, report for report — whatever the
    /// dataset shape, seed, or replicate count.
    #[test]
    fn multi_k_batch_equals_single_requests(
        txns in vec(vec(0u32..8, 0..5), 12..40),
        seed in 0u64..1_000,
        replicates in 4usize..10,
    ) {
        use sigfim_core::engine::{AnalysisEngine, AnalysisRequest};

        let dataset = TransactionDataset::from_transactions(8, txns).expect("items < 8");
        prop_assert!(dataset.num_transactions() > 0);

        let request = AnalysisRequest::for_k_range(2..=3)
            .with_replicates(replicates)
            .with_seed(seed)
            .with_baseline(false);
        let mut batch_engine = AnalysisEngine::from_dataset(dataset.clone()).unwrap();
        let batch = batch_engine.run(&request).unwrap();
        prop_assert_eq!(batch.runs.len(), 2);

        for (i, k) in (2..=3).enumerate() {
            let single_request = AnalysisRequest::for_k(k)
                .with_replicates(replicates)
                .with_seed(seed)
                .with_baseline(false);
            let mut single_engine = AnalysisEngine::from_dataset(dataset.clone()).unwrap();
            let single = single_engine.run(&single_request).unwrap();
            prop_assert_eq!(&batch.runs[i].report, &single.runs[0].report);
        }

        // Rerunning the batch on the warm engine changes nothing but provenance.
        let warm = batch_engine.run(&request).unwrap();
        prop_assert_eq!(warm.cache_hits(), 2);
        for (w, c) in warm.runs.iter().zip(&batch.runs) {
            prop_assert_eq!(&w.report, &c.report);
        }
    }
}

//! The execution-layer contract, end to end: for a fixed seed, Algorithm 1
//! produces **bit-identical** `ThresholdEstimate`s under every execution policy
//! — sequential, and rayon pools of 1, 2 and 8 workers — because each replicate
//! draws exclusively from its `(seed, index)`-addressed RNG substream.
//!
//! The dataset backend is a second axis of the same contract: the CSR and
//! bitmap replicate paths consume those substreams identically, so every
//! `(policy, backend)` combination must agree bit for bit.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim_core::montecarlo::FindPoissonThreshold;
use sigfim_core::{DatasetBackend, ExecutionPolicy, SignificanceAnalyzer, ThresholdEstimate};
use sigfim_datasets::random::{
    BernoulliModel, PlantedConfig, PlantedModel, PlantedPattern, SwapRandomizationModel,
};

fn estimate_with(policy: ExecutionPolicy, backend: DatasetBackend, seed: u64) -> ThresholdEstimate {
    let model = BernoulliModel::new(400, vec![0.12; 14]).unwrap();
    let algo = FindPoissonThreshold {
        replicates: 40,
        policy,
        backend,
        ..FindPoissonThreshold::new(2)
    };
    let mut rng = StdRng::seed_from_u64(seed);
    algo.run(&model, &mut rng).unwrap()
}

#[test]
fn threshold_estimate_is_bit_identical_at_1_2_and_8_threads() {
    let reference = estimate_with(ExecutionPolicy::Sequential, DatasetBackend::Auto, 42);
    for backend in DatasetBackend::ALL {
        for threads in [1, 2, 8] {
            let parallel = estimate_with(ExecutionPolicy::rayon(threads), backend, 42);
            // Full structural equality: curve (b1/b2/λ at every support), s_min,
            // s_tilde and pool size — not just the headline threshold.
            assert_eq!(
                parallel,
                reference,
                "rayon({threads})/{} diverged from sequential",
                backend.name()
            );
            assert_eq!(parallel.curve, reference.curve);
            assert_eq!(parallel.s_min, reference.s_min);
            assert_eq!(parallel.pool_size, reference.pool_size);
        }
        // The sequential runs of every backend agree with each other too.
        assert_eq!(
            estimate_with(ExecutionPolicy::Sequential, backend, 42),
            reference,
            "sequential/{} diverged",
            backend.name()
        );
    }
}

#[test]
fn different_seeds_still_differ() {
    // Guards against the substream derivation collapsing to a constant.
    let a = estimate_with(ExecutionPolicy::rayon(4), DatasetBackend::Auto, 1);
    let b = estimate_with(ExecutionPolicy::rayon(4), DatasetBackend::Auto, 2);
    assert!(
        a.curve != b.curve || a.pool_size != b.pool_size || a.s_min != b.s_min,
        "independent seeds produced identical Monte-Carlo observations"
    );
}

#[test]
fn full_analysis_reports_match_across_policies() {
    // The whole pipeline (Algorithm 1 + Procedures 1 and 2) through the
    // high-level analyzer: reports must agree field for field.
    let background = BernoulliModel::new(300, vec![0.05; 20]).unwrap();
    let model = PlantedModel::new(PlantedConfig {
        background,
        patterns: vec![PlantedPattern::new(vec![2, 5], 60).unwrap()],
    })
    .unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let dataset = model.sample(&mut rng);

    let analyze = |policy: ExecutionPolicy| {
        SignificanceAnalyzer::new(2)
            .with_replicates(32)
            .with_seed(17)
            .with_execution_policy(policy)
            .analyze(&dataset)
            .unwrap()
    };
    let reference = analyze(ExecutionPolicy::Sequential);
    for threads in [2, 8] {
        let report = analyze(ExecutionPolicy::rayon(threads));
        assert_eq!(report, reference, "analysis diverged at {threads} threads");
    }
    // with_threads(1) is the documented sequential shorthand.
    let via_threads = SignificanceAnalyzer::new(2)
        .with_replicates(32)
        .with_seed(17)
        .with_threads(1)
        .analyze(&dataset)
        .unwrap();
    assert_eq!(via_threads, reference);
}

#[test]
fn swap_null_model_is_policy_independent_too() {
    // The swap-randomization null walks a long RNG-driven Markov chain per
    // replicate — the most scheduling-sensitive workload if substreams leaked.
    let mut rng = StdRng::seed_from_u64(31);
    let background = BernoulliModel::new(150, vec![0.15; 12]).unwrap();
    let dataset = background.sample(&mut rng);
    let model = SwapRandomizationModel::new(dataset, 3.0).unwrap();

    let run = |policy: ExecutionPolicy| {
        let algo = FindPoissonThreshold {
            replicates: 24,
            policy,
            ..FindPoissonThreshold::new(2)
        };
        let mut rng = StdRng::seed_from_u64(5);
        algo.run(&model, &mut rng).unwrap()
    };
    assert_eq!(
        run(ExecutionPolicy::rayon(8)),
        run(ExecutionPolicy::Sequential)
    );
}

//! Shim-vs-engine parity contract.
//!
//! The `SignificanceAnalyzer` survives the engine redesign as a thin shim
//! delegating to a single-request [`AnalysisEngine`]. These tests prove the
//! redesign changed nothing observable:
//!
//! * the shim's output is **bit-identical** to the pre-redesign pipeline,
//!   reconstructed here from the unchanged building blocks (Algorithm 1 run
//!   with a fresh seed-derived RNG, Procedure 2, Procedure 1) exactly as the
//!   old `analyze_with_model` wired them;
//! * a multi-`k` engine sweep equals `k`-by-`k` single requests; and
//! * the `ThresholdCache` makes Algorithm 1's replicate loop run **at most
//!   once per distinct key** — asserted both via the response's cache-hit
//!   metadata and by counting actual null-model sampling calls.

use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim_core::engine::{AnalysisEngine, AnalysisRequest, CacheStatus};
use sigfim_core::montecarlo::FindPoissonThreshold;
use sigfim_core::procedure1::Procedure1;
use sigfim_core::procedure2::Procedure2;
use sigfim_core::report::{AnalysisParameters, AnalysisReport};
use sigfim_core::{DatasetBackend, SignificanceAnalyzer};
use sigfim_datasets::bitmap::BitmapDataset;
use sigfim_datasets::random::{
    BernoulliModel, NullModel, PlantedConfig, PlantedModel, PlantedPattern,
};
use sigfim_datasets::summary::DatasetSummary;
use sigfim_datasets::transaction::TransactionDataset;
use sigfim_mining::miner::MinerKind;

fn planted_dataset(seed: u64) -> TransactionDataset {
    let background = BernoulliModel::new(380, vec![0.06; 18]).unwrap();
    let model = PlantedModel::new(PlantedConfig {
        background,
        patterns: vec![
            PlantedPattern::new(vec![1, 7], 75).unwrap(),
            PlantedPattern::new(vec![4, 10, 15], 55).unwrap(),
        ],
    })
    .unwrap();
    model.sample(&mut StdRng::seed_from_u64(seed))
}

/// The pre-redesign `SignificanceAnalyzer::analyze_with_model` pipeline,
/// reproduced verbatim from the unchanged stage types: this is the reference
/// the shim (and therefore the engine) must match bit for bit.
fn legacy_pipeline<M: NullModel + Sync>(
    dataset: &TransactionDataset,
    model: &M,
    k: usize,
    replicates: usize,
    seed: u64,
    backend: DatasetBackend,
    baseline: bool,
) -> AnalysisReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let algorithm1 = FindPoissonThreshold {
        k,
        epsilon: 0.01,
        replicates,
        policy: sigfim_core::ExecutionPolicy::default(),
        backend,
        max_restarts: 4,
        sampler: sigfim_datasets::SamplerMode::Auto,
    };
    let threshold = algorithm1.run(model, &mut rng).unwrap();
    let lambda = threshold.lambda_estimator();
    let procedure2 = Procedure2 {
        k,
        alpha: 0.05,
        beta: 0.05,
        miner: MinerKind::Apriori,
        backend,
        ..Procedure2::new(k)
    }
    .run(dataset, threshold.s_min, &lambda)
    .unwrap();
    let procedure1 = baseline.then(|| {
        Procedure1 {
            k,
            beta: 0.05,
            miner: MinerKind::Apriori,
            ..Procedure1::new(k)
        }
        .run(dataset, threshold.s_min)
        .unwrap()
    });
    AnalysisReport {
        parameters: AnalysisParameters {
            k,
            alpha: 0.05,
            beta: 0.05,
            epsilon: 0.01,
            replicates,
            seed,
            miner: MinerKind::Apriori,
            backend,
        },
        dataset: DatasetSummary::from_dataset(dataset),
        threshold,
        procedure2,
        procedure1,
    }
}

#[test]
fn shim_and_engine_match_the_legacy_pipeline_bit_for_bit() {
    let dataset = planted_dataset(11);
    let model = BernoulliModel::from_dataset(&dataset);
    for backend in DatasetBackend::ALL {
        for baseline in [true, false] {
            let legacy = legacy_pipeline(&dataset, &model, 2, 20, 9, backend, baseline);

            let shim = SignificanceAnalyzer::new(2)
                .with_replicates(20)
                .with_seed(9)
                .with_backend(backend)
                .with_procedure1(baseline)
                .analyze(&dataset)
                .unwrap();
            assert_eq!(
                shim, legacy,
                "shim diverged from the pre-redesign pipeline (backend {backend}, baseline {baseline})"
            );

            let mut engine = AnalysisEngine::from_dataset(dataset.clone())
                .unwrap()
                .with_backend(backend);
            let request = AnalysisRequest::for_k(2)
                .with_replicates(20)
                .with_seed(9)
                .with_baseline(baseline);
            let response = engine.run(&request).unwrap();
            assert_eq!(
                response.runs[0].report, legacy,
                "engine diverged from the pre-redesign pipeline (backend {backend}, baseline {baseline})"
            );
        }
    }
}

#[test]
fn multi_k_sweep_equals_single_requests() {
    let dataset = planted_dataset(29);
    let sweep_request = AnalysisRequest::for_k_range(2..=4)
        .with_replicates(16)
        .with_seed(3);
    let mut sweep_engine = AnalysisEngine::from_dataset(dataset.clone()).unwrap();
    let sweep = sweep_engine.run(&sweep_request).unwrap();
    assert_eq!(sweep.runs.len(), 3);

    for (i, k) in (2..=4).enumerate() {
        // A fresh engine per single request: no shared state with the sweep.
        let mut single_engine = AnalysisEngine::from_dataset(dataset.clone()).unwrap();
        let single = single_engine
            .run(&AnalysisRequest::for_k(k).with_replicates(16).with_seed(3))
            .unwrap();
        assert_eq!(
            sweep.runs[i].report, single.runs[0].report,
            "sweep entry for k = {k} diverged from the single-k request"
        );
        // ... and from the one-shot shim.
        let shim = SignificanceAnalyzer::new(k)
            .with_replicates(16)
            .with_seed(3)
            .analyze(&dataset)
            .unwrap();
        assert_eq!(sweep.runs[i].report, shim);
    }
}

#[test]
fn par_eclat_engine_runs_are_bit_identical_to_sequential_eclat() {
    // The engine-side acceptance contract for the subtree-parallel miner: the
    // full `SupportProfile`/`Q_{k,s}` trace (every grid point, every p-value)
    // and the significant family are bit-identical whether the profile and
    // final mining pass ran under the sequential bitset Eclat or the parallel
    // one at any worker count — on every backend. Only `parameters.miner`
    // may differ between the reports.
    let dataset = planted_dataset(53);
    for backend in DatasetBackend::ALL {
        let reference = {
            let mut engine = AnalysisEngine::from_dataset(dataset.clone())
                .unwrap()
                .with_backend(backend);
            let request = AnalysisRequest::for_k_range(2..=3)
                .with_replicates(16)
                .with_seed(7)
                .with_miner(MinerKind::Eclat)
                .with_baseline(false);
            engine.run(&request).unwrap()
        };
        for threads in [1usize, 2, 8] {
            let mut engine = AnalysisEngine::from_dataset(dataset.clone())
                .unwrap()
                .with_backend(backend)
                .with_threads(threads);
            let request = AnalysisRequest::for_k_range(2..=3)
                .with_replicates(16)
                .with_seed(7)
                .with_miner(MinerKind::ParEclat)
                .with_baseline(false);
            let parallel = engine.run(&request).unwrap();
            for (reference_run, parallel_run) in reference.runs.iter().zip(&parallel.runs) {
                assert_eq!(
                    parallel_run.report.procedure2, reference_run.report.procedure2,
                    "Q_{{k,s}} trace diverged (backend {backend}, {threads} thread(s))"
                );
                assert_eq!(
                    parallel_run.report.threshold, reference_run.report.threshold,
                    "threshold estimate diverged (backend {backend}, {threads} thread(s))"
                );
            }

            // A warm rerun serves the floor profile from the engine's
            // (k, s_min, miner) cache; the cached profile must reproduce the
            // cold run bit for bit.
            let warm = engine.run(&request).unwrap();
            let profile_stats = engine.profile_cache_stats();
            assert!(
                profile_stats.hits > 0,
                "warm rerun should hit the profile cache (backend {backend})"
            );
            for (cold_run, warm_run) in parallel.runs.iter().zip(&warm.runs) {
                assert_eq!(warm_run.report, cold_run.report);
            }
        }
    }
}

/// A null model that counts how many datasets it is asked to generate — a
/// direct measurement of whether Algorithm 1's replicate loop ran.
struct CountingModel {
    inner: BernoulliModel,
    samples: AtomicUsize,
}

impl CountingModel {
    fn new(inner: BernoulliModel) -> Self {
        CountingModel {
            inner,
            samples: AtomicUsize::new(0),
        }
    }

    fn samples(&self) -> usize {
        self.samples.load(Ordering::SeqCst)
    }
}

impl NullModel for CountingModel {
    fn num_items(&self) -> usize {
        NullModel::num_items(&self.inner)
    }

    fn num_transactions(&self) -> usize {
        NullModel::num_transactions(&self.inner)
    }

    fn item_frequencies(&self) -> Vec<f64> {
        NullModel::item_frequencies(&self.inner)
    }

    fn sample_dataset<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> TransactionDataset {
        self.samples.fetch_add(1, Ordering::SeqCst);
        self.inner.sample_dataset(rng)
    }

    fn sample_into_bitmap<R: rand::Rng + ?Sized>(&self, rng: &mut R, out: &mut BitmapDataset) {
        self.samples.fetch_add(1, Ordering::SeqCst);
        NullModel::sample_into_bitmap(&self.inner, rng, out);
    }

    fn fingerprint(&self) -> u64 {
        self.inner.fingerprint()
    }
}

#[test]
fn sweep_runs_the_replicate_loop_at_most_once_per_key() {
    // The acceptance contract: a k = 2..5 sweep performs Algorithm 1's
    // replicate loop at most once per distinct (fingerprint, k, eps, delta,
    // seed, backend) key — asserted via cache-hit metadata AND by counting the
    // actual null-model sampling calls.
    let dataset = planted_dataset(17);
    let model = CountingModel::new(BernoulliModel::from_dataset(&dataset));
    let replicates = 10usize;
    let mut engine = AnalysisEngine::with_model(dataset, &model).unwrap();
    let request = AnalysisRequest::for_k_range(2..=5)
        .with_replicates(replicates)
        .with_seed(21)
        .with_baseline(false);

    let cold = engine.run(&request).unwrap();
    assert_eq!(cold.cache_hits(), 0);
    assert!(cold
        .runs
        .iter()
        .all(|run| run.threshold_cache == CacheStatus::Miss));
    let cold_samples = model.samples();
    // Each of the 4 distinct keys ran the loop at least once (restarts may
    // legitimately repeat the Delta batch within one Algorithm 1 run).
    assert!(
        cold_samples >= 4 * replicates,
        "expected at least {} samples, saw {cold_samples}",
        4 * replicates
    );

    // Overlapping sweep: k = 2..=5 is warm, k = 6 is the only new key.
    let wider = AnalysisRequest::for_k_range(2..=6)
        .with_replicates(replicates)
        .with_seed(21)
        .with_baseline(false);
    let warm = engine.run(&wider).unwrap();
    assert_eq!(warm.cache_hits(), 4);
    assert_eq!(warm.runs[4].threshold_cache, CacheStatus::Miss);
    let after_warm = model.samples();
    assert!(
        after_warm > cold_samples,
        "the new k = 6 key must have sampled"
    );

    // Fully warm rerun of the whole sweep: zero additional sampling.
    let rerun = engine.run(&wider).unwrap();
    assert_eq!(rerun.cache_hits(), 5);
    assert_eq!(
        model.samples(),
        after_warm,
        "a fully warm sweep must not run the replicate loop at all"
    );
    // The rerun's reports are identical; only the provenance flipped to Hit.
    assert_eq!(
        rerun.reports().collect::<Vec<_>>(),
        warm.reports().collect::<Vec<_>>()
    );
    let stats = engine.cache_stats();
    assert_eq!(stats.entries, 5);
    assert_eq!(stats.hits, 9);
    assert_eq!(stats.misses, 5);
}

#[test]
fn epsilon_tightened_requery_runs_zero_new_replicates() {
    // The zero-waste contract of the observation store: re-querying the same
    // (model, k, Δ, seed) at a *different* ε misses the threshold cache (ε is
    // part of its key) but re-derives the same round-1 batch key from the
    // seed, so every replicate observation is served from the store and the
    // null model is never sampled again.
    let dataset = planted_dataset(63);
    let model = CountingModel::new(BernoulliModel::from_dataset(&dataset));
    let mut engine = AnalysisEngine::with_model(dataset, &model).unwrap();
    let replicates = 12usize;
    let loose = AnalysisRequest::for_k(2)
        .with_replicates(replicates)
        .with_seed(31)
        .with_epsilon(0.05)
        .with_baseline(false);

    let cold = engine.thresholds(&loose).unwrap();
    assert_eq!(cold[0].threshold_cache, CacheStatus::Miss);
    let cold_samples = model.samples();
    assert!(cold_samples >= replicates);

    // Tighter ε: a threshold-cache miss that must not re-sample anything.
    let tight = AnalysisRequest::for_k(2)
        .with_replicates(replicates)
        .with_seed(31)
        .with_epsilon(0.01)
        .with_baseline(false);
    let requery = engine.thresholds(&tight).unwrap();
    assert_eq!(requery[0].threshold_cache, CacheStatus::Miss);
    assert_eq!(
        model.samples(),
        cold_samples,
        "an ε-tightened re-query must be served entirely from the observation store"
    );
    assert_eq!(requery[0].estimate.epsilon, 0.01);

    // And the store-served estimate equals an honest cold recomputation.
    let fresh_model = CountingModel::new(model.inner.clone());
    let mut fresh =
        AnalysisEngine::with_model(engine.dataset().unwrap().clone(), &fresh_model).unwrap();
    let recomputed = fresh.thresholds(&tight).unwrap();
    assert_eq!(recomputed[0].estimate, requery[0].estimate);
}

#[test]
fn warm_cache_hit_returns_the_identical_estimate_without_consuming_rng() {
    let dataset = planted_dataset(41);
    let model = CountingModel::new(BernoulliModel::from_dataset(&dataset));
    let mut engine = AnalysisEngine::with_model(dataset, &model).unwrap();
    let request = AnalysisRequest::for_k(2)
        .with_replicates(14)
        .with_seed(77)
        .with_baseline(false);

    let cold = engine.thresholds(&request).unwrap();
    assert_eq!(cold[0].threshold_cache, CacheStatus::Miss);
    let cold_samples = model.samples();
    assert!(cold_samples >= 14);

    // The warm hit: the identical ThresholdEstimate comes back while the model
    // (and therefore the seed-derived RNG that drives it) is never touched.
    let warm = engine.thresholds(&request).unwrap();
    assert_eq!(warm[0].threshold_cache, CacheStatus::Hit);
    assert_eq!(warm[0].estimate, cold[0].estimate);
    assert_eq!(
        model.samples(),
        cold_samples,
        "a cache hit must not consume any RNG state"
    );

    // And the cached estimate equals an honest recomputation on a cold engine.
    let fresh_model = CountingModel::new(model.inner.clone());
    let mut fresh =
        AnalysisEngine::with_model(engine.dataset().unwrap().clone(), &fresh_model).unwrap();
    let recomputed = fresh.thresholds(&request).unwrap();
    assert_eq!(recomputed[0].estimate, cold[0].estimate);
}

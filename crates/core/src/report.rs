//! Result and report types produced by the high-level analyzer.
//!
//! Everything is `serde`-serializable so experiments can be archived and compared,
//! and [`AnalysisReport`] implements [`std::fmt::Display`] with a compact
//! human-readable rendering that mirrors the rows of the paper's Tables 3 and 5.

use std::fmt;

use serde::{Deserialize, Serialize};
use sigfim_datasets::bitmap::DatasetBackend;
use sigfim_datasets::summary::DatasetSummary;
use sigfim_mining::miner::MinerKind;

use crate::montecarlo::ThresholdEstimate;
use crate::procedure1::Procedure1Result;
use crate::procedure2::Procedure2Result;

/// The parameters an analysis was run with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalysisParameters {
    /// Itemset size `k`.
    pub k: usize,
    /// Confidence budget `α`.
    pub alpha: f64,
    /// FDR budget `β`.
    pub beta: f64,
    /// Chen–Stein variation-distance budget `ε`.
    pub epsilon: f64,
    /// Number of Monte-Carlo replicates Δ.
    pub replicates: usize,
    /// Random seed.
    pub seed: u64,
    /// Mining algorithm.
    pub miner: MinerKind,
    /// Physical dataset backend ({auto, csr, bitmap}).
    pub backend: DatasetBackend,
}

/// The full outcome of [`crate::SignificanceAnalyzer::analyze`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// The parameters the analysis was run with.
    pub parameters: AnalysisParameters,
    /// Summary statistics of the analyzed dataset (Table 1 columns).
    pub dataset: DatasetSummary,
    /// The Algorithm 1 output: `ŝ_min`, the empirical Chen–Stein curve and λ table.
    pub threshold: ThresholdEstimate,
    /// The Procedure 2 output: `s*`, the per-threshold test trace, `F_k(s*)`.
    pub procedure2: Procedure2Result,
    /// The Procedure 1 baseline output, when it was requested.
    pub procedure1: Option<Procedure1Result>,
}

impl AnalysisReport {
    /// The headline numbers of a Table 3 row: `(s*, Q_{k,s*}, λ(s*))`.
    /// `s* = None` encodes the paper's `∞`.
    pub fn table3_row(&self) -> (Option<u64>, u64, f64) {
        match self.procedure2.s_star {
            Some(s_star) => (
                Some(s_star),
                self.procedure2.num_significant() as u64,
                self.procedure2.lambda_at_s_star().unwrap_or(0.0),
            ),
            None => (None, 0, 0.0),
        }
    }

    /// The headline numbers of a Table 5 row: `(|R|, r)` where `|R|` is the number
    /// of discoveries of the Procedure 1 baseline and `r = Q_{k,s*} / |R|` (0 when
    /// Procedure 2 found no threshold, following the paper's convention).
    pub fn table5_row(&self) -> Option<(usize, f64)> {
        let p1 = self.procedure1.as_ref()?;
        let r_size = p1.num_significant();
        let ratio = if self.procedure2.s_star.is_none() {
            0.0
        } else if r_size == 0 {
            f64::INFINITY
        } else {
            self.procedure2.num_significant() as f64 / r_size as f64
        };
        Some((r_size, ratio))
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = &self.parameters;
        writeln!(f, "significant frequent itemset analysis (k = {})", p.k)?;
        writeln!(
            f,
            "  dataset: {} transactions, {} items, avg length {:.2}",
            self.dataset.num_transactions, self.dataset.num_items, self.dataset.avg_transaction_len
        )?;
        writeln!(
            f,
            "  parameters: alpha = {}, beta = {}, epsilon = {}, replicates = {}",
            p.alpha, p.beta, p.epsilon, p.replicates
        )?;
        writeln!(
            f,
            "  Poisson threshold (Algorithm 1): s_min = {} (pool of {} itemsets, floor {})",
            self.threshold.s_min, self.threshold.pool_size, self.threshold.s_tilde
        )?;
        match self.procedure2.s_star {
            Some(s_star) => {
                writeln!(
                    f,
                    "  Procedure 2: s* = {s_star}, Q_{{k,s*}} = {}, lambda(s*) = {:.4}",
                    self.procedure2.num_significant(),
                    self.procedure2.lambda_at_s_star().unwrap_or(0.0)
                )?;
            }
            None => {
                writeln!(
                    f,
                    "  Procedure 2: s* = infinity (no significant deviation from the null model)"
                )?;
            }
        }
        for test in &self.procedure2.tests {
            writeln!(
                f,
                "    s = {:>8}  Q = {:>8}  lambda = {:>12.4}  p = {:>10.3e}  {}",
                test.s,
                test.q,
                test.lambda,
                test.p_value,
                if test.rejected { "REJECT" } else { "accept" }
            )?;
        }
        if let Some(p1) = &self.procedure1 {
            writeln!(
                f,
                "  Procedure 1 ({}): |R| = {} of {} tested at s_min = {}",
                p1.correction.name(),
                p1.num_significant(),
                p1.num_tested(),
                p1.s_min
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::CurvePoint;
    use crate::procedure1::{CorrectionMethod, Procedure1Result, TestedItemset};
    use crate::procedure2::{Procedure2Result, ThresholdTest};

    fn sample_report(s_star: Option<u64>, with_p1: bool) -> AnalysisReport {
        let tests = vec![ThresholdTest {
            s: 10,
            q: 5,
            lambda: 0.2,
            p_value: 1e-6,
            alpha_i: 0.025,
            beta_i: 40.0,
            poisson_reject: true,
            magnitude_reject: true,
            rejected: s_star.is_some(),
        }];
        let significant = if s_star.is_some() {
            vec![
                sigfim_mining::ItemsetSupport::new(vec![1, 2], 15),
                sigfim_mining::ItemsetSupport::new(vec![3, 4], 12),
            ]
        } else {
            Vec::new()
        };
        AnalysisReport {
            parameters: AnalysisParameters {
                k: 2,
                alpha: 0.05,
                beta: 0.05,
                epsilon: 0.01,
                replicates: 16,
                seed: 1,
                miner: MinerKind::Apriori,
                backend: DatasetBackend::Auto,
            },
            dataset: DatasetSummary {
                num_items: 20,
                num_active_items: 18,
                num_transactions: 100,
                avg_transaction_len: 3.5,
                min_frequency: Some(0.01),
                max_frequency: Some(0.4),
                num_entries: 350,
            },
            threshold: ThresholdEstimate {
                k: 2,
                epsilon: 0.01,
                replicates: 16,
                s_tilde: 4,
                s_min: 10,
                pool_size: 7,
                curve: vec![CurvePoint {
                    s: 10,
                    b1: 0.001,
                    b2: 0.0005,
                    lambda: 0.2,
                }],
            },
            procedure2: Procedure2Result {
                k: 2,
                alpha: 0.05,
                beta: 0.05,
                s_min: 10,
                s_max: 40,
                s_star,
                tests,
                significant,
            },
            procedure1: with_p1.then(|| Procedure1Result {
                k: 2,
                beta: 0.05,
                s_min: 10,
                hypotheses: 190.0,
                correction: CorrectionMethod::BenjaminiYekutieli,
                p_value_cutoff: Some(1e-5),
                itemsets: vec![TestedItemset {
                    items: vec![1, 2],
                    support: 15,
                    expected_support: 0.5,
                    p_value: 1e-9,
                    significant: true,
                }],
            }),
        }
    }

    #[test]
    fn table3_row_extraction() {
        let report = sample_report(Some(10), true);
        let (s_star, q, lambda) = report.table3_row();
        assert_eq!(s_star, Some(10));
        assert_eq!(q, 2);
        assert!((lambda - 0.2).abs() < 1e-12);

        let report = sample_report(None, true);
        assert_eq!(report.table3_row(), (None, 0, 0.0));
    }

    #[test]
    fn table5_row_extraction() {
        let report = sample_report(Some(10), true);
        let (r_size, ratio) = report.table5_row().unwrap();
        assert_eq!(r_size, 1);
        assert!((ratio - 2.0).abs() < 1e-12);

        // s* = infinity => ratio 0 by the paper's convention.
        let report = sample_report(None, true);
        assert_eq!(report.table5_row().unwrap(), (1, 0.0));

        // No Procedure 1 run => no Table 5 row.
        let report = sample_report(Some(10), false);
        assert!(report.table5_row().is_none());
    }

    #[test]
    fn display_contains_the_key_facts() {
        let text = sample_report(Some(10), true).to_string();
        assert!(text.contains("s* = 10"));
        assert!(text.contains("s_min = 10"));
        assert!(text.contains("REJECT"));
        assert!(text.contains("Benjamini-Yekutieli"));

        let text = sample_report(None, false).to_string();
        assert!(text.contains("infinity"));
        assert!(!text.contains("Procedure 1"));
    }

    #[test]
    fn report_round_trips_through_json() {
        for (s_star, with_p1) in [(Some(10), true), (None, false)] {
            let report = sample_report(s_star, with_p1);
            let json = serde_json::to_string(&report).unwrap();
            let parsed: AnalysisReport = serde_json::from_str(&json).unwrap();
            assert_eq!(parsed, report);
            // Pretty output parses back to the same report too.
            let pretty = serde_json::to_string_pretty(&report).unwrap();
            assert_eq!(
                serde_json::from_str::<AnalysisReport>(&pretty).unwrap(),
                report
            );
        }
    }

    #[test]
    fn report_json_shape_is_archivable() {
        // The archived document exposes the fields experiments grep for, with
        // enum configuration values rendered as their variant names.
        let json = serde_json::to_string(&sample_report(Some(10), true)).unwrap();
        for needle in [
            "\"parameters\"",
            "\"miner\":\"Apriori\"",
            "\"correction\":\"BenjaminiYekutieli\"",
            "\"s_min\":10",
            "\"s_star\":10",
            "\"curve\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // s* = infinity archives as null.
        let json = serde_json::to_string(&sample_report(None, true)).unwrap();
        assert!(json.contains("\"s_star\":null"));
    }
}

//! # sigfim-core
//!
//! The core of the `sigfim` workspace: an implementation of
//! *"An Efficient Rigorous Approach for Identifying Statistically Significant
//! Frequent Itemsets"* (Kirsch, Mitzenmacher, Pietracaprina, Pucci, Upfal, Vandin;
//! ACM PODS 2009).
//!
//! Given a transactional dataset `D` and an itemset size `k`, the paper's pipeline —
//! reproduced module by module here — is:
//!
//! 1. **Chen–Stein Poisson approximation** ([`chen_stein`]): above a minimum support
//!    `s_min`, the number `Q̂_{k,s}` of k-itemsets with support ≥ `s` in a *random*
//!    dataset (same `t`, same item frequencies, items placed independently) is
//!    approximately Poisson. The module provides the exact bound terms `b1`, `b2`
//!    and the closed-form bounds of Theorems 2 and 3.
//! 2. **Algorithm 1 — FindPoissonThreshold** ([`montecarlo`]): a Monte-Carlo
//!    estimator of `s_min` (and of the Poisson means `λ(s)`) from Δ random datasets,
//!    with the sample-size guarantee of Theorem 4.
//! 3. **Procedure 1** ([`procedure1`]): the baseline — per-itemset Binomial p-values
//!    over `F_k(s_min)` corrected with Benjamini–Yekutieli (Theorem 5), FDR ≤ β.
//! 4. **Procedure 2** ([`procedure2`]): the paper's main contribution — a search for
//!    a support threshold `s* ≥ s_min` such that, with confidence 1 − α, all
//!    k-itemsets with support ≥ `s*` can be flagged significant with FDR ≤ β
//!    (Theorem 6).
//! 5. **High-level API** ([`engine`], [`analyzer`], [`report`]): the
//!    session-oriented [`AnalysisEngine`] — typed [`engine::AnalysisRequest`]s,
//!    multi-`k` batches over views built once, a [`engine::ThresholdCache`] of
//!    Algorithm 1 results, progress observation — plus the one-shot
//!    [`SignificanceAnalyzer`] compatibility shim delegating to it;
//!    [`validation`] evaluates empirical FDR/power against planted ground truth
//!    and checks the Poisson approximation.
//!
//! ## Quick example
//!
//! ```
//! use sigfim_core::analyzer::SignificanceAnalyzer;
//! use sigfim_datasets::random::{PlantedConfig, PlantedModel, PlantedPattern, BernoulliModel};
//! use rand::SeedableRng;
//!
//! // A small synthetic dataset: 400 transactions over 40 items, with one planted
//! // pair occurring together in 60 extra transactions.
//! let background = BernoulliModel::new(400, vec![0.05; 40]).unwrap();
//! let planted = PlantedModel::new(PlantedConfig {
//!     background,
//!     patterns: vec![PlantedPattern::new(vec![3, 7], 60).unwrap()],
//! }).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let dataset = planted.sample(&mut rng);
//!
//! let report = SignificanceAnalyzer::new(2)
//!     .with_replicates(40)
//!     .with_seed(7)
//!     .analyze(&dataset)
//!     .unwrap();
//! // The planted pair is recovered as significant at some threshold s*.
//! assert!(report.procedure2.s_star.is_some());
//! assert!(report
//!     .procedure2
//!     .significant
//!     .iter()
//!     .any(|i| i.items == vec![3, 7]));
//! ```

pub mod analyzer;
pub mod chen_stein;
pub mod engine;
pub mod lambda;
pub mod montecarlo;
pub mod procedure1;
pub mod procedure2;
pub mod progress;
pub mod report;
pub mod validation;

pub use analyzer::SignificanceAnalyzer;
pub use chen_stein::ExactChenStein;
pub use engine::{
    AnalysisEngine, AnalysisRequest, AnalysisResponse, AnalysisStage, CacheStats, CacheStatus,
    DynAnalysisEngine, KAnalysis, LambdaMode, NoProgress, ProgressObserver, ThresholdCache,
    ThresholdRecord, ThresholdRun, ThresholdSink, ThresholdStore,
};
pub use lambda::{ExactLambda, LambdaEstimator};
pub use montecarlo::{
    replicate_stats, FindPoissonThreshold, ObservationStore, ReplicateStats, ThresholdEstimate,
};
pub use procedure1::{Procedure1, Procedure1Result};
pub use procedure2::{Procedure2, Procedure2Result};
pub use report::AnalysisReport;
pub use sigfim_datasets::bitmap::DatasetBackend;
pub use sigfim_exec::ExecutionPolicy;

use std::fmt;

/// Errors produced by the significance-mining pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// An invalid parameter was supplied to a procedure.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// A problem instance is too large for the requested exact computation.
    ProblemTooLarge {
        /// What was attempted.
        what: &'static str,
        /// The size that was requested.
        size: u64,
        /// The enforced limit.
        limit: u64,
    },
    /// An error bubbled up from the statistics substrate.
    Stats(sigfim_stats::StatsError),
    /// An error bubbled up from the dataset substrate.
    Dataset(sigfim_datasets::DatasetError),
    /// An error bubbled up from the mining substrate.
    Mining(sigfim_mining::MiningError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            CoreError::ProblemTooLarge { what, size, limit } => {
                write!(f, "{what} of size {size} exceeds the limit of {limit}")
            }
            CoreError::Stats(e) => write!(f, "statistics error: {e}"),
            CoreError::Dataset(e) => write!(f, "dataset error: {e}"),
            CoreError::Mining(e) => write!(f, "mining error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Stats(e) => Some(e),
            CoreError::Dataset(e) => Some(e),
            CoreError::Mining(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sigfim_stats::StatsError> for CoreError {
    fn from(e: sigfim_stats::StatsError) -> Self {
        CoreError::Stats(e)
    }
}

impl From<sigfim_datasets::DatasetError> for CoreError {
    fn from(e: sigfim_datasets::DatasetError) -> Self {
        CoreError::Dataset(e)
    }
}

impl From<sigfim_mining::MiningError> for CoreError {
    fn from(e: sigfim_mining::MiningError) -> Self {
        CoreError::Mining(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = CoreError::InvalidParameter {
            name: "alpha",
            reason: "must be in (0,1)".into(),
        };
        assert!(e.to_string().contains("alpha"));
        assert!(e.source().is_none());

        let e: CoreError = sigfim_stats::StatsError::EmptyInput("p-values").into();
        assert!(e.to_string().contains("p-values"));
        assert!(e.source().is_some());

        let e: CoreError = sigfim_mining::MiningError::InvalidParameter {
            name: "k",
            reason: "zero".into(),
        }
        .into();
        assert!(e.to_string().contains("mining"));

        let e: CoreError = sigfim_datasets::DatasetError::InvalidParameter {
            name: "t",
            reason: "zero".into(),
        }
        .into();
        assert!(e.to_string().contains("dataset"));

        let e = CoreError::ProblemTooLarge {
            what: "itemset universe",
            size: 10,
            limit: 5,
        };
        assert!(e.to_string().contains("10"));
    }
}

//! The session-oriented high-level API: [`AnalysisEngine`].
//!
//! [`crate::SignificanceAnalyzer`] is one-shot: every call re-derives the null
//! model, re-resolves the dataset backend, rebuilds the bitmap view, and runs
//! Algorithm 1 from zero — even when only `k` or `α/β` changed between calls.
//! The paper's own experiments (Tables 2–5) sweep `k` over a fixed dataset,
//! which is exactly the reuse pattern a one-shot API forbids.
//!
//! The engine is the long-lived counterpart. Constructed **once** from a
//! dataset (or an explicit [`NullModel`]), it owns:
//!
//! * the dataset and its null model (with the model's stable
//!   [`NullModel::fingerprint`] computed once),
//! * the resolved [`DatasetBackend`] and, when it resolves to the bitmap, the
//!   [`BitmapDataset`] view **built once** and shared by every Procedure 2 pass,
//! * a [`ThresholdCache`] of Algorithm 1 results keyed by
//!   `(model fingerprint, k, ε, Δ, seed, backend, restart budget)`, so repeated
//!   and overlapping queries skip the Monte-Carlo replicate loop entirely, and
//! * a cache of floor [`SupportProfile`]s keyed by `(k, s_min, miner)`, so a
//!   request that only changes `α`/`β` re-tests without re-mining.
//!
//! Queries are typed values: an [`AnalysisRequest`] (single `k` or a multi-`k`
//! batch) goes in, an [`AnalysisResponse`] (per-`k` [`AnalysisReport`]s plus
//! cache-hit metadata) comes out. A [`ProgressObserver`] hook reports
//! stage-by-stage and replicate-by-replicate progress — the API layer a
//! service front-end sits on.
//!
//! Results are **bit-identical** to the one-shot analyzer for the same
//! parameters: each distinct threshold key is computed with a fresh
//! seed-derived RNG exactly as `SignificanceAnalyzer::analyze` does, so a cache
//! hit returns precisely what a cold run would have produced (enforced by
//! `crates/core/tests/engine_parity.rs`).
//!
//! ```
//! use sigfim_core::engine::{AnalysisEngine, AnalysisRequest};
//! use sigfim_datasets::random::BernoulliModel;
//! use rand::SeedableRng;
//!
//! let model = BernoulliModel::new(300, vec![0.08; 20]).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let dataset = model.sample(&mut rng);
//!
//! let mut engine = AnalysisEngine::from_dataset(dataset).unwrap();
//! let request = AnalysisRequest::for_k_range(2..=3).with_replicates(16);
//! let sweep = engine.run(&request).unwrap();      // runs Algorithm 1 per k
//! let again = engine.run(&request).unwrap();      // served from the cache
//! assert_eq!(sweep.reports().count(), 2);
//! assert_eq!(again.cache_hits(), 2);
//! assert_eq!(
//!     sweep.report_for(2).unwrap().threshold,
//!     again.report_for(2).unwrap().threshold
//! );
//! ```

use std::collections::HashMap;
use std::ops::RangeInclusive;
use std::sync::{Arc, Mutex, MutexGuard};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use sigfim_datasets::bitmap::{BitmapDataset, DatasetBackend, ResolvedBackend};
use sigfim_datasets::random::{BernoulliModel, BoxedNullModel, NullModel, SwapRandomizationModel};
use sigfim_datasets::sampler::{resolve_sampler, ResolvedSampler, SamplerMode};
use sigfim_datasets::sharded::ShardedBitmapDataset;
use sigfim_datasets::spill::{ShardResidency, SpilledShards};
use sigfim_datasets::summary::DatasetSummary;
use sigfim_datasets::transaction::TransactionDataset;
use sigfim_exec::{BatchObserver, ExecutionPolicy};
use sigfim_mining::counting::SupportProfile;
use sigfim_mining::miner::MinerKind;

use crate::montecarlo::{FindPoissonThreshold, ObservationStore, ThresholdEstimate};
use crate::procedure1::Procedure1;
use crate::procedure2::Procedure2;
use crate::report::{AnalysisParameters, AnalysisReport};
use crate::{CoreError, Result};

/// Which λ estimator Procedure 2 consumes from the Algorithm 1 output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LambdaMode {
    /// The paper-faithful Monte-Carlo estimator: λ = 0 beyond the observed
    /// support range ([`ThresholdEstimate::lambda_estimator`]).
    #[default]
    Faithful,
    /// The rule-of-three clamp `λ ≥ 3/Δ`
    /// ([`ThresholdEstimate::conservative_lambda_estimator`]), recommended
    /// when Δ is small (≲ 200).
    Conservative,
}

/// A typed query against an [`AnalysisEngine`]: one `k` or a multi-`k` batch,
/// plus every knob the one-shot analyzer exposed. Construct with
/// [`AnalysisRequest::for_k`] / [`AnalysisRequest::for_k_range`] /
/// [`AnalysisRequest::for_ks`] and refine with the `with_*` builders.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisRequest {
    /// The itemset sizes to analyze, in response order.
    pub ks: Vec<usize>,
    /// Confidence budget `α` of Procedure 2.
    pub alpha: f64,
    /// FDR budget `β` (both procedures).
    pub beta: f64,
    /// Chen–Stein variation-distance budget `ε` of Equation (1).
    pub epsilon: f64,
    /// Number Δ of Monte-Carlo replicates for Algorithm 1.
    pub replicates: usize,
    /// The random seed; together with the other key fields it addresses the
    /// engine's [`ThresholdCache`].
    pub seed: u64,
    /// Mining algorithm for the CSR path of Procedure 1 and the profile pass.
    pub miner: MinerKind,
    /// λ estimator selection.
    pub lambda_mode: LambdaMode,
    /// Whether to run the Procedure 1 (Benjamini–Yekutieli) baseline.
    pub baseline: bool,
    /// Maximum number of floor-halving restarts of Algorithm 1 (lines 7–9 and
    /// 19–22 of the pseudocode). Must be at least 1.
    pub max_restarts: usize,
}

/// The library-wide default seed (shared with [`crate::SignificanceAnalyzer`]
/// and the `sigfim` CLI).
pub const DEFAULT_SEED: u64 = 0x51F1_D009;

impl AnalysisRequest {
    /// A request for a single itemset size, with the paper's experimental
    /// parameters: `α = β = 0.05`, `ε = 0.01`, Δ = 64 replicates, Apriori
    /// mining, the baseline enabled, and the library default seed.
    pub fn for_k(k: usize) -> Self {
        Self::for_ks([k])
    }

    /// A request sweeping an inclusive range of itemset sizes — the shape of
    /// the paper's Tables 2–5, which probe k = 2..=4 against one dataset.
    pub fn for_k_range(ks: RangeInclusive<usize>) -> Self {
        Self::for_ks(ks)
    }

    /// A request for an explicit list of itemset sizes.
    pub fn for_ks<I: IntoIterator<Item = usize>>(ks: I) -> Self {
        AnalysisRequest {
            ks: ks.into_iter().collect(),
            alpha: 0.05,
            beta: 0.05,
            epsilon: 0.01,
            replicates: 64,
            seed: DEFAULT_SEED,
            miner: MinerKind::Apriori,
            lambda_mode: LambdaMode::default(),
            baseline: true,
            max_restarts: 4,
        }
    }

    /// Set the confidence budget `α`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Set the FDR budget `β`.
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Set the Chen–Stein budget `ε`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Set the number Δ of Monte-Carlo replicates.
    pub fn with_replicates(mut self, replicates: usize) -> Self {
        self.replicates = replicates;
        self
    }

    /// Set the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Select the mining algorithm.
    pub fn with_miner(mut self, miner: MinerKind) -> Self {
        self.miner = miner;
        self
    }

    /// Select the λ estimator.
    pub fn with_lambda_mode(mut self, mode: LambdaMode) -> Self {
        self.lambda_mode = mode;
        self
    }

    /// Enable or disable the Procedure 1 baseline.
    pub fn with_baseline(mut self, baseline: bool) -> Self {
        self.baseline = baseline;
        self
    }

    /// Set the restart budget of Algorithm 1 (must be at least 1).
    pub fn with_max_restarts(mut self, max_restarts: usize) -> Self {
        self.max_restarts = max_restarts;
        self
    }

    /// Check the request for structural validity. Statistical parameters
    /// (`α`, `β`, `ε`) are validated by the pipeline stages they feed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when the request has no itemset
    /// sizes, a size of 0, no replicates, or a zero restart budget.
    pub fn validate(&self) -> Result<()> {
        if self.ks.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "ks",
                reason: "the request must name at least one itemset size".into(),
            });
        }
        if self.ks.contains(&0) {
            return Err(CoreError::InvalidParameter {
                name: "k",
                reason: "must be >= 1".into(),
            });
        }
        if self.replicates == 0 {
            return Err(CoreError::InvalidParameter {
                name: "replicates",
                reason: "at least one Monte-Carlo replicate is required".into(),
            });
        }
        if self.max_restarts == 0 {
            return Err(CoreError::InvalidParameter {
                name: "max_restarts",
                reason: "Algorithm 1 needs a restart budget of at least 1 \
                         (0 would disable the floor search of lines 7-9 and 19-22)"
                    .into(),
            });
        }
        Ok(())
    }
}

/// Whether a per-`k` threshold came out of the [`ThresholdCache`] or was
/// computed by running Algorithm 1's replicate loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheStatus {
    /// Served from the cache: the Monte-Carlo loop did not run.
    Hit,
    /// Computed by Algorithm 1 (and inserted into the cache).
    Miss,
}

/// One per-`k` result inside an [`AnalysisResponse`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KAnalysis {
    /// The itemset size this entry covers.
    pub k: usize,
    /// Whether the `ThresholdEstimate` was served from the cache.
    pub threshold_cache: CacheStatus,
    /// The full report, identical to what the one-shot analyzer produces.
    pub report: AnalysisReport,
}

/// The outcome of [`AnalysisEngine::run`]: one [`AnalysisReport`] per requested
/// `k`, in request order, each annotated with its cache provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisResponse {
    /// The per-`k` runs, in request order.
    pub runs: Vec<KAnalysis>,
}

impl AnalysisResponse {
    /// The per-`k` reports, in request order.
    pub fn reports(&self) -> impl Iterator<Item = &AnalysisReport> {
        self.runs.iter().map(|run| &run.report)
    }

    /// The first report for itemset size `k`, if the request covered it.
    pub fn report_for(&self, k: usize) -> Option<&AnalysisReport> {
        self.runs
            .iter()
            .find(|run| run.k == k)
            .map(|run| &run.report)
    }

    /// How many of the per-`k` thresholds were served from the cache.
    pub fn cache_hits(&self) -> usize {
        self.runs
            .iter()
            .filter(|run| run.threshold_cache == CacheStatus::Hit)
            .count()
    }

    /// Consume the response into its reports, in request order.
    pub fn into_reports(self) -> Vec<AnalysisReport> {
        self.runs.into_iter().map(|run| run.report).collect()
    }
}

/// One per-`k` result of a threshold-only query ([`AnalysisEngine::thresholds`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdRun {
    /// The itemset size.
    pub k: usize,
    /// Whether the estimate was served from the cache.
    pub threshold_cache: CacheStatus,
    /// The Algorithm 1 output.
    pub estimate: ThresholdEstimate,
}

/// The pipeline stage a [`ProgressObserver`] event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnalysisStage {
    /// Algorithm 1 — the Monte-Carlo FindPoissonThreshold replicate loop.
    Threshold,
    /// Procedure 2 — profile mining, grid testing, family extraction.
    Procedure2,
    /// Procedure 1 — the Benjamini–Yekutieli baseline.
    Procedure1,
}

/// Progress hook for engine queries. All methods default to no-ops; implement
/// only what the front-end surfaces. Replicate events arrive from worker
/// threads in completion order (monotone `completed`, unordered `index`-free),
/// so implementations must be `Sync` and order-insensitive.
pub trait ProgressObserver: Sync {
    /// Stage `stage` of the `k`-run started.
    fn stage_started(&self, _k: usize, _stage: AnalysisStage) {}

    /// `completed` of `total` Monte-Carlo replicates of the `k`-run have
    /// finished. When Algorithm 1 restarts with a halved floor, the count
    /// starts over at 1 for the new round.
    fn replicate_completed(&self, _k: usize, _completed: usize, _total: usize) {}

    /// The `k`-run's threshold was served from the cache; no replicate events
    /// will follow for it.
    fn threshold_cache_hit(&self, _k: usize) {}

    /// Stage `stage` of the `k`-run finished.
    fn stage_completed(&self, _k: usize, _stage: AnalysisStage) {}
}

/// The do-nothing observer used by the unobserved entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProgress;

impl ProgressObserver for NoProgress {}

/// Forwards per-replicate completion events from the execution layer to a
/// [`ProgressObserver`], stamping them with the `k` they belong to.
struct ReplicateProgress<'a> {
    observer: &'a dyn ProgressObserver,
    k: usize,
}

impl BatchObserver for ReplicateProgress<'_> {
    fn task_completed(&self, _index: usize, completed: usize, total: usize) {
        self.observer.replicate_completed(self.k, completed, total);
    }
}

/// The full identity of one Algorithm 1 run. Two runs with equal keys produce
/// bit-identical [`ThresholdEstimate`]s (each run derives its RNG freshly from
/// the seed, and estimates are invariant under execution policy and physical
/// backend), which is what makes caching by this key sound.
///
/// The tuple extends the `(fingerprint, k, ε, Δ, seed, backend)` key of the
/// service design with the restart budget, which also shapes the estimate.
/// The backend slot stores the *replicate-path* backend
/// ([`replicate_path_backend`]): `Auto` is resolved against the model and
/// `Sharded` rides exactly the scratch-bitmap replicate loop `Bitmap` does,
/// so tenants whose configured names differ but whose replicate loops are
/// the same code path share entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ThresholdKey {
    fingerprint: u64,
    k: usize,
    /// `ε` by exact bit pattern (`f64` is not `Hash`/`Eq`).
    epsilon_bits: u64,
    replicates: usize,
    seed: u64,
    backend: DatasetBackend,
    max_restarts: usize,
    /// The *resolved* replicate sampler ([`resolve_sampler`]): samplers read
    /// different RNG streams, so estimates only replay within one sampler.
    /// Under `gaps` the backend slot is normalized to `Bitmap` — the gaps
    /// sampler always rides the scratch-bitmap path whatever the configured
    /// backend resolves to.
    sampler: ResolvedSampler,
}

/// The portable form of one threshold-cache entry: the full
/// `ThresholdKey` identity flattened into public fields plus the cached
/// [`ThresholdEstimate`]. This is the unit the service tier persists so a
/// restarted process can [`ThresholdStore::preload`] its cache warm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdRecord {
    /// The null model's stable fingerprint.
    pub fingerprint: u64,
    /// The itemset size.
    pub k: usize,
    /// `ε` by exact bit pattern (as in the cache key).
    pub epsilon_bits: u64,
    /// The replicate count Δ.
    pub replicates: usize,
    /// The random seed.
    pub seed: u64,
    /// The replicate-path backend (already normalized; see `ThresholdKey`).
    pub backend: DatasetBackend,
    /// The Algorithm 1 restart budget.
    pub max_restarts: usize,
    /// The resolved replicate sampler.
    pub sampler: ResolvedSampler,
    /// The cached Algorithm 1 output.
    pub estimate: ThresholdEstimate,
}

impl ThresholdRecord {
    fn from_parts(key: ThresholdKey, estimate: ThresholdEstimate) -> Self {
        ThresholdRecord {
            fingerprint: key.fingerprint,
            k: key.k,
            epsilon_bits: key.epsilon_bits,
            replicates: key.replicates,
            seed: key.seed,
            backend: key.backend,
            max_restarts: key.max_restarts,
            sampler: key.sampler,
            estimate,
        }
    }

    fn cache_key(&self) -> ThresholdKey {
        ThresholdKey {
            fingerprint: self.fingerprint,
            k: self.k,
            epsilon_bits: self.epsilon_bits,
            replicates: self.replicates,
            seed: self.seed,
            backend: self.backend,
            max_restarts: self.max_restarts,
            sampler: self.sampler,
        }
    }

    /// A stable, injective string form of the record's identity — the key
    /// persistence layers index by. Two records with equal storage keys
    /// cache interchangeably (the estimate is a deterministic function of
    /// the identity).
    pub fn storage_key(&self) -> String {
        format!(
            "fp{:016x}-k{}-e{:016x}-r{}-s{:016x}-b{:?}-m{}-{:?}",
            self.fingerprint,
            self.k,
            self.epsilon_bits,
            self.replicates,
            self.seed,
            self.backend,
            self.max_restarts,
            self.sampler
        )
    }

    /// The `ε` this record was computed for, recovered from its bit pattern.
    pub fn epsilon(&self) -> f64 {
        f64::from_bits(self.epsilon_bits)
    }
}

/// Write-through persistence hook of a [`ThresholdStore`]: every fresh
/// Algorithm 1 result inserted into the store is offered to the sink
/// *after* the cache lock is released. Implementations must tolerate being
/// called from any engine thread and should swallow (log) their own I/O
/// failures — a broken disk must not fail an otherwise-complete analysis.
pub trait ThresholdSink: Send + Sync {
    /// Persist one freshly computed threshold entry.
    fn persist(&self, record: &ThresholdRecord);
}

/// Normalize a configured backend to the replicate path it drives in
/// [`FindPoissonThreshold`] for `model`: resolve exactly as
/// `collect_observations` does (`Auto` via the model's shape and expected
/// density), then collapse `ShardedBitmap` onto `Bitmap` — sharding applies
/// to Procedure 2's counting passes, not to Algorithm 1, whose loop treats
/// the two identically (see `montecarlo.rs`). Engines whose configured names
/// differ but whose replicate loops are the same code path therefore share
/// threshold-cache entries instead of recomputing per name.
fn replicate_path_backend<M: NullModel>(backend: DatasetBackend, model: &M) -> DatasetBackend {
    let resolved = backend.resolve(
        model.num_items() as u32,
        model.num_transactions(),
        model.expected_density(),
    );
    match resolved {
        ResolvedBackend::Csr => DatasetBackend::Csr,
        ResolvedBackend::Bitmap | ResolvedBackend::ShardedBitmap => DatasetBackend::Bitmap,
    }
}

/// Aggregate counters of a [`ThresholdCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served without running Algorithm 1.
    pub hits: u64,
    /// Lookups that had to run Algorithm 1.
    pub misses: u64,
    /// Number of distinct threshold keys currently stored.
    pub entries: usize,
    /// Entries dropped by the LRU policy to respect the capacity bound.
    pub evictions: u64,
    /// The configured capacity bound (`None` = unbounded).
    pub capacity: Option<usize>,
}

/// One cached value together with its recency stamp.
#[derive(Debug, Clone)]
struct LruEntry<V> {
    value: V,
    /// Logical clock value of the last hit or insertion; the entry with the
    /// smallest stamp is the least recently used.
    last_used: u64,
}

/// The LRU memo shared by the engine's two caches ([`ThresholdCache`] and the
/// per-engine `SupportProfile` cache): a hash map with a logical recency
/// clock, an optional capacity bound enforced by least-recently-used
/// eviction, and hit/miss/eviction counters surfaced as [`CacheStats`].
#[derive(Debug, Clone)]
struct LruCache<K, V> {
    entries: HashMap<K, LruEntry<V>>,
    capacity: Option<usize>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K, V> Default for LruCache<K, V> {
    fn default() -> Self {
        LruCache {
            entries: HashMap::new(),
            capacity: None,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

impl<K: Eq + std::hash::Hash + Copy, V: Clone> LruCache<K, V> {
    /// An empty cache bounded at `capacity` entries (0 disables caching
    /// entirely: every insert is immediately discarded).
    fn with_capacity(capacity: usize) -> Self {
        LruCache {
            capacity: Some(capacity),
            ..LruCache::default()
        }
    }

    /// Look up a key, recording a hit or miss (and, on a hit, refreshing the
    /// entry's recency).
    fn get(&mut self, key: &K) -> Option<V> {
        self.clock += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.clock;
                self.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: K, value: V) {
        if self.capacity == Some(0) {
            return;
        }
        self.clock += 1;
        if let Some(capacity) = self.capacity {
            // Evict least-recently-used entries until the new key fits. The
            // linear minimum scan is fine at service cache sizes (hundreds of
            // entries guarding expensive mining or Monte-Carlo passes).
            while !self.entries.contains_key(&key) && self.entries.len() >= capacity {
                self.evict_lru();
            }
        }
        self.entries.insert(
            key,
            LruEntry {
                value,
                last_used: self.clock,
            },
        );
    }

    fn evict_lru(&mut self) {
        // sigfim-lint: allow(nondet-iteration, reason = "last_used stamps are unique (monotone clock), so the minimum is order-independent")
        let lru = self
            .entries
            .iter()
            .min_by_key(|(_, entry)| entry.last_used)
            .map(|(key, _)| *key)
            .expect("a non-empty cache has a least-recently-used entry");
        self.entries.remove(&lru);
        self.evictions += 1;
    }

    /// Change the capacity bound (`None` = unbounded). Shrinking below the
    /// current size evicts least-recently-used entries immediately.
    fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
        if let Some(capacity) = capacity {
            while self.entries.len() > capacity {
                self.evict_lru();
            }
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.entries.len(),
            evictions: self.evictions,
            capacity: self.capacity,
        }
    }

    /// Drop every entry and reset the counters (the capacity bound persists).
    fn clear(&mut self) {
        self.entries.clear();
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
        self.clock = 0;
    }

    /// Snapshot the stored `(key, value)` pairs without touching recency or
    /// the hit/miss counters. Iteration order is the hash map's; callers
    /// that surface the result sort it first ([`ThresholdStore::export`]
    /// does, by storage key).
    fn items(&self) -> Vec<(K, V)> {
        // sigfim-lint: allow(nondet-iteration, reason = "unordered snapshot; ThresholdStore::export sorts by storage key before the records are surfaced")
        self.entries
            .iter()
            .map(|(key, entry)| (*key, entry.value.clone()))
            .collect()
    }
}

/// Memo of Algorithm 1 results keyed by the full run identity (see
/// [`AnalysisEngine`]); the reuse that turns a k-sweep's repeated queries into
/// lookups.
///
/// The cache is **bounded**: give it a capacity and it evicts the least
/// recently used entry on overflow, counting evictions in [`CacheStats`].
/// The default capacity is `None` (unbounded), preserving the PR 3 behaviour
/// for short-lived engines; long-running services should set a bound (the
/// `sigfim serve --cache-capacity` flag does).
///
/// Engines access it through a [`ThresholdStore`] — a shared, lock-protected
/// handle — so several engines (tenants) can pool their thresholds; inspect it
/// through [`AnalysisEngine::cache_stats`] or [`ThresholdStore::stats`].
#[derive(Debug, Clone, Default)]
pub struct ThresholdCache {
    inner: LruCache<ThresholdKey, ThresholdEstimate>,
}

impl ThresholdCache {
    /// An empty cache bounded at `capacity` entries (0 disables caching
    /// entirely: every insert is immediately discarded).
    pub fn with_capacity(capacity: usize) -> Self {
        ThresholdCache {
            inner: LruCache::with_capacity(capacity),
        }
    }

    fn get(&mut self, key: &ThresholdKey) -> Option<ThresholdEstimate> {
        self.inner.get(key)
    }

    fn insert(&mut self, key: ThresholdKey, estimate: ThresholdEstimate) {
        self.inner.insert(key, estimate);
    }

    /// Change the capacity bound (`None` = unbounded). Shrinking below the
    /// current size evicts least-recently-used entries immediately.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.inner.set_capacity(capacity);
    }

    /// The configured capacity bound (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.inner.capacity
    }

    /// Number of distinct threshold keys stored.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }

    /// Hit/miss/entry/eviction counters since construction (or the last clear).
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Drop every entry and reset the counters (the capacity bound persists).
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    fn items(&self) -> Vec<(ThresholdKey, ThresholdEstimate)> {
        self.inner.items()
    }
}

/// A process-wide, shareable handle to a [`ThresholdCache`], protected by a
/// lock. Cloning the store clones the *handle*: every clone reads and writes
/// the same cache, which is what lets two engines (tenants) analyzing the same
/// null model serve each other's Algorithm 1 results — the cache key starts
/// with the model fingerprint, so entries never leak across distinct nulls.
///
/// Every engine owns a store (a private one by default);
/// [`AnalysisEngine::with_threshold_store`] swaps in a shared one. The store
/// is deliberately not held across an Algorithm 1 computation: two tenants
/// racing on the same cold key both compute it (identical results — the run
/// is deterministic in the key), and the second insert is a no-op overwrite.
///
/// A store may carry a write-through [`ThresholdSink`]
/// ([`ThresholdStore::set_persistence`]): fresh inserts are offered to the
/// sink after the cache lock is released, and a restarted process replays
/// persisted records back in with [`ThresholdStore::preload`] (which does
/// *not* re-invoke the sink). The sink handle is itself shared — clones
/// made before `set_persistence` see the sink too.
#[derive(Clone, Default)]
pub struct ThresholdStore {
    inner: Arc<Mutex<ThresholdCache>>,
    sink: Arc<Mutex<Option<Arc<dyn ThresholdSink>>>>,
}

impl std::fmt::Debug for ThresholdStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThresholdStore")
            .field("stats", &self.stats())
            .field("persistent", &self.sink_handle().is_some())
            .finish()
    }
}

impl ThresholdStore {
    /// A fresh, empty, unbounded store.
    pub fn new() -> Self {
        ThresholdStore::default()
    }

    /// A fresh store bounded at `capacity` entries (LRU eviction).
    pub fn with_capacity(capacity: usize) -> Self {
        ThresholdStore {
            inner: Arc::new(Mutex::new(ThresholdCache::with_capacity(capacity))),
            sink: Arc::default(),
        }
    }

    /// Lock the underlying cache, recovering from poisoning: the cache holds
    /// plain memoized values whose invariants hold between any two operations,
    /// so a panicked writer cannot leave it in a state worth propagating.
    fn lock(&self) -> MutexGuard<'_, ThresholdCache> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The currently attached sink handle, if any. Recovers from poisoning
    /// like [`ThresholdStore::lock`] (the slot holds a plain handle).
    fn sink_handle(&self) -> Option<Arc<dyn ThresholdSink>> {
        self.sink
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    fn get(&self, key: &ThresholdKey) -> Option<ThresholdEstimate> {
        self.lock().get(key)
    }

    fn insert(&self, key: ThresholdKey, estimate: ThresholdEstimate) {
        self.lock().insert(key, estimate.clone());
        // Persist outside the cache lock: the sink may do I/O, and holding
        // the cache across it would serialize every tenant behind the disk.
        if let Some(sink) = self.sink_handle() {
            sink.persist(&ThresholdRecord::from_parts(key, estimate));
        }
    }

    /// Attach a write-through persistence sink: every subsequent fresh
    /// insert is offered to it as a [`ThresholdRecord`]. The handle is
    /// shared with every clone of this store, past and future.
    pub fn set_persistence(&self, sink: Arc<dyn ThresholdSink>) {
        let mut slot = self
            .sink
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *slot = Some(sink);
    }

    /// Replay persisted records into the cache **without** re-invoking the
    /// sink (they are already durable). Returns how many records were
    /// loaded. Bounded stores LRU-evict as usual if the replay overflows
    /// the capacity.
    pub fn preload<I: IntoIterator<Item = ThresholdRecord>>(&self, records: I) -> usize {
        let mut cache = self.lock();
        let mut loaded = 0;
        for record in records {
            let key = record.cache_key();
            cache.insert(key, record.estimate);
            loaded += 1;
        }
        loaded
    }

    /// Snapshot every cached entry as a [`ThresholdRecord`], sorted by
    /// [`ThresholdRecord::storage_key`] so the export is deterministic.
    pub fn export(&self) -> Vec<ThresholdRecord> {
        let items = self.lock().items();
        let mut records: Vec<ThresholdRecord> = items
            .into_iter()
            .map(|(key, estimate)| ThresholdRecord::from_parts(key, estimate))
            .collect();
        records.sort_by_key(|record| record.storage_key());
        records
    }

    /// Hit/miss/entry/eviction counters of the shared cache.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats()
    }

    /// Change the capacity bound (`None` = unbounded), evicting immediately if
    /// the cache is over the new bound.
    pub fn set_capacity(&self, capacity: Option<usize>) {
        self.lock().set_capacity(capacity);
    }

    /// Number of distinct threshold keys stored.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Drop every entry and reset the counters (the capacity bound persists).
    /// On a shared store this affects every attached engine.
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Whether `other` is a handle to the same underlying cache.
    pub fn shares_with(&self, other: &ThresholdStore) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// The long-lived, session-oriented analysis API (see the [module
/// docs](self)). Generic over the null model; [`AnalysisEngine::from_dataset`]
/// builds the paper's Bernoulli model, [`AnalysisEngine::with_swap_null`] the
/// swap-randomization alternative, and [`AnalysisEngine::with_model`] accepts
/// anything implementing [`NullModel`] (including `&M`, so borrowing callers
/// need not clone their model, and [`BoxedNullModel`], so the model type can
/// be erased — see [`DynAnalysisEngine`]).
///
/// Cloning an engine clones the dataset views but **shares** the threshold
/// store (an [`Arc`] handle): the clones pool their Algorithm 1 results, which
/// is the multi-tenant behaviour a service wants. Give a clone
/// [`AnalysisEngine::with_threshold_store`] a fresh store to detach it.
#[derive(Debug, Clone)]
pub struct AnalysisEngine<M: NullModel + Sync = BernoulliModel> {
    model: M,
    /// The model's stable fingerprint, computed once at construction.
    fingerprint: u64,
    /// The dataset Procedures 1 and 2 analyze; absent for threshold-only
    /// engines built with [`AnalysisEngine::from_model`].
    dataset: Option<TransactionDataset>,
    backend: DatasetBackend,
    policy: ExecutionPolicy,
    /// The bitmap view of `dataset`, built once whenever `backend` resolves to
    /// the bitmap for it; shared by every Procedure 2 pass.
    bitmap: Option<BitmapDataset>,
    /// The transaction-sharded bitmap view, built once whenever `backend`
    /// resolves to [`ResolvedBackend::ShardedBitmap`]; Procedure 2's counting
    /// passes fan it out shard-by-shard under the engine's execution policy.
    sharded: Option<ShardedBitmapDataset>,
    /// The out-of-core view: when a residency budget is active and the
    /// backend resolves to the sharded bitmap, the shards live in per-shard
    /// spill files and only a budget-bounded LRU subset stays resident (see
    /// [`SpilledShards`]). `Arc`-wrapped because engines are `Clone` — clones
    /// share the spill files and the residency set. Replaces `sharded` when
    /// present; the Monte-Carlo replicate scratch path never spills.
    spilled: Option<Arc<SpilledShards>>,
    /// The residency configuration `rebuild_views` applies, when one was set
    /// explicitly on this engine. `None` falls back to the process-wide
    /// configuration (`--shard-residency` / `SIGFIM_RESIDENCY`).
    residency: Option<ShardResidency>,
    /// Handle to the threshold cache — private by default, shareable across
    /// engines for cross-tenant reuse.
    store: ThresholdStore,
    /// Handle to the replicate observation store: the raw per-replicate
    /// observations of recent Algorithm 1 batches, so an ε-tightened or
    /// Δ-extended re-query reuses them instead of re-sampling (see
    /// [`ObservationStore`]). Shared by clones, like the threshold store.
    observations: ObservationStore,
    /// Floor profiles by `(k, s_min, miner)`: a request that re-tests the same
    /// threshold with different `α`/`β` budgets skips the mining pass too.
    /// LRU-bounded at [`DEFAULT_PROFILE_CACHE_CAPACITY`] by default — profiles
    /// are much larger than threshold estimates, so unlike the threshold
    /// cache this one ships bounded (see
    /// [`AnalysisEngine::with_profile_cache_capacity`]). Values are
    /// `Arc`-wrapped so a cache hit hands back a pointer, never a deep copy
    /// of the support list.
    profiles: LruCache<ProfileKey, Arc<SupportProfile>>,
}

/// The identity of one cached floor profile: `(k, s_min, miner)`.
type ProfileKey = (usize, u64, MinerKind);

/// The default bound of the per-engine `SupportProfile` cache. A profile
/// holds every k-itemset support above its floor — potentially megabytes on
/// dense data — so engines cap the cache by default; 32 entries comfortably
/// cover a k-sweep times a few distinct floors.
pub const DEFAULT_PROFILE_CACHE_CAPACITY: usize = 32;

/// The dyn-erased engine: the concrete null-model type is boxed away, so
/// engines over *different* models (Bernoulli, swap, custom) share one type —
/// storable in one registry, routable through one code path. This is the form
/// the `sigfim-service` crate's `EngineRegistry` stores.
///
/// Build one with [`AnalysisEngine::from_dataset_dyn`] /
/// [`AnalysisEngine::with_swap_null_dyn`] / [`AnalysisEngine::with_model_dyn`],
/// or erase an existing generic engine with [`AnalysisEngine::into_dyn`]
/// (which keeps its warm caches). Results are bit-identical to the generic
/// engine's: erasure changes neither sampling nor cache keys.
pub type DynAnalysisEngine = AnalysisEngine<BoxedNullModel>;

impl AnalysisEngine<BernoulliModel> {
    /// An engine analyzing `dataset` against the paper's null model derived
    /// from it (same `t`, same item frequencies, independent placement).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an empty dataset.
    pub fn from_dataset(dataset: TransactionDataset) -> Result<Self> {
        let model = BernoulliModel::from_dataset(&dataset);
        Self::with_model(dataset, model)
    }
}

impl AnalysisEngine<SwapRandomizationModel> {
    /// An engine analyzing `dataset` against the swap-randomization null of
    /// Gionis et al., with `swaps_per_entry` swap attempts per incidence.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an empty dataset and
    /// propagates swap-model construction errors (no incidences,
    /// non-positive `swaps_per_entry`).
    pub fn with_swap_null(dataset: TransactionDataset, swaps_per_entry: f64) -> Result<Self> {
        let model = SwapRandomizationModel::new(dataset.clone(), swaps_per_entry)?;
        Self::with_model(dataset, model)
    }
}

impl DynAnalysisEngine {
    /// [`AnalysisEngine::from_dataset`] with the model type erased: the
    /// engine analyzes `dataset` against the paper's Bernoulli null derived
    /// from it, but its type no longer names the model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an empty dataset.
    pub fn from_dataset_dyn(dataset: TransactionDataset) -> Result<Self> {
        let model = BernoulliModel::from_dataset(&dataset);
        Self::with_model_dyn(dataset, model)
    }

    /// [`AnalysisEngine::with_swap_null`] with the model type erased.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AnalysisEngine::with_swap_null`].
    pub fn with_swap_null_dyn(dataset: TransactionDataset, swaps_per_entry: f64) -> Result<Self> {
        let model = SwapRandomizationModel::new(dataset.clone(), swaps_per_entry)?;
        Self::with_model_dyn(dataset, model)
    }

    /// [`AnalysisEngine::with_model`] with the model type erased: accepts any
    /// owned null model and boxes it behind the object-safe
    /// [`sigfim_datasets::random::DynNullModel`] boundary.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an empty dataset.
    pub fn with_model_dyn<M>(dataset: TransactionDataset, model: M) -> Result<Self>
    where
        M: NullModel + Send + Sync + 'static,
    {
        Self::with_model(dataset, Box::new(model) as BoxedNullModel)
    }

    /// [`AnalysisEngine::from_model`] with the model type erased (threshold-only
    /// engine, no dataset).
    pub fn from_model_dyn<M>(model: M) -> Self
    where
        M: NullModel + Send + Sync + 'static,
    {
        Self::from_model(Box::new(model) as BoxedNullModel)
    }
}

impl<M: NullModel + Send + Sync + 'static> AnalysisEngine<M> {
    /// Erase the model type, keeping everything else — dataset views, the
    /// threshold-store handle (warm entries stay warm), profile caches,
    /// backend and policy. The resulting engine is storable next to engines
    /// over any other model type.
    pub fn into_dyn(self) -> DynAnalysisEngine {
        AnalysisEngine {
            model: Box::new(self.model) as BoxedNullModel,
            fingerprint: self.fingerprint,
            dataset: self.dataset,
            backend: self.backend,
            policy: self.policy,
            bitmap: self.bitmap,
            sharded: self.sharded,
            spilled: self.spilled,
            residency: self.residency,
            store: self.store,
            observations: self.observations,
            profiles: self.profiles,
        }
    }
}

impl<M: NullModel + Sync> AnalysisEngine<M> {
    /// An engine analyzing `dataset` against an explicitly supplied null model
    /// (a reference-population model, a replayed fitted model, …).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an empty dataset.
    pub fn with_model(dataset: TransactionDataset, model: M) -> Result<Self> {
        if dataset.num_transactions() == 0 {
            return Err(CoreError::InvalidParameter {
                name: "dataset",
                reason: "cannot analyze an empty dataset".into(),
            });
        }
        let mut engine = Self::from_model(model);
        engine.dataset = Some(dataset);
        engine.rebuild_views();
        Ok(engine)
    }

    /// A threshold-only engine: no dataset, so only
    /// [`AnalysisEngine::thresholds`] queries are available (the shape of the
    /// paper's Table 2, which runs Algorithm 1 against null models alone).
    pub fn from_model(model: M) -> Self {
        let fingerprint = model.fingerprint();
        AnalysisEngine {
            model,
            fingerprint,
            dataset: None,
            backend: DatasetBackend::Auto,
            policy: ExecutionPolicy::default(),
            bitmap: None,
            sharded: None,
            spilled: None,
            residency: None,
            store: ThresholdStore::new(),
            observations: ObservationStore::new(),
            profiles: LruCache::with_capacity(DEFAULT_PROFILE_CACHE_CAPACITY),
        }
    }

    /// Attach a (typically shared) [`ThresholdStore`]: from here on, this
    /// engine's Algorithm 1 lookups and insertions go to `store`, so every
    /// other engine attached to it can serve — and be served by — this
    /// engine's thresholds. Keys carry the model fingerprint, so sharing is
    /// sound across engines over *different* null models.
    pub fn with_threshold_store(mut self, store: ThresholdStore) -> Self {
        self.store = store;
        self
    }

    /// In-place form of [`AnalysisEngine::with_threshold_store`].
    pub fn set_threshold_store(&mut self, store: ThresholdStore) {
        self.store = store;
    }

    /// A handle to this engine's threshold store (clone-to-share).
    pub fn threshold_store(&self) -> ThresholdStore {
        self.store.clone()
    }

    /// A handle to this engine's replicate [`ObservationStore`]
    /// (clone-to-share, like the threshold store).
    pub fn observation_store(&self) -> ObservationStore {
        self.observations.clone()
    }

    /// Attach a (typically shared) [`ObservationStore`]: from here on, this
    /// engine's Algorithm 1 runs retain and reuse replicate observations
    /// through `store`. Keys carry the model fingerprint, so sharing is sound
    /// across engines over different null models.
    pub fn with_observation_store(mut self, store: ObservationStore) -> Self {
        self.observations = store;
        self
    }

    /// Bound this engine's threshold cache at `capacity` entries (LRU
    /// eviction). On a shared store the bound applies to every attached
    /// engine.
    pub fn with_cache_capacity(self, capacity: usize) -> Self {
        self.store.set_capacity(Some(capacity));
        self
    }

    /// Bound this engine's `(k, s_min, miner)` → `SupportProfile` cache at
    /// `capacity` entries (LRU eviction; 0 disables profile caching). The
    /// profile cache is per-engine — unlike thresholds, profiles are tied to
    /// the engine's own dataset and never shared across tenants. Defaults to
    /// [`DEFAULT_PROFILE_CACHE_CAPACITY`].
    pub fn with_profile_cache_capacity(mut self, capacity: usize) -> Self {
        self.profiles.set_capacity(Some(capacity));
        self
    }

    /// Select the physical dataset backend. Results are identical under every
    /// backend; this rebuilds the owned bitmap view accordingly and clears the
    /// profile cache.
    pub fn with_backend(mut self, backend: DatasetBackend) -> Self {
        self.backend = backend;
        self.profiles.clear();
        self.rebuild_views();
        self
    }

    /// Bound the resident footprint of the sharded-bitmap view: when the
    /// backend resolves to [`ResolvedBackend::ShardedBitmap`], the shards are
    /// spilled to per-shard files and at most `residency.budget_bytes` of
    /// shard payload stays in memory at once (LRU eviction; cold shards fault
    /// back in on demand). Results are bit-identical at every budget; see
    /// [`SpilledShards`]. An inactive residency (zero budget or spill mode
    /// `off`) restores the fully-resident view. Without this call the
    /// process-wide configuration (`--shard-residency` / `SIGFIM_RESIDENCY`)
    /// applies. Clears the profile cache and rebuilds the views.
    pub fn with_shard_residency(mut self, residency: ShardResidency) -> Self {
        self.residency = Some(residency);
        self.profiles.clear();
        self.rebuild_views();
        self
    }

    /// A snapshot of the out-of-core view's residency state, when this
    /// engine's sharded view is spilled (see
    /// [`AnalysisEngine::with_shard_residency`]).
    pub fn spill_snapshot(&self) -> Option<sigfim_datasets::spill::SpillSnapshot> {
        self.spilled.as_ref().map(|spilled| spilled.snapshot())
    }

    /// Select the execution policy for the Monte-Carlo replicate loop (a pure
    /// performance knob; estimates are bit-identical under every policy).
    pub fn with_execution_policy(mut self, policy: ExecutionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Shorthand for [`AnalysisEngine::with_execution_policy`] with
    /// [`ExecutionPolicy::from_threads`] (0 = all cores, 1 = sequential).
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_execution_policy(ExecutionPolicy::from_threads(threads))
    }

    /// The dataset this engine analyzes, when it has one.
    pub fn dataset(&self) -> Option<&TransactionDataset> {
        self.dataset.as_ref()
    }

    /// The null model queries are answered against.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The model fingerprint keying the threshold cache.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The configured dataset backend.
    pub fn backend(&self) -> DatasetBackend {
        self.backend
    }

    /// The configured execution policy.
    pub fn execution_policy(&self) -> ExecutionPolicy {
        self.policy
    }

    /// Hit/miss/entry/eviction counters of the threshold cache (on a shared
    /// store these aggregate over every attached engine).
    pub fn cache_stats(&self) -> CacheStats {
        self.store.stats()
    }

    /// Hit/miss/entry/eviction counters of this engine's `SupportProfile`
    /// cache (per-engine, never shared).
    pub fn profile_cache_stats(&self) -> CacheStats {
        self.profiles.stats()
    }

    /// Drop every cached threshold and profile (e.g. after mutating shared
    /// state the keys cannot see). On a shared store this clears the
    /// thresholds of every attached engine.
    pub fn clear_caches(&mut self) {
        self.store.clear();
        self.profiles.clear();
    }

    /// Run a request end to end: per requested `k`, Algorithm 1 (served from
    /// the [`ThresholdCache`] when the key is warm), Procedure 2 against the
    /// engine's pre-built dataset view, and optionally the Procedure 1
    /// baseline.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an invalid request or an
    /// engine built without a dataset, and propagates pipeline errors.
    pub fn run(&mut self, request: &AnalysisRequest) -> Result<AnalysisResponse> {
        self.run_observed(request, &NoProgress)
    }

    /// Like [`AnalysisEngine::run`], reporting stage and replicate progress to
    /// `observer`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AnalysisEngine::run`].
    pub fn run_observed(
        &mut self,
        request: &AnalysisRequest,
        observer: &dyn ProgressObserver,
    ) -> Result<AnalysisResponse> {
        request.validate()?;
        if self.dataset.is_none() {
            return Err(CoreError::InvalidParameter {
                name: "dataset",
                reason: "this engine was built without a dataset (from_model); \
                         only threshold queries are available"
                    .into(),
            });
        }

        let mut runs = Vec::with_capacity(request.ks.len());
        for &k in &request.ks {
            let (estimate, status) = self.threshold_for(k, request, observer)?;
            let lambda = match request.lambda_mode {
                LambdaMode::Faithful => estimate.lambda_estimator(),
                LambdaMode::Conservative => estimate.conservative_lambda_estimator(),
            };

            observer.stage_started(k, AnalysisStage::Procedure2);
            let profile_key = (k, estimate.s_min, request.miner);
            let profile = match self.profiles.get(&profile_key) {
                Some(profile) => profile,
                None => {
                    let dataset = self.dataset.as_ref().expect("checked above");
                    let profile = Arc::new(Procedure2::mine_profile(
                        request.miner,
                        dataset,
                        self.bitmap.as_ref(),
                        self.sharded.as_ref(),
                        self.spilled.as_deref(),
                        k,
                        estimate.s_min,
                        self.policy,
                    )?);
                    self.profiles.insert(profile_key, Arc::clone(&profile));
                    profile
                }
            };
            let dataset = self.dataset.as_ref().expect("checked above");
            let procedure2 = Procedure2 {
                k,
                alpha: request.alpha,
                beta: request.beta,
                miner: request.miner,
                backend: self.backend,
                policy: self.policy,
            }
            .run_prepared(
                dataset,
                self.bitmap.as_ref(),
                self.sharded.as_ref(),
                self.spilled.as_deref(),
                &profile,
                estimate.s_min,
                &lambda,
            )?;
            observer.stage_completed(k, AnalysisStage::Procedure2);

            let procedure1 = if request.baseline {
                observer.stage_started(k, AnalysisStage::Procedure1);
                let result = Procedure1 {
                    k,
                    beta: request.beta,
                    miner: request.miner,
                    ..Procedure1::new(k)
                }
                .run(dataset, estimate.s_min)?;
                observer.stage_completed(k, AnalysisStage::Procedure1);
                Some(result)
            } else {
                None
            };

            runs.push(KAnalysis {
                k,
                threshold_cache: status,
                report: AnalysisReport {
                    parameters: AnalysisParameters {
                        k,
                        alpha: request.alpha,
                        beta: request.beta,
                        epsilon: request.epsilon,
                        replicates: request.replicates,
                        seed: request.seed,
                        miner: request.miner,
                        backend: self.backend,
                    },
                    dataset: DatasetSummary::from_dataset(dataset),
                    threshold: estimate,
                    procedure2,
                    procedure1,
                },
            });
        }
        Ok(AnalysisResponse { runs })
    }

    /// Threshold-only queries: run (or recall) Algorithm 1 per requested `k`
    /// without touching Procedures 1/2, so this works on engines built with
    /// [`AnalysisEngine::from_model`] too.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an invalid request and
    /// propagates Algorithm 1 errors.
    pub fn thresholds(&mut self, request: &AnalysisRequest) -> Result<Vec<ThresholdRun>> {
        self.thresholds_observed(request, &NoProgress)
    }

    /// Like [`AnalysisEngine::thresholds`], reporting progress to `observer`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AnalysisEngine::thresholds`].
    pub fn thresholds_observed(
        &mut self,
        request: &AnalysisRequest,
        observer: &dyn ProgressObserver,
    ) -> Result<Vec<ThresholdRun>> {
        request.validate()?;
        request
            .ks
            .iter()
            .map(|&k| {
                self.threshold_for(k, request, observer)
                    .map(|(estimate, status)| ThresholdRun {
                        k,
                        threshold_cache: status,
                        estimate,
                    })
            })
            .collect()
    }

    /// Serve one `(k, request)` threshold: from the cache when the full run
    /// identity is warm, by running Algorithm 1 otherwise. A fresh RNG is
    /// derived from the request seed per run — exactly as the one-shot
    /// analyzer derives it — which is what makes the cached value bit-identical
    /// to a recomputation and the cache sound.
    fn threshold_for(
        &mut self,
        k: usize,
        request: &AnalysisRequest,
        observer: &dyn ProgressObserver,
    ) -> Result<(ThresholdEstimate, CacheStatus)> {
        let sampler = resolve_sampler(
            SamplerMode::Auto,
            self.model.supports_gaps_sampler(),
            self.model.expected_density(),
        );
        let key = ThresholdKey {
            fingerprint: self.fingerprint,
            k,
            epsilon_bits: request.epsilon.to_bits(),
            replicates: request.replicates,
            seed: request.seed,
            // The gaps sampler rides the scratch-bitmap path whatever the
            // configured backend: normalize so configs differing only in a
            // backend name the gaps path ignores share entries.
            backend: match sampler {
                ResolvedSampler::Gaps => DatasetBackend::Bitmap,
                ResolvedSampler::Cellwise => replicate_path_backend(self.backend, &self.model),
            },
            max_restarts: request.max_restarts,
            sampler,
        };
        if let Some(estimate) = self.store.get(&key) {
            observer.threshold_cache_hit(k);
            return Ok((estimate, CacheStatus::Hit));
        }

        observer.stage_started(k, AnalysisStage::Threshold);
        let algorithm = FindPoissonThreshold {
            k,
            epsilon: request.epsilon,
            replicates: request.replicates,
            policy: self.policy,
            backend: self.backend,
            max_restarts: request.max_restarts,
            sampler: SamplerMode::Auto,
        };
        let mut rng = StdRng::seed_from_u64(request.seed);
        let progress = ReplicateProgress { observer, k };
        let estimate =
            algorithm.run_with_store(&self.model, &mut rng, &progress, &self.observations)?;
        observer.stage_completed(k, AnalysisStage::Threshold);
        self.store.insert(key, estimate.clone());
        Ok((estimate, CacheStatus::Miss))
    }

    /// Rebuild the owned dataset views after a dataset/backend change: the
    /// bitmap (or sharded bitmap) is built once here and shared by every
    /// subsequent Procedure 2 pass (and k-sweep), instead of once per call.
    fn rebuild_views(&mut self) {
        self.bitmap = None;
        self.sharded = None;
        self.spilled = None;
        if let Some(dataset) = &self.dataset {
            match self.backend.resolve_for_dataset(dataset) {
                ResolvedBackend::Csr => {}
                ResolvedBackend::Bitmap => self.bitmap = Some(BitmapDataset::from_dataset(dataset)),
                ResolvedBackend::ShardedBitmap => {
                    // An explicit per-engine residency wins; otherwise the
                    // process-wide `--shard-residency` / `SIGFIM_RESIDENCY`
                    // configuration applies. No active residency (or a spill
                    // failure, e.g. an unwritable spill directory) falls back
                    // to the fully-resident sharded view — results are
                    // identical either way, only the footprint differs.
                    let residency = self
                        .residency
                        .clone()
                        .or_else(ShardResidency::from_process_config)
                        .filter(|residency| residency.is_active());
                    let mut spilled = None;
                    if let Some(residency) = residency {
                        match SpilledShards::spill_dataset(dataset, &residency) {
                            Ok(view) => spilled = Some(Arc::new(view)),
                            Err(error) => eprintln!(
                                "sigfim: shard spill failed ({error}); \
                                 keeping the sharded view fully resident"
                            ),
                        }
                    }
                    match spilled {
                        Some(view) => self.spilled = Some(view),
                        None => self.sharded = Some(ShardedBitmapDataset::from_dataset(dataset)),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigfim_datasets::random::{PlantedConfig, PlantedModel, PlantedPattern};

    fn planted_dataset(seed: u64) -> TransactionDataset {
        let background = BernoulliModel::new(400, vec![0.05; 20]).unwrap();
        let model = PlantedModel::new(PlantedConfig {
            background,
            patterns: vec![PlantedPattern::new(vec![2, 9], 80).unwrap()],
        })
        .unwrap();
        model.sample(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn request_builders_and_validation() {
        let request = AnalysisRequest::for_k_range(2..=5)
            .with_alpha(0.01)
            .with_beta(0.1)
            .with_epsilon(0.02)
            .with_replicates(128)
            .with_seed(9)
            .with_miner(MinerKind::Eclat)
            .with_lambda_mode(LambdaMode::Conservative)
            .with_baseline(false)
            .with_max_restarts(2);
        assert_eq!(request.ks, vec![2, 3, 4, 5]);
        assert!(request.validate().is_ok());
        assert_eq!(AnalysisRequest::for_k(3).ks, vec![3]);
        assert_eq!(AnalysisRequest::for_ks([4, 2]).ks, vec![4, 2]);
        assert_eq!(AnalysisRequest::for_k(2).seed, DEFAULT_SEED);

        assert!(AnalysisRequest::for_ks([]).validate().is_err());
        assert!(AnalysisRequest::for_k(0).validate().is_err());
        assert!(AnalysisRequest::for_k(2)
            .with_replicates(0)
            .validate()
            .is_err());
        let zero_restarts = AnalysisRequest::for_k(2).with_max_restarts(0);
        let error = zero_restarts.validate().unwrap_err();
        assert!(error.to_string().contains("max_restarts"));
    }

    #[test]
    fn request_round_trips_through_json() {
        let request = AnalysisRequest::for_k_range(2..=4)
            .with_seed(7)
            .with_lambda_mode(LambdaMode::Conservative);
        let json = serde_json::to_string(&request).unwrap();
        let parsed: AnalysisRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, request);
    }

    #[test]
    fn empty_dataset_and_missing_dataset_are_rejected() {
        assert!(AnalysisEngine::from_dataset(TransactionDataset::empty(4)).is_err());
        let model = BernoulliModel::new(50, vec![0.2; 6]).unwrap();
        let mut engine = AnalysisEngine::from_model(model);
        let request = AnalysisRequest::for_k(2).with_replicates(4);
        // Threshold-only queries work without a dataset ...
        assert!(engine.thresholds(&request).is_ok());
        // ... full runs do not.
        let error = engine.run(&request).unwrap_err();
        assert!(error.to_string().contains("dataset"));
    }

    #[test]
    fn repeated_requests_hit_the_threshold_cache() {
        let mut engine = AnalysisEngine::from_dataset(planted_dataset(3)).unwrap();
        let request = AnalysisRequest::for_k(2).with_replicates(12).with_seed(5);
        let first = engine.run(&request).unwrap();
        assert_eq!(first.cache_hits(), 0);
        assert_eq!(first.runs[0].threshold_cache, CacheStatus::Miss);
        let second = engine.run(&request).unwrap();
        assert_eq!(second.cache_hits(), 1);
        assert_eq!(second.runs[0].report, first.runs[0].report);
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));

        // A different seed is a different key.
        let other = engine.run(&request.clone().with_seed(6)).unwrap();
        assert_eq!(other.cache_hits(), 0);
        assert_eq!(engine.cache_stats().entries, 2);

        // Clearing the caches forgets everything.
        engine.clear_caches();
        assert_eq!(engine.cache_stats(), CacheStats::default());
        assert!(ThresholdCache::default().is_empty());
    }

    #[test]
    fn persistence_sink_receives_inserts_and_preload_restores_warm() {
        #[derive(Default)]
        struct Captured(Mutex<Vec<ThresholdRecord>>);
        impl ThresholdSink for Captured {
            fn persist(&self, record: &ThresholdRecord) {
                self.0.lock().unwrap().push(record.clone());
            }
        }

        let sink = Arc::new(Captured::default());
        let store = ThresholdStore::new();
        store.set_persistence(sink.clone());

        let mut engine = AnalysisEngine::from_dataset(planted_dataset(4))
            .unwrap()
            .with_threshold_store(store.clone());
        let request = AnalysisRequest::for_k(2).with_replicates(8).with_seed(11);
        let first = engine.run(&request).unwrap();
        assert_eq!(first.cache_hits(), 0);

        let persisted = sink.0.lock().unwrap().clone();
        assert_eq!(persisted.len(), 1);
        assert_eq!((persisted[0].k, persisted[0].seed), (2, 11));

        // Records survive the JSON round-trip the embedded store performs.
        let json = serde_json::to_string(&persisted[0]).unwrap();
        let back: ThresholdRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, persisted[0]);
        assert_eq!(back.epsilon(), request.epsilon);

        // A cold process preloads the records and serves the query warm —
        // zero fresh Algorithm 1 runs.
        let cold = ThresholdStore::new();
        assert_eq!(cold.preload(persisted.clone()), 1);
        let mut warm_engine = AnalysisEngine::from_dataset(planted_dataset(4))
            .unwrap()
            .with_threshold_store(cold.clone());
        let warm = warm_engine.run(&request).unwrap();
        assert_eq!(warm.cache_hits(), 1);
        assert_eq!(warm.runs[0].report, first.runs[0].report);

        // Export is deterministic and carries the same identity.
        let exported = store.export();
        assert_eq!(exported.len(), 1);
        assert_eq!(exported[0].storage_key(), persisted[0].storage_key());

        // Neither the preload nor the warm hit re-invoked the sink.
        assert_eq!(sink.0.lock().unwrap().len(), 1);

        // A hit on the preloaded entry counts as a hit in the stats, and
        // the warm store's Debug form mentions it is not persistent.
        assert_eq!(cold.stats().hits, 1);
        assert!(format!("{cold:?}").contains("persistent: false"));
    }

    #[test]
    fn alpha_beta_changes_reuse_threshold_and_profile() {
        // Same (fingerprint, k, eps, delta, seed, backend): only the budgets
        // change, so the second run is a pure lookup + re-test.
        let mut engine = AnalysisEngine::from_dataset(planted_dataset(8)).unwrap();
        let base = AnalysisRequest::for_k(2).with_replicates(12);
        let strict = base.clone().with_alpha(0.01).with_beta(0.01);
        let loose = engine.run(&base).unwrap();
        let response = engine.run(&strict).unwrap();
        assert_eq!(response.cache_hits(), 1);
        assert_eq!(
            response.runs[0].report.threshold,
            loose.runs[0].report.threshold
        );
        // The engine holds one profile (shared) and one threshold entry.
        let profile_stats = engine.profile_cache_stats();
        assert_eq!(profile_stats.entries, 1);
        assert_eq!(profile_stats.misses, 1, "first run mined the profile");
        assert_eq!(profile_stats.hits, 1, "second run reused it");
        assert_eq!(engine.cache_stats().entries, 1);
    }

    #[test]
    fn sharded_and_bitmap_backends_share_threshold_entries() {
        // Sharded drives the identical scratch-bitmap replicate loop Bitmap
        // does, so the threshold key normalizes the two: a tenant configured
        // `sharded` must be served by a `bitmap` tenant's warm entry (and the
        // cached estimate equals its own recomputation, per backend parity).
        let dataset = planted_dataset(9);
        let store = ThresholdStore::new();
        let mut bitmap_engine = AnalysisEngine::from_dataset(dataset.clone())
            .unwrap()
            .with_backend(DatasetBackend::Bitmap)
            .with_threshold_store(store.clone());
        let mut sharded_engine = AnalysisEngine::from_dataset(dataset)
            .unwrap()
            .with_backend(DatasetBackend::Sharded)
            .with_threshold_store(store.clone());
        let request = AnalysisRequest::for_k(2).with_replicates(10);
        let cold = bitmap_engine.run(&request).unwrap();
        assert_eq!(cold.runs[0].threshold_cache, CacheStatus::Miss);
        let warm = sharded_engine.run(&request).unwrap();
        assert_eq!(
            warm.runs[0].threshold_cache,
            CacheStatus::Hit,
            "sharded must reuse the bitmap tenant's replicate-path entry"
        );
        assert_eq!(warm.runs[0].report.threshold, cold.runs[0].report.threshold);
        assert_eq!(store.stats().entries, 1);
        // Auto resolves to the bitmap replicate loop for this dense model, so
        // it shares the same entry too.
        let mut auto_engine = AnalysisEngine::from_dataset(planted_dataset(9))
            .unwrap()
            .with_threshold_store(store.clone());
        let auto = auto_engine.run(&request).unwrap();
        assert_eq!(auto.runs[0].threshold_cache, CacheStatus::Hit);
        assert_eq!(store.stats().entries, 1);
        // CSR genuinely differs in replicate path, so it stays a distinct key.
        let mut csr_engine = AnalysisEngine::from_dataset(planted_dataset(9))
            .unwrap()
            .with_backend(DatasetBackend::Csr)
            .with_threshold_store(store.clone());
        let csr = csr_engine.run(&request).unwrap();
        assert_eq!(csr.runs[0].threshold_cache, CacheStatus::Miss);
        assert_eq!(csr.runs[0].report.threshold, cold.runs[0].report.threshold);
    }

    #[test]
    fn profile_cache_is_lru_bounded_with_eviction_counters() {
        // Distinct seeds produce distinct thresholds (usually distinct
        // s_min), but the discriminating key axis here is the *miner*: the
        // same (k, s_min) under different miners occupies different slots, so
        // a capacity-1 cache must evict.
        let mut engine = AnalysisEngine::from_dataset(planted_dataset(5))
            .unwrap()
            .with_profile_cache_capacity(1);
        assert_eq!(engine.profile_cache_stats().capacity, Some(1));
        let base = AnalysisRequest::for_k(2).with_replicates(10);
        let apriori = engine.run(&base).unwrap();
        engine
            .run(&base.clone().with_miner(MinerKind::Eclat))
            .unwrap();
        let stats = engine.profile_cache_stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 1, "capacity 1 evicts the Apriori profile");
        // Re-running the evicted key re-mines — and produces the identical
        // report (the profile is derived state, never answers-changing).
        let again = engine.run(&base).unwrap();
        assert_eq!(again.runs[0].report, apriori.runs[0].report);
        let stats = engine.profile_cache_stats();
        assert_eq!(stats.misses, 3, "three distinct mining passes");
        assert_eq!(stats.evictions, 2);
        // The default bound is in force for fresh engines.
        let fresh = AnalysisEngine::from_dataset(planted_dataset(5)).unwrap();
        assert_eq!(
            fresh.profile_cache_stats().capacity,
            Some(DEFAULT_PROFILE_CACHE_CAPACITY)
        );
    }

    #[test]
    fn lru_cache_respects_capacity_and_counts_evictions() {
        let mut engine = AnalysisEngine::from_dataset(planted_dataset(3))
            .unwrap()
            .with_cache_capacity(2);
        let request = AnalysisRequest::for_k(2).with_replicates(8);

        // Three distinct keys through a capacity-2 cache: one eviction.
        let first = engine.run(&request.clone().with_seed(1)).unwrap();
        engine.run(&request.clone().with_seed(2)).unwrap();
        engine.run(&request.clone().with_seed(3)).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.capacity, Some(2));

        // Seed 1 was evicted (least recently used): re-running recomputes, and
        // the recomputation is bit-identical to the original run.
        let again = engine.run(&request.clone().with_seed(1)).unwrap();
        assert_eq!(again.runs[0].threshold_cache, CacheStatus::Miss);
        assert_eq!(again.runs[0].report, first.runs[0].report);

        // Recency is honoured: touch seed 3, insert seed 4 — seed 3 survives.
        engine.run(&request.clone().with_seed(3)).unwrap();
        engine.run(&request.clone().with_seed(4)).unwrap();
        let warm = engine.run(&request.clone().with_seed(3)).unwrap();
        assert_eq!(warm.runs[0].threshold_cache, CacheStatus::Hit);

        // Shrinking the bound evicts immediately; capacity 0 disables caching.
        let store = engine.threshold_store();
        store.set_capacity(Some(1));
        assert_eq!(store.len(), 1);
        store.set_capacity(Some(0));
        let cold = engine.run(&request.clone().with_seed(5)).unwrap();
        assert_eq!(cold.runs[0].threshold_cache, CacheStatus::Miss);
        assert!(store.is_empty());
    }

    #[test]
    fn shared_store_serves_thresholds_across_engines() {
        // Two tenants over byte-identical datasets: same Bernoulli fingerprint,
        // so with a shared store the second tenant's first query is a Hit.
        let dataset = planted_dataset(12);
        let store = ThresholdStore::new();
        let mut tenant_a = AnalysisEngine::from_dataset(dataset.clone())
            .unwrap()
            .with_threshold_store(store.clone());
        let mut tenant_b = AnalysisEngine::from_dataset(dataset)
            .unwrap()
            .with_threshold_store(store.clone());
        assert!(tenant_a.threshold_store().shares_with(&store));

        let request = AnalysisRequest::for_k(2).with_replicates(10);
        let cold = tenant_a.run(&request).unwrap();
        assert_eq!(cold.runs[0].threshold_cache, CacheStatus::Miss);
        let warm = tenant_b.run(&request).unwrap();
        assert_eq!(warm.runs[0].threshold_cache, CacheStatus::Hit);
        assert_eq!(warm.runs[0].report.threshold, cold.runs[0].report.threshold);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));

        // A tenant over a *different* null model never aliases those entries:
        // the fingerprint heads the key.
        let mut other = AnalysisEngine::from_dataset(planted_dataset(13))
            .unwrap()
            .with_threshold_store(store.clone());
        let third = other.run(&request).unwrap();
        assert_eq!(third.runs[0].threshold_cache, CacheStatus::Miss);
        assert_eq!(store.stats().entries, 2);

        // Engine clones share the store (documented behaviour).
        let clone = tenant_a.clone();
        assert!(clone.threshold_store().shares_with(&store));
    }

    #[test]
    fn dyn_engines_match_generic_engines_bit_for_bit() {
        let dataset = planted_dataset(7);
        let request = AnalysisRequest::for_k_range(2..=3).with_replicates(10);

        let mut generic = AnalysisEngine::from_dataset(dataset.clone()).unwrap();
        let expected = generic.run(&request).unwrap();

        // The erased constructor produces the same fingerprint, responses and
        // cache behaviour.
        let mut erased = AnalysisEngine::from_dataset_dyn(dataset.clone()).unwrap();
        assert_eq!(erased.fingerprint(), generic.fingerprint());
        let response = erased.run(&request).unwrap();
        assert_eq!(response, expected);

        // Engines over different model types unify under DynAnalysisEngine —
        // the property that makes them registry-storable.
        let swap = AnalysisEngine::with_swap_null_dyn(dataset.clone(), 2.0).unwrap();
        let mut shelf: Vec<DynAnalysisEngine> = vec![erased, swap];
        assert_ne!(shelf[0].fingerprint(), shelf[1].fingerprint());
        for engine in &mut shelf {
            assert!(engine.run(&request).is_ok());
        }

        // into_dyn keeps the warm caches: the converted engine serves the
        // sweep from its store, with reports identical to the cold run's.
        let warmed = generic.into_dyn().run(&request).unwrap();
        assert_eq!(warmed.cache_hits(), 2);
        assert_eq!(warmed.into_reports(), expected.clone().into_reports());

        // A threshold-only dyn engine works too.
        let model = BernoulliModel::new(60, vec![0.15; 8]).unwrap();
        let mut thresholds_only = AnalysisEngine::from_model_dyn(model);
        let runs = thresholds_only
            .thresholds(&AnalysisRequest::for_k(2).with_replicates(4))
            .unwrap();
        assert_eq!(runs.len(), 1);
    }

    #[test]
    fn observer_sees_stages_replicates_and_cache_hits() {
        use std::sync::Mutex;

        #[derive(Default)]
        struct Recorder {
            stages: Mutex<Vec<(usize, AnalysisStage, bool)>>,
            replicates: Mutex<Vec<(usize, usize, usize)>>,
            hits: Mutex<Vec<usize>>,
        }
        impl ProgressObserver for Recorder {
            fn stage_started(&self, k: usize, stage: AnalysisStage) {
                self.stages.lock().unwrap().push((k, stage, false));
            }
            fn replicate_completed(&self, k: usize, completed: usize, total: usize) {
                self.replicates.lock().unwrap().push((k, completed, total));
            }
            fn threshold_cache_hit(&self, k: usize) {
                self.hits.lock().unwrap().push(k);
            }
            fn stage_completed(&self, k: usize, stage: AnalysisStage) {
                self.stages.lock().unwrap().push((k, stage, true));
            }
        }

        let mut engine = AnalysisEngine::from_dataset(planted_dataset(1)).unwrap();
        let request = AnalysisRequest::for_k(2).with_replicates(8);
        let recorder = Recorder::default();
        engine.run_observed(&request, &recorder).unwrap();
        let stages = recorder.stages.into_inner().unwrap();
        // Threshold, Procedure2 and Procedure1 all start and complete, in order.
        assert_eq!(
            stages,
            vec![
                (2, AnalysisStage::Threshold, false),
                (2, AnalysisStage::Threshold, true),
                (2, AnalysisStage::Procedure2, false),
                (2, AnalysisStage::Procedure2, true),
                (2, AnalysisStage::Procedure1, false),
                (2, AnalysisStage::Procedure1, true),
            ]
        );
        let replicates = recorder.replicates.into_inner().unwrap();
        // One full round of 8 replicates (possibly more after restarts), each
        // reported against the right k and total.
        assert!(replicates.len() >= 8);
        assert!(replicates.iter().all(|&(k, _, total)| k == 2 && total == 8));
        assert!(replicates.iter().any(|&(_, completed, _)| completed == 8));
        assert!(recorder.hits.into_inner().unwrap().is_empty());

        // A warm rerun reports the cache hit and no replicates.
        let recorder = Recorder::default();
        engine.run_observed(&request, &recorder).unwrap();
        assert_eq!(recorder.hits.into_inner().unwrap(), vec![2]);
        assert!(recorder.replicates.into_inner().unwrap().is_empty());
    }
}

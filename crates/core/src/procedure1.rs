//! Procedure 1 of the paper: the baseline multi-comparison test.
//!
//! Mine `F_k(s_min)` — the k-itemsets with support at least the Poisson threshold —
//! from the real dataset; for each itemset `X` compute the Binomial p-value
//! `Pr[Bin(t, f_X) ≥ support(X)]` of its observed support under the null model
//! (`f_X` is the product of the individual item frequencies); and apply the
//! Benjamini–Yekutieli step-up procedure (Theorem 5) with `m = C(n, k)` hypotheses
//! to select a subset with FDR at most `β`.
//!
//! This is the comparison baseline of Table 5: it controls the FDR correctly, but
//! because it implicitly tests all `C(n, k)` hypotheses its power is often much lower
//! than Procedure 2's (the paper's ratio `r = Q_{k,s*} / |R|` is ≥ 1 in every case
//! where Procedure 2 finds a threshold).

use serde::{Deserialize, Serialize};
use sigfim_datasets::transaction::{ItemId, TransactionDataset};
use sigfim_mining::miner::MinerKind;
use sigfim_stats::multiple_testing::{benjamini_hochberg, benjamini_yekutieli, bonferroni};
use sigfim_stats::special::ln_choose;
use sigfim_stats::Binomial;

use crate::{CoreError, Result};

/// Which multiple-testing correction Procedure 1 applies to the per-itemset
/// p-values. The paper uses Benjamini–Yekutieli (valid under arbitrary dependence,
/// Theorem 5); the others are provided for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CorrectionMethod {
    /// Benjamini–Yekutieli (the paper's choice; FDR control under dependence).
    #[default]
    BenjaminiYekutieli,
    /// Benjamini–Hochberg (FDR control under independence/PRDS; anti-conservative
    /// here, included for comparison).
    BenjaminiHochberg,
    /// Bonferroni (FWER control; strictly more conservative than FDR control).
    Bonferroni,
}

impl CorrectionMethod {
    /// Human-readable name for reports and benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            CorrectionMethod::BenjaminiYekutieli => "Benjamini-Yekutieli",
            CorrectionMethod::BenjaminiHochberg => "Benjamini-Hochberg",
            CorrectionMethod::Bonferroni => "Bonferroni",
        }
    }
}

/// Configuration of Procedure 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Procedure1 {
    /// Itemset size `k`.
    pub k: usize,
    /// FDR budget `β` (significance level `α` for the Bonferroni ablation).
    pub beta: f64,
    /// Mining algorithm used to obtain `F_k(s_min)`.
    pub miner: MinerKind,
    /// Multiple-testing correction.
    pub correction: CorrectionMethod,
}

impl Procedure1 {
    /// Procedure 1 with the paper's defaults: Benjamini–Yekutieli at `β = 0.05`,
    /// Apriori mining.
    pub fn new(k: usize) -> Self {
        Procedure1 {
            k,
            beta: 0.05,
            miner: MinerKind::Apriori,
            correction: CorrectionMethod::BenjaminiYekutieli,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(CoreError::InvalidParameter {
                name: "k",
                reason: "must be >= 1".into(),
            });
        }
        if !(self.beta > 0.0 && self.beta < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "beta",
                reason: format!("must be in (0,1), got {}", self.beta),
            });
        }
        Ok(())
    }

    /// Run Procedure 1 on a dataset, testing the k-itemsets with support at least
    /// `s_min` (as produced by Algorithm 1 or the analytic bounds).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for invalid configuration or
    /// `s_min = 0`, and propagates mining/statistics errors.
    pub fn run(&self, dataset: &TransactionDataset, s_min: u64) -> Result<Procedure1Result> {
        self.validate()?;
        if s_min == 0 {
            return Err(CoreError::InvalidParameter {
                name: "s_min",
                reason: "support threshold must be at least 1".into(),
            });
        }
        let t = dataset.num_transactions() as u64;
        let n = dataset.num_items() as u64;
        let frequencies = dataset.item_frequencies();
        let candidates = self.miner.mine_k(dataset, self.k, s_min)?;

        // m = C(n, k): the number of hypotheses implicitly tested.
        let hypotheses = ln_choose(n, self.k as u64).exp();

        let mut tested: Vec<TestedItemset> = candidates
            .into_iter()
            .map(|candidate| {
                let f_itemset: f64 = candidate
                    .items
                    .iter()
                    .map(|&i| frequencies[i as usize])
                    .product();
                let expected_support = t as f64 * f_itemset;
                let p_value = Binomial::new(t, f_itemset)?.p_value_upper(candidate.support);
                Ok(TestedItemset {
                    items: candidate.items,
                    support: candidate.support,
                    expected_support,
                    p_value,
                    significant: false,
                })
            })
            .collect::<Result<_>>()?;

        if tested.is_empty() {
            return Ok(Procedure1Result {
                k: self.k,
                beta: self.beta,
                s_min,
                hypotheses,
                correction: self.correction,
                p_value_cutoff: None,
                itemsets: tested,
            });
        }

        let p_values: Vec<f64> = tested.iter().map(|t| t.p_value).collect();
        let outcome = match self.correction {
            CorrectionMethod::BenjaminiYekutieli => {
                benjamini_yekutieli(&p_values, self.beta, hypotheses)?
            }
            CorrectionMethod::BenjaminiHochberg => {
                benjamini_hochberg(&p_values, self.beta, hypotheses)?
            }
            CorrectionMethod::Bonferroni => bonferroni(&p_values, self.beta, hypotheses)?,
        };
        for &idx in &outcome.rejected {
            tested[idx].significant = true;
        }
        Ok(Procedure1Result {
            k: self.k,
            beta: self.beta,
            s_min,
            hypotheses,
            correction: self.correction,
            p_value_cutoff: outcome.p_value_cutoff,
            itemsets: tested,
        })
    }
}

/// One itemset of `F_k(s_min)` together with its test statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestedItemset {
    /// The items (sorted, distinct).
    pub items: Vec<ItemId>,
    /// Observed support in the real dataset.
    pub support: u64,
    /// Expected support `t · f_X` under the null model.
    pub expected_support: f64,
    /// Upper-tail Binomial p-value of the observed support.
    pub p_value: f64,
    /// Whether the correction rejected this itemset's null hypothesis.
    pub significant: bool,
}

/// The outcome of Procedure 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Procedure1Result {
    /// Itemset size.
    pub k: usize,
    /// FDR budget.
    pub beta: f64,
    /// The mining threshold (Poisson threshold `s_min`).
    pub s_min: u64,
    /// The number of hypotheses `m = C(n, k)` used by the correction.
    pub hypotheses: f64,
    /// The correction that was applied.
    pub correction: CorrectionMethod,
    /// The largest p-value that was rejected, if any.
    pub p_value_cutoff: Option<f64>,
    /// Every tested itemset (the whole of `F_k(s_min)`), with its verdict.
    pub itemsets: Vec<TestedItemset>,
}

impl Procedure1Result {
    /// The itemsets flagged as significant (the family `R` of Table 5).
    pub fn significant(&self) -> Vec<&TestedItemset> {
        self.itemsets.iter().filter(|i| i.significant).collect()
    }

    /// Number of significant itemsets, `|R|`.
    pub fn num_significant(&self) -> usize {
        self.itemsets.iter().filter(|i| i.significant).count()
    }

    /// Number of itemsets tested, `|F_k(s_min)|`.
    pub fn num_tested(&self) -> usize {
        self.itemsets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sigfim_datasets::random::{BernoulliModel, PlantedConfig, PlantedModel, PlantedPattern};

    fn planted_dataset(seed: u64) -> (TransactionDataset, Vec<ItemId>) {
        let background = BernoulliModel::new(600, vec![0.05; 30]).unwrap();
        let pattern = PlantedPattern::new(vec![2, 11], 80).unwrap();
        let model = PlantedModel::new(PlantedConfig {
            background,
            patterns: vec![pattern],
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        (model.sample(&mut rng), vec![2, 11])
    }

    #[test]
    fn validation() {
        let (data, _) = planted_dataset(1);
        assert!(Procedure1 {
            k: 0,
            ..Procedure1::new(2)
        }
        .run(&data, 5)
        .is_err());
        assert!(Procedure1 {
            beta: 0.0,
            ..Procedure1::new(2)
        }
        .run(&data, 5)
        .is_err());
        assert!(Procedure1 {
            beta: 1.0,
            ..Procedure1::new(2)
        }
        .run(&data, 5)
        .is_err());
        assert!(Procedure1::new(2).run(&data, 0).is_err());
    }

    #[test]
    fn planted_pair_is_discovered() {
        let (data, planted) = planted_dataset(7);
        // Expected support of any pair under the null is 600 * 0.0025 = 1.5; the
        // planted pair has support >= 80. Test the itemsets with support >= 10.
        let result = Procedure1::new(2).run(&data, 10).unwrap();
        assert!(result.num_tested() >= 1);
        let significant = result.significant();
        assert!(
            significant.iter().any(|i| i.items == planted),
            "planted pair not flagged; tested {:?}",
            result.itemsets
        );
        // The p-value of the planted pair must be astronomically small.
        let planted_entry = result
            .itemsets
            .iter()
            .find(|i| i.items == planted)
            .expect("pair was tested");
        assert!(planted_entry.p_value < 1e-20);
        // Planting the pair also inflates the marginal frequencies of its two items
        // (to roughly 0.18), so the null expectation is ~19 rather than the
        // background's 1.5 — still far below the observed support of 80+.
        assert!(planted_entry.expected_support < 30.0);
        assert!(planted_entry.support as f64 > 2.0 * planted_entry.expected_support);
    }

    #[test]
    fn pure_noise_yields_no_discoveries() {
        let background = BernoulliModel::new(600, vec![0.05; 30]).unwrap();
        let mut rng = StdRng::seed_from_u64(33);
        let data = background.sample(&mut rng);
        // Mine at a low threshold so that some pairs are tested, but none should
        // survive the correction with m = C(30,2) hypotheses.
        let result = Procedure1::new(2).run(&data, 4).unwrap();
        assert_eq!(
            result.num_significant(),
            0,
            "false discoveries on pure noise: {:?}",
            result.significant()
        );
    }

    #[test]
    fn empty_candidate_set_is_handled() {
        let (data, _) = planted_dataset(2);
        let result = Procedure1::new(2).run(&data, 10_000).unwrap();
        assert_eq!(result.num_tested(), 0);
        assert_eq!(result.num_significant(), 0);
        assert!(result.p_value_cutoff.is_none());
    }

    #[test]
    fn corrections_are_ordered_by_conservativeness() {
        let (data, _) = planted_dataset(9);
        let run = |correction: CorrectionMethod| {
            Procedure1 {
                correction,
                ..Procedure1::new(2)
            }
            .run(&data, 5)
            .unwrap()
            .num_significant()
        };
        let bonferroni = run(CorrectionMethod::Bonferroni);
        let by = run(CorrectionMethod::BenjaminiYekutieli);
        let bh = run(CorrectionMethod::BenjaminiHochberg);
        // Both orderings below are theorems: BH rejects a superset of Bonferroni
        // (any p <= beta/m clears every step-up threshold), and BY is BH with the
        // threshold shrunk by the harmonic factor.
        assert!(bonferroni <= bh, "Bonferroni must not reject more than BH");
        assert!(by <= bh, "BY must not reject more than BH");
    }

    #[test]
    fn hypothesis_count_is_choose_n_k() {
        let (data, _) = planted_dataset(4);
        let result = Procedure1::new(2).run(&data, 10).unwrap();
        // C(30, 2) = 435.
        assert!((result.hypotheses - 435.0).abs() < 1e-6);
        let result3 = Procedure1::new(3).run(&data, 5).unwrap();
        // C(30, 3) = 4060.
        assert!((result3.hypotheses - 4060.0).abs() < 1e-4);
    }

    #[test]
    fn correction_names() {
        assert_eq!(CorrectionMethod::default().name(), "Benjamini-Yekutieli");
        assert_eq!(CorrectionMethod::Bonferroni.name(), "Bonferroni");
        assert_eq!(
            CorrectionMethod::BenjaminiHochberg.name(),
            "Benjamini-Hochberg"
        );
    }
}

//! Procedure 2 of the paper: establishing a support threshold `s*` for significant
//! frequent itemsets with FDR control (Theorem 6).
//!
//! Given the Poisson threshold `s_min` (from Algorithm 1 or the analytic bounds) and
//! the maximum item support `s_max`, the procedure probes the geometric grid
//! `s_0 = s_min`, `s_i = s_min + 2^i` for `1 ≤ i < h`, `h = ⌊log₂(s_max − s_min)⌋ + 1`.
//! At each `s_i` it tests the null hypothesis that the observed count `Q_{k,s_i}` of
//! k-itemsets with support ≥ `s_i` was drawn from the Poisson distribution with mean
//! `λ_i = E[Q̂_{k,s_i}]`. The null is rejected when
//!
//! * the Poisson upper-tail p-value `Pr[Poisson(λ_i) ≥ Q_{k,s_i}]` is at most `α_i`
//!   (with `Σ α_i = α`, so all rejections are simultaneously correct with
//!   probability ≥ 1 − α), **and**
//! * `Q_{k,s_i} ≥ β_i λ_i` (with `Σ 1/β_i ≤ β`), the strengthening that yields the
//!   FDR bound of Theorem 6.
//!
//! `s*` is the first grid point whose null is rejected; the k-itemsets with support
//! at least `s*` are then returned as significant, with FDR ≤ β at confidence
//! 1 − α. If no grid point is rejected the procedure returns `s* = ∞` (`None`),
//! which is itself informative: at the high supports where the Poisson approximation
//! holds, the dataset is indistinguishable from its null model.

use serde::{Deserialize, Serialize};
use sigfim_datasets::bitmap::{BitmapDataset, DatasetBackend, ResolvedBackend};
use sigfim_datasets::sharded::ShardedBitmapDataset;
use sigfim_datasets::spill::SpilledShards;
use sigfim_datasets::transaction::TransactionDataset;
use sigfim_exec::ExecutionPolicy;
use sigfim_mining::counting::SupportProfile;
use sigfim_mining::eclat::Eclat;
use sigfim_mining::itemset::ItemsetSupport;
use sigfim_mining::miner::MinerKind;
use sigfim_mining::par_eclat::ParallelEclat;
use sigfim_mining::sharded::{mine_k_sharded, mine_k_spilled};
use sigfim_stats::testing::{split_alpha_evenly, split_beta_evenly};
use sigfim_stats::Poisson;

use crate::lambda::LambdaEstimator;
use crate::{CoreError, Result};

/// Configuration of Procedure 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Procedure2 {
    /// Itemset size `k`.
    pub k: usize,
    /// Global confidence budget `α`: with probability at least `1 − α` every
    /// rejection made by the procedure is correct.
    pub alpha: f64,
    /// FDR budget `β` for the returned family.
    pub beta: f64,
    /// Mining algorithm used to compute the support profile and the final
    /// family. [`MinerKind::ParEclat`] makes the bitmap/sharded passes run
    /// the subtree-parallel Eclat under [`Procedure2::policy`]; every miner
    /// yields bit-identical results.
    pub miner: MinerKind,
    /// Physical dataset representation for the profile mining and the final
    /// family: `Auto` resolves from the dataset's measured density, the
    /// bitmap path mines with the bitset Eclat over a bitmap built once, and
    /// the sharded path fans the counting of each level out shard-by-shard
    /// under [`Procedure2::policy`]. The result is identical under every
    /// backend.
    pub backend: DatasetBackend,
    /// Where the sharded backend's per-level counting passes execute.
    /// Counting is bit-identical under every policy (partial counts are exact
    /// and reduced in fixed shard order); the CSR and unsharded-bitmap paths
    /// ignore it.
    pub policy: ExecutionPolicy,
}

impl Procedure2 {
    /// Procedure 2 with the paper's experimental parameters `α = β = 0.05` and
    /// Apriori mining.
    pub fn new(k: usize) -> Self {
        Procedure2 {
            k,
            alpha: 0.05,
            beta: 0.05,
            miner: MinerKind::Apriori,
            backend: DatasetBackend::Auto,
            policy: ExecutionPolicy::Sequential,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(CoreError::InvalidParameter {
                name: "k",
                reason: "must be >= 1".into(),
            });
        }
        for (name, value) in [("alpha", self.alpha), ("beta", self.beta)] {
            if !(value > 0.0 && value < 1.0) {
                return Err(CoreError::InvalidParameter {
                    name: if name == "alpha" { "alpha" } else { "beta" },
                    reason: format!("must be in (0,1), got {value}"),
                });
            }
        }
        Ok(())
    }

    /// The support grid probed by the procedure: `s_0 = s_min`, `s_i = s_min + 2^i`.
    pub fn support_grid(s_min: u64, s_max: u64) -> Vec<u64> {
        if s_max <= s_min {
            return vec![s_min];
        }
        let h = ((s_max - s_min) as f64).log2().floor() as u32 + 1;
        let mut grid = vec![s_min];
        for i in 1..h {
            grid.push(s_min + 2u64.pow(i));
        }
        grid
    }

    /// Run Procedure 2.
    ///
    /// * `s_min` — the Poisson threshold (Algorithm 1's `ŝ_min` or an analytic value).
    /// * `lambda` — an estimator of `λ(s) = E[Q̂_{k,s}]` under the null model (the
    ///   Monte-Carlo estimator from the same Algorithm-1 run, or [`crate::ExactLambda`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for invalid configuration or
    /// `s_min = 0`, and propagates mining/statistics errors.
    pub fn run(
        &self,
        dataset: &TransactionDataset,
        s_min: u64,
        lambda: &dyn LambdaEstimator,
    ) -> Result<Procedure2Result> {
        self.validate()?;
        if s_min == 0 {
            return Err(CoreError::InvalidParameter {
                name: "s_min",
                reason: "the Poisson threshold must be at least 1".into(),
            });
        }

        // Resolve the physical representation once; on the bitmap paths the
        // bit-columns are built a single time and serve both the profile pass
        // and the final family mining below. (A long-lived `AnalysisEngine`
        // instead builds the views once per dataset and calls
        // `run_prepared` directly, amortizing them over a whole k-sweep.)
        let s_max = dataset.max_item_support();
        let backend = self.backend.resolve_for_dataset(dataset);
        let (bitmap, sharded) = match backend {
            ResolvedBackend::Bitmap if s_max >= s_min => {
                (Some(BitmapDataset::from_dataset(dataset)), None)
            }
            ResolvedBackend::ShardedBitmap if s_max >= s_min => {
                (None, Some(ShardedBitmapDataset::from_dataset(dataset)))
            }
            _ => (None, None),
        };
        // Inline `mine_profile` against the already-computed `s_max` (the
        // support scan is O(entries); no need to repeat it per stage).
        let profile = if s_max < s_min {
            SupportProfile::from_itemsets(self.k, s_min, &[])
        } else {
            match (&bitmap, &sharded) {
                (Some(bitmap), _) if self.miner == MinerKind::ParEclat => {
                    SupportProfile::from_bitmap_parallel(bitmap, self.k, s_min, self.policy)?
                }
                (Some(bitmap), _) => SupportProfile::from_bitmap(bitmap, self.k, s_min)?,
                (None, Some(sharded)) if self.miner == MinerKind::ParEclat => {
                    SupportProfile::from_sharded_parallel(sharded, self.k, s_min, self.policy)?
                }
                (None, Some(sharded)) => {
                    SupportProfile::from_sharded(sharded, self.k, s_min, self.policy)?
                }
                (None, None) => SupportProfile::with_miner(self.miner, dataset, self.k, s_min)?,
            }
        };
        // One-shot runs stay fully resident: spilling only pays off when a
        // long-lived engine amortizes the spill files over many requests.
        self.run_prepared(
            dataset,
            bitmap.as_ref(),
            sharded.as_ref(),
            None,
            &profile,
            s_min,
            lambda,
        )
    }

    /// One mining pass at the floor `s_min`, answering every `Q_{k,s_i}` query
    /// of the grid: via the bitset Eclat when a bitmap is supplied, via the
    /// shard-parallel level-wise sweep when a sharded bitmap is supplied (each
    /// level's counting fans out under `policy`), via the selected miner
    /// (counting through the density-chosen `SupportCounter`) otherwise. With
    /// `miner = MinerKind::ParEclat` the bitmap and sharded passes instead run
    /// the subtree-parallel Eclat under `policy` — bit-identical profiles
    /// either way. When no itemset can reach the floor the profile is empty
    /// without any mining pass. A supplied `bitmap` wins over `sharded` and
    /// `spilled`, and `spilled` wins over `sharded` (engines hold at most
    /// one). A `spilled` view counts under the residency budget: resident
    /// shards are visited first and cold shards are faulted in (and possibly
    /// evicted again) exactly once per level.
    ///
    /// # Errors
    ///
    /// Propagates mining errors (e.g. `k = 0` or `s_min = 0`).
    #[allow(clippy::too_many_arguments)]
    pub fn mine_profile(
        miner: MinerKind,
        dataset: &TransactionDataset,
        bitmap: Option<&BitmapDataset>,
        sharded: Option<&ShardedBitmapDataset>,
        spilled: Option<&SpilledShards>,
        k: usize,
        s_min: u64,
        policy: ExecutionPolicy,
    ) -> Result<SupportProfile> {
        if dataset.max_item_support() < s_min {
            return Ok(SupportProfile::from_itemsets(k, s_min, &[]));
        }
        match (bitmap, spilled, sharded) {
            (Some(bitmap), _, _) if miner == MinerKind::ParEclat => Ok(
                SupportProfile::from_bitmap_parallel(bitmap, k, s_min, policy)?,
            ),
            (Some(bitmap), _, _) => Ok(SupportProfile::from_bitmap(bitmap, k, s_min)?),
            (None, Some(spilled), _) if miner == MinerKind::ParEclat => Ok(
                SupportProfile::from_spilled_parallel(spilled, k, s_min, policy)?,
            ),
            (None, Some(spilled), _) => {
                Ok(SupportProfile::from_spilled(spilled, k, s_min, policy)?)
            }
            (None, None, Some(sharded)) if miner == MinerKind::ParEclat => Ok(
                SupportProfile::from_sharded_parallel(sharded, k, s_min, policy)?,
            ),
            (None, None, Some(sharded)) => {
                Ok(SupportProfile::from_sharded(sharded, k, s_min, policy)?)
            }
            (None, None, None) => Ok(SupportProfile::with_miner(miner, dataset, k, s_min)?),
        }
    }

    /// Run Procedure 2 against pre-built state: a `bitmap`, `sharded`, or
    /// out-of-core `spilled` view of `dataset` (all `None` for the CSR path)
    /// and the floor `profile` mined at `s_min` (see
    /// [`Procedure2::mine_profile`]). This is the engine entry point: the
    /// views are built once per dataset and the profile once per
    /// `(k, s_min)`, then shared across every request that needs them.
    /// Equivalent to [`Procedure2::run`] when the supplied state matches the
    /// dataset; the spilled path yields bit-identical results at any
    /// residency budget.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for invalid configuration,
    /// `s_min = 0`, or a `profile` that does not cover this `(k, s_min)`, and
    /// propagates mining/statistics errors.
    #[allow(clippy::too_many_arguments)]
    pub fn run_prepared(
        &self,
        dataset: &TransactionDataset,
        bitmap: Option<&BitmapDataset>,
        sharded: Option<&ShardedBitmapDataset>,
        spilled: Option<&SpilledShards>,
        profile: &SupportProfile,
        s_min: u64,
        lambda: &dyn LambdaEstimator,
    ) -> Result<Procedure2Result> {
        self.validate()?;
        if s_min == 0 {
            return Err(CoreError::InvalidParameter {
                name: "s_min",
                reason: "the Poisson threshold must be at least 1".into(),
            });
        }
        if profile.k() != self.k || profile.floor() > s_min {
            return Err(CoreError::InvalidParameter {
                name: "profile",
                reason: format!(
                    "support profile covers k = {} above floor {} but the run needs k = {} at s_min = {s_min}",
                    profile.k(),
                    profile.floor(),
                    self.k
                ),
            });
        }

        let s_max = dataset.max_item_support();
        let grid = Self::support_grid(s_min, s_max);
        let h = grid.len();
        let alphas = split_alpha_evenly(self.alpha, h);
        let betas = split_beta_evenly(self.beta, h);

        let mut tests = Vec::with_capacity(h);
        let mut s_star = None;
        for (i, &s_i) in grid.iter().enumerate() {
            let q = if s_max >= s_min { profile.q_at(s_i) } else { 0 };
            let lambda_i = lambda.lambda(s_i).max(0.0);
            let p_value = Poisson::new(lambda_i)?.p_value_upper(q);
            let poisson_reject = p_value <= alphas[i];
            let magnitude_reject = q as f64 >= betas[i] * lambda_i && q > 0;
            let rejected = poisson_reject && magnitude_reject;
            tests.push(ThresholdTest {
                s: s_i,
                q,
                lambda: lambda_i,
                p_value,
                alpha_i: alphas[i],
                beta_i: betas[i],
                poisson_reject,
                magnitude_reject,
                rejected,
            });
            if rejected && s_star.is_none() {
                s_star = Some(s_i);
                // The paper's pseudocode stops at the first rejection; we keep
                // evaluating the remaining grid points because the full trace is
                // cheap and useful for reports, but the decision is already made.
            }
        }

        let significant = match (s_star, bitmap, spilled, sharded) {
            (Some(s), Some(bitmap), _, _) if self.miner == MinerKind::ParEclat => {
                ParallelEclat::new(self.policy).mine_k_bitmap(bitmap, self.k, s)?
            }
            (Some(s), Some(bitmap), _, _) => Eclat.mine_k_bitmap(bitmap, self.k, s)?,
            (Some(s), None, Some(spilled), _) if self.miner == MinerKind::ParEclat => {
                ParallelEclat::new(self.policy).mine_k_spilled(spilled, self.k, s)?
            }
            (Some(s), None, Some(spilled), _) => mine_k_spilled(spilled, self.k, s, self.policy)?,
            (Some(s), None, None, Some(sharded)) if self.miner == MinerKind::ParEclat => {
                ParallelEclat::new(self.policy).mine_k_sharded(sharded, self.k, s)?
            }
            (Some(s), None, None, Some(sharded)) => {
                mine_k_sharded(sharded, self.k, s, self.policy)?
            }
            (Some(s), None, None, None) => self.miner.mine_k(dataset, self.k, s)?,
            (None, _, _, _) => Vec::new(),
        };

        Ok(Procedure2Result {
            k: self.k,
            alpha: self.alpha,
            beta: self.beta,
            s_min,
            s_max,
            s_star,
            tests,
            significant,
        })
    }
}

/// The outcome of testing one grid point `s_i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdTest {
    /// The probed support threshold `s_i`.
    pub s: u64,
    /// Observed number of k-itemsets with support ≥ `s_i` in the real dataset.
    pub q: u64,
    /// Poisson mean `λ_i = E[Q̂_{k,s_i}]` under the null model.
    pub lambda: f64,
    /// Upper-tail Poisson p-value `Pr[Poisson(λ_i) ≥ Q_{k,s_i}]`.
    pub p_value: f64,
    /// The per-test significance budget `α_i`.
    pub alpha_i: f64,
    /// The per-test magnitude multiplier `β_i` (rejection also requires
    /// `Q ≥ β_i λ_i`).
    pub beta_i: f64,
    /// Whether the p-value condition held.
    pub poisson_reject: bool,
    /// Whether the magnitude condition held.
    pub magnitude_reject: bool,
    /// Whether the null hypothesis at this grid point was rejected (both conditions).
    pub rejected: bool,
}

/// The outcome of Procedure 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Procedure2Result {
    /// Itemset size.
    pub k: usize,
    /// Confidence budget `α`.
    pub alpha: f64,
    /// FDR budget `β`.
    pub beta: f64,
    /// The Poisson threshold the grid started from.
    pub s_min: u64,
    /// The maximum item support of the dataset (upper end of the grid).
    pub s_max: u64,
    /// The selected threshold `s*`; `None` encodes the paper's `s* = ∞` (no
    /// significant deviation from the null model at high supports).
    pub s_star: Option<u64>,
    /// Every grid point that was tested, in increasing order of `s`.
    pub tests: Vec<ThresholdTest>,
    /// The significant family `F_k(s*)` (empty when `s* = ∞`).
    pub significant: Vec<ItemsetSupport>,
}

impl Procedure2Result {
    /// `Q_{k,s*}`: the number of itemsets returned as significant.
    pub fn num_significant(&self) -> usize {
        self.significant.len()
    }

    /// The number of grid points probed (`h` in the paper).
    pub fn num_tests(&self) -> usize {
        self.tests.len()
    }

    /// The Poisson mean at the selected threshold, if one was selected.
    pub fn lambda_at_s_star(&self) -> Option<f64> {
        let s_star = self.s_star?;
        self.tests.iter().find(|t| t.s == s_star).map(|t| t.lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lambda::MonteCarloLambda;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sigfim_datasets::random::{BernoulliModel, PlantedConfig, PlantedModel, PlantedPattern};

    /// A λ estimator with a constant value, handy for exercising the decision logic.
    struct ConstantLambda(f64);
    impl LambdaEstimator for ConstantLambda {
        fn lambda(&self, _s: u64) -> f64 {
            self.0
        }
    }

    #[test]
    fn support_grid_shape() {
        // s_min = 10, s_max = 100: h = floor(log2(90)) + 1 = 7.
        let grid = Procedure2::support_grid(10, 100);
        assert_eq!(grid, vec![10, 12, 14, 18, 26, 42, 74]);
        // Degenerate range collapses to a single probe.
        assert_eq!(Procedure2::support_grid(10, 10), vec![10]);
        assert_eq!(Procedure2::support_grid(10, 5), vec![10]);
        // Every grid point stays within [s_min, s_min + 2^h).
        let grid = Procedure2::support_grid(5, 1_000_000);
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(grid[0], 5);
    }

    #[test]
    fn validation() {
        let d = TransactionDataset::from_transactions(3, vec![vec![0, 1, 2]]).unwrap();
        let lambda = ConstantLambda(1.0);
        assert!(Procedure2 {
            k: 0,
            ..Procedure2::new(2)
        }
        .run(&d, 1, &lambda)
        .is_err());
        assert!(Procedure2 {
            alpha: 0.0,
            ..Procedure2::new(2)
        }
        .run(&d, 1, &lambda)
        .is_err());
        assert!(Procedure2 {
            beta: 1.0,
            ..Procedure2::new(2)
        }
        .run(&d, 1, &lambda)
        .is_err());
        assert!(Procedure2::new(2).run(&d, 0, &lambda).is_err());
    }

    fn planted_dataset(seed: u64) -> (TransactionDataset, Vec<u32>) {
        let background = BernoulliModel::new(800, vec![0.05; 25]).unwrap();
        let pattern = PlantedPattern::new(vec![4, 17], 120).unwrap();
        let model = PlantedModel::new(PlantedConfig {
            background,
            patterns: vec![pattern],
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        (model.sample(&mut rng), vec![4, 17])
    }

    #[test]
    fn planted_structure_yields_finite_s_star() {
        let (data, planted) = planted_dataset(5);
        // Null model for pairs of 0.05-frequency items in 800 transactions: expected
        // pair support 2; λ(s) drops fast. Use a Monte-Carlo style table for λ.
        let lambda =
            MonteCarloLambda::new(8, vec![1.2, 0.6, 0.3, 0.12, 0.05, 0.02, 0.01, 0.0]).unwrap();
        let result = Procedure2::new(2).run(&data, 8, &lambda).unwrap();
        let s_star = result
            .s_star
            .expect("the planted pair must trigger a rejection");
        assert!(s_star >= 8);
        assert!(result.num_significant() >= 1);
        assert!(
            result.significant.iter().any(|i| i.items == planted),
            "planted pair missing from F_k(s*): {:?}",
            result.significant
        );
        // Every returned itemset respects the threshold.
        assert!(result.significant.iter().all(|i| i.support >= s_star));
        // The test trace is coherent: the first rejected entry is s*.
        let first_rejected = result.tests.iter().find(|t| t.rejected).unwrap();
        assert_eq!(first_rejected.s, s_star);
        assert_eq!(result.lambda_at_s_star(), Some(first_rejected.lambda));
    }

    #[test]
    fn pure_noise_yields_infinite_s_star() {
        let background = BernoulliModel::new(800, vec![0.05; 25]).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let data = background.sample(&mut rng);
        let lambda =
            MonteCarloLambda::new(8, vec![1.2, 0.6, 0.3, 0.12, 0.05, 0.02, 0.01, 0.0]).unwrap();
        let result = Procedure2::new(2).run(&data, 8, &lambda).unwrap();
        assert!(
            result.s_star.is_none(),
            "no threshold should be found on pure noise"
        );
        assert!(result.significant.is_empty());
        assert_eq!(result.num_significant(), 0);
    }

    #[test]
    fn both_conditions_are_required() {
        let (data, _) = planted_dataset(6);
        // With a huge λ the observed Q is never a surprise: no rejection.
        let huge = ConstantLambda(1e6);
        let result = Procedure2::new(2).run(&data, 8, &huge).unwrap();
        assert!(result.s_star.is_none());
        assert!(result.tests.iter().all(|t| !t.rejected));

        // With λ small but β_i enormous the magnitude condition blocks rejection:
        // force that by a tiny beta (β_i = h / β becomes huge).
        let small = ConstantLambda(0.5);
        let strict_beta = Procedure2 {
            beta: 1e-9,
            ..Procedure2::new(2)
        };
        // beta must be in (0,1): 1e-9 is valid and makes β_i astronomically large.
        let result = strict_beta.run(&data, 8, &small).unwrap();
        for t in &result.tests {
            if t.rejected {
                assert!(t.q as f64 >= t.beta_i * t.lambda);
            }
        }
    }

    #[test]
    fn zero_lambda_far_tail_is_handled() {
        let (data, _) = planted_dataset(8);
        // λ = 0 beyond the Monte-Carlo range: a single observed itemset is already
        // infinitely surprising, so rejection hinges on Q >= β_i * 0 = 0 and Q > 0.
        let lambda = ConstantLambda(0.0);
        let result = Procedure2::new(2).run(&data, 8, &lambda).unwrap();
        assert!(result.s_star.is_some());
        for t in &result.tests {
            assert!(t.p_value >= 0.0 && t.p_value <= 1.0);
        }
    }

    #[test]
    fn s_min_above_all_supports_tests_nothing_significant() {
        let (data, _) = planted_dataset(3);
        let lambda = ConstantLambda(0.1);
        let s_min = data.max_item_support() + 10;
        let result = Procedure2::new(2).run(&data, s_min, &lambda).unwrap();
        assert_eq!(result.tests.len(), 1);
        assert_eq!(result.tests[0].q, 0);
        assert!(result.s_star.is_none());
    }
}

//! Validation harness: empirical FDR / power against planted ground truth, and a
//! direct check of the Poisson approximation quality that Theorem 1 promises.
//!
//! These utilities are not part of the paper's procedures themselves; they are the
//! instruments used to *verify* the reproduction — e.g. that Procedure 2's output on
//! planted datasets has empirical FDR below β, that it returns `s* = ∞` on pure
//! noise (the paper's Table 4), and that the distribution of `Q̂_{k,s}` really is
//! close to Poisson above `ŝ_min`.

use std::collections::HashMap;

use rand::Rng;
use serde::{Deserialize, Serialize};

use sigfim_datasets::bitmap::{with_bitmap_scratch, DatasetBackend, ResolvedBackend};
use sigfim_datasets::random::{BernoulliModel, NullModel};
use sigfim_datasets::transaction::ItemId;
use sigfim_mining::apriori::Apriori;
use sigfim_mining::eclat::Eclat;
use sigfim_mining::miner::KItemsetMiner;
use sigfim_stats::Poisson;

use crate::{CoreError, Result};

/// True if `itemset` is a subset of at least one planted pattern — the criterion for
/// a discovery to count as *true*: a planted pattern induces genuine correlation
/// among all of its sub-itemsets, so any of them is a legitimate finding.
pub fn is_true_discovery(itemset: &[ItemId], planted_patterns: &[Vec<ItemId>]) -> bool {
    planted_patterns.iter().any(|pattern| {
        itemset
            .iter()
            .all(|item| pattern.binary_search(item).is_ok())
    })
}

/// Empirical false discovery proportion of a set of discovered k-itemsets against
/// planted ground truth: the fraction of discoveries that are not sub-itemsets of
/// any planted pattern. Zero when nothing was discovered (the FDR convention
/// `V/R = 0` when `R = 0`).
pub fn empirical_fdr(discoveries: &[Vec<ItemId>], planted_patterns: &[Vec<ItemId>]) -> f64 {
    if discoveries.is_empty() {
        return 0.0;
    }
    let false_discoveries = discoveries
        .iter()
        .filter(|d| !is_true_discovery(d, planted_patterns))
        .count();
    false_discoveries as f64 / discoveries.len() as f64
}

/// Empirical power: the fraction of the planted k-sub-itemsets that appear among the
/// discoveries. Patterns smaller than `k` contribute nothing; patterns of size ≥ k
/// contribute all of their k-subsets.
pub fn empirical_power(
    discoveries: &[Vec<ItemId>],
    planted_patterns: &[Vec<ItemId>],
    k: usize,
) -> f64 {
    let mut expected: Vec<Vec<ItemId>> = Vec::new();
    for pattern in planted_patterns {
        if pattern.len() < k {
            continue;
        }
        sigfim_mining::itemset::for_each_k_subset(pattern, k, |subset| {
            expected.push(subset.to_vec());
        });
    }
    expected.sort_unstable();
    expected.dedup();
    if expected.is_empty() {
        return 1.0;
    }
    let discovered: std::collections::HashSet<&[ItemId]> =
        discoveries.iter().map(|d| d.as_slice()).collect();
    let hits = expected
        .iter()
        .filter(|e| discovered.contains(e.as_slice()))
        .count();
    hits as f64 / expected.len() as f64
}

/// The outcome of a Poisson-approximation quality check at one `(k, s)` point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoissonFitReport {
    /// Itemset size.
    pub k: usize,
    /// Support threshold.
    pub s: u64,
    /// Number of random datasets sampled.
    pub replicates: usize,
    /// Empirical mean of `Q̂_{k,s}`.
    pub empirical_mean: f64,
    /// Empirical variance of `Q̂_{k,s}` (a Poisson variable has variance = mean).
    pub empirical_variance: f64,
    /// Total variation distance between the empirical distribution of `Q̂_{k,s}` and
    /// the Poisson distribution with the same mean.
    pub total_variation: f64,
    /// The empirical distribution itself: `counts[q]` = number of replicates with
    /// `Q̂_{k,s} = q` (sparse map, keyed by observed count).
    pub counts: Vec<(u64, u64)>,
}

/// Sample `Q̂_{k,s}` from the null model `replicates` times and measure how far its
/// empirical distribution is from a Poisson distribution with the same mean.
///
/// This is the quantity Theorem 1 bounds by `b1 + b2`: for `s ≥ s_min` the reported
/// total-variation distance should be small (up to Monte-Carlo noise of order
/// `1/sqrt(replicates)`).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for `k = 0`, `s = 0` or zero replicates,
/// and propagates mining errors.
pub fn poisson_fit<R: Rng + ?Sized>(
    model: &BernoulliModel,
    k: usize,
    s: u64,
    replicates: usize,
    rng: &mut R,
) -> Result<PoissonFitReport> {
    poisson_fit_with_backend(model, k, s, replicates, DatasetBackend::Auto, rng)
}

/// [`poisson_fit`] with an explicit dataset-backend choice for its replicate
/// loop. On the bitmap path every replicate is sampled bit-sliced into this
/// thread's reusable scratch bitmap and mined with the bitset Eclat — no
/// per-replicate dataset allocation at all. The reported distribution is
/// identical under every backend (the RNG is consumed identically and all
/// miners return the same `Q̂_{k,s}`).
///
/// # Errors
///
/// Same conditions as [`poisson_fit`].
pub fn poisson_fit_with_backend<R: Rng + ?Sized>(
    model: &BernoulliModel,
    k: usize,
    s: u64,
    replicates: usize,
    backend: DatasetBackend,
    rng: &mut R,
) -> Result<PoissonFitReport> {
    if k == 0 || s == 0 {
        return Err(CoreError::InvalidParameter {
            name: "k/s",
            reason: "itemset size and support threshold must be at least 1".into(),
        });
    }
    if replicates == 0 {
        return Err(CoreError::InvalidParameter {
            name: "replicates",
            reason: "at least one replicate is required".into(),
        });
    }
    let resolved = backend.resolve(
        model.num_items() as u32,
        model.num_transactions(),
        NullModel::expected_density(model),
    );
    let miner = Apriori::default();
    let mut histogram: HashMap<u64, u64> = HashMap::new();
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for _ in 0..replicates {
        let q = match resolved {
            ResolvedBackend::Csr => {
                let dataset = model.sample(rng);
                miner.mine_k(&dataset, k, s)?.len() as u64
            }
            // Sharded resolves to the scratch-bitmap replicate path, exactly
            // as in Algorithm 1 (see `FindPoissonThreshold`).
            ResolvedBackend::Bitmap | ResolvedBackend::ShardedBitmap => {
                with_bitmap_scratch(|scratch| {
                    model.sample_into_bitmap(rng, scratch);
                    Eclat
                        .mine_k_bitmap(scratch, k, s)
                        .map(|mined| mined.len() as u64)
                })?
            }
        };
        *histogram.entry(q).or_insert(0) += 1;
        sum += q as f64;
        sum_sq += (q as f64) * (q as f64);
    }
    let n = replicates as f64;
    let empirical_mean = sum / n;
    let empirical_variance = (sum_sq / n - empirical_mean * empirical_mean).max(0.0);

    let mut counts: Vec<(u64, u64)> = histogram.into_iter().collect();
    counts.sort_unstable();

    // Total variation distance between the empirical pmf and Poisson(empirical_mean):
    // 1/2 * sum over all outcomes |empirical - poisson|. Outcomes never observed
    // contribute their Poisson mass, accounted for by the residual term. Summed
    // in sorted outcome order so the float result is deterministic (a HashMap
    // walk would reorder the additions from run to run).
    let poisson = Poisson::new(empirical_mean)?;
    let mut tv = 0.0f64;
    let mut covered = 0.0f64;
    for &(q, count) in &counts {
        let empirical = count as f64 / n;
        let theoretical = poisson.pmf(q);
        tv += (empirical - theoretical).abs();
        covered += theoretical;
    }
    tv += 1.0 - covered.min(1.0);
    tv *= 0.5;
    Ok(PoissonFitReport {
        k,
        s,
        replicates,
        empirical_mean,
        empirical_variance,
        total_variation: tv,
        counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn true_discovery_is_subset_of_a_pattern() {
        let planted = vec![vec![1, 2, 3, 4], vec![10, 11]];
        assert!(is_true_discovery(&[1, 2], &planted));
        assert!(is_true_discovery(&[2, 3, 4], &planted));
        assert!(is_true_discovery(&[10, 11], &planted));
        assert!(!is_true_discovery(&[1, 10], &planted));
        assert!(!is_true_discovery(&[5], &planted));
        // The empty itemset is trivially a subset.
        assert!(is_true_discovery(&[], &planted));
    }

    #[test]
    fn fdr_and_power_computation() {
        let planted = vec![vec![1, 2, 3]];
        let discoveries = vec![vec![1, 2], vec![2, 3], vec![7, 8]];
        // 1 of 3 discoveries is false.
        assert!((empirical_fdr(&discoveries, &planted) - 1.0 / 3.0).abs() < 1e-12);
        // 2 of the 3 planted pairs {1,2},{1,3},{2,3} were found.
        assert!((empirical_power(&discoveries, &planted, 2) - 2.0 / 3.0).abs() < 1e-12);
        // Nothing discovered: FDR 0 by convention, power 0.
        assert_eq!(empirical_fdr(&[], &planted), 0.0);
        assert_eq!(empirical_power(&[], &planted, 2), 0.0);
        // No planted pattern of size >= k: power is vacuously 1.
        assert_eq!(empirical_power(&discoveries, &planted, 4), 1.0);
    }

    #[test]
    fn poisson_fit_validation() {
        let model = BernoulliModel::new(100, vec![0.1; 10]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(poisson_fit(&model, 0, 2, 10, &mut rng).is_err());
        assert!(poisson_fit(&model, 2, 0, 10, &mut rng).is_err());
        assert!(poisson_fit(&model, 2, 2, 0, &mut rng).is_err());
    }

    #[test]
    fn poisson_fit_is_good_in_the_rare_event_regime() {
        // 200 transactions over 12 items with frequency 0.1: expected pair support
        // is 2. At s = 9 the per-pair tail is ~2e-4, so Q is a sparse count —
        // squarely in the Poisson regime.
        let model = BernoulliModel::new(200, vec![0.1; 12]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let report = poisson_fit(&model, 2, 9, 400, &mut rng).unwrap();
        assert_eq!(report.replicates, 400);
        assert!(report.empirical_mean < 1.0);
        assert!(
            report.total_variation < 0.1,
            "Poisson approximation should be tight here, TV = {}",
            report.total_variation
        );
        // The counts table is a valid distribution over the replicates.
        let total: u64 = report.counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn poisson_fit_degrades_in_the_dense_regime() {
        // At a low threshold (s = 2, the mean regime) Q is large and concentrated;
        // the Poisson approximation is poor and the TV distance reflects that.
        let model = BernoulliModel::new(200, vec![0.1; 12]).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let low_s = poisson_fit(&model, 2, 2, 300, &mut rng).unwrap();
        let high_s = poisson_fit(&model, 2, 9, 300, &mut rng).unwrap();
        assert!(
            low_s.total_variation > high_s.total_variation,
            "TV at s=2 ({}) should exceed TV at s=9 ({})",
            low_s.total_variation,
            high_s.total_variation
        );
    }
}

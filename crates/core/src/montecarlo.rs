//! Algorithm 1 of the paper: **FindPoissonThreshold**, the Monte-Carlo estimator of
//! the Poisson threshold `s_min` (and, as a by-product, of the Poisson means
//! `λ(s)` used by Procedure 2).
//!
//! The procedure generates Δ random datasets from the null model, mines the
//! k-itemsets with support at least `s̃` (the largest expected support of any
//! k-itemset) from each of them, and uses the pooled observations to estimate the
//! Chen–Stein bound terms `b1(s)` and `b2(s)` empirically for every threshold `s`
//! in the observed range. The estimate `ŝ_min` is the smallest `s` with
//! `b1(s) + b2(s) ≤ ε/4`; Theorem 4 shows that Δ = O(log(1/δ)/ε) replicates make
//! `ŝ_min` a conservative estimate of the true `s_min` with probability ≥ 1 − δ.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use rand::Rng;
use serde::{Deserialize, Serialize};

use sigfim_datasets::bitmap::{with_bitmap_scratch, DatasetBackend, ResolvedBackend};
use sigfim_datasets::random::NullModel;
use sigfim_datasets::sampler::{resolve_sampler, ResolvedSampler, SamplerMode};
use sigfim_datasets::transaction::ItemId;
use sigfim_exec::{substream, BatchObserver, ExecutionPolicy, NoopObserver, OffsetObserver};
use sigfim_mining::eclat::Eclat;
use sigfim_mining::miner::KItemsetMiner;

use crate::lambda::MonteCarloLambda;
use crate::{CoreError, Result};

/// Configuration of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FindPoissonThreshold {
    /// The itemset size `k`.
    pub k: usize,
    /// The variation-distance budget `ε` of Equation (1). The paper's experiments
    /// use `ε = 0.01`.
    pub epsilon: f64,
    /// The number Δ of random datasets to generate. The paper's experiments use
    /// Δ = 1000; Theorem 4 justifies Δ = O(log(1/δ)/ε).
    pub replicates: usize,
    /// Where the Δ replicate tasks (dataset generation + mining) execute. Every
    /// replicate draws from its own `(seed, index)`-addressed RNG substream, so
    /// the estimate is bit-identical under any policy — the rayon policy is just
    /// faster.
    pub policy: ExecutionPolicy,
    /// Which physical representation the replicate datasets are materialized
    /// in. `Auto` resolves from the null model's expected density; the bitmap
    /// path samples each replicate bit-sliced into a reusable per-thread
    /// buffer and mines it with the bitset Eclat. Replicates consume their RNG
    /// substreams identically under every backend, so the estimate is
    /// bit-identical whichever is chosen — the backend only decides speed.
    pub backend: DatasetBackend,
    /// Maximum number of times the mining floor `s̃` is halved when the initial
    /// floor turns out to be inside the Poisson region already (lines 19–22 of the
    /// pseudocode) or no itemset reaches it (lines 7–9).
    pub max_restarts: usize,
    /// How each replicate's random dataset is drawn (`SIGFIM_SAMPLER`).
    /// [`SamplerMode::Auto`] defers to the process-wide mode; `cellwise` is the
    /// legacy per-cell sampler, `gaps` the geometric-jump sparse sampler that
    /// touches only set bits. The two samplers consume *different* RNG streams,
    /// so — unlike backends and policies, which are bit-identical — estimates
    /// are only reproducible within one sampler mode.
    pub sampler: SamplerMode,
}

impl FindPoissonThreshold {
    /// A configuration with the paper's `ε = 0.01` and a practical default of
    /// Δ = 64 replicates (callers reproducing the paper's tables pass Δ = 1000).
    pub fn new(k: usize) -> Self {
        FindPoissonThreshold {
            k,
            epsilon: 0.01,
            replicates: 64,
            policy: ExecutionPolicy::default(),
            backend: DatasetBackend::Auto,
            max_restarts: 4,
            sampler: SamplerMode::Auto,
        }
    }

    /// The number of replicates needed by Theorem 4 so that
    /// `Pr[b1(ŝ_min) + b2(ŝ_min) ≤ ε] ≥ 1 − δ`, namely `⌈8 ln(1/δ) / ε⌉`.
    pub fn required_replicates(epsilon: f64, delta: f64) -> usize {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0,1), got {epsilon}"
        );
        assert!(
            delta > 0.0 && delta < 1.0,
            "delta must be in (0,1), got {delta}"
        );
        (8.0 * (1.0 / delta).ln() / epsilon).ceil() as usize
    }

    fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(CoreError::InvalidParameter {
                name: "k",
                reason: "must be >= 1".into(),
            });
        }
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "epsilon",
                reason: format!("must be in (0,1), got {}", self.epsilon),
            });
        }
        if self.replicates == 0 {
            return Err(CoreError::InvalidParameter {
                name: "replicates",
                reason: "at least one Monte-Carlo replicate is required".into(),
            });
        }
        Ok(())
    }

    /// The initial mining floor `s̃`: the largest expected support of any k-itemset,
    /// i.e. `t` times the product of the `k` largest item frequencies (at least 1).
    pub fn initial_floor<M: NullModel>(&self, model: &M) -> u64 {
        let mut freqs = model.item_frequencies();
        freqs.sort_by(|a, b| b.partial_cmp(a).expect("frequencies are finite"));
        let product: f64 = freqs.iter().take(self.k).product();
        ((model.num_transactions() as f64 * product).floor() as u64).max(1)
    }

    /// Run Algorithm 1 against the given null model.
    ///
    /// The model is anything implementing [`NullModel`]: the paper's Bernoulli
    /// reference model, the swap-randomization model of Gionis et al., or a custom
    /// generator.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for invalid configuration, and
    /// propagates mining errors.
    pub fn run<M: NullModel + Sync, R: Rng + ?Sized>(
        &self,
        model: &M,
        rng: &mut R,
    ) -> Result<ThresholdEstimate> {
        self.run_observed(model, rng, &NoopObserver)
    }

    /// Like [`FindPoissonThreshold::run`], reporting each completed Monte-Carlo
    /// replicate to `observer` (the progress hook a long-running analysis
    /// engine exposes to its callers). The observer never influences the
    /// estimate. When a restart halves the floor `s̃`, the Δ replicates run
    /// again and the observer sees a fresh `1..=Δ` count for the new round.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FindPoissonThreshold::run`].
    pub fn run_observed<M: NullModel + Sync, R: Rng + ?Sized>(
        &self,
        model: &M,
        rng: &mut R,
        observer: &dyn BatchObserver,
    ) -> Result<ThresholdEstimate> {
        // A transient store still deduplicates nothing within one run (restart
        // rounds change the floor or the batch key), so this entry point is
        // exactly the uncached Algorithm 1.
        self.run_with_store(model, rng, observer, &ObservationStore::new())
    }

    /// Like [`FindPoissonThreshold::run_observed`], retaining (and reusing)
    /// per-replicate observations in `store`. The store is a pure memo keyed
    /// by `(model fingerprint, k, resolved sampler, batch key)`: a warm entry
    /// hands back exactly the observations mining would have produced, so
    /// estimates are bit-identical with or without it. Reuse kicks in when a
    /// later run re-derives the same batch key from its seed — an ε-tightened
    /// re-query, a Δ-extension (the stored prefix is reused and only the tail
    /// replicates are mined), or a re-query at a higher floor (stored
    /// observations are filtered up to it).
    ///
    /// # Errors
    ///
    /// Same conditions as [`FindPoissonThreshold::run`].
    pub fn run_with_store<M: NullModel + Sync, R: Rng + ?Sized>(
        &self,
        model: &M,
        rng: &mut R,
        observer: &dyn BatchObserver,
        store: &ObservationStore,
    ) -> Result<ThresholdEstimate> {
        self.validate()?;
        if model.num_items() < self.k {
            return Err(CoreError::InvalidParameter {
                name: "k",
                reason: format!(
                    "itemset size {} exceeds the number of items {}",
                    self.k,
                    model.num_items()
                ),
            });
        }

        let sampler = resolve_sampler(
            self.sampler,
            model.supports_gaps_sampler(),
            model.expected_density(),
        );
        let fingerprint = model.fingerprint();
        // The gaps sampler draws one batch key per *run* and shares it across
        // restart rounds (its replicate datasets are a pure function of the
        // key, not of the mining floor). The cellwise sampler draws one key
        // per *round* from the caller's RNG — the exact consumption pattern
        // the pre-sampler parity suites pin.
        let run_key: Option<u64> = match sampler {
            ResolvedSampler::Gaps => Some(rng.random()),
            ResolvedSampler::Cellwise => None,
        };

        let mut s_tilde = self.initial_floor(model);
        // Upper cap on the search range, set when a restart is triggered because the
        // bound was already satisfied at the floor.
        let mut cap: Option<u64> = None;
        let mut restarts_left = self.max_restarts;

        loop {
            let batch_key = match run_key {
                Some(key) => key,
                None => rng.random(),
            };
            let observations = self.collect_observations(
                model,
                s_tilde,
                batch_key,
                sampler,
                fingerprint,
                observer,
                store,
            )?;
            if observations.pool.is_empty() {
                // Line 7-9 of the pseudocode: nothing reached the floor; halve it.
                if restarts_left == 0 || s_tilde == 1 {
                    // Degenerate but well-defined outcome: no k-itemset ever reaches
                    // even support 1; the Poisson approximation holds vacuously.
                    return Ok(ThresholdEstimate {
                        k: self.k,
                        epsilon: self.epsilon,
                        replicates: self.replicates,
                        s_tilde,
                        s_min: s_tilde,
                        pool_size: 0,
                        curve: vec![CurvePoint {
                            s: s_tilde,
                            b1: 0.0,
                            b2: 0.0,
                            lambda: 0.0,
                        }],
                    });
                }
                restarts_left -= 1;
                s_tilde = (s_tilde / 2).max(1);
                continue;
            }

            let curve = self.estimate_curve(&observations, s_tilde, cap);
            let threshold = self.epsilon / 4.0;
            let at_floor = curve.first().expect("curve covers at least one support");
            // Only meaningful when the curve really starts at the floor (it starts
            // higher when the pool had to be truncated — and in that case the bound
            // at the floor is certainly far above the threshold).
            let floor_already_poisson =
                at_floor.s == s_tilde && at_floor.b1 + at_floor.b2 <= threshold;
            if floor_already_poisson && restarts_left > 0 && s_tilde > 1 {
                // Lines 19-22: the floor is already inside the Poisson region; search
                // below it for a smaller s_min.
                restarts_left -= 1;
                cap = Some(s_tilde);
                s_tilde = (s_tilde / 2).max(1);
                continue;
            }

            // Line 23: the smallest s (strictly above the floor unless the budget for
            // restarts ran out) where the empirical bound drops under ε/4. The curve
            // always ends at a point with b1 = b2 = 0 (one past the largest observed
            // support), so a qualifying s always exists.
            let s_min = curve
                .iter()
                .find(|p| p.b1 + p.b2 <= threshold)
                .map(|p| p.s)
                // When the curve was capped by a restart and this round's estimate
                // does not quite dip under the threshold inside the capped range, the
                // cap itself (which satisfied the bound in the previous round) is the
                // conservative answer.
                .unwrap_or_else(|| cap.unwrap_or_else(|| curve.last().expect("non-empty").s));
            return Ok(ThresholdEstimate {
                k: self.k,
                epsilon: self.epsilon,
                replicates: self.replicates,
                s_tilde,
                s_min,
                pool_size: observations.pool.len(),
                curve,
            });
        }
    }

    /// Generate the Δ random datasets, mine each at the floor, and pool the
    /// per-replicate supports of every itemset that reached the floor anywhere.
    ///
    /// Replicate `i` works exclusively from the ChaCha substream addressed by
    /// `(batch_key, i)`. The random bytes each replicate sees are therefore a
    /// function of the key and its index alone — never of scheduling — so the
    /// pooled observations are bit-identical under every [`ExecutionPolicy`].
    ///
    /// Backend dispatch happens here, once per batch: on the bitmap path each
    /// worker thread samples its replicates *directly into one reusable bitmap
    /// scratch buffer* (no CSR dataset, no per-replicate allocation once the
    /// buffer is warm) and mines them with the bitset Eclat. Both paths consume
    /// the RNG identically and mine exact supports, so they pool identical
    /// observations. The gaps sampler always rides the scratch-bitmap path —
    /// its word-wise writes *are* the bitmap — so the configured backend only
    /// shapes the cellwise dispatch.
    ///
    /// Before mining anything the batch is looked up in `store`: stored
    /// observations for the same `(fingerprint, k, sampler, batch_key)` at a
    /// floor at or below this one are reused verbatim (filtered up to this
    /// floor — exact, because supports below the floor never enter the
    /// estimates), and only missing tail replicates are mined.
    #[allow(clippy::too_many_arguments)]
    fn collect_observations<M: NullModel + Sync>(
        &self,
        model: &M,
        floor: u64,
        batch_key: u64,
        sampler: ResolvedSampler,
        fingerprint: u64,
        observer: &dyn BatchObserver,
        store: &ObservationStore,
    ) -> Result<Observations> {
        let replicates = self.replicates;
        let key = ObservationKey {
            fingerprint,
            k: self.k,
            sampler,
            batch_key,
        };

        let stored = store.get(&key).filter(|stored| stored.floor <= floor);
        let reused = stored
            .as_ref()
            .map_or(0, |stored| stored.per_replicate.len().min(replicates));
        for index in 0..reused {
            observer.task_completed(index, index + 1, replicates);
        }
        OBSERVATIONS_REUSED.fetch_add(reused as u64, Ordering::Relaxed);

        let per_replicate: Vec<HashMap<Vec<ItemId>, u64>> = if reused == replicates {
            let stored = stored.expect("reused > 0 implies a stored entry");
            stored.per_replicate[..replicates]
                .iter()
                .map(|replicate| filter_to_floor(replicate, floor))
                .collect()
        } else if let Some(stored) = stored {
            // Δ-extension: the stored prefix is reused and only the tail is
            // mined — at the *stored* floor, so the refreshed entry stays
            // uniform (and keeps serving lower-floor re-queries).
            let tail_indices: Vec<u64> = (reused as u64..replicates as u64).collect();
            let offset = OffsetObserver {
                inner: observer,
                index_offset: reused,
                completed_offset: reused,
                total: replicates,
            };
            let tail = self.mine_replicates(
                model,
                stored.floor,
                batch_key,
                sampler,
                &tail_indices,
                &offset,
            )?;
            let mut combined = stored.per_replicate.clone();
            combined.truncate(replicates);
            combined.extend(tail);
            let combined = Arc::new(StoredObservations {
                floor: stored.floor,
                per_replicate: combined,
            });
            store.insert(key, Arc::clone(&combined));
            combined
                .per_replicate
                .iter()
                .map(|replicate| filter_to_floor(replicate, floor))
                .collect()
        } else {
            // Cold (or stored at a higher floor, which cannot serve this one):
            // mine every replicate at this floor and (re)store the batch.
            let indices: Vec<u64> = (0..replicates as u64).collect();
            let mined =
                self.mine_replicates(model, floor, batch_key, sampler, &indices, observer)?;
            store.insert(
                key,
                Arc::new(StoredObservations {
                    floor,
                    per_replicate: mined.clone(),
                }),
            );
            mined
        };

        // The pool W: every itemset that reached the floor in at least one replicate.
        let mut pool: Vec<Vec<ItemId>> = Vec::new();
        {
            let mut seen: HashMap<&[ItemId], ()> = HashMap::new();
            for replicate in &per_replicate {
                for items in replicate.keys() {
                    if !seen.contains_key(items.as_slice()) {
                        pool.push(items.clone());
                    }
                }
                for items in replicate.keys() {
                    seen.entry(items.as_slice()).or_insert(());
                }
            }
        }
        pool.sort_unstable();
        pool.dedup();

        // supports[x][d] = support of pool itemset x in replicate d if it reached the
        // floor there, 0 otherwise (supports below the floor never enter the
        // estimates, which only look at s >= floor).
        let supports: Vec<Vec<u64>> = pool
            .iter()
            .map(|items| {
                per_replicate
                    .iter()
                    .map(|replicate| replicate.get(items).copied().unwrap_or(0))
                    .collect()
            })
            .collect();
        Ok(Observations {
            pool,
            supports,
            replicates,
        })
    }

    /// Mine the given replicate indices at `floor`: sample each replicate's
    /// dataset from its `(batch_key, index)` substream with the resolved
    /// sampler and mine the k-itemsets reaching the floor.
    ///
    /// For `k = 1` on any bitmap path the mining pass is *fused away*: both
    /// samplers return the exact per-item column supports as a by-product of
    /// writing the bitmap, and the frequent 1-itemsets are read straight off
    /// that vector.
    fn mine_replicates<M: NullModel + Sync>(
        &self,
        model: &M,
        floor: u64,
        batch_key: u64,
        sampler: ResolvedSampler,
        indices: &[u64],
        observer: &dyn BatchObserver,
    ) -> Result<Vec<HashMap<Vec<ItemId>, u64>>> {
        let k = self.k;
        let backend = self.backend.resolve(
            model.num_items() as u32,
            model.num_transactions(),
            model.expected_density(),
        );
        match sampler {
            ResolvedSampler::Cellwise => {
                REPLICATES_SAMPLED_CELLWISE.fetch_add(indices.len() as u64, Ordering::Relaxed)
            }
            ResolvedSampler::Gaps => {
                REPLICATES_SAMPLED_GAPS.fetch_add(indices.len() as u64, Ordering::Relaxed)
            }
        };
        let mined = self.policy.try_map_indexed_observed(
            indices,
            |_, &index| {
                let mut local = substream(batch_key, index);
                // Eclat handles the low-floor regime (s̃ close to 1 on sparse
                // data) much better than level-wise Apriori: its work is
                // proportional to the number of frequent itemsets rather than to
                // the candidate joins.
                match sampler {
                    ResolvedSampler::Cellwise => match backend {
                        ResolvedBackend::Csr => {
                            let dataset = model.sample_dataset(&mut local);
                            Eclat.mine_k(&dataset, k, floor).map(itemset_map)
                        }
                        // The sharded backend also rides the scratch-bitmap path
                        // here: Δ replicates already saturate the workers, so
                        // sharding *within* one replicate would only add reduce
                        // overhead — sharding pays on the observed-dataset passes
                        // of Procedure 2 instead. RNG consumption is identical, so
                        // estimates stay bit-identical across all backends.
                        ResolvedBackend::Bitmap | ResolvedBackend::ShardedBitmap => {
                            with_bitmap_scratch(|scratch| {
                                let supports =
                                    model.sample_into_bitmap_counted(&mut local, scratch);
                                if k == 1 {
                                    Ok(k1_from_supports(&supports, floor))
                                } else {
                                    Eclat.mine_k_bitmap(scratch, k, floor).map(itemset_map)
                                }
                            })
                        }
                    },
                    // The gaps sampler writes the bitmap directly whatever the
                    // configured backend — the sparse walk *is* a bitmap fill.
                    ResolvedSampler::Gaps => with_bitmap_scratch(|scratch| {
                        let supports = model.sample_into_bitmap_gaps(&mut local, scratch);
                        if k == 1 {
                            Ok(k1_from_supports(&supports, floor))
                        } else {
                            Eclat.mine_k_bitmap(scratch, k, floor).map(itemset_map)
                        }
                    }),
                }
            },
            observer,
        )?;
        Ok(mined)
    }

    /// Turn the pooled observations into empirical `b1`, `b2`, `λ` curves over
    /// `s = floor ..= s_max`, where `s_max` is one past the largest observed support
    /// (optionally clipped to `cap`).
    fn estimate_curve(
        &self,
        observations: &Observations,
        floor: u64,
        cap: Option<u64>,
    ) -> Vec<CurvePoint> {
        let delta = observations.replicates as f64;
        // Per pool itemset: the largest support seen in any replicate.
        let max_per_itemset: Vec<u64> = observations
            .supports
            .iter()
            .map(|row| row.iter().copied().max().unwrap_or(0))
            .collect();
        let max_observed = max_per_itemset.iter().copied().max().unwrap_or(floor);

        // When the floor is far below the Poisson region (s̃ rounded down to 1 on a
        // sparse dataset), the pool can contain hundreds of thousands of itemsets and
        // the pairwise b1/b2 sums become the bottleneck. Raising the *reporting*
        // floor to the support level where at most MAX_PAIRWISE_POOL itemsets remain
        // keeps the estimates exact for every s at or above that level (excluded
        // itemsets have zero tail probability there) — and the region below it is
        // irrelevant for ŝ_min because with that many co-occurring itemsets the
        // Chen–Stein bound is far above ε anyway.
        let mut effective_floor = floor;
        if observations.pool.len() > MAX_PAIRWISE_POOL {
            let mut sorted = max_per_itemset.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            effective_floor = sorted[MAX_PAIRWISE_POOL].saturating_add(1).max(floor);
        }
        let kept: Vec<usize> = (0..observations.pool.len())
            .filter(|&x| max_per_itemset[x] >= effective_floor)
            .collect();

        let mut s_max = (max_observed + 1).max(effective_floor);
        if let Some(cap) = cap {
            s_max = s_max.min(cap.max(effective_floor));
        }
        let range = (s_max - effective_floor + 1) as usize;

        // Suffix counts per kept itemset: counts[i][j] = #replicates with support of
        // kept[i] at least (effective_floor + j).
        let counts: Vec<Vec<u32>> = kept
            .iter()
            .map(|&x| {
                let mut histogram = vec![0u32; range];
                for &support in &observations.supports[x] {
                    if support >= effective_floor {
                        let idx = ((support - effective_floor) as usize).min(range - 1);
                        histogram[idx] += 1;
                    }
                }
                // histogram currently holds exact-value counts (clipped at the top);
                // convert to suffix counts.
                for j in (0..range.saturating_sub(1)).rev() {
                    histogram[j] += histogram[j + 1];
                }
                histogram
            })
            .collect();

        // Overlapping (unordered) pairs of distinct kept itemsets, as indices into
        // `kept`/`counts`.
        let overlapping: Vec<(usize, usize)> = {
            let mut pairs = Vec::new();
            for a in 0..kept.len() {
                for b in (a + 1)..kept.len() {
                    if itemsets_overlap(&observations.pool[kept[a]], &observations.pool[kept[b]]) {
                        pairs.push((a, b));
                    }
                }
            }
            pairs
        };

        // Pair co-occurrence suffix counts for b2: for each unordered overlapping
        // pair and replicate, bucket min(support_x, support_y).
        let mut pair_hist = vec![0u64; range];
        for &(a, b) in &overlapping {
            let (x, y) = (kept[a], kept[b]);
            for d in 0..observations.replicates {
                let m = observations.supports[x][d].min(observations.supports[y][d]);
                if m >= effective_floor {
                    let idx = ((m - effective_floor) as usize).min(range - 1);
                    pair_hist[idx] += 1;
                }
            }
        }
        for j in (0..range.saturating_sub(1)).rev() {
            pair_hist[j] += pair_hist[j + 1];
        }

        (0..range)
            .map(|j| {
                let s = effective_floor + j as u64;
                let p: Vec<f64> = counts.iter().map(|c| f64::from(c[j]) / delta).collect();
                let diagonal: f64 = p.iter().map(|&v| v * v).sum();
                let off_diagonal: f64 = overlapping.iter().map(|&(a, b)| p[a] * p[b]).sum();
                // b1 sums over *ordered* overlapping pairs including the diagonal.
                let b1 = diagonal + 2.0 * off_diagonal;
                // b2 sums E[Z_X Z_Y] over ordered pairs of distinct itemsets.
                let b2 = 2.0 * pair_hist[j] as f64 / delta;
                let lambda: f64 = counts.iter().map(|c| f64::from(c[j])).sum::<f64>() / delta;
                CurvePoint { s, b1, b2, lambda }
            })
            .collect()
    }
}

/// The largest pool size for which the quadratic pairwise `b1`/`b2` estimation is
/// carried out in full; larger pools have their reporting floor raised to the
/// support level where at most this many itemsets remain (which keeps the reported
/// curve exact — see [`FindPoissonThreshold::run`]).
pub const MAX_PAIRWISE_POOL: usize = 3_000;

/// Pooled Monte-Carlo observations: the itemset pool `W` and each pool member's
/// support in every replicate.
struct Observations {
    pool: Vec<Vec<ItemId>>,
    supports: Vec<Vec<u64>>,
    replicates: usize,
}

/// The frequent 1-itemsets read straight off the fused per-item support
/// vector (no mining pass): exactly what `Eclat::mine_k_bitmap` at `k = 1`
/// would return, for any floor ≥ 1.
fn k1_from_supports(supports: &[u64], floor: u64) -> HashMap<Vec<ItemId>, u64> {
    supports
        .iter()
        .enumerate()
        .filter(|&(_, &support)| support >= floor)
        .map(|(item, &support)| (vec![item as ItemId], support))
        .collect()
}

fn itemset_map(mined: Vec<sigfim_mining::ItemsetSupport>) -> HashMap<Vec<ItemId>, u64> {
    mined.into_iter().map(|m| (m.items, m.support)).collect()
}

/// Keep only the observations at or above `floor`. Exact by construction:
/// supports below the floor never enter the curve estimates, so a batch mined
/// at a lower floor filters up to any higher one without re-mining.
fn filter_to_floor(replicate: &HashMap<Vec<ItemId>, u64>, floor: u64) -> HashMap<Vec<ItemId>, u64> {
    // sigfim-lint: allow(nondet-iteration, reason = "filters one hash map into another; contents are order-independent and no order is observed")
    replicate
        .iter()
        .filter(|&(_, &support)| support >= floor)
        .map(|(items, &support)| (items.clone(), support))
        .collect()
}

/// The identity of one mined replicate batch: which model, which itemset
/// size, which sampler (the two samplers read different RNG streams, so their
/// observations are distinct values), and which 64-bit batch key addressed
/// the replicate substreams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ObservationKey {
    fingerprint: u64,
    k: usize,
    sampler: ResolvedSampler,
    batch_key: u64,
}

/// One stored replicate batch: every replicate's mined observations at
/// `floor`. An entry serves any request at the same key with a floor at or
/// above `floor` (filtering is exact) and any Δ up to extension (missing tail
/// replicates are mined and appended).
#[derive(Debug)]
struct StoredObservations {
    /// The floor the batch was mined at — the *lowest* floor it can serve.
    floor: u64,
    /// `per_replicate[i]` maps each itemset reaching the floor in replicate
    /// `i` to its support there.
    per_replicate: Vec<HashMap<Vec<ItemId>, u64>>,
}

/// The default capacity of an [`ObservationStore`]: observation batches hold
/// Δ hash maps each, so the store is kept much smaller than the threshold
/// cache; a handful of entries cover a k-sweep's re-queries.
pub const DEFAULT_OBSERVATION_STORE_CAPACITY: usize = 8;

/// A bounded, shareable memo of mined replicate batches keyed by
/// `(model fingerprint, k, sampler, batch key)` — the zero-waste half of the
/// replicate pipeline. Unlike the threshold cache (which can only replay a
/// *finished* estimate for an identical configuration), this store reuses the
/// raw per-replicate observations, so an ε-tightened re-query, a Δ-extension,
/// or a restart arriving back at a served floor runs **zero** (or only the
/// tail's) new replicates. Entries hand back exactly what mining would have
/// produced, so estimates are bit-identical with or without the store.
///
/// Cloning clones the *handle*: clones share one LRU-bounded cache, which is
/// how an engine's tenants pool their observations.
#[derive(Debug, Clone)]
pub struct ObservationStore {
    inner: Arc<Mutex<ObservationCache>>,
}

impl Default for ObservationStore {
    fn default() -> Self {
        ObservationStore::new()
    }
}

impl ObservationStore {
    /// A fresh store bounded at [`DEFAULT_OBSERVATION_STORE_CAPACITY`] batches.
    pub fn new() -> Self {
        ObservationStore::with_capacity(DEFAULT_OBSERVATION_STORE_CAPACITY)
    }

    /// A fresh store bounded at `capacity` batches (LRU eviction; 0 disables
    /// retention entirely).
    pub fn with_capacity(capacity: usize) -> Self {
        ObservationStore {
            inner: Arc::new(Mutex::new(ObservationCache {
                entries: HashMap::new(),
                capacity,
                clock: 0,
            })),
        }
    }

    /// Lock the cache, recovering from poisoning: it holds plain memoized
    /// values whose invariants hold between any two operations.
    fn lock(&self) -> MutexGuard<'_, ObservationCache> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn get(&self, key: &ObservationKey) -> Option<Arc<StoredObservations>> {
        let mut cache = self.lock();
        cache.clock += 1;
        let clock = cache.clock;
        cache.entries.get_mut(key).map(|entry| {
            entry.1 = clock;
            Arc::clone(&entry.0)
        })
    }

    fn insert(&self, key: ObservationKey, value: Arc<StoredObservations>) {
        let mut cache = self.lock();
        if cache.capacity == 0 {
            return;
        }
        cache.clock += 1;
        let clock = cache.clock;
        while !cache.entries.contains_key(&key) && cache.entries.len() >= cache.capacity {
            // sigfim-lint: allow(nondet-iteration, reason = "clock stamps are unique (monotone counter), so the minimum is order-independent")
            let lru = cache
                .entries
                .iter()
                .min_by_key(|(_, &(_, stamp))| stamp)
                .map(|(&key, _)| key)
                .expect("a non-empty cache has a least-recently-used entry");
            cache.entries.remove(&lru);
        }
        cache.entries.insert(key, (value, clock));
    }

    /// Number of replicate batches currently retained.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// True when nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every retained batch (the capacity bound persists).
    pub fn clear(&self) {
        self.lock().entries.clear();
    }

    /// Whether `other` is a handle to the same underlying cache.
    pub fn shares_with(&self, other: &ObservationStore) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// The store's guts: entries stamped with a logical recency clock.
#[derive(Debug)]
struct ObservationCache {
    entries: HashMap<ObservationKey, (Arc<StoredObservations>, u64)>,
    capacity: usize,
    clock: u64,
}

static REPLICATES_SAMPLED_CELLWISE: AtomicU64 = AtomicU64::new(0);
static REPLICATES_SAMPLED_GAPS: AtomicU64 = AtomicU64::new(0);
static OBSERVATIONS_REUSED: AtomicU64 = AtomicU64::new(0);

/// Process-wide counters of the replicate pipeline: how many Monte-Carlo
/// replicates were actually sampled and mined, per sampler, and how many
/// per-replicate observations were served from an [`ObservationStore`]
/// instead. Monotone since process start; the service's `/v1/stats` surfaces
/// a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReplicateStats {
    /// Replicates sampled and mined by the cellwise sampler.
    pub sampled_cellwise: u64,
    /// Replicates sampled and mined by the geometric-jump gaps sampler.
    pub sampled_gaps: u64,
    /// Per-replicate observations reused from an observation store (each one
    /// a replicate that did **not** re-sample or re-mine).
    pub observations_reused: u64,
}

impl ReplicateStats {
    /// Total replicates sampled across both samplers.
    pub fn total_sampled(&self) -> u64 {
        self.sampled_cellwise + self.sampled_gaps
    }
}

/// Snapshot of the process-wide [`ReplicateStats`] counters.
pub fn replicate_stats() -> ReplicateStats {
    ReplicateStats {
        sampled_cellwise: REPLICATES_SAMPLED_CELLWISE.load(Ordering::Relaxed),
        sampled_gaps: REPLICATES_SAMPLED_GAPS.load(Ordering::Relaxed),
        observations_reused: OBSERVATIONS_REUSED.load(Ordering::Relaxed),
    }
}

fn itemsets_overlap(a: &[ItemId], b: &[ItemId]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// One point of the empirical Chen–Stein curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// The support threshold.
    pub s: u64,
    /// Empirical `b1(s)`.
    pub b1: f64,
    /// Empirical `b2(s)`.
    pub b2: f64,
    /// Empirical `λ(s) = E[Q̂_{k,s}]`.
    pub lambda: f64,
}

/// The result of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdEstimate {
    /// The itemset size.
    pub k: usize,
    /// The ε used.
    pub epsilon: f64,
    /// The number of Monte-Carlo replicates used.
    pub replicates: usize,
    /// The final mining floor `s̃`.
    pub s_tilde: u64,
    /// The estimated Poisson threshold `ŝ_min`.
    pub s_min: u64,
    /// Size of the pooled itemset set `W`.
    pub pool_size: usize,
    /// The empirical `b1`, `b2`, `λ` curve over the observed support range.
    pub curve: Vec<CurvePoint>,
}

impl ThresholdEstimate {
    /// The curve point at support `s`, if it is inside the estimated range.
    pub fn curve_at(&self, s: u64) -> Option<&CurvePoint> {
        self.curve.iter().find(|p| p.s == s)
    }

    /// A λ estimator backed by this estimate's curve, for use by Procedure 2.
    /// Supports beyond the curve's range (never observed in the Monte-Carlo
    /// replicates) get λ = 0.
    pub fn lambda_estimator(&self) -> MonteCarloLambda {
        let start = self.curve.first().map_or(self.s_min, |p| p.s);
        let mut values: Vec<f64> = self.curve.iter().map(|p| p.lambda).collect();
        if values.is_empty() {
            values.push(0.0);
        }
        // Guard against tiny non-monotonicities introduced by the top-bucket
        // clipping: enforce the non-increasing shape the estimator requires.
        for i in 1..values.len() {
            if values[i] > values[i - 1] {
                values[i] = values[i - 1];
            }
        }
        MonteCarloLambda::new(start, values).expect("curve values are finite and non-negative")
    }

    /// A λ estimator clamped below at the "rule of three" upper confidence bound
    /// `3 / Δ`: supports never reached in the Δ replicates get λ = 3/Δ rather
    /// than 0, so a single lucky itemset in the analyzed dataset cannot by itself
    /// produce a zero p-value. Recommended whenever Δ is small (≲ 200); with the
    /// paper's Δ = 1000 the clamp is negligible.
    pub fn conservative_lambda_estimator(&self) -> MonteCarloLambda {
        self.lambda_estimator()
            .with_floor(3.0 / self.replicates.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sigfim_datasets::random::BernoulliModel;

    fn uniform_model(t: usize, n: usize, f: f64) -> BernoulliModel {
        BernoulliModel::new(t, vec![f; n]).unwrap()
    }

    #[test]
    fn required_replicates_matches_theorem4() {
        // Δ = 8 ln(1/δ) / ε.
        let d = FindPoissonThreshold::required_replicates(0.01, 0.05);
        assert_eq!(d, (8.0 * (20.0f64).ln() / 0.01).ceil() as usize);
        assert!(FindPoissonThreshold::required_replicates(0.1, 0.1) < d);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn required_replicates_rejects_bad_epsilon() {
        let _ = FindPoissonThreshold::required_replicates(0.0, 0.05);
    }

    #[test]
    fn config_validation() {
        let model = uniform_model(50, 10, 0.2);
        let mut rng = StdRng::seed_from_u64(1);
        let bad_k = FindPoissonThreshold {
            k: 0,
            ..FindPoissonThreshold::new(2)
        };
        assert!(bad_k.run(&model, &mut rng).is_err());
        let bad_eps = FindPoissonThreshold {
            epsilon: 1.5,
            ..FindPoissonThreshold::new(2)
        };
        assert!(bad_eps.run(&model, &mut rng).is_err());
        let bad_reps = FindPoissonThreshold {
            replicates: 0,
            ..FindPoissonThreshold::new(2)
        };
        assert!(bad_reps.run(&model, &mut rng).is_err());
        let k_too_large = FindPoissonThreshold::new(20);
        assert!(k_too_large.run(&model, &mut rng).is_err());
    }

    #[test]
    fn initial_floor_is_max_expected_support() {
        let model = BernoulliModel::new(1_000, vec![0.5, 0.3, 0.1, 0.01]).unwrap();
        let algo = FindPoissonThreshold::new(2);
        // Max expected pair support = 1000 * 0.5 * 0.3 = 150.
        assert_eq!(algo.initial_floor(&model), 150);
        let algo3 = FindPoissonThreshold::new(3);
        // 1000 * 0.5 * 0.3 * 0.1 = 15.
        assert_eq!(algo3.initial_floor(&model), 15);
    }

    #[test]
    fn run_produces_consistent_estimate() {
        let model = uniform_model(400, 12, 0.15);
        let algo = FindPoissonThreshold {
            replicates: 48,
            policy: ExecutionPolicy::rayon(2),
            ..FindPoissonThreshold::new(2)
        };
        let mut rng = StdRng::seed_from_u64(42);
        let estimate = algo.run(&model, &mut rng).unwrap();
        assert_eq!(estimate.k, 2);
        assert!(estimate.s_min >= estimate.s_tilde);
        // The curve covers s_min and the bound is satisfied there.
        let at_s_min = estimate.curve_at(estimate.s_min).unwrap();
        assert!(at_s_min.b1 + at_s_min.b2 <= algo.epsilon / 4.0 + 1e-12);
        // The curve is non-increasing in all three components.
        for w in estimate.curve.windows(2) {
            assert!(w[1].b1 <= w[0].b1 + 1e-9);
            assert!(w[1].b2 <= w[0].b2 + 1e-9);
            assert!(w[1].lambda <= w[0].lambda + 1e-9);
        }
        // The lambda estimator is usable and non-increasing.
        use crate::lambda::LambdaEstimator;
        let lambda = estimate.lambda_estimator();
        assert!(
            LambdaEstimator::lambda(&lambda, estimate.s_min)
                >= LambdaEstimator::lambda(&lambda, estimate.s_min + 5)
        );
    }

    #[test]
    fn estimate_is_deterministic_given_seed() {
        let model = uniform_model(300, 10, 0.2);
        let algo = FindPoissonThreshold {
            replicates: 32,
            policy: ExecutionPolicy::rayon(3),
            ..FindPoissonThreshold::new(2)
        };
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            algo.run(&model, &mut rng).unwrap()
        };
        assert_eq!(run(7), run(7));
        // Different seeds are allowed to (and generally do) differ somewhere, but we
        // only assert they are both valid rather than different.
        let other = run(8);
        assert!(other.s_min >= other.s_tilde);
    }

    #[test]
    fn empirical_s_min_tracks_exact_chen_stein() {
        // Small homogeneous configuration where the exact bound is computable: the
        // Monte-Carlo estimate should land in the same neighbourhood (within a
        // couple of support units).
        let t = 500usize;
        let n = 8usize;
        let f = 0.1f64;
        let model = uniform_model(t, n, f);
        let algo = FindPoissonThreshold {
            replicates: 400,
            ..FindPoissonThreshold::new(2)
        };
        let mut rng = StdRng::seed_from_u64(11);
        let estimate = algo.run(&model, &mut rng).unwrap();

        let exact = crate::chen_stein::ExactChenStein::new(&vec![f; n], t as u64, 2).unwrap();
        // Compare against epsilon/4, which is what Algorithm 1 targets.
        let exact_s_min = {
            let mut s = 2u64;
            while exact.bounds(s).total() > algo.epsilon / 4.0 {
                s += 1;
            }
            s
        };
        // The analytic b2 is an upper bound on E[Z_X Z_Y] whereas the Monte-Carlo
        // run estimates it directly, so the analytic s_min is conservative (larger),
        // but the two must land in the same neighbourhood.
        assert!(
            exact_s_min >= estimate.s_min,
            "analytic s_min {exact_s_min} should not be below the Monte-Carlo ŝ_min {}",
            estimate.s_min
        );
        assert!(
            exact_s_min - estimate.s_min <= 8,
            "Monte-Carlo ŝ_min = {} vs exact s_min = {exact_s_min}",
            estimate.s_min
        );
    }

    #[test]
    fn observation_store_is_a_pure_memo() {
        // With and without the store, and warm vs cold: bit-identical estimates.
        let model = uniform_model(400, 12, 0.15);
        let algo = FindPoissonThreshold {
            replicates: 24,
            ..FindPoissonThreshold::new(2)
        };
        let run_plain = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            algo.run(&model, &mut rng).unwrap()
        };
        let store = ObservationStore::new();
        let run_stored = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            algo.run_with_store(&model, &mut rng, &NoopObserver, &store)
                .unwrap()
        };
        let reference = run_plain(19);
        let cold = run_stored(19);
        let warm = run_stored(19);
        assert_eq!(cold, reference);
        assert_eq!(warm, reference);
        assert!(!store.is_empty());
    }

    #[test]
    fn delta_extension_reuses_the_stored_prefix() {
        // Extending Δ on a warm store mines only the tail — and the result is
        // bit-identical to a cold full-Δ run, because replicate substreams are
        // addressed by (batch_key, index) alone.
        let model = uniform_model(300, 10, 0.12);
        let narrow = FindPoissonThreshold {
            replicates: 16,
            ..FindPoissonThreshold::new(2)
        };
        let wide = FindPoissonThreshold {
            replicates: 28,
            ..FindPoissonThreshold::new(2)
        };
        let store = ObservationStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let _ = narrow
            .run_with_store(&model, &mut rng, &NoopObserver, &store)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let extended = wide
            .run_with_store(&model, &mut rng, &NoopObserver, &store)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let fresh = wide.run(&model, &mut rng).unwrap();
        assert_eq!(extended, fresh);
        // ... and the shrink direction reuses a prefix of the stored batch.
        let mut rng = StdRng::seed_from_u64(5);
        let narrowed = narrow
            .run_with_store(&model, &mut rng, &NoopObserver, &store)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(narrowed, narrow.run(&model, &mut rng).unwrap());
    }

    #[test]
    fn gaps_sampler_is_deterministic_and_store_compatible() {
        let model = uniform_model(500, 10, 0.03);
        let run = |threads: usize, store: &ObservationStore| {
            let algo = FindPoissonThreshold {
                replicates: 24,
                policy: ExecutionPolicy::from_threads(threads),
                sampler: SamplerMode::Gaps,
                ..FindPoissonThreshold::new(2)
            };
            let mut rng = StdRng::seed_from_u64(13);
            algo.run_with_store(&model, &mut rng, &NoopObserver, store)
                .unwrap()
        };
        let reference = run(1, &ObservationStore::new());
        for threads in [2usize, 8] {
            assert_eq!(run(threads, &ObservationStore::new()), reference);
        }
        // Warm store: same estimate again.
        let store = ObservationStore::new();
        assert_eq!(run(1, &store), reference);
        assert_eq!(run(4, &store), reference);
        // Gaps and cellwise read different RNG streams: estimates are allowed
        // to differ, but both are valid draws of the same quantity.
        let cellwise = FindPoissonThreshold {
            replicates: 24,
            sampler: SamplerMode::Cellwise,
            ..FindPoissonThreshold::new(2)
        };
        let mut rng = StdRng::seed_from_u64(13);
        let cell = cellwise.run(&model, &mut rng).unwrap();
        assert!(cell.s_min >= cell.s_tilde);
    }

    #[test]
    fn fused_k1_supports_match_the_mined_path() {
        // k = 1 reads the frequent singletons straight off the fused support
        // vector on the bitmap path; the CSR path still mines. Cross-backend
        // bit-identity therefore proves the fusion exact.
        let model = BernoulliModel::new(600, vec![0.2, 0.1, 0.05, 0.3, 0.15]).unwrap();
        let run = |backend: DatasetBackend| {
            let algo = FindPoissonThreshold {
                replicates: 32,
                backend,
                ..FindPoissonThreshold::new(1)
            };
            let mut rng = StdRng::seed_from_u64(23);
            algo.run(&model, &mut rng).unwrap()
        };
        let csr = run(DatasetBackend::Csr);
        let bitmap = run(DatasetBackend::Bitmap);
        assert_eq!(csr, bitmap);
        assert!(bitmap.pool_size > 0);
    }

    #[test]
    fn observation_store_is_lru_bounded() {
        let store = ObservationStore::with_capacity(2);
        let model = uniform_model(100, 6, 0.1);
        let algo = FindPoissonThreshold {
            replicates: 4,
            ..FindPoissonThreshold::new(2)
        };
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let _ = algo
                .run_with_store(&model, &mut rng, &NoopObserver, &store)
                .unwrap();
        }
        assert!(store.len() <= 2);
        store.clear();
        assert!(store.is_empty());
        // Capacity 0 disables retention entirely.
        let disabled = ObservationStore::with_capacity(0);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = algo
            .run_with_store(&model, &mut rng, &NoopObserver, &disabled)
            .unwrap();
        assert!(disabled.is_empty());
        // Handle semantics: clones share, fresh stores do not.
        assert!(store.shares_with(&store.clone()));
        assert!(!store.shares_with(&disabled));
    }

    #[test]
    fn replicate_stats_count_sampled_replicates() {
        let before = replicate_stats();
        let model = uniform_model(200, 8, 0.1);
        let algo = FindPoissonThreshold {
            replicates: 8,
            ..FindPoissonThreshold::new(2)
        };
        let mut rng = StdRng::seed_from_u64(2);
        let _ = algo.run(&model, &mut rng).unwrap();
        let after = replicate_stats();
        // Counters are process-global and other tests run concurrently, so
        // only monotone growth by at least our own batch is assertable.
        assert!(after.sampled_cellwise >= before.sampled_cellwise + 8);
        assert!(after.total_sampled() >= before.total_sampled() + 8);

        let gaps = FindPoissonThreshold {
            replicates: 8,
            sampler: SamplerMode::Gaps,
            ..FindPoissonThreshold::new(2)
        };
        let store = ObservationStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let _ = gaps
            .run_with_store(&model, &mut rng, &NoopObserver, &store)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let _ = gaps
            .run_with_store(&model, &mut rng, &NoopObserver, &store)
            .unwrap();
        let reused = replicate_stats();
        assert!(reused.sampled_gaps >= after.sampled_gaps + 8);
        assert!(reused.observations_reused >= after.observations_reused + 8);
    }

    #[test]
    fn sparse_model_with_no_frequent_itemsets_degenerates_gracefully() {
        // Frequencies so small that no pair ever reaches support 1 in 20 transactions
        // with overwhelming probability: the degenerate path must terminate.
        let model = uniform_model(20, 6, 1e-4);
        let algo = FindPoissonThreshold {
            replicates: 8,
            max_restarts: 2,
            ..FindPoissonThreshold::new(2)
        };
        let mut rng = StdRng::seed_from_u64(3);
        let estimate = algo.run(&model, &mut rng).unwrap();
        assert_eq!(estimate.pool_size, 0);
        assert_eq!(estimate.s_min, 1);
    }
}

//! Algorithm 1 of the paper: **FindPoissonThreshold**, the Monte-Carlo estimator of
//! the Poisson threshold `s_min` (and, as a by-product, of the Poisson means
//! `λ(s)` used by Procedure 2).
//!
//! The procedure generates Δ random datasets from the null model, mines the
//! k-itemsets with support at least `s̃` (the largest expected support of any
//! k-itemset) from each of them, and uses the pooled observations to estimate the
//! Chen–Stein bound terms `b1(s)` and `b2(s)` empirically for every threshold `s`
//! in the observed range. The estimate `ŝ_min` is the smallest `s` with
//! `b1(s) + b2(s) ≤ ε/4`; Theorem 4 shows that Δ = O(log(1/δ)/ε) replicates make
//! `ŝ_min` a conservative estimate of the true `s_min` with probability ≥ 1 − δ.

use std::collections::HashMap;

use rand::Rng;
use serde::{Deserialize, Serialize};

use sigfim_datasets::bitmap::{with_bitmap_scratch, DatasetBackend, ResolvedBackend};
use sigfim_datasets::random::NullModel;
use sigfim_datasets::transaction::ItemId;
use sigfim_exec::{substream, BatchObserver, ExecutionPolicy, NoopObserver};
use sigfim_mining::eclat::Eclat;
use sigfim_mining::miner::KItemsetMiner;

use crate::lambda::MonteCarloLambda;
use crate::{CoreError, Result};

/// Configuration of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FindPoissonThreshold {
    /// The itemset size `k`.
    pub k: usize,
    /// The variation-distance budget `ε` of Equation (1). The paper's experiments
    /// use `ε = 0.01`.
    pub epsilon: f64,
    /// The number Δ of random datasets to generate. The paper's experiments use
    /// Δ = 1000; Theorem 4 justifies Δ = O(log(1/δ)/ε).
    pub replicates: usize,
    /// Where the Δ replicate tasks (dataset generation + mining) execute. Every
    /// replicate draws from its own `(seed, index)`-addressed RNG substream, so
    /// the estimate is bit-identical under any policy — the rayon policy is just
    /// faster.
    pub policy: ExecutionPolicy,
    /// Which physical representation the replicate datasets are materialized
    /// in. `Auto` resolves from the null model's expected density; the bitmap
    /// path samples each replicate bit-sliced into a reusable per-thread
    /// buffer and mines it with the bitset Eclat. Replicates consume their RNG
    /// substreams identically under every backend, so the estimate is
    /// bit-identical whichever is chosen — the backend only decides speed.
    pub backend: DatasetBackend,
    /// Maximum number of times the mining floor `s̃` is halved when the initial
    /// floor turns out to be inside the Poisson region already (lines 19–22 of the
    /// pseudocode) or no itemset reaches it (lines 7–9).
    pub max_restarts: usize,
}

impl FindPoissonThreshold {
    /// A configuration with the paper's `ε = 0.01` and a practical default of
    /// Δ = 64 replicates (callers reproducing the paper's tables pass Δ = 1000).
    pub fn new(k: usize) -> Self {
        FindPoissonThreshold {
            k,
            epsilon: 0.01,
            replicates: 64,
            policy: ExecutionPolicy::default(),
            backend: DatasetBackend::Auto,
            max_restarts: 4,
        }
    }

    /// The number of replicates needed by Theorem 4 so that
    /// `Pr[b1(ŝ_min) + b2(ŝ_min) ≤ ε] ≥ 1 − δ`, namely `⌈8 ln(1/δ) / ε⌉`.
    pub fn required_replicates(epsilon: f64, delta: f64) -> usize {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0,1), got {epsilon}"
        );
        assert!(
            delta > 0.0 && delta < 1.0,
            "delta must be in (0,1), got {delta}"
        );
        (8.0 * (1.0 / delta).ln() / epsilon).ceil() as usize
    }

    fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(CoreError::InvalidParameter {
                name: "k",
                reason: "must be >= 1".into(),
            });
        }
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "epsilon",
                reason: format!("must be in (0,1), got {}", self.epsilon),
            });
        }
        if self.replicates == 0 {
            return Err(CoreError::InvalidParameter {
                name: "replicates",
                reason: "at least one Monte-Carlo replicate is required".into(),
            });
        }
        Ok(())
    }

    /// The initial mining floor `s̃`: the largest expected support of any k-itemset,
    /// i.e. `t` times the product of the `k` largest item frequencies (at least 1).
    pub fn initial_floor<M: NullModel>(&self, model: &M) -> u64 {
        let mut freqs = model.item_frequencies();
        freqs.sort_by(|a, b| b.partial_cmp(a).expect("frequencies are finite"));
        let product: f64 = freqs.iter().take(self.k).product();
        ((model.num_transactions() as f64 * product).floor() as u64).max(1)
    }

    /// Run Algorithm 1 against the given null model.
    ///
    /// The model is anything implementing [`NullModel`]: the paper's Bernoulli
    /// reference model, the swap-randomization model of Gionis et al., or a custom
    /// generator.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for invalid configuration, and
    /// propagates mining errors.
    pub fn run<M: NullModel + Sync, R: Rng + ?Sized>(
        &self,
        model: &M,
        rng: &mut R,
    ) -> Result<ThresholdEstimate> {
        self.run_observed(model, rng, &NoopObserver)
    }

    /// Like [`FindPoissonThreshold::run`], reporting each completed Monte-Carlo
    /// replicate to `observer` (the progress hook a long-running analysis
    /// engine exposes to its callers). The observer never influences the
    /// estimate. When a restart halves the floor `s̃`, the Δ replicates run
    /// again and the observer sees a fresh `1..=Δ` count for the new round.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FindPoissonThreshold::run`].
    pub fn run_observed<M: NullModel + Sync, R: Rng + ?Sized>(
        &self,
        model: &M,
        rng: &mut R,
        observer: &dyn BatchObserver,
    ) -> Result<ThresholdEstimate> {
        self.validate()?;
        if model.num_items() < self.k {
            return Err(CoreError::InvalidParameter {
                name: "k",
                reason: format!(
                    "itemset size {} exceeds the number of items {}",
                    self.k,
                    model.num_items()
                ),
            });
        }

        let mut s_tilde = self.initial_floor(model);
        // Upper cap on the search range, set when a restart is triggered because the
        // bound was already satisfied at the floor.
        let mut cap: Option<u64> = None;
        let mut restarts_left = self.max_restarts;

        loop {
            let observations = self.collect_observations(model, s_tilde, rng, observer)?;
            if observations.pool.is_empty() {
                // Line 7-9 of the pseudocode: nothing reached the floor; halve it.
                if restarts_left == 0 || s_tilde == 1 {
                    // Degenerate but well-defined outcome: no k-itemset ever reaches
                    // even support 1; the Poisson approximation holds vacuously.
                    return Ok(ThresholdEstimate {
                        k: self.k,
                        epsilon: self.epsilon,
                        replicates: self.replicates,
                        s_tilde,
                        s_min: s_tilde,
                        pool_size: 0,
                        curve: vec![CurvePoint {
                            s: s_tilde,
                            b1: 0.0,
                            b2: 0.0,
                            lambda: 0.0,
                        }],
                    });
                }
                restarts_left -= 1;
                s_tilde = (s_tilde / 2).max(1);
                continue;
            }

            let curve = self.estimate_curve(&observations, s_tilde, cap);
            let threshold = self.epsilon / 4.0;
            let at_floor = curve.first().expect("curve covers at least one support");
            // Only meaningful when the curve really starts at the floor (it starts
            // higher when the pool had to be truncated — and in that case the bound
            // at the floor is certainly far above the threshold).
            let floor_already_poisson =
                at_floor.s == s_tilde && at_floor.b1 + at_floor.b2 <= threshold;
            if floor_already_poisson && restarts_left > 0 && s_tilde > 1 {
                // Lines 19-22: the floor is already inside the Poisson region; search
                // below it for a smaller s_min.
                restarts_left -= 1;
                cap = Some(s_tilde);
                s_tilde = (s_tilde / 2).max(1);
                continue;
            }

            // Line 23: the smallest s (strictly above the floor unless the budget for
            // restarts ran out) where the empirical bound drops under ε/4. The curve
            // always ends at a point with b1 = b2 = 0 (one past the largest observed
            // support), so a qualifying s always exists.
            let s_min = curve
                .iter()
                .find(|p| p.b1 + p.b2 <= threshold)
                .map(|p| p.s)
                // When the curve was capped by a restart and this round's estimate
                // does not quite dip under the threshold inside the capped range, the
                // cap itself (which satisfied the bound in the previous round) is the
                // conservative answer.
                .unwrap_or_else(|| cap.unwrap_or_else(|| curve.last().expect("non-empty").s));
            return Ok(ThresholdEstimate {
                k: self.k,
                epsilon: self.epsilon,
                replicates: self.replicates,
                s_tilde,
                s_min,
                pool_size: observations.pool.len(),
                curve,
            });
        }
    }

    /// Generate the Δ random datasets, mine each at the floor, and pool the
    /// per-replicate supports of every itemset that reached the floor anywhere.
    ///
    /// One 64-bit batch key is drawn from the caller's RNG; replicate `i` then
    /// works exclusively from the ChaCha substream addressed by `(key, i)`. The
    /// random bytes each replicate sees are therefore a function of the key and
    /// its index alone — never of scheduling — so the pooled observations are
    /// bit-identical under every [`ExecutionPolicy`].
    ///
    /// Backend dispatch happens here, once per batch: on the bitmap path each
    /// worker thread samples its replicates *directly into one reusable bitmap
    /// scratch buffer* (no CSR dataset, no per-replicate allocation once the
    /// buffer is warm) and mines them with the bitset Eclat. Both paths consume
    /// the RNG identically and mine exact supports, so they pool identical
    /// observations.
    fn collect_observations<M: NullModel + Sync, R: Rng + ?Sized>(
        &self,
        model: &M,
        floor: u64,
        rng: &mut R,
        observer: &dyn BatchObserver,
    ) -> Result<Observations> {
        let replicates = self.replicates;
        let batch_key: u64 = rng.random();
        let indices: Vec<u64> = (0..replicates as u64).collect();
        let k = self.k;
        let backend = self.backend.resolve(
            model.num_items() as u32,
            model.num_transactions(),
            model.expected_density(),
        );
        let per_replicate: Vec<HashMap<Vec<ItemId>, u64>> = self.policy.try_map_indexed_observed(
            &indices,
            |_, &index| {
                let mut local = substream(batch_key, index);
                // Eclat handles the low-floor regime (s̃ close to 1 on sparse
                // data) much better than level-wise Apriori: its work is
                // proportional to the number of frequent itemsets rather than to
                // the candidate joins.
                let mined = match backend {
                    ResolvedBackend::Csr => {
                        let dataset = model.sample_dataset(&mut local);
                        Eclat.mine_k(&dataset, k, floor)
                    }
                    // The sharded backend also rides the scratch-bitmap path
                    // here: Δ replicates already saturate the workers, so
                    // sharding *within* one replicate would only add reduce
                    // overhead — sharding pays on the observed-dataset passes
                    // of Procedure 2 instead. RNG consumption is identical, so
                    // estimates stay bit-identical across all backends.
                    ResolvedBackend::Bitmap | ResolvedBackend::ShardedBitmap => {
                        with_bitmap_scratch(|scratch| {
                            model.sample_into_bitmap(&mut local, scratch);
                            Eclat.mine_k_bitmap(scratch, k, floor)
                        })
                    }
                };
                mined.map(|mined| {
                    mined
                        .into_iter()
                        .map(|m| (m.items, m.support))
                        .collect::<HashMap<_, _>>()
                })
            },
            observer,
        )?;

        // The pool W: every itemset that reached the floor in at least one replicate.
        let mut pool: Vec<Vec<ItemId>> = Vec::new();
        {
            let mut seen: HashMap<&[ItemId], ()> = HashMap::new();
            for replicate in &per_replicate {
                for items in replicate.keys() {
                    if !seen.contains_key(items.as_slice()) {
                        pool.push(items.clone());
                    }
                }
                for items in replicate.keys() {
                    seen.entry(items.as_slice()).or_insert(());
                }
            }
        }
        pool.sort_unstable();
        pool.dedup();

        // supports[x][d] = support of pool itemset x in replicate d if it reached the
        // floor there, 0 otherwise (supports below the floor never enter the
        // estimates, which only look at s >= floor).
        let supports: Vec<Vec<u64>> = pool
            .iter()
            .map(|items| {
                per_replicate
                    .iter()
                    .map(|replicate| replicate.get(items).copied().unwrap_or(0))
                    .collect()
            })
            .collect();
        Ok(Observations {
            pool,
            supports,
            replicates,
        })
    }

    /// Turn the pooled observations into empirical `b1`, `b2`, `λ` curves over
    /// `s = floor ..= s_max`, where `s_max` is one past the largest observed support
    /// (optionally clipped to `cap`).
    fn estimate_curve(
        &self,
        observations: &Observations,
        floor: u64,
        cap: Option<u64>,
    ) -> Vec<CurvePoint> {
        let delta = observations.replicates as f64;
        // Per pool itemset: the largest support seen in any replicate.
        let max_per_itemset: Vec<u64> = observations
            .supports
            .iter()
            .map(|row| row.iter().copied().max().unwrap_or(0))
            .collect();
        let max_observed = max_per_itemset.iter().copied().max().unwrap_or(floor);

        // When the floor is far below the Poisson region (s̃ rounded down to 1 on a
        // sparse dataset), the pool can contain hundreds of thousands of itemsets and
        // the pairwise b1/b2 sums become the bottleneck. Raising the *reporting*
        // floor to the support level where at most MAX_PAIRWISE_POOL itemsets remain
        // keeps the estimates exact for every s at or above that level (excluded
        // itemsets have zero tail probability there) — and the region below it is
        // irrelevant for ŝ_min because with that many co-occurring itemsets the
        // Chen–Stein bound is far above ε anyway.
        let mut effective_floor = floor;
        if observations.pool.len() > MAX_PAIRWISE_POOL {
            let mut sorted = max_per_itemset.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            effective_floor = sorted[MAX_PAIRWISE_POOL].saturating_add(1).max(floor);
        }
        let kept: Vec<usize> = (0..observations.pool.len())
            .filter(|&x| max_per_itemset[x] >= effective_floor)
            .collect();

        let mut s_max = (max_observed + 1).max(effective_floor);
        if let Some(cap) = cap {
            s_max = s_max.min(cap.max(effective_floor));
        }
        let range = (s_max - effective_floor + 1) as usize;

        // Suffix counts per kept itemset: counts[i][j] = #replicates with support of
        // kept[i] at least (effective_floor + j).
        let counts: Vec<Vec<u32>> = kept
            .iter()
            .map(|&x| {
                let mut histogram = vec![0u32; range];
                for &support in &observations.supports[x] {
                    if support >= effective_floor {
                        let idx = ((support - effective_floor) as usize).min(range - 1);
                        histogram[idx] += 1;
                    }
                }
                // histogram currently holds exact-value counts (clipped at the top);
                // convert to suffix counts.
                for j in (0..range.saturating_sub(1)).rev() {
                    histogram[j] += histogram[j + 1];
                }
                histogram
            })
            .collect();

        // Overlapping (unordered) pairs of distinct kept itemsets, as indices into
        // `kept`/`counts`.
        let overlapping: Vec<(usize, usize)> = {
            let mut pairs = Vec::new();
            for a in 0..kept.len() {
                for b in (a + 1)..kept.len() {
                    if itemsets_overlap(&observations.pool[kept[a]], &observations.pool[kept[b]]) {
                        pairs.push((a, b));
                    }
                }
            }
            pairs
        };

        // Pair co-occurrence suffix counts for b2: for each unordered overlapping
        // pair and replicate, bucket min(support_x, support_y).
        let mut pair_hist = vec![0u64; range];
        for &(a, b) in &overlapping {
            let (x, y) = (kept[a], kept[b]);
            for d in 0..observations.replicates {
                let m = observations.supports[x][d].min(observations.supports[y][d]);
                if m >= effective_floor {
                    let idx = ((m - effective_floor) as usize).min(range - 1);
                    pair_hist[idx] += 1;
                }
            }
        }
        for j in (0..range.saturating_sub(1)).rev() {
            pair_hist[j] += pair_hist[j + 1];
        }

        (0..range)
            .map(|j| {
                let s = effective_floor + j as u64;
                let p: Vec<f64> = counts.iter().map(|c| f64::from(c[j]) / delta).collect();
                let diagonal: f64 = p.iter().map(|&v| v * v).sum();
                let off_diagonal: f64 = overlapping.iter().map(|&(a, b)| p[a] * p[b]).sum();
                // b1 sums over *ordered* overlapping pairs including the diagonal.
                let b1 = diagonal + 2.0 * off_diagonal;
                // b2 sums E[Z_X Z_Y] over ordered pairs of distinct itemsets.
                let b2 = 2.0 * pair_hist[j] as f64 / delta;
                let lambda: f64 = counts.iter().map(|c| f64::from(c[j])).sum::<f64>() / delta;
                CurvePoint { s, b1, b2, lambda }
            })
            .collect()
    }
}

/// The largest pool size for which the quadratic pairwise `b1`/`b2` estimation is
/// carried out in full; larger pools have their reporting floor raised to the
/// support level where at most this many itemsets remain (which keeps the reported
/// curve exact — see [`FindPoissonThreshold::run`]).
pub const MAX_PAIRWISE_POOL: usize = 3_000;

/// Pooled Monte-Carlo observations: the itemset pool `W` and each pool member's
/// support in every replicate.
struct Observations {
    pool: Vec<Vec<ItemId>>,
    supports: Vec<Vec<u64>>,
    replicates: usize,
}

fn itemsets_overlap(a: &[ItemId], b: &[ItemId]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// One point of the empirical Chen–Stein curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// The support threshold.
    pub s: u64,
    /// Empirical `b1(s)`.
    pub b1: f64,
    /// Empirical `b2(s)`.
    pub b2: f64,
    /// Empirical `λ(s) = E[Q̂_{k,s}]`.
    pub lambda: f64,
}

/// The result of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdEstimate {
    /// The itemset size.
    pub k: usize,
    /// The ε used.
    pub epsilon: f64,
    /// The number of Monte-Carlo replicates used.
    pub replicates: usize,
    /// The final mining floor `s̃`.
    pub s_tilde: u64,
    /// The estimated Poisson threshold `ŝ_min`.
    pub s_min: u64,
    /// Size of the pooled itemset set `W`.
    pub pool_size: usize,
    /// The empirical `b1`, `b2`, `λ` curve over the observed support range.
    pub curve: Vec<CurvePoint>,
}

impl ThresholdEstimate {
    /// The curve point at support `s`, if it is inside the estimated range.
    pub fn curve_at(&self, s: u64) -> Option<&CurvePoint> {
        self.curve.iter().find(|p| p.s == s)
    }

    /// A λ estimator backed by this estimate's curve, for use by Procedure 2.
    /// Supports beyond the curve's range (never observed in the Monte-Carlo
    /// replicates) get λ = 0.
    pub fn lambda_estimator(&self) -> MonteCarloLambda {
        let start = self.curve.first().map_or(self.s_min, |p| p.s);
        let mut values: Vec<f64> = self.curve.iter().map(|p| p.lambda).collect();
        if values.is_empty() {
            values.push(0.0);
        }
        // Guard against tiny non-monotonicities introduced by the top-bucket
        // clipping: enforce the non-increasing shape the estimator requires.
        for i in 1..values.len() {
            if values[i] > values[i - 1] {
                values[i] = values[i - 1];
            }
        }
        MonteCarloLambda::new(start, values).expect("curve values are finite and non-negative")
    }

    /// A λ estimator clamped below at the "rule of three" upper confidence bound
    /// `3 / Δ`: supports never reached in the Δ replicates get λ = 3/Δ rather
    /// than 0, so a single lucky itemset in the analyzed dataset cannot by itself
    /// produce a zero p-value. Recommended whenever Δ is small (≲ 200); with the
    /// paper's Δ = 1000 the clamp is negligible.
    pub fn conservative_lambda_estimator(&self) -> MonteCarloLambda {
        self.lambda_estimator()
            .with_floor(3.0 / self.replicates.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sigfim_datasets::random::BernoulliModel;

    fn uniform_model(t: usize, n: usize, f: f64) -> BernoulliModel {
        BernoulliModel::new(t, vec![f; n]).unwrap()
    }

    #[test]
    fn required_replicates_matches_theorem4() {
        // Δ = 8 ln(1/δ) / ε.
        let d = FindPoissonThreshold::required_replicates(0.01, 0.05);
        assert_eq!(d, (8.0 * (20.0f64).ln() / 0.01).ceil() as usize);
        assert!(FindPoissonThreshold::required_replicates(0.1, 0.1) < d);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn required_replicates_rejects_bad_epsilon() {
        let _ = FindPoissonThreshold::required_replicates(0.0, 0.05);
    }

    #[test]
    fn config_validation() {
        let model = uniform_model(50, 10, 0.2);
        let mut rng = StdRng::seed_from_u64(1);
        let bad_k = FindPoissonThreshold {
            k: 0,
            ..FindPoissonThreshold::new(2)
        };
        assert!(bad_k.run(&model, &mut rng).is_err());
        let bad_eps = FindPoissonThreshold {
            epsilon: 1.5,
            ..FindPoissonThreshold::new(2)
        };
        assert!(bad_eps.run(&model, &mut rng).is_err());
        let bad_reps = FindPoissonThreshold {
            replicates: 0,
            ..FindPoissonThreshold::new(2)
        };
        assert!(bad_reps.run(&model, &mut rng).is_err());
        let k_too_large = FindPoissonThreshold::new(20);
        assert!(k_too_large.run(&model, &mut rng).is_err());
    }

    #[test]
    fn initial_floor_is_max_expected_support() {
        let model = BernoulliModel::new(1_000, vec![0.5, 0.3, 0.1, 0.01]).unwrap();
        let algo = FindPoissonThreshold::new(2);
        // Max expected pair support = 1000 * 0.5 * 0.3 = 150.
        assert_eq!(algo.initial_floor(&model), 150);
        let algo3 = FindPoissonThreshold::new(3);
        // 1000 * 0.5 * 0.3 * 0.1 = 15.
        assert_eq!(algo3.initial_floor(&model), 15);
    }

    #[test]
    fn run_produces_consistent_estimate() {
        let model = uniform_model(400, 12, 0.15);
        let algo = FindPoissonThreshold {
            replicates: 48,
            policy: ExecutionPolicy::rayon(2),
            ..FindPoissonThreshold::new(2)
        };
        let mut rng = StdRng::seed_from_u64(42);
        let estimate = algo.run(&model, &mut rng).unwrap();
        assert_eq!(estimate.k, 2);
        assert!(estimate.s_min >= estimate.s_tilde);
        // The curve covers s_min and the bound is satisfied there.
        let at_s_min = estimate.curve_at(estimate.s_min).unwrap();
        assert!(at_s_min.b1 + at_s_min.b2 <= algo.epsilon / 4.0 + 1e-12);
        // The curve is non-increasing in all three components.
        for w in estimate.curve.windows(2) {
            assert!(w[1].b1 <= w[0].b1 + 1e-9);
            assert!(w[1].b2 <= w[0].b2 + 1e-9);
            assert!(w[1].lambda <= w[0].lambda + 1e-9);
        }
        // The lambda estimator is usable and non-increasing.
        use crate::lambda::LambdaEstimator;
        let lambda = estimate.lambda_estimator();
        assert!(
            LambdaEstimator::lambda(&lambda, estimate.s_min)
                >= LambdaEstimator::lambda(&lambda, estimate.s_min + 5)
        );
    }

    #[test]
    fn estimate_is_deterministic_given_seed() {
        let model = uniform_model(300, 10, 0.2);
        let algo = FindPoissonThreshold {
            replicates: 32,
            policy: ExecutionPolicy::rayon(3),
            ..FindPoissonThreshold::new(2)
        };
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            algo.run(&model, &mut rng).unwrap()
        };
        assert_eq!(run(7), run(7));
        // Different seeds are allowed to (and generally do) differ somewhere, but we
        // only assert they are both valid rather than different.
        let other = run(8);
        assert!(other.s_min >= other.s_tilde);
    }

    #[test]
    fn empirical_s_min_tracks_exact_chen_stein() {
        // Small homogeneous configuration where the exact bound is computable: the
        // Monte-Carlo estimate should land in the same neighbourhood (within a
        // couple of support units).
        let t = 500usize;
        let n = 8usize;
        let f = 0.1f64;
        let model = uniform_model(t, n, f);
        let algo = FindPoissonThreshold {
            replicates: 400,
            ..FindPoissonThreshold::new(2)
        };
        let mut rng = StdRng::seed_from_u64(11);
        let estimate = algo.run(&model, &mut rng).unwrap();

        let exact = crate::chen_stein::ExactChenStein::new(&vec![f; n], t as u64, 2).unwrap();
        // Compare against epsilon/4, which is what Algorithm 1 targets.
        let exact_s_min = {
            let mut s = 2u64;
            while exact.bounds(s).total() > algo.epsilon / 4.0 {
                s += 1;
            }
            s
        };
        // The analytic b2 is an upper bound on E[Z_X Z_Y] whereas the Monte-Carlo
        // run estimates it directly, so the analytic s_min is conservative (larger),
        // but the two must land in the same neighbourhood.
        assert!(
            exact_s_min >= estimate.s_min,
            "analytic s_min {exact_s_min} should not be below the Monte-Carlo ŝ_min {}",
            estimate.s_min
        );
        assert!(
            exact_s_min - estimate.s_min <= 8,
            "Monte-Carlo ŝ_min = {} vs exact s_min = {exact_s_min}",
            estimate.s_min
        );
    }

    #[test]
    fn sparse_model_with_no_frequent_itemsets_degenerates_gracefully() {
        // Frequencies so small that no pair ever reaches support 1 in 20 transactions
        // with overwhelming probability: the degenerate path must terminate.
        let model = uniform_model(20, 6, 1e-4);
        let algo = FindPoissonThreshold {
            replicates: 8,
            max_restarts: 2,
            ..FindPoissonThreshold::new(2)
        };
        let mut rng = StdRng::seed_from_u64(3);
        let estimate = algo.run(&model, &mut rng).unwrap();
        assert_eq!(estimate.pool_size, 0);
        assert_eq!(estimate.s_min, 1);
    }
}

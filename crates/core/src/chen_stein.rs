//! The Chen–Stein Poisson approximation machinery (Section 2 of the paper).
//!
//! For a random dataset `D̂` with `t` transactions over `n` items, where item `i`
//! appears in each transaction independently with probability `f_i`, let `Q̂_{k,s}`
//! be the number of k-itemsets with support at least `s`. Theorem 1 (an instance of
//! the Chen–Stein method) bounds the variation distance between the law of
//! `Q̂_{k,s}` and a Poisson law of the same mean by `b1(s) + b2(s)`, where
//!
//! * `b1(s) = Σ_X Σ_{Y ∈ I(X)} p_X p_Y` over *overlapping* pairs of k-itemsets
//!   (including `Y = X`), with `p_X = Pr[support(X) ≥ s]`, and
//! * `b2(s) = Σ_X Σ_{Y ≠ X ∈ I(X)} E[Z_X Z_Y]` over overlapping pairs of *distinct*
//!   k-itemsets.
//!
//! The paper defines `s_min = min{s : b1(s) + b2(s) ≤ ε}` (Equation 1): above it,
//! Poisson p-values for the observed `Q_{k,s}` are trustworthy.
//!
//! This module provides three ways of evaluating the bound:
//!
//! 1. [`ExactChenStein`] — exact `b1` and the paper's per-pair upper bound on `b2`
//!    over an explicitly enumerated itemset universe. Exponential in `n`, intended
//!    for small configurations (unit tests, Poisson-quality validation, the worked
//!    examples).
//! 2. [`theorem2_bounds`] — the closed-form bounds of Theorem 2 for the homogeneous
//!    case (every item has the same frequency `p = γ/n`).
//! 3. [`theorem3_bounds`] — the closed-form bounds of Theorem 3 for an arbitrary
//!    frequency profile, treating the profile as an i.i.d. sample of the frequency
//!    distribution `R` and using its empirical moments `E[R^j]`.
//!
//! All closed-form computations run in log space so they stay finite for the
//! dataset sizes of Table 1 (up to `t ≈ 10^6`, `n ≈ 4·10^4`).
//!
//! The Monte-Carlo estimator of `b1`, `b2` (Algorithm 1 of the paper) lives in
//! [`crate::montecarlo`].

use serde::{Deserialize, Serialize};
use sigfim_stats::special::{ln_choose, ln_factorial};
use sigfim_stats::Binomial;

use crate::{CoreError, Result};

/// Largest explicit itemset universe [`ExactChenStein`] is willing to enumerate.
pub const MAX_EXACT_UNIVERSE: u64 = 5_000;

/// Natural log of the trinomial coefficient `C(t; a, b, c) = t! / (a! b! c! (t-a-b-c)!)`.
/// Returns `f64::NEG_INFINITY` when `a + b + c > t`.
pub fn ln_trinomial(t: u64, a: u64, b: u64, c: u64) -> f64 {
    match a.checked_add(b).and_then(|x| x.checked_add(c)) {
        Some(sum) if sum <= t => {
            ln_factorial(t)
                - ln_factorial(a)
                - ln_factorial(b)
                - ln_factorial(c)
                - ln_factorial(t - sum)
        }
        _ => f64::NEG_INFINITY,
    }
}

/// `ln( (1/n) Σ_i f_i^power )`, the log of the empirical `power`-th moment of the
/// item-frequency profile, computed without underflow (log-sum-exp).
pub fn ln_empirical_moment(frequencies: &[f64], power: f64) -> f64 {
    if frequencies.is_empty() {
        return f64::NEG_INFINITY;
    }
    let logs: Vec<f64> = frequencies
        .iter()
        .map(|&f| {
            if f > 0.0 {
                power * f.ln()
            } else {
                f64::NEG_INFINITY
            }
        })
        .collect();
    let max = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = logs.iter().map(|&l| (l - max).exp()).sum();
    max + sum.ln() - (frequencies.len() as f64).ln()
}

/// `ln( C(n,k)² − C(n,k)·C(n−k,k) )`: the log of the number of *ordered* overlapping
/// pairs of k-itemsets over `n` items (the combinatorial factor of `b1`).
pub fn ln_overlapping_pairs(n: u64, k: u64) -> f64 {
    if k == 0 || k > n {
        return f64::NEG_INFINITY;
    }
    // ratio = C(n-k, k) / C(n, k) = Π_{i=0}^{k-1} (n-k-i)/(n-i).
    let mut ratio = 1.0f64;
    for i in 0..k {
        let numer = n.saturating_sub(k + i) as f64;
        let denom = (n - i) as f64;
        ratio *= numer / denom;
    }
    2.0 * ln_choose(n, k) + (1.0 - ratio).ln()
}

/// The probability `p_X = Pr[Bin(t, f_X) ≥ s]` that one fixed k-itemset with
/// per-transaction inclusion probability `f_X` (the product of its item
/// frequencies) reaches support `s` in `t` transactions.
///
/// # Errors
///
/// Returns [`CoreError::Stats`] if `f_X` is outside `[0, 1]`.
pub fn itemset_tail_probability(t: u64, f_itemset: f64, s: u64) -> Result<f64> {
    Ok(Binomial::new(t, f_itemset)?.sf(s))
}

/// Closed-form values of the pair `(b1(s), b2(s))`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChenSteinBounds {
    /// The `b1` term (overlapping-pair product bound).
    pub b1: f64,
    /// The `b2` term (co-occurrence bound).
    pub b2: f64,
}

impl ChenSteinBounds {
    /// `b1 + b2`, the bound on the variation distance of Theorem 1.
    pub fn total(&self) -> f64 {
        self.b1 + self.b2
    }
}

/// The paper's upper bound on `E[Z_X Z_Y]` for two overlapping k-itemsets, given
/// `t`, the threshold `s`, and the per-transaction inclusion probabilities of the
/// common part (`f_common`, the product of frequencies of items in `X ∩ Y`), of
/// `X \ Y` (`f_only_x`) and of `Y \ X` (`f_only_y`):
///
/// `E[Z_X Z_Y] ≤ Σ_{i=0}^{s} C(t; i, s−i, s−i) · f_common^{2s−i} · (f_only_x f_only_y)^{s−i} · (f_common f_only_x f_only_y)^… `
///
/// Concretely, the event requires disjoint transaction sets `A` (size `i`,
/// containing `X ∪ Y`), `B` (size `s − i`, containing `X`) and `C` (size `s − i`,
/// containing `Y`); each common item must appear `2s − i` times, each private item
/// `s` times.
pub fn pair_cooccurrence_bound(
    t: u64,
    s: u64,
    ln_f_common: f64,
    ln_f_only_x: f64,
    ln_f_only_y: f64,
) -> f64 {
    let mut total = 0.0f64;
    for i in 0..=s {
        let ln_coeff = ln_trinomial(t, i, s - i, s - i);
        if ln_coeff == f64::NEG_INFINITY {
            continue;
        }
        // Common items appear in A (i times) and in both B and C (s - i each).
        let ln_prob =
            (2 * s - i) as f64 * ln_f_common + s as f64 * ln_f_only_x + s as f64 * ln_f_only_y;
        total += (ln_coeff + ln_prob).exp();
    }
    total
}

/// Theorem 2: closed-form `b1`, `b2` for the homogeneous case where every item has
/// the same frequency `p` (the paper writes `p = γ/n`).
///
/// `b1 = (C(n,k)² − C(n,k)C(n−k,k)) · Pr[Bin(t, p^k) ≥ s]²`
///
/// `b2 = Σ_{g=1}^{k−1} C(n; g, k−g, k−g) Σ_{i=0}^{s} C(t; i, s−i, s−i)
///        p^{(2k−g)i + 2k(s−i)}`
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for `k < 1`, `s < 1`, `n < 2k − 1` or
/// `p ∉ (0, 1]`.
pub fn theorem2_bounds(n: u64, t: u64, k: usize, s: u64, p: f64) -> Result<ChenSteinBounds> {
    if k == 0 {
        return Err(CoreError::InvalidParameter {
            name: "k",
            reason: "must be >= 1".into(),
        });
    }
    if s == 0 {
        return Err(CoreError::InvalidParameter {
            name: "s",
            reason: "must be >= 1".into(),
        });
    }
    if !(p > 0.0 && p <= 1.0) {
        return Err(CoreError::InvalidParameter {
            name: "p",
            reason: format!("item frequency must be in (0,1], got {p}"),
        });
    }
    if n < k as u64 {
        return Err(CoreError::InvalidParameter {
            name: "n",
            reason: format!("need at least k = {k} items, got {n}"),
        });
    }
    let k_u = k as u64;
    let p_x = Binomial::new(t, p.powi(k as i32))?.sf(s);
    let ln_b1 = ln_overlapping_pairs(n, k_u) + 2.0 * p_x.max(f64::MIN_POSITIVE).ln();
    let b1 = if p_x == 0.0 { 0.0 } else { ln_b1.exp() };

    let ln_p = p.ln();
    let mut b2 = 0.0f64;
    for g in 1..k_u {
        // C(n; g, k-g, k-g) — zero when n < 2k - g.
        let ln_items = ln_trinomial(n, g, k_u - g, k_u - g);
        if ln_items == f64::NEG_INFINITY {
            continue;
        }
        for i in 0..=s {
            let ln_txn = ln_trinomial(t, i, s - i, s - i);
            if ln_txn == f64::NEG_INFINITY {
                continue;
            }
            let exponent = (2 * k_u - g) as f64 * i as f64 + (2 * k_u) as f64 * (s - i) as f64;
            b2 += (ln_items + ln_txn + exponent * ln_p).exp();
        }
    }
    Ok(ChenSteinBounds { b1, b2 })
}

/// Theorem 3: closed-form `b1`, `b2` bounds for an arbitrary item-frequency profile,
/// treating the profile as an i.i.d. sample of the frequency distribution `R` and
/// plugging in its empirical moments:
///
/// `b1 ≤ (C(n,k)² − C(n,k)C(n−k,k)) · C(t,s)² · E[R^s]^{2k}`
///
/// `b2 ≤ Σ_{g=1}^{k−1} C(n; g, k−g, k−g) Σ_{i=0}^{s} C(t; i, s−i, s−i)
///        E[R^{2s−i}]^g · E[R^s]^{2(k−g)}`
///
/// These are the quantities bounded in the proof of Theorem 3; the theorem itself
/// then shows they vanish asymptotically when `t = O(n^c)` with
/// `c ≤ ((k−1)(a−2) + min(2a−6, 0)) / (2s)` and `E[R^{2s}] = O(n^{-a})`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for `k < 1`, `s < 1` or an empty
/// frequency profile.
pub fn theorem3_bounds(frequencies: &[f64], t: u64, k: usize, s: u64) -> Result<ChenSteinBounds> {
    if k == 0 {
        return Err(CoreError::InvalidParameter {
            name: "k",
            reason: "must be >= 1".into(),
        });
    }
    if s == 0 {
        return Err(CoreError::InvalidParameter {
            name: "s",
            reason: "must be >= 1".into(),
        });
    }
    if frequencies.is_empty() {
        return Err(CoreError::InvalidParameter {
            name: "frequencies",
            reason: "at least one item frequency is required".into(),
        });
    }
    let n = frequencies.len() as u64;
    let k_u = k as u64;
    let ln_moment_s = ln_empirical_moment(frequencies, s as f64);
    let ln_b1 = ln_overlapping_pairs(n, k_u) + 2.0 * ln_choose(t, s) + 2.0 * k as f64 * ln_moment_s;
    let b1 = ln_b1.exp();

    let mut b2 = 0.0f64;
    for g in 1..k_u {
        let ln_items = ln_trinomial(n, g, k_u - g, k_u - g);
        if ln_items == f64::NEG_INFINITY {
            continue;
        }
        for i in 0..=s {
            let ln_txn = ln_trinomial(t, i, s - i, s - i);
            if ln_txn == f64::NEG_INFINITY {
                continue;
            }
            let ln_moment_2s_i = ln_empirical_moment(frequencies, (2 * s - i) as f64);
            let ln_term = ln_items
                + ln_txn
                + g as f64 * ln_moment_2s_i
                + 2.0 * (k_u - g) as f64 * ln_moment_s;
            b2 += ln_term.exp();
        }
    }
    Ok(ChenSteinBounds { b1, b2 })
}

/// A support `s ≥ 2` at which `b1(s) + b2(s) ≤ ε` according to the Theorem 3
/// closed-form bounds (Equation 1 of the paper evaluated analytically).
///
/// The search brackets exponentially and then bisects, which costs `O(log t)` bound
/// evaluations. The Theorem-3 bound is eventually decreasing in `s` but can grow in
/// the low-support regime (`s ≲ t·f_max`), so the returned value is the exact
/// minimum when the bound is monotone and a *conservative upper bound* on it
/// otherwise — conservative is the safe direction for a Poisson threshold. The
/// returned value always satisfies the bound; `t + 1` signals that no support within
/// the dataset does.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for `ε ∉ (0, 1)` or an invalid profile,
/// and propagates bound-evaluation errors.
pub fn s_min_theorem3(frequencies: &[f64], t: u64, k: usize, epsilon: f64) -> Result<u64> {
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(CoreError::InvalidParameter {
            name: "epsilon",
            reason: format!("must be in (0,1), got {epsilon}"),
        });
    }
    let bound = |s: u64| -> Result<f64> { Ok(theorem3_bounds(frequencies, t, k, s)?.total()) };
    bracketed_minimum_s(bound, t, epsilon)
}

/// Shared search for `min{s ≥ 2 : bound(s) ≤ ε}` assuming `bound` is non-increasing
/// in `s`. Returns `t + 1` if even `s = t` fails the bound (no support value within
/// the dataset length satisfies it).
fn bracketed_minimum_s<F: Fn(u64) -> Result<f64>>(bound: F, t: u64, epsilon: f64) -> Result<u64> {
    let t = t.max(2);
    if bound(2)? <= epsilon {
        return Ok(2);
    }
    // Exponential bracketing: find hi with bound(hi) <= epsilon.
    let mut lo = 2u64;
    let mut hi = 4u64;
    loop {
        if hi >= t {
            hi = t;
            if bound(hi)? > epsilon {
                return Ok(t + 1);
            }
            break;
        }
        if bound(hi)? <= epsilon {
            break;
        }
        lo = hi;
        hi *= 2;
    }
    // Invariant: bound(lo) > epsilon >= bound(hi).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if bound(mid)? <= epsilon {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi)
}

/// Exact Chen–Stein evaluation over an explicitly enumerated itemset universe.
///
/// `b1` is computed exactly (sum of `p_X p_Y` over ordered overlapping pairs,
/// including `X = Y`); `b2` uses the paper's per-pair upper bound on `E[Z_X Z_Y]`
/// (the trinomial co-occurrence sum), which is the same quantity the closed-form
/// theorems bound, evaluated pair by pair with the actual item frequencies.
///
/// The constructor enumerates all `C(n, k)` itemsets, so it refuses universes larger
/// than [`MAX_EXACT_UNIVERSE`].
#[derive(Debug, Clone)]
pub struct ExactChenStein {
    t: u64,
    k: usize,
    /// Per-itemset natural log of the inclusion probability `f_X`.
    ln_f: Vec<f64>,
    /// For each ordered pair index: (x, y, ln f of common part, ln f of X\Y, ln f of Y\X).
    overlapping_pairs: Vec<(usize, usize, f64, f64, f64)>,
    /// All k-itemsets, for callers that want to inspect the universe.
    itemsets: Vec<Vec<u32>>,
}

impl ExactChenStein {
    /// Enumerate the universe of k-itemsets over the given item-frequency profile.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ProblemTooLarge`] if `C(n, k)` exceeds
    /// [`MAX_EXACT_UNIVERSE`], and [`CoreError::InvalidParameter`] for `k = 0`, an
    /// empty profile, or frequencies outside `[0, 1]`.
    pub fn new(frequencies: &[f64], t: u64, k: usize) -> Result<Self> {
        if k == 0 {
            return Err(CoreError::InvalidParameter {
                name: "k",
                reason: "must be >= 1".into(),
            });
        }
        if frequencies.is_empty() || frequencies.len() < k {
            return Err(CoreError::InvalidParameter {
                name: "frequencies",
                reason: format!("need at least k = {k} item frequencies"),
            });
        }
        if let Some(&bad) = frequencies.iter().find(|&&f| !(0.0..=1.0).contains(&f)) {
            return Err(CoreError::InvalidParameter {
                name: "frequencies",
                reason: format!("frequency {bad} outside [0,1]"),
            });
        }
        let n = frequencies.len() as u64;
        let universe = sigfim_stats::special::choose(n, k as u64);
        if universe > MAX_EXACT_UNIVERSE as f64 {
            return Err(CoreError::ProblemTooLarge {
                what: "explicit itemset universe",
                size: universe as u64,
                limit: MAX_EXACT_UNIVERSE,
            });
        }

        // Enumerate all k-itemsets.
        let mut itemsets: Vec<Vec<u32>> = Vec::with_capacity(universe as usize);
        let mut current: Vec<u32> = (0..k as u32).collect();
        loop {
            itemsets.push(current.clone());
            // Next combination.
            let mut pos = k;
            loop {
                if pos == 0 {
                    break;
                }
                pos -= 1;
                if current[pos] as u64 != pos as u64 + n - k as u64 {
                    break;
                }
                if pos == 0 {
                    break;
                }
            }
            if current[pos] as u64 == pos as u64 + n - k as u64 {
                break;
            }
            current[pos] += 1;
            for i in pos + 1..k {
                current[i] = current[i - 1] + 1;
            }
        }

        let ln_f: Vec<f64> = itemsets
            .iter()
            .map(|set| {
                set.iter()
                    .map(|&i| ln_or_neg_inf(frequencies[i as usize]))
                    .sum()
            })
            .collect();

        // Precompute ordered overlapping pairs of *distinct* itemsets (x, y) with
        // x != y; the b1 sum adds the diagonal separately.
        let mut overlapping_pairs = Vec::new();
        for x in 0..itemsets.len() {
            for y in 0..itemsets.len() {
                if x == y {
                    continue;
                }
                let common: Vec<u32> = itemsets[x]
                    .iter()
                    .copied()
                    .filter(|i| itemsets[y].binary_search(i).is_ok())
                    .collect();
                if common.is_empty() {
                    continue;
                }
                let ln_common: f64 = common
                    .iter()
                    .map(|&i| ln_or_neg_inf(frequencies[i as usize]))
                    .sum();
                let ln_only_x: f64 = itemsets[x]
                    .iter()
                    .filter(|i| !common.contains(i))
                    .map(|&i| ln_or_neg_inf(frequencies[i as usize]))
                    .sum();
                let ln_only_y: f64 = itemsets[y]
                    .iter()
                    .filter(|i| !common.contains(i))
                    .map(|&i| ln_or_neg_inf(frequencies[i as usize]))
                    .sum();
                overlapping_pairs.push((x, y, ln_common, ln_only_x, ln_only_y));
            }
        }

        Ok(ExactChenStein {
            t,
            k,
            ln_f,
            overlapping_pairs,
            itemsets,
        })
    }

    /// The enumerated k-itemsets.
    pub fn itemsets(&self) -> &[Vec<u32>] {
        &self.itemsets
    }

    /// The itemset size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// `p_X` for every itemset in the universe at threshold `s`.
    pub fn tail_probabilities(&self, s: u64) -> Vec<f64> {
        self.ln_f
            .iter()
            .map(|&lf| {
                Binomial::new(self.t, lf.exp())
                    .expect("validated frequency")
                    .sf(s)
            })
            .collect()
    }

    /// The exact `b1(s)` term (including the diagonal `Y = X`).
    pub fn b1(&self, s: u64) -> f64 {
        let p = self.tail_probabilities(s);
        let diagonal: f64 = p.iter().map(|&px| px * px).sum();
        let off_diagonal: f64 = self
            .overlapping_pairs
            .iter()
            .map(|&(x, y, _, _, _)| p[x] * p[y])
            .sum();
        diagonal + off_diagonal
    }

    /// The `b2(s)` term via the per-pair co-occurrence upper bound.
    pub fn b2(&self, s: u64) -> f64 {
        self.overlapping_pairs
            .iter()
            .map(|&(_, _, ln_common, ln_x, ln_y)| {
                pair_cooccurrence_bound(self.t, s, ln_common, ln_x, ln_y)
            })
            .sum()
    }

    /// Both bound terms at threshold `s`.
    pub fn bounds(&self, s: u64) -> ChenSteinBounds {
        ChenSteinBounds {
            b1: self.b1(s),
            b2: self.b2(s),
        }
    }

    /// The exact Poisson mean `λ(s) = E[Q̂_{k,s}] = Σ_X p_X`.
    pub fn lambda(&self, s: u64) -> f64 {
        self.tail_probabilities(s).iter().sum()
    }

    /// `s_min` per Equation (1): the smallest `s ≥ 2` with `b1(s) + b2(s) ≤ ε`.
    /// Returns `t + 1` if no such `s ≤ t` exists.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for `ε ∉ (0, 1)`.
    pub fn s_min(&self, epsilon: f64) -> Result<u64> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "epsilon",
                reason: format!("must be in (0,1), got {epsilon}"),
            });
        }
        bracketed_minimum_s(|s| Ok(self.bounds(s).total()), self.t, epsilon)
    }
}

fn ln_or_neg_inf(f: f64) -> f64 {
    if f > 0.0 {
        f.ln()
    } else {
        f64::NEG_INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trinomial_matches_direct_computation() {
        // C(10; 2, 3, 1) = 10! / (2! 3! 1! 4!) = 12600.
        let v = ln_trinomial(10, 2, 3, 1).exp();
        assert!((v - 12_600.0).abs() / 12_600.0 < 1e-10);
        // Degenerate: parts exceed the total.
        assert_eq!(ln_trinomial(4, 3, 3, 3), f64::NEG_INFINITY);
        // Trinomial with empty parts reduces to a binomial.
        let v = ln_trinomial(10, 4, 0, 0).exp();
        assert!((v - 210.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_moments() {
        let freqs = [0.1, 0.2, 0.4];
        let m1 = ln_empirical_moment(&freqs, 1.0).exp();
        assert!((m1 - (0.1 + 0.2 + 0.4) / 3.0).abs() < 1e-12);
        let m2 = ln_empirical_moment(&freqs, 2.0).exp();
        assert!((m2 - (0.01 + 0.04 + 0.16) / 3.0).abs() < 1e-12);
        // Huge powers underflow gracefully in log space.
        let ln_m = ln_empirical_moment(&freqs, 1e5);
        assert!(ln_m.is_finite());
        assert!(ln_m < -90_000.0);
        assert_eq!(ln_empirical_moment(&[], 2.0), f64::NEG_INFINITY);
    }

    #[test]
    fn overlapping_pair_count_small_case() {
        // n = 5, k = 2: C(5,2)^2 - C(5,2) C(3,2) = 100 - 30 = 70.
        let v = ln_overlapping_pairs(5, 2).exp();
        assert!((v - 70.0).abs() < 1e-9);
        // k > n means no itemsets at all.
        assert_eq!(ln_overlapping_pairs(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn exact_b1_matches_hand_computation() {
        // n = 3 items, k = 2, uniform frequency 0.5, t = 4.
        // Every pair has f_X = 0.25, p_X = Pr[Bin(4, 0.25) >= 2].
        let freqs = [0.5, 0.5, 0.5];
        let cs = ExactChenStein::new(&freqs, 4, 2).unwrap();
        assert_eq!(cs.itemsets().len(), 3);
        let p = Binomial::new(4, 0.25).unwrap().sf(2);
        // All three pairs overlap each other: b1 = sum over ordered pairs (9 of them,
        // all overlapping since any two of {01,02,12} share an item) of p^2.
        let expected_b1 = 9.0 * p * p;
        assert!((cs.b1(2) - expected_b1).abs() < 1e-12);
        // Lambda = 3 p.
        assert!((cs.lambda(2) - 3.0 * p).abs() < 1e-12);
    }

    #[test]
    fn exact_b2_is_nonnegative_and_decreasing() {
        let freqs = [0.3, 0.25, 0.2, 0.15, 0.1];
        let cs = ExactChenStein::new(&freqs, 50, 2).unwrap();
        let mut prev = f64::INFINITY;
        for s in 2..10 {
            let b = cs.bounds(s);
            assert!(b.b1 >= 0.0 && b.b2 >= 0.0);
            assert!(b.total() <= prev + 1e-12, "bound must not increase in s");
            prev = b.total();
        }
    }

    #[test]
    fn exact_s_min_is_consistent_with_bounds() {
        let freqs = [0.3, 0.25, 0.2, 0.15, 0.1, 0.05];
        let cs = ExactChenStein::new(&freqs, 100, 2).unwrap();
        let eps = 0.01;
        let s_min = cs.s_min(eps).unwrap();
        assert!(cs.bounds(s_min).total() <= eps);
        if s_min > 2 {
            assert!(cs.bounds(s_min - 1).total() > eps);
        }
        // Invalid epsilon rejected.
        assert!(cs.s_min(0.0).is_err());
        assert!(cs.s_min(1.5).is_err());
    }

    #[test]
    fn exact_universe_size_limit() {
        let freqs = vec![0.01; 300];
        // C(300, 3) = 4,455,100 > MAX_EXACT_UNIVERSE.
        let err = ExactChenStein::new(&freqs, 100, 3).unwrap_err();
        assert!(matches!(err, CoreError::ProblemTooLarge { .. }));
    }

    #[test]
    fn theorem2_bounds_behave() {
        // Moderate homogeneous configuration.
        let b_small_s = theorem2_bounds(100, 1_000, 2, 2, 0.02).unwrap();
        let b_large_s = theorem2_bounds(100, 1_000, 2, 6, 0.02).unwrap();
        assert!(b_small_s.total() > b_large_s.total());
        assert!(b_large_s.b1 >= 0.0 && b_large_s.b2 >= 0.0);
        // Invalid parameters.
        assert!(theorem2_bounds(100, 1_000, 0, 2, 0.02).is_err());
        assert!(theorem2_bounds(100, 1_000, 2, 0, 0.02).is_err());
        assert!(theorem2_bounds(100, 1_000, 2, 2, 0.0).is_err());
        assert!(theorem2_bounds(1, 1_000, 2, 2, 0.5).is_err());
    }

    #[test]
    fn theorem2_matches_exact_b1_in_homogeneous_case() {
        // The b1 of Theorem 2 is exactly the b1 of the explicit enumeration when all
        // frequencies are equal.
        let n = 6u64;
        let p = 0.1f64;
        let t = 500u64;
        let k = 2usize;
        let s = 3u64;
        let freqs = vec![p; n as usize];
        let exact = ExactChenStein::new(&freqs, t, k).unwrap();
        let closed = theorem2_bounds(n, t, k, s, p).unwrap();
        let rel = (exact.b1(s) - closed.b1).abs() / closed.b1.max(1e-300);
        assert!(
            rel < 1e-9,
            "exact {} vs closed-form {}",
            exact.b1(s),
            closed.b1
        );
    }

    #[test]
    fn theorem3_bounds_eventually_decrease_and_find_s_min() {
        // A small heterogeneous profile at realistic scale. The Theorem-3 bound uses
        // the crude tail estimate C(t,s)·E[R^s]^k, which (like the paper's
        // asymptotic analysis) is only monotone decreasing once `s` is past the
        // regime `s ≈ t·f_max`; before that it can grow. We therefore check (a) the
        // bound is finite everywhere, (b) it decreases past that regime, and (c) the
        // threshold search returns a support at which the bound is satisfied.
        let mut freqs = vec![0.05, 0.04, 0.03, 0.02];
        freqs.extend(std::iter::repeat_n(0.005, 200));
        let t = 2_000u64;
        for s in [2u64, 10, 100, 150, 300] {
            let b = theorem3_bounds(&freqs, t, 2, s).unwrap();
            assert!(!b.b1.is_nan() && !b.b2.is_nan());
        }
        // Past s ≈ t * f_max = 100 the bound is decreasing.
        let b150 = theorem3_bounds(&freqs, t, 2, 150).unwrap();
        let b300 = theorem3_bounds(&freqs, t, 2, 300).unwrap();
        assert!(b150.total() > b300.total());
        let s_min = s_min_theorem3(&freqs, t, 2, 0.01).unwrap();
        assert!(s_min >= 2);
        assert!(s_min <= t);
        assert!(theorem3_bounds(&freqs, t, 2, s_min).unwrap().total() <= 0.01);
    }

    #[test]
    fn theorem3_handles_benchmark_scale_inputs() {
        // Bms1-scale parameters (n = 497, t = 59602) must not overflow/NaN, and the
        // analytic s_min must land at a non-trivial support well inside the dataset.
        let mut freqs = vec![0.06, 0.05, 0.04, 0.03, 0.02];
        freqs.extend(std::iter::repeat_n(5e-4, 492));
        let b = theorem3_bounds(&freqs, 59_602, 2, 500).unwrap();
        assert!(b.b1.is_finite() && b.b2.is_finite());
        let s_min = s_min_theorem3(&freqs, 59_602, 2, 0.01).unwrap();
        assert!(
            s_min > 2,
            "a dataset this large needs a non-trivial s_min, got {s_min}"
        );
        assert!(s_min < 59_602);
        // The b1 term alone is also finite at full Kosarak scale (t ≈ 10^6,
        // n ≈ 4·10^4, s in the hundreds of thousands) thanks to log-space math.
        let huge_n = 41_270u64;
        let ln_b1 = ln_overlapping_pairs(huge_n, 2)
            + 2.0 * ln_choose(990_002, 273_266)
            + 4.0 * ln_empirical_moment(&freqs, 273_266.0);
        assert!(!ln_b1.is_nan());
    }

    #[test]
    fn pair_cooccurrence_bound_simple_case() {
        // Fully overlapping pair is not allowed (X != Y), but a pair sharing one of
        // two items: X = {a,b}, Y = {a,c}, all frequencies 0.5, t = 4, s = 1.
        // Bound = sum_{i=0}^{1} C(4; i,1-i,1-i) * 0.5^{2-i} * 0.5 * 0.5
        //       = i=0: C(4;0,1,1)=12 * 0.5^2 * 0.25 = 0.75
        //       + i=1: C(4;1,0,0)=4 * 0.5 * 0.25 = 0.5  => 1.25
        let ln_half = 0.5f64.ln();
        let bound = pair_cooccurrence_bound(4, 1, ln_half, ln_half, ln_half);
        assert!((bound - 1.25).abs() < 1e-12);
    }

    #[test]
    fn tail_probability_is_binomial_sf() {
        let p = itemset_tail_probability(1_000_000, 1e-6, 7).unwrap();
        // The paper's Section 1.2 example: about 1e-4.
        assert!(p > 0.5e-4 && p < 2.0e-4);
        assert!(itemset_tail_probability(10, 2.0, 1).is_err());
    }
}

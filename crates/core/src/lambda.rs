//! Estimators of the Poisson mean `λ(s) = E[Q̂_{k,s}]`.
//!
//! Procedure 2 tests the observed `Q_{k,s_i}` against a Poisson distribution with
//! mean `λ_i = E[Q̂_{k,s_i}]`, the expected number of k-itemsets with support at
//! least `s_i` in the random dataset. Two estimators are provided:
//!
//! * [`MonteCarloLambda`] — the empirical mean over the Δ random datasets generated
//!   by Algorithm 1 (the paper's suggestion: "estimates for the λ_i's … can be
//!   obtained from the same random datasets generated in Algorithm 1").
//! * [`ExactLambda`] — the analytic value `λ(s) = Σ_X Pr[Bin(t, f_X) ≥ s]`, computed
//!   by a pruned depth-first enumeration over item combinations ordered by
//!   decreasing frequency. At the high supports where the procedures operate only a
//!   handful of top-frequency items can contribute anything above the truncation
//!   tolerance, so the enumeration visits a vanishing fraction of the `C(n,k)`
//!   candidates. This is the ablation comparator called out in DESIGN.md.

use serde::{Deserialize, Serialize};
use sigfim_stats::Binomial;

use crate::{CoreError, Result};

/// Something that can produce `λ(s) = E[Q̂_{k,s}]` for the random-dataset null model.
pub trait LambdaEstimator {
    /// The expected number of k-itemsets with support at least `s` in the random
    /// dataset.
    fn lambda(&self, s: u64) -> f64;
}

/// A λ estimator backed by an explicit per-support table (typically produced by the
/// Monte-Carlo runs of Algorithm 1). Queries above the table's range return the last
/// value decayed to zero; queries below the range return the first value (they are
/// never used by Procedure 2, which only probes `s ≥ s_min`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloLambda {
    /// First support value covered by `values`.
    start: u64,
    /// `values[i]` is the λ estimate at support `start + i`.
    values: Vec<f64>,
    /// Lower clamp applied to every query (see [`MonteCarloLambda::with_floor`]).
    #[serde(default)]
    floor: f64,
}

impl MonteCarloLambda {
    /// Build a table-backed estimator. `values[i]` is `λ(start + i)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the table is empty, contains
    /// negative/NaN entries, or is increasing in `s` (λ must be non-increasing).
    pub fn new(start: u64, values: Vec<f64>) -> Result<Self> {
        if values.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "values",
                reason: "lambda table must contain at least one entry".into(),
            });
        }
        if values.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "values",
                reason: "lambda estimates must be finite and non-negative".into(),
            });
        }
        if values.windows(2).any(|w| w[1] > w[0] + 1e-9) {
            return Err(CoreError::InvalidParameter {
                name: "values",
                reason: "lambda estimates must be non-increasing in s".into(),
            });
        }
        Ok(MonteCarloLambda {
            start,
            values,
            floor: 0.0,
        })
    }

    /// Apply a lower clamp to every query.
    ///
    /// The plain Monte-Carlo estimate is 0 at supports never observed in the Δ
    /// replicates, which makes the downstream Poisson test anti-conservative when Δ
    /// is small: a single real itemset landing just beyond the observed range has
    /// p-value 0 and is declared significant. Clamping the estimate at the
    /// "rule-of-three" upper confidence bound `3/Δ` (or any chosen floor) removes
    /// that failure mode at the cost of requiring slightly stronger evidence. With
    /// the paper's Δ = 1000 the clamp is negligible; it matters for quick runs with
    /// a few dozen replicates.
    ///
    /// # Panics
    ///
    /// Panics if `floor` is negative or NaN.
    pub fn with_floor(mut self, floor: f64) -> Self {
        assert!(
            floor >= 0.0 && floor.is_finite(),
            "lambda floor must be finite and >= 0"
        );
        self.floor = floor;
        self
    }

    /// First support covered by the table.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Last support covered by the table.
    pub fn end(&self) -> u64 {
        self.start + self.values.len() as u64 - 1
    }

    /// The lower clamp currently applied (0 unless set via
    /// [`MonteCarloLambda::with_floor`]).
    pub fn floor(&self) -> f64 {
        self.floor
    }
}

impl LambdaEstimator for MonteCarloLambda {
    fn lambda(&self, s: u64) -> f64 {
        let raw = if s <= self.start {
            self.values[0]
        } else {
            let offset = (s - self.start) as usize;
            if offset < self.values.len() {
                self.values[offset]
            } else {
                // Beyond the largest support ever observed in the Monte-Carlo
                // datasets the empirical estimate is zero.
                0.0
            }
        };
        raw.max(self.floor)
    }
}

/// Maximum number of DFS nodes [`ExactLambda`] will expand before giving up; prevents
/// an accidental full `C(n,k)` enumeration when called with a threshold far below the
/// Poisson regime.
pub const MAX_LAMBDA_NODES: u64 = 50_000_000;

/// Analytic λ via pruned enumeration of item combinations.
#[derive(Debug, Clone)]
pub struct ExactLambda {
    /// Item frequencies sorted in decreasing order.
    sorted_frequencies: Vec<f64>,
    t: u64,
    k: usize,
    /// Branches whose best-case per-itemset tail probability falls below this value
    /// are truncated.
    tolerance: f64,
}

impl ExactLambda {
    /// Create an estimator for a random dataset with the given item frequencies and
    /// `t` transactions, for k-itemsets.
    ///
    /// `tolerance` is the per-branch truncation threshold; `1e-12` is far below any
    /// λ value that can influence a Poisson p-value at the paper's significance
    /// levels.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for `k == 0`, an empty frequency
    /// vector, frequencies outside `[0, 1]` or a non-positive tolerance.
    pub fn new(frequencies: &[f64], t: u64, k: usize, tolerance: f64) -> Result<Self> {
        if k == 0 {
            return Err(CoreError::InvalidParameter {
                name: "k",
                reason: "must be >= 1".into(),
            });
        }
        if frequencies.len() < k {
            return Err(CoreError::InvalidParameter {
                name: "frequencies",
                reason: format!("need at least k = {k} item frequencies"),
            });
        }
        if let Some(&bad) = frequencies.iter().find(|&&f| !(0.0..=1.0).contains(&f)) {
            return Err(CoreError::InvalidParameter {
                name: "frequencies",
                reason: format!("frequency {bad} outside [0,1]"),
            });
        }
        if !(tolerance > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "tolerance",
                reason: format!("must be > 0, got {tolerance}"),
            });
        }
        let mut sorted = frequencies.to_vec();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("validated finite frequencies"));
        Ok(ExactLambda {
            sorted_frequencies: sorted,
            t,
            k,
            tolerance,
        })
    }

    /// λ(s) by pruned enumeration. Each branch of the search fixes a prefix of items
    /// (in decreasing-frequency order); the branch is cut when even the *best*
    /// completion of the prefix — extending it with the most frequent remaining
    /// items — cannot contribute more than `tolerance / C(remaining, needed)` per
    /// itemset.
    pub fn lambda(&self, s: u64) -> f64 {
        let mut total = 0.0f64;
        let mut nodes = 0u64;
        self.descend(s, 0, 1.0, self.k, &mut total, &mut nodes);
        total
    }

    fn descend(
        &self,
        s: u64,
        start: usize,
        prefix_product: f64,
        needed: usize,
        total: &mut f64,
        nodes: &mut u64,
    ) {
        if *nodes > MAX_LAMBDA_NODES {
            return;
        }
        *nodes += 1;
        if needed == 0 {
            *total += Binomial::new(self.t, prefix_product)
                .expect("frequency products stay in [0,1]")
                .sf(s);
            return;
        }
        let n = self.sorted_frequencies.len();
        if start + needed > n {
            return;
        }
        // Best possible completion: the `needed` most frequent remaining items.
        let mut best = prefix_product;
        for f in &self.sorted_frequencies[start..start + needed] {
            best *= f;
        }
        let best_tail = Binomial::new(self.t, best)
            .expect("frequency products stay in [0,1]")
            .sf(s);
        if best_tail < self.tolerance {
            return;
        }
        for i in start..=(n - needed) {
            self.descend(
                s,
                i + 1,
                prefix_product * self.sorted_frequencies[i],
                needed - 1,
                total,
                nodes,
            );
        }
    }
}

impl LambdaEstimator for ExactLambda {
    fn lambda(&self, s: u64) -> f64 {
        ExactLambda::lambda(self, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chen_stein::ExactChenStein;

    #[test]
    fn monte_carlo_table_lookup() {
        let table = MonteCarloLambda::new(10, vec![5.0, 3.0, 1.0, 0.25]).unwrap();
        assert_eq!(table.start(), 10);
        assert_eq!(table.end(), 13);
        assert_eq!(table.lambda(10), 5.0);
        assert_eq!(table.lambda(12), 1.0);
        assert_eq!(table.lambda(13), 0.25);
        // Below and above the table.
        assert_eq!(table.lambda(5), 5.0);
        assert_eq!(table.lambda(14), 0.0);
        assert_eq!(table.lambda(1_000), 0.0);
    }

    #[test]
    fn monte_carlo_floor_clamps_small_and_out_of_range_values() {
        let table = MonteCarloLambda::new(10, vec![5.0, 0.4, 0.01, 0.0])
            .unwrap()
            .with_floor(0.1);
        assert_eq!(table.floor(), 0.1);
        // Large values are untouched, small and out-of-range values are clamped.
        assert_eq!(table.lambda(10), 5.0);
        assert_eq!(table.lambda(11), 0.4);
        assert_eq!(table.lambda(12), 0.1);
        assert_eq!(table.lambda(13), 0.1);
        assert_eq!(table.lambda(1_000), 0.1);
        // Monotonicity is preserved under clamping.
        let mut prev = f64::INFINITY;
        for s in 0..30 {
            let l = table.lambda(s);
            assert!(l <= prev);
            prev = l;
        }
    }

    #[test]
    #[should_panic(expected = "floor")]
    fn monte_carlo_floor_rejects_negative_values() {
        let _ = MonteCarloLambda::new(1, vec![1.0])
            .unwrap()
            .with_floor(-0.1);
    }

    #[test]
    fn monte_carlo_table_validation() {
        assert!(MonteCarloLambda::new(1, vec![]).is_err());
        assert!(MonteCarloLambda::new(1, vec![1.0, f64::NAN]).is_err());
        assert!(MonteCarloLambda::new(1, vec![1.0, -0.5]).is_err());
        assert!(
            MonteCarloLambda::new(1, vec![1.0, 2.0]).is_err(),
            "must be non-increasing"
        );
    }

    #[test]
    fn exact_lambda_matches_full_enumeration() {
        // Small universe: compare the pruned enumeration against the exhaustive sum
        // from the Chen-Stein module.
        let freqs = [0.3, 0.25, 0.2, 0.1, 0.05, 0.02];
        let t = 200u64;
        for k in 1..=3usize {
            let exact = ExactLambda::new(&freqs, t, k, 1e-15).unwrap();
            let reference = ExactChenStein::new(&freqs, t, k).unwrap();
            for s in 2..12u64 {
                let a = exact.lambda(s);
                let b = reference.lambda(s);
                assert!(
                    (a - b).abs() <= 1e-9 + 1e-6 * b,
                    "k={k}, s={s}: pruned {a} vs exhaustive {b}"
                );
            }
        }
    }

    #[test]
    fn exact_lambda_prunes_large_universes_quickly() {
        // 10,000 items, only the first few frequent. At a high threshold only
        // top-item combinations can contribute; the pruned enumeration must answer
        // fast (node cap not hit) and give a sensible value.
        let mut freqs = vec![0.2, 0.18, 0.15, 0.12];
        freqs.extend(std::iter::repeat_n(1e-4, 9_996));
        let est = ExactLambda::new(&freqs, 100_000, 2, 1e-12).unwrap();
        // Expected support of the top pair is 0.2*0.18*1e5 = 3600.
        let lambda_low = est.lambda(3_000);
        let lambda_high = est.lambda(5_000);
        assert!(lambda_low > lambda_high);
        assert!(
            lambda_low >= 1.0,
            "top pair almost surely exceeds 3000, got {lambda_low}"
        );
        assert!(lambda_high < 0.1);
    }

    #[test]
    fn exact_lambda_is_monotone_in_s() {
        let freqs = [0.4, 0.3, 0.2, 0.1];
        let est = ExactLambda::new(&freqs, 500, 2, 1e-14).unwrap();
        let mut prev = f64::INFINITY;
        for s in 1..100 {
            let l = est.lambda(s);
            assert!(l <= prev + 1e-12);
            prev = l;
        }
    }

    #[test]
    fn exact_lambda_validation() {
        assert!(ExactLambda::new(&[], 10, 2, 1e-9).is_err());
        assert!(ExactLambda::new(&[0.5], 10, 2, 1e-9).is_err());
        assert!(ExactLambda::new(&[0.5, 1.5], 10, 2, 1e-9).is_err());
        assert!(ExactLambda::new(&[0.5, 0.5], 10, 0, 1e-9).is_err());
        assert!(ExactLambda::new(&[0.5, 0.5], 10, 2, 0.0).is_err());
    }

    #[test]
    fn trait_object_dispatch() {
        let mc = MonteCarloLambda::new(2, vec![4.0, 2.0]).unwrap();
        let exact = ExactLambda::new(&[0.5, 0.5], 10, 2, 1e-12).unwrap();
        let estimators: Vec<&dyn LambdaEstimator> = vec![&mc, &exact];
        for e in estimators {
            assert!(e.lambda(2) >= e.lambda(3));
        }
    }
}

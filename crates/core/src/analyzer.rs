//! The high-level, one-call API: [`SignificanceAnalyzer`].
//!
//! The analyzer wires the paper's pipeline together exactly as the experiments in
//! Section 4 run it:
//!
//! 1. build the null model from the dataset (same `t`, same item frequencies,
//!    independent placement),
//! 2. run Algorithm 1 (Monte-Carlo FindPoissonThreshold) to obtain `ŝ_min` and the
//!    Poisson means `λ(s)`,
//! 3. run Procedure 2 to select the significance threshold `s*` and the significant
//!    family `F_k(s*)` with FDR ≤ β at confidence 1 − α,
//! 4. optionally run Procedure 1 (the Benjamini–Yekutieli baseline) on the same
//!    `F_k(ŝ_min)` for comparison — this is what Table 5 of the paper reports.
//!
//! Since the engine redesign this type is a thin **compatibility shim**: every
//! `analyze*` call builds a single-request [`AnalysisEngine`] and runs
//! [`SignificanceAnalyzer::request`] through it, with bit-identical results
//! (enforced by `crates/core/tests/engine_parity.rs`). Callers that issue more
//! than one query against the same dataset — k-sweeps, α/β ablations, services —
//! should hold an [`AnalysisEngine`] instead and let its caches work.

use sigfim_datasets::bitmap::DatasetBackend;
use sigfim_datasets::random::{BernoulliModel, DynNullModel, NullModel, SwapRandomizationModel};
use sigfim_datasets::transaction::TransactionDataset;
use sigfim_exec::ExecutionPolicy;
use sigfim_mining::miner::MinerKind;

use crate::engine::{AnalysisEngine, AnalysisRequest, LambdaMode, DEFAULT_SEED};
use crate::report::{AnalysisParameters, AnalysisReport};
use crate::Result;

/// End-to-end significance analysis for k-itemsets of one fixed size.
///
/// Construct with [`SignificanceAnalyzer::new`], adjust with the builder-style
/// `with_*` methods, then call [`SignificanceAnalyzer::analyze`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignificanceAnalyzer {
    k: usize,
    alpha: f64,
    beta: f64,
    epsilon: f64,
    replicates: usize,
    policy: ExecutionPolicy,
    seed: u64,
    miner: MinerKind,
    backend: DatasetBackend,
    run_procedure1: bool,
    conservative_lambda: bool,
    max_restarts: usize,
}

impl SignificanceAnalyzer {
    /// An analyzer for k-itemsets with the paper's experimental parameters:
    /// `α = β = 0.05`, `ε = 0.01`, and a practical default of 64 Monte-Carlo
    /// replicates (the paper uses Δ = 1000; pass it via
    /// [`SignificanceAnalyzer::with_replicates`] to match exactly).
    pub fn new(k: usize) -> Self {
        SignificanceAnalyzer {
            k,
            alpha: 0.05,
            beta: 0.05,
            epsilon: 0.01,
            replicates: 64,
            policy: ExecutionPolicy::default(),
            seed: DEFAULT_SEED,
            miner: MinerKind::Apriori,
            backend: DatasetBackend::Auto,
            run_procedure1: true,
            conservative_lambda: false,
            max_restarts: 4,
        }
    }

    /// Set the confidence budget `α` of Procedure 2.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Set the FDR budget `β` (used by both procedures).
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Set the Chen–Stein variation-distance budget `ε` of Equation (1).
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Set the number Δ of Monte-Carlo replicates used by Algorithm 1.
    pub fn with_replicates(mut self, replicates: usize) -> Self {
        self.replicates = replicates;
        self
    }

    /// Set the number of worker threads (0 = available parallelism, 1 = strictly
    /// sequential). Shorthand for [`SignificanceAnalyzer::with_execution_policy`]
    /// with [`ExecutionPolicy::from_threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.policy = ExecutionPolicy::from_threads(threads);
        self
    }

    /// Set the execution policy for the Monte-Carlo replicate loop. The result
    /// of the analysis is bit-identical under every policy (replicates draw from
    /// index-addressed RNG substreams); the policy only decides how fast it is
    /// computed.
    pub fn with_execution_policy(mut self, policy: ExecutionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The execution policy the Monte-Carlo stage will use.
    pub fn execution_policy(&self) -> ExecutionPolicy {
        self.policy
    }

    /// Set the random seed that makes the whole analysis deterministic.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Select the mining algorithm.
    pub fn with_miner(mut self, miner: MinerKind) -> Self {
        self.miner = miner;
        self
    }

    /// Select the physical dataset backend for the Monte-Carlo replicates and
    /// the Procedure 2 mining passes. The analysis result is bit-identical
    /// under every backend (supports are exact either way); `Auto` (the
    /// default) picks per workload from the density/size heuristic of
    /// [`DatasetBackend::resolve`].
    pub fn with_backend(mut self, backend: DatasetBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The dataset backend choice the pipeline will use.
    pub fn backend(&self) -> DatasetBackend {
        self.backend
    }

    /// Enable or disable the Procedure 1 baseline (enabled by default).
    pub fn with_procedure1(mut self, enabled: bool) -> Self {
        self.run_procedure1 = enabled;
        self
    }

    /// Clamp the Monte-Carlo λ estimates below at the rule-of-three bound `3/Δ`
    /// (see [`crate::montecarlo::ThresholdEstimate::conservative_lambda_estimator`]).
    /// Disabled by default to match the paper's procedure exactly; recommended when
    /// running with only a few dozen replicates.
    pub fn with_conservative_lambda(mut self, enabled: bool) -> Self {
        self.conservative_lambda = enabled;
        self
    }

    /// Set the maximum number of floor-halving restarts of Algorithm 1 (default
    /// 4; must be at least 1 — `analyze` rejects 0).
    pub fn with_max_restarts(mut self, max_restarts: usize) -> Self {
        self.max_restarts = max_restarts;
        self
    }

    /// The parameters this analyzer will use, as recorded in reports.
    pub fn parameters(&self) -> AnalysisParameters {
        AnalysisParameters {
            k: self.k,
            alpha: self.alpha,
            beta: self.beta,
            epsilon: self.epsilon,
            replicates: self.replicates,
            seed: self.seed,
            miner: self.miner,
            backend: self.backend,
        }
    }

    /// This analyzer's configuration as a single-`k` engine request — the
    /// migration path to the session API: `analyzer.analyze(&d)` is
    /// `AnalysisEngine::from_dataset(d)?.run(&analyzer.request())`.
    pub fn request(&self) -> AnalysisRequest {
        AnalysisRequest::for_k(self.k)
            .with_alpha(self.alpha)
            .with_beta(self.beta)
            .with_epsilon(self.epsilon)
            .with_replicates(self.replicates)
            .with_seed(self.seed)
            .with_miner(self.miner)
            .with_lambda_mode(if self.conservative_lambda {
                LambdaMode::Conservative
            } else {
                LambdaMode::Faithful
            })
            .with_baseline(self.run_procedure1)
            .with_max_restarts(self.max_restarts)
    }

    /// Analyze a dataset against the paper's null model derived from it (same `t`,
    /// same item frequencies, independent placement).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidParameter`] for an empty dataset or invalid
    /// configuration, and propagates errors from the pipeline stages.
    pub fn analyze(&self, dataset: &TransactionDataset) -> Result<AnalysisReport> {
        let model = BernoulliModel::from_dataset(dataset);
        self.analyze_with_model(dataset, &model)
    }

    /// Analyze a dataset against the swap-randomization null model of Gionis et al.
    /// (the alternative model discussed in §1.1 of the paper): every random dataset
    /// preserves the item supports *and* the transaction lengths of `dataset`
    /// exactly, differing only in which items co-occur. `swaps_per_entry` controls
    /// the mixing length (3–4 swap attempts per incidence is plenty for
    /// market-basket data).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SignificanceAnalyzer::analyze`], plus an error when the
    /// dataset has no incidences or `swaps_per_entry` is not positive.
    pub fn analyze_with_swap_null(
        &self,
        dataset: &TransactionDataset,
        swaps_per_entry: f64,
    ) -> Result<AnalysisReport> {
        let model = SwapRandomizationModel::new(dataset.clone(), swaps_per_entry)?;
        self.analyze_with_model(dataset, &model)
    }

    /// Analyze a dataset against an explicitly supplied null model. Useful when the
    /// frequencies should come from a reference population rather than the dataset
    /// itself, or when replaying a fitted model.
    ///
    /// This is the compatibility path: a fresh single-request
    /// [`AnalysisEngine`] is built per call (borrowing `model` behind the
    /// dyn-erased [`DynNullModel`] boundary, cloning only the dataset
    /// container), so nothing is cached across calls. The report is
    /// bit-identical to the pre-engine pipeline — erasure changes neither
    /// sampling nor cache keys. Note the per-call dataset clone and model
    /// fingerprint are O(dataset); callers for whom that matters — anyone
    /// issuing repeated queries — should hold an [`AnalysisEngine`] directly
    /// and pay both once.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SignificanceAnalyzer::analyze`].
    pub fn analyze_with_model<M: NullModel + Sync>(
        &self,
        dataset: &TransactionDataset,
        model: &M,
    ) -> Result<AnalysisReport> {
        // The shim runs on the same dyn-erased surface the service uses: the
        // borrowed model is boxed (a pointer, not a clone) behind the
        // object-safe boundary, exercising the erased path on every call.
        let erased: Box<dyn DynNullModel + '_> = Box::new(model);
        let mut engine = AnalysisEngine::with_model(dataset.clone(), erased)?
            .with_backend(self.backend)
            .with_execution_policy(self.policy);
        let response = engine.run(&self.request())?;
        Ok(response
            .into_reports()
            .pop()
            .expect("a single-k request yields exactly one report"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sigfim_datasets::random::{PlantedConfig, PlantedModel, PlantedPattern};

    fn planted_model() -> PlantedModel {
        let background = BernoulliModel::new(500, vec![0.04; 30]).unwrap();
        PlantedModel::new(PlantedConfig {
            background,
            patterns: vec![
                PlantedPattern::new(vec![1, 2], 90).unwrap(),
                PlantedPattern::new(vec![10, 20], 70).unwrap(),
            ],
        })
        .unwrap()
    }

    #[test]
    fn builder_round_trip() {
        let analyzer = SignificanceAnalyzer::new(3)
            .with_alpha(0.01)
            .with_beta(0.1)
            .with_epsilon(0.02)
            .with_replicates(128)
            .with_threads(2)
            .with_seed(42)
            .with_miner(MinerKind::Eclat)
            .with_procedure1(false);
        let params = analyzer.parameters();
        assert_eq!(params.k, 3);
        assert!((params.alpha - 0.01).abs() < 1e-15);
        assert!((params.beta - 0.1).abs() < 1e-15);
        assert!((params.epsilon - 0.02).abs() < 1e-15);
        assert_eq!(params.replicates, 128);
        assert_eq!(params.seed, 42);
        assert_eq!(params.miner, MinerKind::Eclat);
        // The engine-request view carries the same configuration, including the
        // fields the report parameters do not record.
        let request = analyzer.with_max_restarts(6).request();
        assert_eq!(request.ks, vec![3]);
        assert_eq!(request.replicates, 128);
        assert_eq!(request.miner, MinerKind::Eclat);
        assert!(!request.baseline);
        assert_eq!(request.max_restarts, 6);
        assert_eq!(request.lambda_mode, LambdaMode::Faithful);
    }

    #[test]
    fn zero_max_restarts_is_rejected() {
        let model = planted_model();
        let dataset = model.sample(&mut StdRng::seed_from_u64(4));
        let error = SignificanceAnalyzer::new(2)
            .with_replicates(8)
            .with_max_restarts(0)
            .analyze(&dataset)
            .unwrap_err();
        assert!(error.to_string().contains("max_restarts"), "{error}");
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let empty = TransactionDataset::empty(5);
        assert!(SignificanceAnalyzer::new(2).analyze(&empty).is_err());
    }

    #[test]
    fn planted_pairs_are_recovered_and_noise_is_not() {
        let model = planted_model();
        let mut rng = StdRng::seed_from_u64(21);
        let dataset = model.sample(&mut rng);
        let report = SignificanceAnalyzer::new(2)
            .with_replicates(48)
            .with_seed(5)
            .analyze(&dataset)
            .unwrap();

        let s_star = report
            .procedure2
            .s_star
            .expect("planted structure must be detected");
        assert!(s_star >= report.threshold.s_min);
        let discovered: Vec<_> = report
            .procedure2
            .significant
            .iter()
            .map(|i| i.items.clone())
            .collect();
        assert!(discovered.contains(&vec![1, 2]));
        assert!(discovered.contains(&vec![10, 20]));
        // Procedure 1 ran too and also finds the planted pairs.
        let p1 = report.procedure1.as_ref().unwrap();
        assert!(p1.significant().iter().any(|i| i.items == vec![1, 2]));

        // A pure-noise dataset from the same background yields no detection.
        let noise = model.background().sample(&mut rng);
        let noise_report = SignificanceAnalyzer::new(2)
            .with_replicates(48)
            .with_seed(5)
            .analyze(&noise)
            .unwrap();
        assert!(noise_report.procedure2.s_star.is_none());
        assert!(noise_report.procedure2.significant.is_empty());
    }

    #[test]
    fn analysis_is_deterministic_for_a_fixed_seed() {
        let model = planted_model();
        let mut rng = StdRng::seed_from_u64(77);
        let dataset = model.sample(&mut rng);
        let analyzer = SignificanceAnalyzer::new(2)
            .with_replicates(24)
            .with_seed(9);
        let a = analyzer.analyze(&dataset).unwrap();
        let b = analyzer.analyze(&dataset).unwrap();
        assert_eq!(a.procedure2.s_star, b.procedure2.s_star);
        assert_eq!(a.threshold.s_min, b.threshold.s_min);
        assert_eq!(a.procedure2.significant, b.procedure2.significant);
    }

    #[test]
    fn swap_null_recovers_planted_pairs_and_preserves_margins() {
        // The swap null keeps the (inflated) item supports of the planted dataset,
        // so the planted pairs still stand out: their co-occurrence is far beyond
        // what margin-preserving shuffles produce.
        let model = planted_model();
        let mut rng = StdRng::seed_from_u64(61);
        let dataset = model.sample(&mut rng);
        let report = SignificanceAnalyzer::new(2)
            .with_replicates(32)
            .with_seed(6)
            .with_procedure1(false)
            .analyze_with_swap_null(&dataset, 3.0)
            .unwrap();
        assert!(report.procedure2.s_star.is_some());
        let discovered: Vec<_> = report
            .procedure2
            .significant
            .iter()
            .map(|i| i.items.clone())
            .collect();
        assert!(discovered.contains(&vec![1, 2]));
        // Degenerate inputs are rejected cleanly.
        let empty = TransactionDataset::empty(3);
        assert!(SignificanceAnalyzer::new(2)
            .analyze_with_swap_null(&empty, 3.0)
            .is_err());
        assert!(SignificanceAnalyzer::new(2)
            .analyze_with_swap_null(&dataset, 0.0)
            .is_err());
    }

    #[test]
    fn conservative_lambda_suppresses_singleton_detections_with_few_replicates() {
        // One lone planted pair, very few replicates: the paper-faithful estimator
        // (lambda = 0 beyond the Monte-Carlo range) certifies it from a single
        // observation, while the conservative clamp requires more evidence.
        let background = BernoulliModel::new(500, vec![0.04; 30]).unwrap();
        let model = PlantedModel::new(PlantedConfig {
            background,
            patterns: vec![PlantedPattern::new(vec![4, 8], 90).unwrap()],
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(51);
        let dataset = model.sample(&mut rng);

        let faithful = SignificanceAnalyzer::new(2)
            .with_replicates(16)
            .with_seed(2)
            .with_procedure1(false)
            .analyze(&dataset)
            .unwrap();
        let conservative = SignificanceAnalyzer::new(2)
            .with_replicates(16)
            .with_seed(2)
            .with_procedure1(false)
            .with_conservative_lambda(true)
            .analyze(&dataset)
            .unwrap();
        assert!(faithful.procedure2.s_star.is_some());
        // The conservative variant never returns *more* than the faithful one.
        assert!(conservative.procedure2.num_significant() <= faithful.procedure2.num_significant());
    }

    #[test]
    fn custom_null_model_is_honoured() {
        // Analyze a dataset against a *wrong* null model with much higher
        // frequencies: everything looks ordinary, so nothing is significant.
        let model = planted_model();
        let mut rng = StdRng::seed_from_u64(13);
        let dataset = model.sample(&mut rng);
        let inflated = BernoulliModel::new(dataset.num_transactions(), vec![0.5; 30]).unwrap();
        let report = SignificanceAnalyzer::new(2)
            .with_replicates(16)
            .with_seed(3)
            .with_procedure1(false)
            .analyze_with_model(&dataset, &inflated)
            .unwrap();
        assert!(report.procedure2.s_star.is_none());
        assert!(report.procedure1.is_none());
        let _ = rng.random::<u64>();
    }
}

//! Serializable progress snapshots over the [`ProgressObserver`] hook.
//!
//! The engine reports progress as a stream of callbacks; a polling
//! front-end (the service's `GET /v1/jobs/<id>` route) instead wants a
//! point-in-time *snapshot*: per-`k` stage, replicate counts, cache
//! provenance. [`SnapshotObserver`] folds the callback stream into a
//! [`ProgressSnapshot`] that can be read at any moment from any thread and
//! serializes through the workspace serde shim, so it can ride the wire and
//! the store unchanged.

use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::engine::{AnalysisStage, ProgressObserver};

/// The wire name of a pipeline stage.
pub fn stage_name(stage: AnalysisStage) -> &'static str {
    match stage {
        AnalysisStage::Threshold => "threshold",
        AnalysisStage::Procedure2 => "procedure2",
        AnalysisStage::Procedure1 => "procedure1",
    }
}

/// Progress of one `k`-run inside a request.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KProgress {
    /// The itemset size.
    pub k: usize,
    /// The stage currently running (`""` before the first event;
    /// see [`stage_name`] for the values).
    pub stage: String,
    /// Monte-Carlo replicates finished in the current Algorithm 1 round.
    /// Restarts with a halved floor reset this to count the new round.
    pub completed_replicates: usize,
    /// Replicates the current round will run.
    pub total_replicates: usize,
    /// Whether the threshold was served from the cache (no replicate events
    /// follow for this `k`).
    pub threshold_cache_hit: bool,
    /// The stages already completed, in completion order.
    pub completed_stages: Vec<String>,
}

/// A point-in-time view of a request's progress: one entry per `k` that has
/// produced at least one event, in first-event order (the request's `ks`
/// order — the engine runs them sequentially).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProgressSnapshot {
    /// Per-`k` progress entries.
    pub per_k: Vec<KProgress>,
}

impl ProgressSnapshot {
    /// The progress entry of itemset size `k`, if it has started.
    pub fn progress_for(&self, k: usize) -> Option<&KProgress> {
        self.per_k.iter().find(|p| p.k == k)
    }
}

/// A [`ProgressObserver`] that folds the event stream into a
/// [`ProgressSnapshot`] readable at any time via
/// [`SnapshotObserver::snapshot`]. `Sync` as the observer contract
/// requires; replicate events may arrive from worker threads.
#[derive(Debug, Default)]
pub struct SnapshotObserver {
    state: Mutex<ProgressSnapshot>,
}

impl SnapshotObserver {
    /// A fresh observer with an empty snapshot.
    pub fn new() -> Self {
        SnapshotObserver::default()
    }

    /// Clone the current snapshot.
    pub fn snapshot(&self) -> ProgressSnapshot {
        self.lock().clone()
    }

    /// Lock the snapshot, recovering from poisoning: the snapshot is plain
    /// progress data, consistent between any two events.
    fn lock(&self) -> std::sync::MutexGuard<'_, ProgressSnapshot> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Run `update` on the entry for `k`, creating it on first sight.
    fn with_k(&self, k: usize, update: impl FnOnce(&mut KProgress)) {
        let mut state = self.lock();
        let entry = match state.per_k.iter_mut().position(|p| p.k == k) {
            Some(at) => &mut state.per_k[at],
            None => {
                state.per_k.push(KProgress {
                    k,
                    ..KProgress::default()
                });
                state.per_k.last_mut().expect("entry was just pushed")
            }
        };
        update(entry);
    }
}

impl ProgressObserver for SnapshotObserver {
    fn stage_started(&self, k: usize, stage: AnalysisStage) {
        self.with_k(k, |p| p.stage = stage_name(stage).to_string());
    }

    fn replicate_completed(&self, k: usize, completed: usize, total: usize) {
        self.with_k(k, |p| {
            p.completed_replicates = completed;
            p.total_replicates = total;
        });
    }

    fn threshold_cache_hit(&self, k: usize) {
        self.with_k(k, |p| p.threshold_cache_hit = true);
    }

    fn stage_completed(&self, k: usize, stage: AnalysisStage) {
        self.with_k(k, |p| {
            let name = stage_name(stage);
            p.completed_stages.push(name.to_string());
            if p.stage == name {
                p.stage = String::new();
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_events_into_per_k_entries() {
        let observer = SnapshotObserver::new();
        observer.stage_started(2, AnalysisStage::Threshold);
        observer.replicate_completed(2, 3, 8);
        observer.stage_completed(2, AnalysisStage::Threshold);
        observer.stage_started(2, AnalysisStage::Procedure2);
        observer.threshold_cache_hit(3);

        let snapshot = observer.snapshot();
        assert_eq!(snapshot.per_k.len(), 2);
        let k2 = snapshot.progress_for(2).unwrap();
        assert_eq!(k2.stage, "procedure2");
        assert_eq!((k2.completed_replicates, k2.total_replicates), (3, 8));
        assert_eq!(k2.completed_stages, vec!["threshold".to_string()]);
        assert!(!k2.threshold_cache_hit);
        let k3 = snapshot.progress_for(3).unwrap();
        assert!(k3.threshold_cache_hit);
        assert_eq!(k3.stage, "");
        assert!(snapshot.progress_for(9).is_none());
    }

    #[test]
    fn snapshot_serializes_and_roundtrips() {
        let observer = SnapshotObserver::new();
        observer.stage_started(4, AnalysisStage::Threshold);
        observer.replicate_completed(4, 5, 16);
        let snapshot = observer.snapshot();
        let text = serde_json::to_string(&snapshot).unwrap();
        let back: ProgressSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snapshot);
    }

    #[test]
    fn drives_a_real_engine_run() {
        use crate::engine::{AnalysisEngine, AnalysisRequest};
        use rand::SeedableRng;
        use sigfim_datasets::random::BernoulliModel;

        let model = BernoulliModel::new(120, vec![0.1; 12]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let dataset = model.sample(&mut rng);
        let mut engine = AnalysisEngine::from_dataset(dataset).unwrap();
        let request = AnalysisRequest::for_k(2).with_replicates(8);

        let observer = SnapshotObserver::new();
        engine.run_observed(&request, &observer).unwrap();
        let cold = observer.snapshot();
        let k2 = cold.progress_for(2).unwrap();
        assert!(k2.completed_stages.contains(&"threshold".to_string()));
        assert!(k2.completed_stages.contains(&"procedure2".to_string()));
        assert_eq!(k2.completed_replicates, k2.total_replicates);
        assert!(!k2.threshold_cache_hit);

        // A warm re-run reports the cache hit and no replicate events.
        let warm_observer = SnapshotObserver::new();
        engine.run_observed(&request, &warm_observer).unwrap();
        let warm = warm_observer.snapshot();
        let k2 = warm.progress_for(2).unwrap();
        assert!(k2.threshold_cache_hit);
        assert_eq!(k2.completed_replicates, 0);
    }
}

//! # sigfim-exec
//!
//! The deterministic parallel execution layer of the `sigfim` workspace.
//!
//! Algorithm 1 of the paper (FindPoissonThreshold) is embarrassingly parallel —
//! Δ independent random datasets, each generated and mined at the floor support —
//! but naive parallelization breaks reproducibility: if workers pull values from
//! a shared RNG, results depend on scheduling. This crate solves both halves of
//! the problem:
//!
//! * [`ExecutionPolicy`] abstracts *where* indexed tasks run (inline on the
//!   calling thread, or on a rayon thread pool with dynamic load balancing) while
//!   guaranteeing that outputs come back **in input order**, so the two policies
//!   are observationally identical for pure per-index tasks.
//! * [`substream`] gives every task its *own* RNG, addressed by `(seed, index)`
//!   through the ChaCha stream-cipher structure. Replicate `i` sees the same
//!   random bytes no matter which worker runs it, when, or alongside what — so a
//!   Monte-Carlo run is bit-identical at 1, 2 or 64 threads.
//!
//! ```
//! use sigfim_exec::{substream, ExecutionPolicy};
//! use rand::Rng;
//!
//! let inputs: Vec<u64> = (0..32).collect();
//! let task = |i: usize, _x: &u64| substream(42, i as u64).random::<f64>();
//! let sequential = ExecutionPolicy::Sequential.map_indexed(&inputs, task);
//! let parallel = ExecutionPolicy::rayon(8).map_indexed(&inputs, task);
//! assert_eq!(sequential, parallel); // bit-identical
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use rayon::ThreadPoolBuilder;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// Where (and with how much parallelism) indexed task batches execute.
///
/// The policy is threaded from the top of the pipeline
/// (`SignificanceAnalyzer`) down to the replicate loop of Algorithm 1. Both
/// variants produce identical outputs for pure per-index tasks; `Rayon` merely
/// produces them faster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionPolicy {
    /// Run every task inline on the calling thread, in index order.
    Sequential,
    /// Run tasks on a work-claiming thread pool. `threads = 0` means one worker
    /// per available core.
    Rayon {
        /// Number of worker threads (`0` = available parallelism).
        threads: usize,
    },
}

impl Default for ExecutionPolicy {
    /// The default policy uses all available cores.
    fn default() -> Self {
        ExecutionPolicy::Rayon { threads: 0 }
    }
}

impl ExecutionPolicy {
    /// A rayon policy with an explicit worker count (`0` = available parallelism).
    pub fn rayon(threads: usize) -> Self {
        ExecutionPolicy::Rayon { threads }
    }

    /// Map a legacy `threads` knob onto a policy: `1` means strictly sequential,
    /// anything else a rayon pool of that size (`0` = available parallelism).
    pub fn from_threads(threads: usize) -> Self {
        match threads {
            1 => ExecutionPolicy::Sequential,
            n => ExecutionPolicy::Rayon { threads: n },
        }
    }

    /// The number of OS worker threads this policy accounts for: 1 for
    /// `Sequential`, the pool size for `Rayon` (resolving the `0` =
    /// available-parallelism convention against the machine). This is the
    /// shared thread-accounting rule; the service front-end sizes its
    /// connection worker pool with it so "0 workers" means the same thing for
    /// HTTP handlers as it does for Monte-Carlo replicates.
    pub fn worker_threads(&self) -> usize {
        match *self {
            ExecutionPolicy::Sequential => 1,
            ExecutionPolicy::Rayon { threads: 0 } => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            ExecutionPolicy::Rayon { threads } => threads,
        }
    }

    /// Apply `task` to every element of `items` and return the outputs **in
    /// input order**, regardless of policy. `task` receives the element index,
    /// which parallel callers should use to derive any per-task randomness (see
    /// [`substream`]).
    pub fn map_indexed<T, O, F>(&self, items: &[T], task: F) -> Vec<O>
    where
        T: Sync,
        O: Send,
        F: Fn(usize, &T) -> O + Sync,
    {
        match *self {
            ExecutionPolicy::Sequential => items
                .iter()
                .enumerate()
                .map(|(i, item)| task(i, item))
                .collect(),
            ExecutionPolicy::Rayon { threads } => ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool construction cannot fail")
                .par_map_indexed(items, task),
        }
    }

    /// Like [`ExecutionPolicy::map_indexed`] for fallible tasks: returns all
    /// outputs in input order, or the error of the **lowest-indexed** failing
    /// task — so error selection is deterministic too, independent of which
    /// worker failed first in wall-clock time.
    ///
    /// Both policies stop early on failure. Under `Rayon`, workers skip every
    /// task whose index lies *above* the lowest failing index recorded so far —
    /// tasks below it always run, so the error that is returned is always the
    /// globally lowest-indexed one, exactly as under `Sequential`; early
    /// stopping only reduces how much post-failure work is wasted.
    pub fn try_map_indexed<T, O, E, F>(&self, items: &[T], task: F) -> Result<Vec<O>, E>
    where
        T: Sync,
        O: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<O, E> + Sync,
    {
        match *self {
            ExecutionPolicy::Sequential => items
                .iter()
                .enumerate()
                .map(|(i, item)| task(i, item))
                .collect(),
            ExecutionPolicy::Rayon { .. } => {
                let first_failure = AtomicUsize::new(usize::MAX);
                let results: Vec<Option<Result<O, E>>> = self.map_indexed(items, |i, item| {
                    if i > first_failure.load(Ordering::Relaxed) {
                        return None;
                    }
                    let result = task(i, item);
                    if result.is_err() {
                        first_failure.fetch_min(i, Ordering::Relaxed);
                    }
                    Some(result)
                });
                let mut out = Vec::with_capacity(results.len());
                let mut first_error = None;
                let mut skipped = false;
                for result in results {
                    match result {
                        Some(Ok(value)) if first_error.is_none() => out.push(value),
                        Some(Ok(_)) => {}
                        // Index order: the first error seen here is the
                        // lowest-indexed one (skipped slots only occur above it).
                        Some(Err(error)) if first_error.is_none() => first_error = Some(error),
                        Some(Err(_)) => {}
                        None => skipped = true,
                    }
                }
                match first_error {
                    Some(error) => Err(error),
                    None => {
                        // A slot is only skipped after some task recorded an
                        // error, so a skip without an error cannot happen.
                        assert!(!skipped, "tasks were skipped but no error was recorded");
                        Ok(out)
                    }
                }
            }
        }
    }
}

/// A progress hook for indexed task batches: [`BatchObserver::task_completed`]
/// fires once per finished task, from whichever worker thread finished it.
///
/// Observations are *monotone but unordered*: `completed` (the number of tasks
/// finished so far, including this one) only ever grows, while `index` arrives
/// in scheduling order — so observers must not derive results from the call
/// order. The task outputs themselves remain in input order and bit-identical
/// under every policy; the observer only watches the batch drain.
pub trait BatchObserver: Sync {
    /// `index` finished as the `completed`-th task (1-based) of `total`.
    fn task_completed(&self, index: usize, completed: usize, total: usize);
}

/// The do-nothing observer. Callers with an "observed" entry point but no
/// interested listener pass it to [`ExecutionPolicy::try_map_indexed_observed`],
/// paying only the wrapper's atomic increment per task; plain
/// [`ExecutionPolicy::try_map_indexed`] bypasses observation entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl BatchObserver for NoopObserver {
    fn task_completed(&self, _index: usize, _completed: usize, _total: usize) {}
}

/// An adapter that re-frames a sub-batch's progress inside a larger logical
/// batch: task `i` of the sub-batch is reported to `inner` as task
/// `index_offset + i`, completed `completed_offset + completed` of `total`.
///
/// This is what lets a caller that resumes a partially cached batch (the
/// Monte-Carlo observation store replaying reused replicates and then running
/// only the tail) keep its observer's invariants — `completed` monotone,
/// `total` the full logical batch — while the execution layer only ever sees
/// the uncached tail.
#[derive(Clone, Copy)]
pub struct OffsetObserver<'a> {
    /// The observer watching the full logical batch.
    pub inner: &'a dyn BatchObserver,
    /// Added to every reported task index.
    pub index_offset: usize,
    /// Added to every reported completion count.
    pub completed_offset: usize,
    /// The full logical batch size reported in place of the sub-batch's.
    pub total: usize,
}

impl BatchObserver for OffsetObserver<'_> {
    fn task_completed(&self, index: usize, completed: usize, total: usize) {
        debug_assert!(self.completed_offset + total <= self.total);
        self.inner.task_completed(
            self.index_offset + index,
            self.completed_offset + completed,
            self.total,
        );
    }
}

impl ExecutionPolicy {
    /// Like [`ExecutionPolicy::try_map_indexed`], reporting each completed task
    /// to `observer`. The observer never influences results — outputs stay in
    /// input order and error selection stays lowest-index-deterministic — it
    /// only exposes batch progress (the Monte-Carlo replicate loop of a
    /// long-running analysis engine surfaces it as per-replicate progress).
    ///
    /// Tasks skipped by the early-stop path after a failure are not reported,
    /// so `completed` may never reach `total` on a failing batch.
    pub fn try_map_indexed_observed<T, O, E, F>(
        &self,
        items: &[T],
        task: F,
        observer: &dyn BatchObserver,
    ) -> Result<Vec<O>, E>
    where
        T: Sync,
        O: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<O, E> + Sync,
    {
        let total = items.len();
        let completed = AtomicUsize::new(0);
        self.try_map_indexed(items, |i, item| {
            let result = task(i, item);
            let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
            observer.task_completed(i, done, total);
            result
        })
    }
}

/// Shared state of one [`ExecutionPolicy::run_tasks`] invocation: the pending
/// frames plus the number currently executing (needed for termination — an
/// empty queue is not "done" while a running task may still push children).
struct TaskState<T> {
    queue: VecDeque<T>,
    in_flight: usize,
}

/// Handle onto the dynamic task set of a [`ExecutionPolicy::run_tasks`] batch,
/// passed to every task. A task may [`TaskQueue::push`] new frames at any
/// point; idle workers pick them up. [`TaskQueue::pending`] lets a task decide
/// between recursing inline (cheap, no frame allocation) and splitting work
/// off for hungry siblings.
pub struct TaskQueue<'a, T> {
    state: &'a Mutex<TaskState<T>>,
    available: &'a Condvar,
}

impl<T> TaskQueue<'_, T> {
    /// Enqueue a new task frame for any worker (possibly the caller itself,
    /// later) to execute.
    pub fn push(&self, task: T) {
        let mut state = match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.queue.push_back(task);
        drop(state);
        self.available.notify_one();
    }

    /// Number of frames currently queued (excluding those executing). A small
    /// value means workers are about to go hungry — a good moment to split.
    pub fn pending(&self) -> usize {
        match self.state.lock() {
            Ok(guard) => guard.queue.len(),
            Err(poisoned) => poisoned.into_inner().queue.len(),
        }
    }
}

/// Decrements `in_flight` and wakes waiting workers when a task finishes —
/// including by panic, so a crashed task never leaves siblings blocked on the
/// condition variable waiting for an `in_flight` that will not drain.
struct InFlightGuard<'a, T> {
    state: &'a Mutex<TaskState<T>>,
    available: &'a Condvar,
}

impl<T> Drop for InFlightGuard<'_, T> {
    fn drop(&mut self) {
        let mut state = match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.in_flight -= 1;
        // Workers only sleep while the queue is empty with frames in flight;
        // pushes wake them, so a completion matters to a sleeper only when it
        // is the batch's last (termination). Skipping the wake otherwise keeps
        // a hot drain from ping-ponging every finished frame through futexes.
        let wake = state.in_flight == 0 && state.queue.is_empty();
        drop(state);
        if wake {
            self.available.notify_all();
        }
    }
}

/// One worker draining the shared task queue until it is empty *and* nothing
/// is in flight (running tasks may still push). Returns the concatenation of
/// this worker's task outputs in execution order.
fn run_tasks_worker<T, O, F>(state: &Mutex<TaskState<T>>, available: &Condvar, task: &F) -> Vec<O>
where
    F: Fn(T, &TaskQueue<'_, T>) -> Vec<O>,
{
    let mut outputs = Vec::new();
    loop {
        let next = {
            // A poisoned queue mutex means a sibling worker panicked mid-task;
            // the task set is incomplete, so propagating the panic (failing the
            // whole run_tasks call) is the correct outcome.
            let mut guard = state.lock().unwrap();
            loop {
                if let Some(frame) = guard.queue.pop_front() {
                    guard.in_flight += 1;
                    break Some(frame);
                }
                if guard.in_flight == 0 {
                    break None;
                }
                guard = available.wait(guard).unwrap();
            }
        };
        let Some(frame) = next else {
            // Queue empty and nothing running: no task can appear anymore.
            available.notify_all();
            break;
        };
        let guard = InFlightGuard { state, available };
        let queue = TaskQueue { state, available };
        outputs.extend(task(frame, &queue));
        drop(guard);
    }
    outputs
}

impl ExecutionPolicy {
    /// Execute a **dynamic** set of tasks: start from `seeds`, let every task
    /// push follow-up frames through the supplied [`TaskQueue`], and collect
    /// the concatenation of all task outputs. This is the primitive for
    /// irregular tree-shaped work — a depth-first miner fanning item subtrees
    /// out across workers — where [`ExecutionPolicy::map_indexed`]'s static
    /// batch shape does not fit.
    ///
    /// Scheduling is a shared FIFO deque: workers claim the oldest pending
    /// frame, run it (during which it may push children), and block on a
    /// condition variable only when the queue is empty while frames are still
    /// in flight. The batch terminates when the queue is empty *and* nothing
    /// is running. A panicking task propagates to the caller after the
    /// remaining workers drain.
    ///
    /// Ordering contract: under `Sequential` the outputs are deterministic
    /// (seeds in order, pushed frames appended FIFO). Under `Rayon` the
    /// concatenation order depends on scheduling — callers needing a canonical
    /// result must impose one (the parallel Eclat sorts canonically, which is
    /// also what makes its output bit-identical at any worker count).
    pub fn run_tasks<T, O, F>(&self, seeds: Vec<T>, task: F) -> Vec<O>
    where
        T: Send,
        O: Send,
        F: Fn(T, &TaskQueue<'_, T>) -> Vec<O> + Sync,
    {
        if seeds.is_empty() {
            return Vec::new();
        }
        let workers = self.worker_threads();
        let state = Mutex::new(TaskState {
            queue: VecDeque::from(seeds),
            in_flight: 0,
        });
        let available = Condvar::new();
        if workers <= 1 {
            return run_tasks_worker(&state, &available, &task);
        }
        let mut shards: Vec<Vec<O>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| scope.spawn(|| run_tasks_worker(&state, &available, &task)))
                .collect();
            handles
                .into_iter()
                .map(|handle| match handle.join() {
                    Ok(outputs) => outputs,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        shards.drain(..).flatten().collect()
    }
}

/// Execution policies serialize as a tagged map so analysis configurations can
/// be archived: `{"mode": "sequential"}` or `{"mode": "rayon", "threads": 8}`.
impl Serialize for ExecutionPolicy {
    fn to_value(&self) -> Value {
        match *self {
            ExecutionPolicy::Sequential => {
                Value::Map(vec![("mode".into(), Value::Str("sequential".into()))])
            }
            ExecutionPolicy::Rayon { threads } => Value::Map(vec![
                ("mode".into(), Value::Str("rayon".into())),
                ("threads".into(), Value::U64(threads as u64)),
            ]),
        }
    }
}

impl Deserialize for ExecutionPolicy {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let mode = value
            .get_field("mode")
            .ok_or_else(|| SerdeError::missing_field("ExecutionPolicy", "mode"))?
            .as_str()?
            .to_owned();
        match mode.as_str() {
            "sequential" => Ok(ExecutionPolicy::Sequential),
            "rayon" => {
                let threads = match value.get_field("threads") {
                    Some(v) => v.as_u64()? as usize,
                    None => 0,
                };
                Ok(ExecutionPolicy::Rayon { threads })
            }
            other => Err(SerdeError::unknown_variant("ExecutionPolicy", other)),
        }
    }
}

/// SplitMix64 finalizer: bijective 64-bit mixing.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG for task `index` of the batch keyed by `seed`.
///
/// Every `(seed, index)` pair addresses an independent ChaCha12 keystream: the
/// seed selects the cipher key, the index selects the 64-bit stream (nonce).
/// The stream a task sees therefore depends only on these two values — never on
/// thread count, scheduling, or sibling tasks — which is what makes parallel
/// Monte-Carlo runs bit-identical to sequential ones.
pub fn substream(seed: u64, index: u64) -> ChaCha12Rng {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    // Mix the index so that numerically adjacent batch keys and indices do not
    // produce systematically related (key, nonce) pairs.
    rng.set_stream(mix64(index.wrapping_add(0x9E37_79B9_7F4A_7C15)));
    rng
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn from_threads_mapping() {
        assert_eq!(
            ExecutionPolicy::from_threads(1),
            ExecutionPolicy::Sequential
        );
        assert_eq!(
            ExecutionPolicy::from_threads(0),
            ExecutionPolicy::Rayon { threads: 0 }
        );
        assert_eq!(
            ExecutionPolicy::from_threads(4),
            ExecutionPolicy::Rayon { threads: 4 }
        );
        assert_eq!(
            ExecutionPolicy::default(),
            ExecutionPolicy::Rayon { threads: 0 }
        );
    }

    #[test]
    fn worker_threads_resolves_the_zero_convention() {
        assert_eq!(ExecutionPolicy::Sequential.worker_threads(), 1);
        assert_eq!(ExecutionPolicy::rayon(4).worker_threads(), 4);
        // 0 resolves to the machine's available parallelism, which is ≥ 1.
        assert!(ExecutionPolicy::rayon(0).worker_threads() >= 1);
    }

    #[test]
    fn map_indexed_is_order_stable_across_policies() {
        let items: Vec<u64> = (0..257).collect();
        let task = |i: usize, &x: &u64| {
            assert_eq!(i as u64, x);
            substream(7, i as u64).random::<u64>()
        };
        let sequential = ExecutionPolicy::Sequential.map_indexed(&items, task);
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                ExecutionPolicy::rayon(threads).map_indexed(&items, task),
                sequential,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn try_map_returns_lowest_indexed_error() {
        let items: Vec<u64> = (0..64).collect();
        let result = ExecutionPolicy::rayon(8).try_map_indexed(&items, |i, _| {
            if i % 10 == 3 {
                Err(i)
            } else {
                Ok(i * 2)
            }
        });
        assert_eq!(result, Err(3));
        let ok = ExecutionPolicy::Sequential.try_map_indexed(&items, |i, _| Ok::<_, ()>(i));
        assert_eq!(ok.unwrap().len(), 64);
    }

    #[test]
    fn try_map_stops_claiming_after_a_failure() {
        use std::sync::atomic::AtomicUsize;
        // With one worker, tasks after the failing index must not run at all.
        let items: Vec<u64> = (0..1000).collect();
        let executed = AtomicUsize::new(0);
        let result = ExecutionPolicy::rayon(1).try_map_indexed(&items, |i, _| {
            executed.fetch_add(1, Ordering::Relaxed);
            if i == 5 {
                Err("boom")
            } else {
                Ok(i)
            }
        });
        assert_eq!(result, Err("boom"));
        let ran = executed.load(Ordering::Relaxed);
        assert!(ran < 1000, "all {ran} tasks ran despite an early failure");
        // The same error is selected at every worker count, and a multi-error
        // batch still reports the lowest-indexed error.
        for threads in [2, 8] {
            let result = ExecutionPolicy::rayon(threads).try_map_indexed(&items, |i, _| {
                if i == 700 || i == 5 {
                    Err(i)
                } else {
                    Ok(i)
                }
            });
            assert_eq!(result, Err(5), "threads = {threads}");
        }
    }

    #[test]
    fn observed_batches_report_every_task_exactly_once() {
        use std::sync::Mutex;
        struct Recorder {
            events: Mutex<Vec<(usize, usize, usize)>>,
        }
        impl BatchObserver for Recorder {
            fn task_completed(&self, index: usize, completed: usize, total: usize) {
                self.events.lock().unwrap().push((index, completed, total));
            }
        }

        let items: Vec<u64> = (0..40).collect();
        for policy in [ExecutionPolicy::Sequential, ExecutionPolicy::rayon(4)] {
            let recorder = Recorder {
                events: Mutex::new(Vec::new()),
            };
            let out = policy
                .try_map_indexed_observed(
                    &items,
                    |i, _| Ok::<_, ()>(substream(3, i as u64).random::<u64>()),
                    &recorder,
                )
                .unwrap();
            // Results are unaffected by observation.
            assert_eq!(
                out,
                ExecutionPolicy::Sequential
                    .try_map_indexed(&items, |i, _| Ok::<_, ()>(
                        substream(3, i as u64).random::<u64>()
                    ))
                    .unwrap()
            );
            let events = recorder.events.into_inner().unwrap();
            assert_eq!(events.len(), items.len(), "{policy:?}");
            // Every index reported exactly once, every total correct, and the
            // completed counts are a permutation of 1..=n.
            let mut indices: Vec<usize> = events.iter().map(|e| e.0).collect();
            let mut counts: Vec<usize> = events.iter().map(|e| e.1).collect();
            indices.sort_unstable();
            counts.sort_unstable();
            assert_eq!(indices, (0..items.len()).collect::<Vec<_>>());
            assert_eq!(counts, (1..=items.len()).collect::<Vec<_>>());
            assert!(events.iter().all(|e| e.2 == items.len()));
        }
        // The no-op observer is usable as a default.
        let ok = ExecutionPolicy::Sequential.try_map_indexed_observed(
            &items,
            |i, _| Ok::<_, ()>(i),
            &NoopObserver,
        );
        assert_eq!(ok.unwrap().len(), items.len());
    }

    #[test]
    fn offset_observer_reframes_a_tail_batch() {
        use std::sync::Mutex;
        struct Recorder {
            events: Mutex<Vec<(usize, usize, usize)>>,
        }
        impl BatchObserver for Recorder {
            fn task_completed(&self, index: usize, completed: usize, total: usize) {
                self.events.lock().unwrap().push((index, completed, total));
            }
        }
        // A logical batch of 10 where the first 6 were served from a cache:
        // the tail of 4 runs, but the recorder sees positions 6..10 completing
        // as the 7th..10th of 10.
        let recorder = Recorder {
            events: Mutex::new(Vec::new()),
        };
        let tail: Vec<u64> = (6..10).collect();
        let offset = OffsetObserver {
            inner: &recorder,
            index_offset: 6,
            completed_offset: 6,
            total: 10,
        };
        ExecutionPolicy::Sequential
            .try_map_indexed_observed(&tail, |_, &v| Ok::<_, ()>(v), &offset)
            .unwrap();
        let events = recorder.events.into_inner().unwrap();
        assert_eq!(
            events,
            vec![(6, 7, 10), (7, 8, 10), (8, 9, 10), (9, 10, 10)]
        );
    }

    #[test]
    fn run_tasks_executes_static_seeds() {
        // No dynamic spawning: every policy produces the same multiset; the
        // sequential arm is deterministically in seed order.
        let seeds: Vec<u64> = (0..40).collect();
        let sequential =
            ExecutionPolicy::Sequential.run_tasks(seeds.clone(), |x, _| vec![x * 3, x * 3 + 1]);
        assert_eq!(
            sequential,
            (0..40).flat_map(|x| [x * 3, x * 3 + 1]).collect::<Vec<_>>()
        );
        for threads in [1, 2, 8] {
            let mut out = ExecutionPolicy::rayon(threads)
                .run_tasks(seeds.clone(), |x, _| vec![x * 3, x * 3 + 1]);
            out.sort_unstable();
            let mut expected = sequential.clone();
            expected.sort_unstable();
            assert_eq!(out, expected, "threads = {threads}");
        }
        // Empty seed sets are a no-op.
        assert_eq!(
            ExecutionPolicy::rayon(4).run_tasks(Vec::<u64>::new(), |x, _| vec![x]),
            Vec::<u64>::new()
        );
    }

    #[test]
    fn run_tasks_dynamic_splitting_reaches_every_leaf() {
        // Recursive range splitting: a task either splits its range in half
        // (pushing both halves) or emits its leaf values. The set of leaves is
        // policy-independent even though the frame schedule is not.
        let task = |(lo, hi): (u64, u64), queue: &TaskQueue<'_, (u64, u64)>| {
            if hi - lo > 4 {
                let mid = lo + (hi - lo) / 2;
                queue.push((lo, mid));
                queue.push((mid, hi));
                Vec::new()
            } else {
                (lo..hi).collect()
            }
        };
        let mut reference = ExecutionPolicy::Sequential.run_tasks(vec![(0u64, 1000u64)], task);
        reference.sort_unstable();
        assert_eq!(reference, (0..1000).collect::<Vec<_>>());
        for threads in [2, 8] {
            let mut out = ExecutionPolicy::rayon(threads).run_tasks(vec![(0u64, 1000u64)], task);
            out.sort_unstable();
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn run_tasks_pending_is_observable() {
        // Seeding 8 frames and never spawning: the first task already sees at
        // most 7 pending (its own frame is in flight, not queued).
        let seeds: Vec<u64> = (0..8).collect();
        let out = ExecutionPolicy::Sequential.run_tasks(seeds, |x, queue| {
            assert!(queue.pending() < 8);
            vec![x]
        });
        assert_eq!(out.len(), 8);
    }

    #[test]
    #[should_panic(expected = "frame failed")]
    fn run_tasks_panics_propagate() {
        let seeds: Vec<u64> = (0..16).collect();
        let _ = ExecutionPolicy::rayon(2).run_tasks(seeds, |x, _| {
            if x == 11 {
                panic!("frame failed");
            }
            vec![x]
        });
    }

    #[test]
    fn substreams_are_deterministic_and_pairwise_distinct() {
        let a: Vec<u64> = {
            let mut rng = substream(5, 17);
            (0..8).map(|_| rng.random()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = substream(5, 17);
            (0..8).map(|_| rng.random()).collect()
        };
        assert_eq!(a, b);
        // Different indices and different seeds give different streams.
        let c: Vec<u64> = {
            let mut rng = substream(5, 18);
            (0..8).map(|_| rng.random()).collect()
        };
        let d: Vec<u64> = {
            let mut rng = substream(6, 17);
            (0..8).map(|_| rng.random()).collect()
        };
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn policy_serde_round_trip() {
        for policy in [
            ExecutionPolicy::Sequential,
            ExecutionPolicy::Rayon { threads: 0 },
            ExecutionPolicy::Rayon { threads: 8 },
        ] {
            let value = policy.to_value();
            assert_eq!(ExecutionPolicy::from_value(&value).unwrap(), policy);
        }
        assert!(ExecutionPolicy::from_value(&Value::Null).is_err());
    }
}

//! Fixture tests: every rule fires on a minimal positive case, stays quiet on
//! the corresponding sound pattern, and is suppressed by a well-formed
//! `sigfim-lint: allow(...)` annotation.
//!
//! Fixtures are inline strings, so the lint's own scan of this file can never
//! be confused by them: string-literal contents are blanked out of the code
//! channel by the lexer.

use sigfim_lint::{lint_sources, Diagnostic, JsonReport, LintConfig, JSON_SCHEMA_VERSION};

fn lint_one(path: &str, source: &str) -> Vec<Diagnostic> {
    lint_sources(
        &[(path.to_string(), source.to_string())],
        &LintConfig::default(),
    )
}

fn rules_of(diagnostics: &[Diagnostic]) -> Vec<&str> {
    diagnostics.iter().map(|d| d.rule.as_str()).collect()
}

// ---------------------------------------------------------------- nondet

const NONDET_POSITIVE: &str = r#"
use std::collections::HashMap;
fn f() -> Vec<u32> {
    let m: HashMap<u32, u32> = HashMap::new();
    let mut out = Vec::new();
    for key in m.keys() {
        out.push(*key);
    }
    out
}
"#;

#[test]
fn nondet_fires_on_unsorted_hash_iteration() {
    let diagnostics = lint_one("crates/core/src/fake.rs", NONDET_POSITIVE);
    assert_eq!(rules_of(&diagnostics), ["nondet-iteration"]);
    assert_eq!(diagnostics[0].line, 6);
}

#[test]
fn nondet_scoped_to_result_producing_crates() {
    // The same source in a non-result crate is out of scope.
    assert!(lint_one("crates/service/src/fake.rs", NONDET_POSITIVE).is_empty());
    assert!(lint_one("crates/lint/src/fake.rs", NONDET_POSITIVE).is_empty());
}

#[test]
fn nondet_quiet_when_sorted_or_order_insensitive() {
    let sorted = r#"
use std::collections::HashMap;
fn f() -> Vec<u32> {
    let m: HashMap<u32, u32> = HashMap::new();
    let mut out: Vec<u32> = m.keys().copied().collect();
    out.sort_unstable();
    out
}
"#;
    assert!(lint_one("crates/core/src/fake.rs", sorted).is_empty());

    let counted = r#"
use std::collections::HashSet;
fn f(wanted: u32) -> usize {
    let s: HashSet<u32> = HashSet::new();
    s.iter().filter(|&&x| x == wanted).count()
}
"#;
    assert!(lint_one("crates/core/src/fake.rs", counted).is_empty());
}

#[test]
fn nondet_quiet_in_test_regions() {
    let in_tests = r#"
use std::collections::HashMap;
#[cfg(test)]
mod tests {
    fn f() {
        let m: HashMap<u32, u32> = HashMap::new();
        for key in m.keys() {
            let _ = key;
        }
    }
}
"#;
    assert!(lint_one("crates/core/src/fake.rs", in_tests).is_empty());
}

#[test]
fn nondet_suppressed_by_allow() {
    let allowed = r#"
use std::collections::HashMap;
fn f() -> u64 {
    let m: HashMap<u32, u64> = HashMap::new();
    let mut total = 0;
    // sigfim-lint: allow(nondet-iteration, reason = "integer sum is order-independent")
    for value in m.values() {
        total += *value;
    }
    total
}
"#;
    assert!(lint_one("crates/core/src/fake.rs", allowed).is_empty());
}

// ---------------------------------------------------------------- unsafety

#[test]
fn unsafety_fires_without_safety_comment() {
    let source = r#"
pub fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
"#;
    let diagnostics = lint_one("crates/exec/src/fake.rs", source);
    assert_eq!(rules_of(&diagnostics), ["unsafe-needs-safety"]);
}

#[test]
fn unsafety_quiet_with_safety_comment() {
    let source = r#"
pub fn f(p: *const u8) -> u8 {
    // SAFETY: callers guarantee `p` is valid for reads.
    unsafe { *p }
}
"#;
    assert!(lint_one("crates/exec/src/fake.rs", source).is_empty());
}

#[test]
fn unsafety_fires_on_mmap_style_syscall_block() {
    // The spill module's mmap wrapper is the archetype: a raw syscall behind
    // `unsafe` with no SAFETY contract is exactly what the rule must catch.
    let source = r#"
fn map(len: usize, fd: i32) -> *mut u8 {
    unsafe { mmap(std::ptr::null_mut(), len, 1, 2, fd, 0) as *mut u8 }
}
"#;
    let diagnostics = lint_one("crates/datasets/src/fake.rs", source);
    assert_eq!(rules_of(&diagnostics), ["unsafe-needs-safety"]);
}

#[test]
fn unsafety_quiet_on_safety_documented_mmap() {
    let source = r#"
fn map(len: usize, fd: i32) -> *mut u8 {
    // SAFETY: `fd` is a live spill file of at least `len` bytes; the mapping
    // is read-only and unmapped before the file is truncated or removed.
    unsafe { mmap(std::ptr::null_mut(), len, 1, 2, fd, 0) as *mut u8 }
}
"#;
    assert!(lint_one("crates/datasets/src/fake.rs", source).is_empty());
}

#[test]
fn unsafety_comment_survives_intervening_attributes() {
    let source = r#"
// SAFETY: sound only through the detected vtable.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn fast() {}
fn gate() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}
"#;
    assert!(lint_one("crates/datasets/src/fake.rs", source).is_empty());
}

#[test]
fn unsafety_suppressed_by_allow() {
    let source = r#"
pub fn f(p: *const u8) -> u8 {
    // sigfim-lint: allow(unsafe-needs-safety, reason = "fixture")
    unsafe { *p }
}
"#;
    assert!(lint_one("crates/exec/src/fake.rs", source).is_empty());
}

// ---------------------------------------------------------------- dispatch

const DISPATCH_MODULE: &str = r#"
mod simd {
    // SAFETY: unsafe only because of #[target_feature]; gated below.
    #[target_feature(enable = "avx2")]
    unsafe fn fast() -> u64 { 1 }

    pub fn dispatch() -> u64 {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: detected on the line above.
            unsafe { fast() }
        } else {
            0
        }
    }
}
"#;

#[test]
fn dispatch_quiet_when_confined_to_module() {
    assert!(lint_one("crates/datasets/src/fake.rs", DISPATCH_MODULE).is_empty());
}

#[test]
fn dispatch_fires_on_mention_outside_module() {
    let source = format!(
        "{DISPATCH_MODULE}\npub fn rogue() -> u64 {{\n    // SAFETY: none, this is the violation fixture.\n    unsafe {{ simd::fast() }}\n}}\n"
    );
    let diagnostics = lint_one("crates/datasets/src/fake.rs", &source);
    assert_eq!(rules_of(&diagnostics), ["target-feature-dispatch"]);
    assert!(diagnostics[0].message.contains("fast"));
}

#[test]
fn dispatch_fires_when_file_has_no_detection_gate() {
    let source = r#"
// SAFETY: unsafe only because of #[target_feature].
#[target_feature(enable = "avx2")]
unsafe fn fast() -> u64 { 1 }
"#;
    let diagnostics = lint_one("crates/datasets/src/fake.rs", source);
    assert!(rules_of(&diagnostics).contains(&"target-feature-dispatch"));
    assert!(diagnostics
        .iter()
        .any(|d| d.message.contains("no `is_x86_feature_detected!` gate")));
}

#[test]
fn dispatch_suppressed_by_allow() {
    let source = format!(
        "{DISPATCH_MODULE}\npub fn rogue() -> u64 {{\n    // SAFETY: fixture.\n    // sigfim-lint: allow(target-feature-dispatch, reason = \"fixture\")\n    unsafe {{ simd::fast() }}\n}}\n"
    );
    assert!(lint_one("crates/datasets/src/fake.rs", &source).is_empty());
}

// ---------------------------------------------------------------- envread

const ENVREAD_POSITIVE: &str = r#"
pub fn sneaky() -> Option<String> {
    std::env::var("SIGFIM_KERNELS").ok()
}
"#;

#[test]
fn envread_fires_outside_config_modules() {
    let diagnostics = lint_one("crates/core/src/fake.rs", ENVREAD_POSITIVE);
    assert_eq!(rules_of(&diagnostics), ["env-read-centralized"]);
    assert!(diagnostics[0].message.contains("SIGFIM_KERNELS"));
}

#[test]
fn envread_quiet_in_designated_files_and_for_other_vars() {
    assert!(lint_one("crates/datasets/src/sampler.rs", ENVREAD_POSITIVE).is_empty());
    assert!(lint_one("crates/mining/src/tune.rs", ENVREAD_POSITIVE).is_empty());
    let other_var = r#"
pub fn home() -> Option<String> {
    std::env::var("HOME").ok()
}
"#;
    assert!(lint_one("crates/core/src/fake.rs", other_var).is_empty());
}

#[test]
fn envread_spill_vars_are_confined_to_the_spill_module() {
    // `SIGFIM_SPILL` / `SIGFIM_RESIDENCY` are config seams of the spill
    // module — readable there, flagged anywhere else.
    let spill_reads = r#"
pub fn spill_config() -> (Option<String>, Option<String>) {
    (
        std::env::var("SIGFIM_SPILL").ok(),
        std::env::var("SIGFIM_RESIDENCY").ok(),
    )
}
"#;
    assert!(lint_one("crates/datasets/src/spill.rs", spill_reads).is_empty());
    let diagnostics = lint_one("crates/core/src/fake.rs", spill_reads);
    assert_eq!(
        rules_of(&diagnostics),
        ["env-read-centralized", "env-read-centralized"]
    );
    assert!(diagnostics[0].message.contains("SIGFIM_SPILL"));
    assert!(diagnostics[1].message.contains("SIGFIM_RESIDENCY"));
}

#[test]
fn envread_suppressed_by_allow() {
    let source = r#"
pub fn sneaky() -> Option<String> {
    // sigfim-lint: allow(env-read-centralized, reason = "fixture")
    std::env::var("SIGFIM_KERNELS").ok()
}
"#;
    assert!(lint_one("crates/core/src/fake.rs", source).is_empty());
}

// ---------------------------------------------------------------- wire

#[test]
fn wire_fires_on_new_field_without_default() {
    let source = r#"
pub const PROTOCOL_VERSION: u32 = 1;
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TunerTiming {
    pub subject: String,
    pub median_ns: u64,
    pub samples: u64,
}
"#;
    let diagnostics = lint_one("crates/service/src/protocol.rs", source);
    assert_eq!(rules_of(&diagnostics), ["wire-additivity"]);
    assert!(diagnostics[0].message.contains("samples"));
}

#[test]
fn wire_quiet_on_defaulted_or_baseline_fields() {
    let source = r#"
pub const PROTOCOL_VERSION: u32 = 1;
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TunerTiming {
    pub subject: String,
    pub median_ns: u64,
    #[serde(default)]
    pub samples: u64,
}
"#;
    assert!(lint_one("crates/service/src/protocol.rs", source).is_empty());
}

#[test]
fn wire_new_struct_needs_all_fields_defaulted() {
    let bare = r#"
#[derive(Serialize, Deserialize)]
pub struct BrandNew {
    pub value: u64,
}
"#;
    let diagnostics = lint_one("crates/service/src/protocol.rs", bare);
    assert_eq!(rules_of(&diagnostics), ["wire-additivity"]);
    assert!(diagnostics[0].message.contains("not in the v1 baseline"));

    let defaulted = r#"
#[derive(Serialize, Deserialize)]
pub struct BrandNew {
    #[serde(default)]
    pub value: u64,
}
"#;
    assert!(lint_one("crates/service/src/protocol.rs", defaulted).is_empty());
}

#[test]
fn wire_scoped_to_protocol_file_and_suppressed_by_allow() {
    let source = r#"
#[derive(Serialize, Deserialize)]
pub struct BrandNew {
    pub value: u64,
}
"#;
    assert!(lint_one("crates/service/src/fake.rs", source).is_empty());

    let allowed = r#"
#[derive(Serialize, Deserialize)]
pub struct BrandNew {
    // sigfim-lint: allow(wire-additivity, reason = "fixture")
    pub value: u64,
}
"#;
    assert!(lint_one("crates/service/src/protocol.rs", allowed).is_empty());
}

// ---------------------------------------------------------------- locks

#[test]
fn locks_fire_on_nested_acquisition() {
    let source = r#"
use std::sync::Mutex;
fn f(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    *a.lock().expect("a") + *b.lock().expect("b")
}
"#;
    let diagnostics = lint_one("crates/service/src/fake.rs", source);
    assert_eq!(rules_of(&diagnostics), ["lock-hygiene"]);
    assert!(diagnostics[0]
        .message
        .contains("multiple lock acquisitions"));
}

#[test]
fn locks_fire_on_undocumented_unwrap() {
    let source = r#"
use std::sync::Mutex;
fn f(a: &Mutex<u32>) -> u32 {
    *a.lock().unwrap()
}
"#;
    let diagnostics = lint_one("crates/service/src/fake.rs", source);
    assert_eq!(rules_of(&diagnostics), ["lock-hygiene"]);
    assert!(diagnostics[0].message.contains("unwrap"));
}

#[test]
fn locks_quiet_with_poison_comment_recovery_or_in_tests() {
    let documented = r#"
use std::sync::Mutex;
fn f(a: &Mutex<u32>) -> u32 {
    // A poisoned mutex means a sibling panicked; propagate the panic.
    *a.lock().unwrap()
}
"#;
    assert!(lint_one("crates/service/src/fake.rs", documented).is_empty());

    let recovering = r#"
use std::sync::Mutex;
fn f(a: &Mutex<u32>) -> u32 {
    *a.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}
"#;
    assert!(lint_one("crates/service/src/fake.rs", recovering).is_empty());

    let in_tests = r#"
use std::sync::Mutex;
#[cfg(test)]
mod tests {
    fn f(a: &std::sync::Mutex<u32>) -> u32 {
        *a.lock().unwrap()
    }
}
"#;
    assert!(lint_one("crates/service/src/fake.rs", in_tests).is_empty());
}

#[test]
fn locks_suppressed_by_allow() {
    let source = r#"
use std::sync::Mutex;
fn f(a: &Mutex<u32>) -> u32 {
    // sigfim-lint: allow(lock-hygiene, reason = "fixture")
    *a.lock().unwrap()
}
"#;
    assert!(lint_one("crates/service/src/fake.rs", source).is_empty());
}

// ---------------------------------------------------------------- storeio

const STOREIO_POSITIVE: &str = r#"
use std::io::Write;
// This writer frames every payload behind a CRC32 before it hits the disk.
fn append(file: &mut std::fs::File, frame: &[u8]) {
    let _ = file.write_all(frame);
}
"#;

#[test]
fn storeio_fires_on_discarded_write_result() {
    let diagnostics = lint_one("crates/store/src/fake.rs", STOREIO_POSITIVE);
    assert_eq!(rules_of(&diagnostics), ["store-io-checked"]);
    assert!(diagnostics[0].message.contains("write_all"));
    assert!(diagnostics[0].message.contains("io::Result"));
}

#[test]
fn storeio_fires_on_each_discarded_durability_call() {
    let source = r#"
// CRC framing is documented at the module level.
fn teardown(file: &std::fs::File, dir: &std::path::Path) {
    let _ = file.sync_all();
    let _ = std::fs::remove_file(dir.join("seg-000000.log"));
}
"#;
    let diagnostics = lint_one("crates/store/src/fake.rs", source);
    assert_eq!(
        rules_of(&diagnostics),
        ["store-io-checked", "store-io-checked"]
    );
    assert!(diagnostics[0].message.contains("sync_all"));
    assert!(diagnostics[1].message.contains("remove_file"));
}

#[test]
fn storeio_fires_on_raw_write_without_crc_mention() {
    let source = r#"
use std::io::Write;
fn append(file: &mut std::fs::File, frame: &[u8]) -> std::io::Result<()> {
    file.write_all(frame)
}
"#;
    let diagnostics = lint_one("crates/store/src/fake.rs", source);
    assert_eq!(rules_of(&diagnostics), ["store-io-checked"]);
    assert!(diagnostics[0].message.contains("CRC"));
}

#[test]
fn storeio_quiet_on_propagated_writes_builders_and_other_crates() {
    // Propagating the result with a CRC mention is the sound pattern.
    let sound = r#"
use std::io::Write;
// Frames are [crc32][len][payload]; the caller fsyncs.
fn append(file: &mut std::fs::File, frame: &[u8]) -> std::io::Result<()> {
    file.write_all(frame)?;
    file.sync_data()
}
"#;
    assert!(lint_one("crates/store/src/fake.rs", sound).is_empty());

    // `OpenOptions::write(true)` is a builder flag, not a write.
    let builder = r#"
fn open(path: &std::path::Path) -> std::io::Result<std::fs::File> {
    let _ = std::fs::OpenOptions::new().write(true).open(path);
    std::fs::OpenOptions::new().read(true).open(path)
}
"#;
    assert!(lint_one("crates/store/src/fake.rs", builder).is_empty());

    // The rule is scoped to the store crate; elsewhere `let _ =` on a write
    // is someone else's judgment call.
    assert!(lint_one("crates/service/src/fake.rs", STOREIO_POSITIVE).is_empty());

    // Test regions may discard freely (fixtures clean up best-effort).
    let in_tests = r#"
// CRC framing note for the scanner.
#[cfg(test)]
mod tests {
    fn cleanup(dir: &std::path::Path) {
        let _ = std::fs::remove_file(dir.join("x"));
    }
}
"#;
    assert!(lint_one("crates/store/src/fake.rs", in_tests).is_empty());
}

#[test]
fn storeio_suppressed_by_allow() {
    let source = r#"
use std::io::Write;
// CRC framing is handled by the caller.
fn append(file: &mut std::fs::File, frame: &[u8]) {
    // sigfim-lint: allow(store-io-checked, reason = "fixture")
    let _ = file.write_all(frame);
}
"#;
    assert!(lint_one("crates/store/src/fake.rs", source).is_empty());
}

// ---------------------------------------------------------------- meta

#[test]
fn malformed_allow_is_itself_reported() {
    let source = r#"
fn f() {
    // sigfim-lint: allow(lock-hygiene)
}
"#;
    let diagnostics = lint_one("crates/service/src/fake.rs", source);
    assert_eq!(rules_of(&diagnostics), ["malformed-allow"]);
}

#[test]
fn disabled_rules_are_skipped() {
    let config = LintConfig {
        disabled: vec!["nondet-iteration".to_string()],
    };
    let diagnostics = lint_sources(
        &[(
            "crates/core/src/fake.rs".to_string(),
            NONDET_POSITIVE.to_string(),
        )],
        &config,
    );
    assert!(diagnostics.is_empty());
}

#[test]
fn diagnostics_are_sorted_and_display_as_grep_lines() {
    let sources = vec![
        (
            "crates/core/src/fake.rs".to_string(),
            NONDET_POSITIVE.to_string(),
        ),
        (
            "crates/core/src/earlier.rs".to_string(),
            ENVREAD_POSITIVE.to_string(),
        ),
    ];
    let diagnostics = lint_sources(&sources, &LintConfig::default());
    assert_eq!(diagnostics.len(), 2);
    assert_eq!(diagnostics[0].file, "crates/core/src/earlier.rs");
    let rendered = diagnostics[0].to_string();
    assert!(rendered.starts_with("crates/core/src/earlier.rs:3: env-read-centralized:"));
}

#[test]
fn json_report_round_trips_through_schema() {
    let diagnostics = lint_one("crates/core/src/fake.rs", NONDET_POSITIVE);
    let report = JsonReport::new(1, diagnostics);
    let json = report.to_json();
    let parsed: JsonReport = serde_json::from_str(&json).expect("schema round-trip");
    assert_eq!(parsed, report);
    assert_eq!(parsed.schema_version, JSON_SCHEMA_VERSION);
    assert_eq!(parsed.files_scanned, 1);
    assert_eq!(parsed.diagnostics.len(), 1);
}

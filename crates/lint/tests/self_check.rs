//! The workspace polices itself: linting the real source tree under the
//! default (deny-everything) configuration must come back clean. This is the
//! in-process twin of the CI step `cargo run -p sigfim-lint --release -- \
//! --deny-all`, so a violation fails `cargo test` before it fails CI.

use std::path::Path;

use sigfim_lint::{lint_workspace, LintConfig};

#[test]
fn workspace_is_clean_under_deny_all() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    assert!(
        root.join("Cargo.toml").exists(),
        "expected workspace root at {}",
        root.display()
    );
    let (files_scanned, diagnostics) =
        lint_workspace(&root, &LintConfig::default()).expect("workspace scan");
    assert!(
        files_scanned > 50,
        "suspiciously few files scanned ({files_scanned}) — walker broke?"
    );
    assert!(
        diagnostics.is_empty(),
        "workspace must be lint-clean, found:\n{}",
        diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

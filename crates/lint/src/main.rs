//! The `sigfim-lint` binary: lint the workspace, print diagnostics, exit
//! with CI-friendly codes.
//!
//! ```text
//! sigfim-lint [--deny-all] [--json] [--allow <rule>]... [--root <dir>]
//! ```
//!
//! Exit codes: 0 = clean (or violations in warn-only mode), 1 = violations
//! under `--deny-all`, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use sigfim_lint::{find_workspace_root, lint_workspace, rules::RULE_NAMES, JsonReport, LintConfig};

#[derive(Debug)]
struct Options {
    deny_all: bool,
    json: bool,
    root: Option<PathBuf>,
    config: LintConfig,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut options = Options {
        deny_all: false,
        json: false,
        root: None,
        config: LintConfig::default(),
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => options.deny_all = true,
            "--json" => options.json = true,
            "--allow" => {
                let rule = args.next().ok_or("--allow requires a rule name")?;
                if !RULE_NAMES.contains(&rule.as_str()) {
                    return Err(format!(
                        "--allow {rule}: unknown rule (known rules: {})",
                        RULE_NAMES.join(", ")
                    ));
                }
                options.config.disabled.push(rule);
            }
            "--root" => {
                let dir = args.next().ok_or("--root requires a directory")?;
                options.root = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: sigfim-lint [--deny-all] [--json] [--allow <rule>]... [--root <dir>]\n\
                     rules: {}",
                    RULE_NAMES.join(", ")
                ));
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let root = match options.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| find_workspace_root(&cwd))
    }) {
        Some(root) => root,
        None => {
            eprintln!("sigfim-lint: no workspace root found (pass --root <dir>)");
            return ExitCode::from(2);
        }
    };
    let (files_scanned, diagnostics) = match lint_workspace(&root, &options.config) {
        Ok(result) => result,
        Err(error) => {
            eprintln!("sigfim-lint: {}: {error}", root.display());
            return ExitCode::from(2);
        }
    };
    let violations = diagnostics.len();
    if options.json {
        println!("{}", JsonReport::new(files_scanned, diagnostics).to_json());
    } else {
        for diagnostic in &diagnostics {
            println!("{diagnostic}");
        }
        eprintln!(
            "sigfim-lint: {files_scanned} files scanned, {violations} violation{}{}",
            if violations == 1 { "" } else { "s" },
            if options.deny_all { " (deny-all)" } else { "" },
        );
    }
    if options.deny_all && violations > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::parse_args;

    fn args(list: &[&str]) -> std::vec::IntoIter<String> {
        list.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn flags_parse() {
        let options =
            parse_args(args(&["--deny-all", "--json", "--allow", "lock-hygiene"])).unwrap();
        assert!(options.deny_all);
        assert!(options.json);
        assert_eq!(options.config.disabled, ["lock-hygiene"]);
        assert!(parse_args(args(&["--allow", "bogus"])).is_err());
        assert!(parse_args(args(&["--frobnicate"])).is_err());
        assert!(parse_args(args(&["--help"])).unwrap_err().contains("usage"));
        let rooted = parse_args(args(&["--root", "/tmp"])).unwrap();
        assert_eq!(rooted.root.as_deref(), Some(std::path::Path::new("/tmp")));
    }
}

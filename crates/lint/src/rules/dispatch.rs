//! `target-feature-dispatch`: a `#[target_feature]` fn may only be named
//! inside its own defining dispatch module.
//!
//! Calling (or even taking a pointer to) a `#[target_feature(enable =
//! "avx..")]` function on a CPU without the feature is undefined behaviour.
//! The repo's discipline (see `crates/datasets/src/kernels.rs`) is that such
//! functions are private to one module whose *only* exports are safe
//! wrappers handed out by an `is_x86_feature_detected!`-gated vtable. This
//! rule makes that structural, workspace-wide:
//!
//! * pass 1 collects every `#[target_feature]` fn, its defining file and the
//!   innermost `mod` block containing it;
//! * pass 2 flags any mention of such a fn's name outside a defining module
//!   (same file or any other file), so an un-dispatched SIMD call can never
//!   compile in unnoticed;
//! * additionally, the defining file must contain an
//!   `is_x86_feature_detected!` gate — a feature fn in a file with no
//!   detection path has no sound way out.

use super::report;
use crate::scan::{ident_occurrences, SourceFile};
use crate::Diagnostic;

const RULE: &str = "target-feature-dispatch";

struct FeatureFn {
    name: String,
    file_index: usize,
    /// Inclusive 0-indexed line span of the defining module (whole file when
    /// the fn sits at the crate root).
    span: (usize, usize),
    decl_line: usize,
}

pub fn check(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    let mut feature_fns: Vec<FeatureFn> = Vec::new();
    for (file_index, file) in files.iter().enumerate() {
        for (lineno, line) in file.lines.iter().enumerate() {
            if !line.code.contains("#[target_feature") {
                continue;
            }
            let Some((decl_line, name)) = next_fn_name(file, lineno) else {
                continue;
            };
            let span = file
                .mods
                .iter()
                .filter(|m| m.start <= decl_line && decl_line <= m.end)
                .map(|m| (m.start, m.end))
                .min_by_key(|(start, end)| end - start)
                .unwrap_or((0, file.lines.len().saturating_sub(1)));
            feature_fns.push(FeatureFn {
                name,
                file_index,
                span,
                decl_line,
            });
        }
    }

    for f in &feature_fns {
        let file = &files[f.file_index];
        let gated = file
            .lines
            .iter()
            .any(|l| l.code.contains("is_x86_feature_detected!"));
        if !gated {
            report(
                file,
                f.decl_line,
                RULE,
                format!(
                    "#[target_feature] fn `{}` is defined in a file with no \
                     `is_x86_feature_detected!` gate; add a detection-gated selection path",
                    f.name
                ),
                out,
            );
        }
    }

    for (file_index, file) in files.iter().enumerate() {
        for (lineno, line) in file.lines.iter().enumerate() {
            for f in &feature_fns {
                if ident_occurrences(&line.code, &f.name).is_empty() {
                    continue;
                }
                // A mention is fine inside any module (of the same file) that
                // defines a #[target_feature] fn of this name — the dispatch
                // module owns its own safe wrappers.
                let sanctioned = feature_fns.iter().any(|g| {
                    g.name == f.name
                        && g.file_index == file_index
                        && g.span.0 <= lineno
                        && lineno <= g.span.1
                });
                if !sanctioned {
                    report(
                        file,
                        lineno,
                        RULE,
                        format!(
                            "`{}` is a #[target_feature] fn (defined in {}) and may only be \
                             named inside its own feature-detected dispatch module",
                            f.name, files[f.file_index].path
                        ),
                        out,
                    );
                }
                break; // one diagnostic per line/name pair is enough
            }
        }
    }
}

/// The name of the `fn` the attribute at `attr_line` applies to, searching a
/// few lines down past further attributes and comments.
fn next_fn_name(file: &SourceFile, attr_line: usize) -> Option<(usize, String)> {
    for (offset, line) in file.lines[attr_line..].iter().take(6).enumerate() {
        for pos in ident_occurrences(&line.code, "fn") {
            let rest = line.code[pos + 2..].trim_start();
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return Some((attr_line + offset, name));
            }
        }
    }
    None
}

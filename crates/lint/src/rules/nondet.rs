//! `nondet-iteration`: no un-sorted `HashMap`/`HashSet` iteration in
//! result-producing crates.
//!
//! The headline guarantee — Algorithm 1 estimates bit-identical across
//! backends × kernels × samplers × thread counts — has already been broken
//! once by `HashMap`-order float summation (`poisson_fit`, fixed in PR 2).
//! This rule polices the class: in `crates/{core,mining,stats,datasets}`
//! production code, iterating a hash collection (`.iter()`, `.keys()`,
//! `.values()`, `.drain()`, `.into_iter()`, `for ... in`) is flagged unless
//!
//! * the statement ends in an order-insensitive consumer (`.count()`,
//!   `.any(..)`, `.all(..)`, `.contains(..)`, `.contains_key(..)`), or
//! * a canonical sort (`.sort*(..)` / `sort_canonical`) or a `BTreeMap`/
//!   `BTreeSet` collection appears in the statement or within the ten lines
//!   after it, or
//! * the site carries `// sigfim-lint: allow(nondet-iteration, reason = ..)`.
//!
//! Bindings are discovered token-level: `name: HashMap<..>` / `name:
//! &HashSet<..>` declarations (lets, fields, params) and `name =
//! HashMap::new()` / `with_capacity` initializations. A binding whose hash
//! type is only reachable through another container (`Vec<HashMap<..>>`) is
//! deliberately not tracked — the outer iteration is ordered.

use super::{report, statement_at};
use crate::scan::{ident_occurrences, SourceFile};
use crate::Diagnostic;

const RULE: &str = "nondet-iteration";

/// Crates whose outputs feed reports and estimates.
const SCOPED: [&str; 4] = [
    "crates/core/src/",
    "crates/mining/src/",
    "crates/stats/src/",
    "crates/datasets/src/",
];

const ITERATING_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

const ORDER_INSENSITIVE: [&str; 5] = [".count()", ".any(", ".all(", ".contains(", ".contains_key("];

const SORTS: [&str; 3] = [".sort", "BTreeMap", "BTreeSet"];

/// How far below the end of the iterating statement a canonical sort may
/// appear and still discharge the flag.
const SORT_WINDOW: usize = 10;

pub fn check(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    for file in files {
        if !SCOPED.iter().any(|prefix| file.path.starts_with(prefix)) {
            continue;
        }
        let tracked = tracked_idents(file);
        for name in &tracked {
            for (lineno, line) in file.lines.iter().enumerate() {
                if file.test_mask[lineno] {
                    continue;
                }
                for offset in ident_occurrences(&line.code, name) {
                    let iterated = method_after(file, lineno, offset + name.len())
                        .is_some_and(|m| ITERATING_METHODS.contains(&m.as_str()))
                        || is_for_in(&line.code[..offset]);
                    if !iterated {
                        continue;
                    }
                    let (statement, stmt_end) = statement_at(file, lineno, 8);
                    if ORDER_INSENSITIVE.iter().any(|p| statement.contains(p)) {
                        continue;
                    }
                    if sorted_nearby(file, lineno, stmt_end) {
                        continue;
                    }
                    report(
                        file,
                        lineno,
                        RULE,
                        format!(
                            "iteration over hash collection `{name}` observes nondeterministic \
                             order; sort the results canonically (or collect into a BTree map) \
                             before they feed an estimate, or annotate with `// sigfim-lint: \
                             allow({RULE}, reason = \"...\")`"
                        ),
                        out,
                    );
                }
            }
        }
    }
}

/// Identifiers declared or initialized as `HashMap`/`HashSet` in this file.
fn tracked_idents(file: &SourceFile) -> Vec<String> {
    let mut tracked = Vec::new();
    for (lineno, line) in file.lines.iter().enumerate() {
        if file.test_mask[lineno] {
            continue;
        }
        for hash_ty in ["HashMap", "HashSet"] {
            for offset in ident_occurrences(&line.code, hash_ty) {
                if let Some(name) = declared_ident(&line.code[..offset]) {
                    if !tracked.contains(&name) {
                        tracked.push(name);
                    }
                }
            }
        }
    }
    tracked
}

/// Given the code before a `HashMap`/`HashSet` token, the identifier being
/// declared (`name: HashMap<..>`, `name: &mut HashMap<..>`, possibly through
/// a `std::collections::` path) or initialized (`name = HashMap::new()`).
fn declared_ident(before: &str) -> Option<String> {
    let mut rest = before.trim_end();
    // Strip a `std::collections::` (or any) path prefix ending in `::`.
    while let Some(stripped) = rest.strip_suffix("::") {
        rest = stripped.trim_end();
        rest = rest
            .trim_end_matches(|c: char| c.is_alphanumeric() || c == '_')
            .trim_end();
    }
    let direct = rest.strip_suffix(':').filter(|r| !r.ends_with(':'));
    let rest = match (direct, rest.strip_suffix('=')) {
        (Some(after_colon), _) => after_colon,
        (None, Some(after_eq)) => after_eq,
        (None, None) => {
            // Reference declarations: `name: &HashMap`, `name: &mut HashMap`.
            let stripped = rest.trim_end_matches('&').trim_end();
            let stripped = stripped.strip_suffix("mut").unwrap_or(stripped).trim_end();
            let stripped = stripped.trim_end_matches('&').trim_end();
            stripped.strip_suffix(':')?
        }
    };
    let rest = rest.trim_end();
    let end = rest.len();
    let start = rest
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
        .map_or(0, |p| p + 1);
    let name = &rest[start..end];
    (!name.is_empty() && !name.chars().next().is_some_and(|c| c.is_ascii_digit()))
        .then(|| name.to_string())
}

/// The method immediately invoked on an identifier ending at byte `offset` of
/// line `lineno` — following rustfmt-wrapped chains onto the next lines.
fn method_after(file: &SourceFile, lineno: usize, offset: usize) -> Option<String> {
    let mut text = file.lines[lineno].code[offset..].to_string();
    for next in lineno + 1..lineno + 4 {
        let trimmed = text.trim_start();
        if let Some(rest) = trimmed.strip_prefix('.') {
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            return (!name.is_empty()).then_some(name);
        }
        if !trimmed.is_empty() || next >= file.lines.len() {
            return None;
        }
        text = file.lines[next].code.clone();
    }
    None
}

/// Whether the code before an identifier occurrence reads `for .. in [&mut]`.
fn is_for_in(before: &str) -> bool {
    let rest = before.trim_end();
    let rest = rest.trim_end_matches('&').trim_end();
    let rest = rest.strip_suffix("mut").unwrap_or(rest).trim_end();
    let rest = rest.trim_end_matches('&').trim_end();
    rest.ends_with(" in") && rest.contains("for ")
}

/// Whether a canonical sort (or BTree collection) appears in the flagged
/// statement or within [`SORT_WINDOW`] lines after it.
fn sorted_nearby(file: &SourceFile, flag_line: usize, stmt_end: usize) -> bool {
    let last = (stmt_end + SORT_WINDOW).min(file.lines.len().saturating_sub(1));
    file.lines[flag_line..=last]
        .iter()
        .any(|line| SORTS.iter().any(|s| line.code.contains(s)))
}

//! `env-read-centralized`: `SIGFIM_*` environment variables are read only in
//! the designated config modules.
//!
//! Runtime configuration changes dispatch (kernels, samplers, tuning), and
//! dispatch changes must stay visible in one place per axis — a stray
//! `std::env::var("SIGFIM_...")` deep inside a caller bypasses the startup
//! validation (`configure_kernels` / `configure_sampler` /
//! `resolve_tune_request`) that turns misconfiguration into a clean error
//! instead of a panic at first dispatch. Everything else must go through the
//! typed accessors those modules export.

use super::report;
use crate::scan::SourceFile;
use crate::Diagnostic;

const RULE: &str = "env-read-centralized";

/// The designated config seams (the only files allowed to read `SIGFIM_*`).
const ALLOWED_FILES: [&str; 5] = [
    "crates/datasets/src/sampler.rs",
    "crates/datasets/src/kernels.rs",
    "crates/datasets/src/spill.rs",
    "crates/datasets/src/tune.rs",
    "crates/mining/src/tune.rs",
];

pub fn check(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    for file in files {
        if ALLOWED_FILES.contains(&file.path.as_str()) {
            continue;
        }
        for (lineno, line) in file.lines.iter().enumerate() {
            let reads_env = line.code.contains("env::var");
            let sigfim = line
                .strings
                .iter()
                .find(|s| s.starts_with("SIGFIM_"))
                .cloned();
            if let (true, Some(var)) = (reads_env, sigfim) {
                report(
                    file,
                    lineno,
                    RULE,
                    format!(
                        "`{var}` read outside the designated config modules ({}); route it \
                         through a typed accessor there",
                        ALLOWED_FILES.join(", ")
                    ),
                    out,
                );
            }
        }
    }
}

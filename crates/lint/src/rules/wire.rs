//! `wire-additivity`: fields added to wire structs after `PROTOCOL_VERSION =
//! 1` must be `#[serde(default)]`.
//!
//! The service's compatibility contract is additive evolution within one
//! protocol version: a v1-era payload must keep deserializing forever. The
//! baseline below snapshots the fields each serde-derived struct in
//! `crates/service/src/protocol.rs` shipped with; any field not in the
//! baseline must carry `#[serde(default)]` so its absence in an old payload
//! defaults instead of erroring. Structs introduced later (reached through a
//! defaulted field) get no baseline — every one of their fields must
//! default, or the addition must bump the baseline together with
//! `PROTOCOL_VERSION`.

use super::report;
use crate::scan::SourceFile;
use crate::Diagnostic;

const RULE: &str = "wire-additivity";

const PROTOCOL_FILE: &str = "crates/service/src/protocol.rs";

/// The v1 field baseline: struct name → fields present when the struct first
/// shipped (everything after these is additive and must default). Append
/// here only when bumping `PROTOCOL_VERSION`.
const V1_BASELINE: [(&str, &[&str]); 4] = [
    (
        "EngineInfo",
        &[
            "id",
            "transactions",
            "items",
            "has_dataset",
            "backend",
            "fingerprint",
        ],
    ),
    ("TunerTiming", &["subject", "median_ns"]),
    (
        "KernelStats",
        &[
            "mode",
            "tuned",
            "tuner_kernel",
            "shard_budget_bytes",
            "tuner_timings",
        ],
    ),
    (
        "ServiceStats",
        &[
            "engines",
            "analyze_requests",
            "threshold_requests",
            "threshold_store",
        ],
    ),
];

pub fn check(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    for file in files {
        if file.path != PROTOCOL_FILE {
            continue;
        }
        for s in wire_structs(file) {
            let baseline: Option<&[&str]> = V1_BASELINE
                .iter()
                .find(|(name, _)| *name == s.name)
                .map(|(_, fields)| *fields);
            for field in &s.fields {
                let grandfathered = baseline.is_some_and(|b| b.contains(&field.name.as_str()));
                if grandfathered || field.serde_default {
                    continue;
                }
                let hint = match baseline {
                    Some(_) => "it was added after PROTOCOL_VERSION = 1",
                    None => "its struct is not in the v1 baseline",
                };
                report(
                    file,
                    field.line,
                    RULE,
                    format!(
                        "field `{}` of wire struct `{}` must be #[serde(default)] ({hint}); \
                         old payloads without it must keep deserializing",
                        field.name, s.name
                    ),
                    out,
                );
            }
        }
    }
}

struct WireField {
    name: String,
    line: usize,
    serde_default: bool,
}

struct WireStruct {
    name: String,
    fields: Vec<WireField>,
}

/// Serde-derived structs and their fields, parsed token-level: a `pub struct
/// Name {` whose preceding attribute run contains a `derive(..)` naming both
/// `Serialize` and `Deserialize`.
fn wire_structs(file: &SourceFile) -> Vec<WireStruct> {
    let mut structs = Vec::new();
    for (lineno, line) in file.lines.iter().enumerate() {
        let code = line.code.trim();
        let Some(rest) = code
            .strip_prefix("pub struct ")
            .or_else(|| code.strip_prefix("struct "))
        else {
            continue;
        };
        if !rest.contains('{') {
            continue; // tuple/unit structs carry no named wire fields
        }
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() || !derives_wire(file, lineno) {
            continue;
        }
        structs.push(WireStruct {
            name,
            fields: parse_fields(file, lineno),
        });
    }
    structs
}

/// Whether the attribute run above `struct_line` derives Serialize and
/// Deserialize.
fn derives_wire(file: &SourceFile, struct_line: usize) -> bool {
    let mut derive_text = String::new();
    let mut i = struct_line;
    while i > 0 {
        i -= 1;
        let code = file.lines[i].code.trim();
        let attr_like = code.starts_with("#[") || code.ends_with(']') || code.ends_with(',');
        if code.is_empty() && !file.lines[i].comment.is_empty() {
            continue; // doc comment line
        }
        if code.is_empty() || !attr_like {
            break;
        }
        derive_text.push_str(code);
    }
    derive_text.contains("derive")
        && derive_text.contains("Serialize")
        && derive_text.contains("Deserialize")
}

/// The named fields of the struct opening on `struct_line`, tracking
/// per-field `#[serde(..default..)]` attributes.
fn parse_fields(file: &SourceFile, struct_line: usize) -> Vec<WireField> {
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut pending_serde_default = false;
    for (offset, line) in file.lines[struct_line..].iter().enumerate() {
        let code = line.code.trim();
        let entered = depth > 0;
        for c in line.code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if entered && depth <= 0 {
            break;
        }
        if !entered {
            continue; // the struct-declaration line itself
        }
        if code.starts_with("#[") {
            if code.contains("serde") && code.contains("default") {
                pending_serde_default = true;
            }
            continue;
        }
        let decl = code.strip_prefix("pub ").unwrap_or(code);
        let name: String = decl
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        let is_field = !name.is_empty()
            && decl[name.len()..].trim_start().starts_with(':')
            && !decl.starts_with("fn ");
        if is_field {
            fields.push(WireField {
                name,
                line: struct_line + offset,
                serde_default: pending_serde_default,
            });
            pending_serde_default = false;
        }
    }
    fields
}

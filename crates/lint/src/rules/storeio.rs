//! `store-io-checked`: the durable store's write paths must propagate their
//! `io::Result`s, and raw frame writers must acknowledge the CRC discipline.
//!
//! `crates/store` is the crash-safety boundary of the workspace: a dropped
//! error on a write, flush or fsync turns "the PUT was acknowledged durable"
//! into a silent lie that only surfaces as a missing record after the next
//! restart. Two checks over the store's production code:
//!
//! * **no discarded write results.** A `let _ = ...` statement around a
//!   write-path call (`write_all`, `write`, `flush`, `sync_all`,
//!   `sync_data`, `set_len`, `remove_file`, `rename`) swallows the one
//!   signal that durability failed; propagate the `io::Result` (or handle
//!   the error explicitly). `OpenOptions::write(true)` is a builder flag,
//!   not a write, and is ignored.
//! * **CRC discipline stays visible.** A store file that performs raw byte
//!   writes (`.write_all(`) is writing log frames, and every frame is
//!   CRC-framed; if the file never mentions CRC in code or comments, the
//!   framing either moved without its checksum or the new write path skips
//!   it. Mention the CRC (or route the bytes through the framed writer).

use super::{report, statement_at};
use crate::scan::SourceFile;
use crate::Diagnostic;

const RULE: &str = "store-io-checked";

/// Calls on the durability path whose `io::Result` must not be discarded.
const WRITE_CALLS: [&str; 8] = [
    ".write_all(",
    ".write(",
    ".flush(",
    ".sync_all(",
    ".sync_data(",
    ".set_len(",
    "remove_file(",
    "rename(",
];

pub fn check(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    for file in files {
        if !file.path.starts_with("crates/store/src/") {
            continue;
        }
        let mut first_raw_write: Option<usize> = None;
        let mut mentions_crc = false;
        for (lineno, line) in file.lines.iter().enumerate() {
            let lower_code = line.code.to_ascii_lowercase();
            if lower_code.contains("crc") || line.comment.to_ascii_lowercase().contains("crc") {
                mentions_crc = true;
            }
            if file.test_mask[lineno] {
                continue;
            }
            if line.code.contains(".write_all(") && first_raw_write.is_none() {
                first_raw_write = Some(lineno);
            }
            if !line.code.trim_start().starts_with("let _ =") {
                continue;
            }
            let (statement, _) = statement_at(file, lineno, 6);
            if let Some(call) = discarded_write(&statement) {
                report(
                    file,
                    lineno,
                    RULE,
                    format!(
                        "`let _ =` discards the io::Result of `{call}` on the store's \
                         durability path; propagate it with `?` or handle the error \
                         explicitly — a swallowed write failure breaks the crash-safety \
                         contract"
                    ),
                    out,
                );
            }
        }
        if let (Some(lineno), false) = (first_raw_write, mentions_crc) {
            report(
                file,
                lineno,
                RULE,
                "raw `.write_all(` in a store file that never mentions the CRC: log \
                 frames are CRC-framed, so either route these bytes through the framed \
                 writer or document the checksum discipline here"
                    .to_string(),
                out,
            );
        }
    }
}

/// The first write-path call in `statement`, with the `OpenOptions` builder
/// flag `.write(true)` / `.write(false)` excluded.
fn discarded_write(statement: &str) -> Option<&'static str> {
    let statement = statement
        .replace(".write(true)", "")
        .replace(".write(false)", "");
    WRITE_CALLS
        .iter()
        .find(|needle| statement.contains(*needle))
        .map(|needle| needle.trim_matches(|c| c == '.' || c == '('))
}

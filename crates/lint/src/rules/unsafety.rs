//! `unsafe-needs-safety`: every `unsafe` block, function or impl must carry
//! a `// SAFETY:` comment.
//!
//! The comment may trail the `unsafe` line or sit in the contiguous run of
//! comments/attributes/blank lines directly above it (so a
//! `#[target_feature]` attribute between the comment and the `unsafe fn`
//! does not break the association). A `# Safety` rustdoc section counts too.

use super::{preceding_comments, report};
use crate::scan::{ident_occurrences, SourceFile};
use crate::Diagnostic;

const RULE: &str = "unsafe-needs-safety";

/// How many comment/attribute lines above the `unsafe` site are searched.
const LOOKBACK: usize = 12;

pub fn check(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    for file in files {
        for (lineno, line) in file.lines.iter().enumerate() {
            if ident_occurrences(&line.code, "unsafe").is_empty() {
                continue;
            }
            let documented = preceding_comments(file, lineno, LOOKBACK)
                .iter()
                .any(|c| c.contains("SAFETY:") || c.contains("# Safety"));
            if !documented {
                report(
                    file,
                    lineno,
                    RULE,
                    "`unsafe` without a `// SAFETY:` comment: state the invariant that makes \
                     this sound on the preceding lines"
                        .to_string(),
                    out,
                );
            }
        }
    }
}

//! The repo-invariant rules. Each rule is a function over the scanned
//! workspace appending [`Diagnostic`]s; all of them honor the
//! `// sigfim-lint: allow(<rule>, reason = "...")` escape hatch parsed by
//! [`crate::scan`].

use crate::scan::SourceFile;
use crate::Diagnostic;

mod dispatch;
mod envread;
mod locks;
mod nondet;
mod storeio;
mod unsafety;
mod wire;

/// Every enforceable rule name, in diagnostic order. `malformed-allow` is a
/// scanner-level meta rule (a broken annotation must not silently disable
/// anything) and is always on.
pub const RULE_NAMES: [&str; 7] = [
    "nondet-iteration",
    "unsafe-needs-safety",
    "target-feature-dispatch",
    "env-read-centralized",
    "wire-additivity",
    "lock-hygiene",
    "store-io-checked",
];

/// Run every rule not named in `disabled` over the scanned files.
pub fn check_all(files: &[SourceFile], disabled: &[String], out: &mut Vec<Diagnostic>) {
    for file in files {
        out.extend(file.scan_diagnostics.iter().cloned());
    }
    let on = |rule: &str| !disabled.iter().any(|d| d == rule);
    if on("nondet-iteration") {
        nondet::check(files, out);
    }
    if on("unsafe-needs-safety") {
        unsafety::check(files, out);
    }
    if on("target-feature-dispatch") {
        dispatch::check(files, out);
    }
    if on("env-read-centralized") {
        envread::check(files, out);
    }
    if on("wire-additivity") {
        wire::check(files, out);
    }
    if on("lock-hygiene") {
        locks::check(files, out);
    }
    if on("store-io-checked") {
        storeio::check(files, out);
    }
}

/// Push a diagnostic unless the file allow-annotates `rule` at `line`
/// (0-indexed).
fn report(
    file: &SourceFile,
    line: usize,
    rule: &'static str,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    if file.allowed(rule, line) {
        return;
    }
    out.push(Diagnostic {
        file: file.path.clone(),
        line: SourceFile::lineno(line),
        rule: rule.to_string(),
        message,
    });
}

/// Walk upwards from `line` over the contiguous run of blank, comment-only
/// and attribute lines (at most `max` of them), returning every comment in
/// the run plus the comment trailing `line` itself.
fn preceding_comments(file: &SourceFile, line: usize, max: usize) -> Vec<String> {
    let mut comments = Vec::new();
    if !file.lines[line].comment.is_empty() {
        comments.push(file.lines[line].comment.clone());
    }
    let mut i = line;
    let mut walked = 0;
    while i > 0 && walked < max {
        i -= 1;
        walked += 1;
        let l = &file.lines[i];
        let code = l.code.trim();
        let skippable = code.is_empty() || code.starts_with("#[") || code.ends_with(']');
        if !l.comment.is_empty() {
            comments.push(l.comment.clone());
        }
        if !skippable {
            break;
        }
    }
    comments
}

/// The code of the statement starting at `line`: lines joined until the first
/// `;` or opening `{` (bounded at `max_lines`). Returns the joined code and
/// the 0-indexed line the statement ends on.
fn statement_at(file: &SourceFile, line: usize, max_lines: usize) -> (String, usize) {
    let mut joined = String::new();
    let mut end = line;
    for (offset, l) in file.lines[line..].iter().take(max_lines).enumerate() {
        joined.push_str(&l.code);
        joined.push(' ');
        end = line + offset;
        if l.code.contains(';') || l.code.contains('{') {
            break;
        }
    }
    (joined, end)
}

//! `lock-hygiene`: no nested lock acquisitions in one statement, and no
//! `.lock().unwrap()` outside a poisoning-documented context.
//!
//! Two checks over production code (test regions and `tests/`/`benches/`
//! trees are exempt — a test may unwrap freely):
//!
//! * **nested acquisition.** Two blocking acquisitions (`.lock()`,
//!   `.read()`, `.write()`) inside a single statement take both guards with
//!   an order fixed by evaluation order nobody audits — the classic
//!   lock-order-inversion shape. Split into separate bindings (which makes
//!   the order reviewable) or annotate. This is a statement-level
//!   approximation of the scope-level hazard: it catches the
//!   `f(a.lock()?, b.lock()?)` class, not every guard held across a later
//!   acquisition.
//! * **unwrap on poisoning.** `.lock().unwrap()` converts a sibling's panic
//!   into a cascade. The repo's stores deliberately *recover*
//!   (`unwrap_or_else(|poisoned| poisoned.into_inner())`, the registry's
//!   `relock!`) because they hold memoized state that is consistent between
//!   any two operations. Where propagation really is wanted, say so: a
//!   comment containing "poison" within the eight preceding lines makes the
//!   intent reviewable and discharges the flag.

use super::{preceding_comments, report, statement_at};
use crate::scan::SourceFile;
use crate::Diagnostic;

const RULE: &str = "lock-hygiene";

/// Blocking guard acquisitions. `try_lock()` is excluded (it cannot
/// deadlock) and `.read(`/`.write(` with arguments are io traits, not locks.
const ACQUISITIONS: [&str; 3] = [".lock()", ".read()", ".write()"];

const POISON_LOOKBACK: usize = 8;

pub fn check(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    for file in files {
        if file.path.contains("/tests/") || file.path.contains("/benches/") {
            continue;
        }
        // Lines already inside a statement flagged for nesting, so one
        // statement yields one diagnostic.
        let mut covered_until = 0usize;
        for (lineno, line) in file.lines.iter().enumerate() {
            if file.test_mask[lineno] || acquisitions_in(&line.code) == 0 {
                continue;
            }
            let (statement, stmt_end) = statement_at(file, lineno, 6);
            if (lineno == 0 || lineno > covered_until) && acquisitions_in(&statement) >= 2 {
                covered_until = stmt_end;
                report(
                    file,
                    lineno,
                    RULE,
                    "multiple lock acquisitions in one statement fix an unreviewable lock \
                     order; take the guards in separate bindings (or annotate with the intended \
                     order)"
                        .to_string(),
                    out,
                );
            }
            if unwraps_lock(&line.code, &statement) {
                let documented = preceding_comments(file, lineno, POISON_LOOKBACK)
                    .iter()
                    .any(|c| c.to_ascii_lowercase().contains("poison"));
                if !documented {
                    report(
                        file,
                        lineno,
                        RULE,
                        "`.lock().unwrap()` outside a poisoning-documented helper: recover with \
                         `unwrap_or_else(|poisoned| poisoned.into_inner())` or document (comment \
                         mentioning poisoning) why propagating the panic is intended"
                            .to_string(),
                        out,
                    );
                }
            }
        }
    }
}

fn acquisitions_in(code: &str) -> usize {
    ACQUISITIONS
        .iter()
        .map(|needle| code.matches(needle).count())
        .sum()
}

/// Whether an acquisition *on this line* is immediately `.unwrap()`ed,
/// possibly on a continuation line of the same statement. `statement` is the
/// joined statement starting at this line, so in-line byte offsets agree.
fn unwraps_lock(line_code: &str, statement: &str) -> bool {
    ACQUISITIONS.iter().any(|needle| {
        let mut from = 0;
        while let Some(pos) = line_code[from..].find(needle) {
            let occurrence_end = from + pos + needle.len();
            if statement[occurrence_end..]
                .trim_start()
                .starts_with(".unwrap()")
            {
                return true;
            }
            from = occurrence_end;
        }
        false
    })
}

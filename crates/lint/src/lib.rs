//! `sigfim-lint`: workspace-aware static analysis enforcing the repo's
//! determinism, unsafe-SIMD, configuration and locking invariants.
//!
//! The repo's headline guarantee — Algorithm 1 estimates bit-identical
//! across backends × kernels × samplers × thread counts — is enforced
//! dynamically by the parity suites, but the invariant *surface* (no
//! hash-order iteration in result paths, `#[target_feature]` fns confined to
//! detection-gated dispatch, `SIGFIM_*` reads behind the typed config seams,
//! additive wire evolution, reviewable lock discipline, checked store I/O)
//! is structural. This
//! crate checks it at CI time, before a parity test can flake, with a small
//! hand-rolled token-level scanner ([`scan`]) and seven named rules
//! ([`rules::RULE_NAMES`]), each individually suppressible at a site with
//!
//! ```text
//! // sigfim-lint: allow(<rule>, reason = "why this site is sound")
//! ```
//!
//! Run it as `cargo run -p sigfim-lint --release -- --deny-all` (the CI
//! invocation), or with `--json` for machine-readable output.

pub mod report;
pub mod rules;
pub mod scan;

use std::path::{Path, PathBuf};

pub use report::{Diagnostic, JsonReport, JSON_SCHEMA_VERSION};
use scan::SourceFile;

/// Linter configuration: globally disabled rules.
#[derive(Debug, Default, Clone)]
pub struct LintConfig {
    /// Rule names to skip entirely (from repeated `--allow <rule>` flags).
    pub disabled: Vec<String>,
}

/// Lint in-memory sources. `sources` pairs workspace-relative paths (forward
/// slashes — rule scoping matches on them) with file contents. This is the
/// seam the fixture tests drive.
pub fn lint_sources(sources: &[(String, String)], config: &LintConfig) -> Vec<Diagnostic> {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(path, text)| scan::scan_source(path, text))
        .collect();
    let mut out = Vec::new();
    rules::check_all(&files, &config.disabled, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    out
}

/// Collect every workspace `.rs` file under `root`, skipping `target/`,
/// `vendor/` (external shims are not our invariant surface) and VCS
/// internals. Paths come back workspace-relative, sorted, with forward
/// slashes.
///
/// # Errors
///
/// Any I/O error while walking or reading.
pub fn collect_workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    let mut sources = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(root.join(&path))?;
        let rel = path
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        sources.push((rel, text));
    }
    Ok(sources)
}

const SKIPPED_DIRS: [&str; 4] = ["target", "vendor", ".git", ".github"];

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIPPED_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked path is under root")
                .to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

/// Lint the workspace rooted at `root`.
///
/// # Errors
///
/// Any I/O error while collecting sources.
pub fn lint_workspace(
    root: &Path,
    config: &LintConfig,
) -> std::io::Result<(usize, Vec<Diagnostic>)> {
    let sources = collect_workspace_sources(root)?;
    let diagnostics = lint_sources(&sources, config);
    Ok((sources.len(), diagnostics))
}

/// Find the workspace root: the nearest ancestor of `start` (inclusive)
/// holding a `Cargo.toml` that declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

//! A small hand-rolled token-level scanner for Rust sources.
//!
//! The linter does not need a full parse — every rule it enforces is visible
//! at the token level — so this module does exactly the lexing the rules
//! need and no more:
//!
//! * **code / comment / string separation.** Each source line is split into
//!   its code text (comments stripped, string-literal *contents* blanked so a
//!   fixture or error message can never trigger a rule), the comment text on
//!   that line, and the values of string literals ending on that line (the
//!   `env-read-centralized` rule needs to see `"SIGFIM_*"` arguments).
//! * **module spans.** `mod name { ... }` blocks are brace-tracked so the
//!   `target-feature-dispatch` rule can confine a `#[target_feature]` fn's
//!   name to its defining dispatch module.
//! * **test regions.** Braced items directly under a `#[cfg(test)]`
//!   attribute are masked so determinism and lock rules only police
//!   result-producing code.
//! * **allow annotations.** `// sigfim-lint: allow(<rule>, reason = "...")`
//!   comments are parsed here; a malformed one (unknown rule, missing
//!   reason) is itself reported, so a typo cannot silently disable a rule.

use crate::rules::RULE_NAMES;
use crate::Diagnostic;

/// One scanned source line.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Code text: comments removed, string-literal contents blanked (the
    /// delimiting quotes are kept so token adjacency survives).
    pub code: String,
    /// Comment text on this line (without deciding line vs block comment).
    pub comment: String,
    /// Values of string literals that *end* on this line.
    pub strings: Vec<String>,
}

/// A `mod name { ... }` block, by 0-indexed inclusive line span.
#[derive(Debug, Clone)]
pub struct ModSpan {
    pub name: String,
    pub start: usize,
    pub end: usize,
}

/// A parsed `sigfim-lint: allow(...)` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 0-indexed line the annotation comment sits on.
    pub line: usize,
    pub rule: String,
}

/// A fully scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    pub lines: Vec<Line>,
    pub mods: Vec<ModSpan>,
    /// `true` for lines inside a `#[cfg(test)]`-gated item.
    pub test_mask: Vec<bool>,
    pub allows: Vec<Allow>,
    /// Diagnostics produced by scanning itself (malformed allow comments).
    pub scan_diagnostics: Vec<Diagnostic>,
}

impl SourceFile {
    /// Whether `rule` is allow-annotated for a violation on 0-indexed `line`:
    /// the annotation may trail the flagged line or sit on one of the two
    /// lines above it.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && line >= a.line && line - a.line <= 2)
    }

    /// 1-indexed line number for diagnostics.
    pub fn lineno(line: usize) -> usize {
        line + 1
    }
}

/// Scan one source text. `path` must be workspace-relative.
pub fn scan_source(path: &str, text: &str) -> SourceFile {
    let lines = lex(text);
    let (mods, test_mask) = structure(&lines);
    let mut allows = Vec::new();
    let mut scan_diagnostics = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        parse_allow(path, i, &line.comment, &mut allows, &mut scan_diagnostics);
    }
    SourceFile {
        path: path.to_string(),
        lines,
        mods,
        test_mask,
        allows,
        scan_diagnostics,
    }
}

/// Split `text` into per-line code / comment / string-value channels.
fn lex(text: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        /// Block comment with nesting depth.
        BlockComment(u32),
        /// String literal; `hashes` is `Some(n)` for raw strings `r#..#"`.
        Str {
            hashes: Option<u32>,
        },
    }

    let chars: Vec<char> = text.chars().collect();
    let mut lines = Vec::new();
    let mut line = Line::default();
    let mut state = State::Code;
    let mut cur_string = String::new();
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut line));
            i += 1;
            continue;
        }
        match state {
            State::Code => match c {
                '/' if chars.get(i + 1) == Some(&'/') => {
                    state = State::LineComment;
                    i += 2;
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    state = State::BlockComment(1);
                    i += 2;
                }
                '"' => {
                    line.code.push('"');
                    cur_string.clear();
                    state = State::Str { hashes: None };
                    i += 1;
                }
                'r' if matches!(chars.get(i + 1), Some('"' | '#'))
                    && !ident_char(chars.get(i.wrapping_sub(1)).copied()) =>
                {
                    // Raw string r"..." / r#"..."# (and br"" via the 'b'
                    // having been emitted as an ident char already).
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        line.code.push('"');
                        cur_string.clear();
                        state = State::Str {
                            hashes: Some(hashes),
                        };
                        i = j + 1;
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal vs lifetime: 'x' or '\..' is a literal,
                    // anything else ('a as in <'a>) is a lifetime.
                    if chars.get(i + 1) == Some(&'\\') {
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' {
                            if chars[j] == '\\' {
                                j += 1;
                            }
                            j += 1;
                        }
                        line.code.push_str("' '");
                        i = j + 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        line.code.push_str("' '");
                        i += 3;
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
                _ => {
                    line.code.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
            State::Str { hashes } => match hashes {
                None => {
                    if c == '\\' {
                        match chars.get(i + 1) {
                            // A `\` line continuation: keep the newline for
                            // the top-of-loop line accounting.
                            Some('\n') | None => i += 1,
                            Some(&next) => {
                                cur_string.push(next);
                                i += 2;
                            }
                        }
                    } else if c == '"' {
                        line.code.push('"');
                        line.strings.push(std::mem::take(&mut cur_string));
                        state = State::Code;
                        i += 1;
                    } else {
                        cur_string.push(c);
                        i += 1;
                    }
                }
                Some(n) => {
                    let closes =
                        c == '"' && (0..n as usize).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                    if closes {
                        line.code.push('"');
                        line.strings.push(std::mem::take(&mut cur_string));
                        state = State::Code;
                        i += 1 + n as usize;
                    } else {
                        cur_string.push(c);
                        i += 1;
                    }
                }
            },
        }
    }
    if !line.code.is_empty() || !line.comment.is_empty() || !line.strings.is_empty() {
        lines.push(line);
    }
    lines
}

fn ident_char(c: Option<char>) -> bool {
    matches!(c, Some(c) if c.is_alphanumeric() || c == '_')
}

/// Brace-track the code channel: module spans and `#[cfg(test)]` regions.
fn structure(lines: &[Line]) -> (Vec<ModSpan>, Vec<bool>) {
    struct Open {
        mod_index: Option<usize>,
        test: bool,
    }

    let mut mods: Vec<ModSpan> = Vec::new();
    let mut stack: Vec<Open> = Vec::new();
    let mut test_mask = vec![false; lines.len()];
    let mut recent: Vec<String> = Vec::new();
    let mut pending_cfg_test = false;

    for (lineno, line) in lines.iter().enumerate() {
        if stack.iter().any(|o| o.test) {
            test_mask[lineno] = true;
        }
        if line.code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        let mut token = String::new();
        let mut chars = line.code.chars().peekable();
        while let Some(c) = chars.next() {
            if c.is_alphanumeric() || c == '_' {
                token.push(c);
                if chars.peek().map(|&n| n.is_alphanumeric() || n == '_') != Some(true) {
                    recent.push(std::mem::take(&mut token));
                    if recent.len() > 4 {
                        recent.remove(0);
                    }
                }
                continue;
            }
            match c {
                '{' => {
                    let mod_index = match recent.as_slice() {
                        [.., kw, name] if kw == "mod" => {
                            mods.push(ModSpan {
                                name: name.clone(),
                                start: lineno,
                                end: lineno,
                            });
                            Some(mods.len() - 1)
                        }
                        _ => None,
                    };
                    let test = pending_cfg_test || stack.iter().any(|o| o.test);
                    pending_cfg_test = false;
                    stack.push(Open { mod_index, test });
                    recent.clear();
                }
                '}' => {
                    if let Some(open) = stack.pop() {
                        if let Some(index) = open.mod_index {
                            mods[index].end = lineno;
                        }
                    }
                    recent.clear();
                }
                ';' => {
                    recent.clear();
                    pending_cfg_test = false;
                }
                _ => {}
            }
        }
        if stack.iter().any(|o| o.test) {
            test_mask[lineno] = true;
        }
    }
    // Unclosed spans (unbalanced braces in a fixture) extend to EOF.
    for open in stack {
        if let Some(index) = open.mod_index {
            mods[index].end = lines.len().saturating_sub(1);
        }
    }
    (mods, test_mask)
}

/// Parse a `sigfim-lint: allow(rule, reason = "...")` annotation out of a
/// comment, reporting malformed ones.
fn parse_allow(
    path: &str,
    line: usize,
    comment: &str,
    allows: &mut Vec<Allow>,
    diagnostics: &mut Vec<Diagnostic>,
) {
    // Annotations are plain `//` comments; doc comments (`///` → content
    // starting with `/`, `//!` → `!`) only *talk about* the syntax.
    let content = comment.trim_start();
    if content.starts_with('/') || content.starts_with('!') {
        return;
    }
    let Some(at) = comment.find("sigfim-lint:") else {
        return;
    };
    let rest = comment[at + "sigfim-lint:".len()..].trim();
    let malformed = |message: String, diagnostics: &mut Vec<Diagnostic>| {
        diagnostics.push(Diagnostic {
            file: path.to_string(),
            line: SourceFile::lineno(line),
            rule: "malformed-allow".to_string(),
            message,
        });
    };
    let Some(args) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.rfind(')').map(|end| &r[..end]))
    else {
        malformed(
            format!("unparsable annotation `{rest}`: expected `allow(<rule>, reason = \"...\")`"),
            diagnostics,
        );
        return;
    };
    let (rule, reason) = match args.split_once(',') {
        Some((rule, reason)) => (rule.trim(), reason.trim()),
        None => (args.trim(), ""),
    };
    if !RULE_NAMES.contains(&rule) {
        malformed(
            format!(
                "unknown rule `{rule}` in allow annotation (known rules: {})",
                RULE_NAMES.join(", ")
            ),
            diagnostics,
        );
        return;
    }
    let documented = reason
        .strip_prefix("reason")
        .map(|r| r.trim_start().trim_start_matches('='))
        .map(|r| r.trim().trim_matches('"'))
        .is_some_and(|r| !r.is_empty());
    if !documented {
        malformed(
            format!("allow({rule}) without a reason: write `allow({rule}, reason = \"...\")`"),
            diagnostics,
        );
        return;
    }
    allows.push(Allow {
        line,
        rule: rule.to_string(),
    });
}

/// Byte offsets of word-boundary occurrences of identifier `name` in `code`.
pub fn ident_occurrences(code: &str, name: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut found = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(name) {
        let start = from + pos;
        let end = start + name.len();
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let after_ok = end == bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            found.push(start);
        }
        from = start + name.len().max(1);
    }
    found
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_separates_code_comments_and_strings() {
        let src = "let x = \"SIGFIM_X\"; // trailing\nlet y = 1; /* block */ let z = 2;\n";
        let lines = lex(src);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].code, "let x = \"\"; ");
        assert_eq!(lines[0].strings, vec!["SIGFIM_X".to_string()]);
        assert_eq!(lines[0].comment, " trailing");
        assert_eq!(lines[1].code, "let y = 1;  let z = 2;");
        assert_eq!(lines[1].comment, " block ");
    }

    #[test]
    fn lexer_handles_raw_strings_chars_and_lifetimes() {
        let src = "let s = r#\"un\"safe\"#; let c = '{'; fn f<'a>(x: &'a str) {}\n";
        let lines = lex(src);
        assert_eq!(lines[0].strings, vec!["un\"safe".to_string()]);
        assert!(!lines[0].code.contains("unsafe"));
        // The char-literal brace must not disturb brace tracking, and the
        // lifetime must survive as code.
        assert!(lines[0].code.contains("' '"));
        assert!(lines[0].code.contains("<'a>"));
    }

    #[test]
    fn lexer_keeps_line_numbers_across_string_continuations() {
        // A `\` at end of line inside a string must not swallow the newline —
        // that would shift every later diagnostic's line number.
        let src = "let s = \"first \\\n    second\";\nlet t = 1;\n";
        let lines = lex(src);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[2].code, "let t = 1;");
    }

    #[test]
    fn structure_finds_mod_spans_and_test_regions() {
        let src = "mod outer {\n    fn f() {}\n    #[cfg(test)]\n    mod tests {\n        fn t() {}\n    }\n}\n";
        let file = scan_source("x.rs", src);
        let names: Vec<&str> = file.mods.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["outer", "tests"]);
        assert_eq!((file.mods[1].start, file.mods[1].end), (3, 5));
        assert!(!file.test_mask[1]);
        assert!(file.test_mask[4]);
    }

    #[test]
    fn allow_annotations_parse_and_malformed_ones_report() {
        let src = "\
// sigfim-lint: allow(lock-hygiene, reason = \"documented\")
let a = 1;
// sigfim-lint: allow(lock-hygiene)
// sigfim-lint: allow(no-such-rule, reason = \"x\")
// sigfim-lint: disable(lock-hygiene)
";
        let file = scan_source("x.rs", src);
        assert_eq!(file.allows.len(), 1);
        assert!(file.allowed("lock-hygiene", 0));
        assert!(file.allowed("lock-hygiene", 2));
        assert!(!file.allowed("lock-hygiene", 3));
        assert!(!file.allowed("nondet-iteration", 0));
        assert_eq!(file.scan_diagnostics.len(), 3);
        assert!(file.scan_diagnostics[0]
            .message
            .contains("without a reason"));
        assert!(file.scan_diagnostics[1].message.contains("unknown rule"));
        assert!(file.scan_diagnostics[2].message.contains("unparsable"));
    }

    #[test]
    fn ident_occurrences_respect_word_boundaries() {
        assert_eq!(
            ident_occurrences("foo foo_bar afoo foo", "foo"),
            vec![0, 17]
        );
        assert!(ident_occurrences("xyz", "foo").is_empty());
    }
}

//! Diagnostic types and the text / JSON output formats.
//!
//! The text format is one `file:line: rule: message` per line (greppable,
//! editor-clickable). The JSON format is a versioned envelope so pre-commit
//! hooks and bots can consume diagnostics without scraping text; it
//! round-trips through serde (see the schema test in `tests/fixtures.rs`).

use serde::{Deserialize, Serialize};

/// One finding, ready to print or serialize.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Rule name (one of [`crate::rules::RULE_NAMES`] or `malformed-allow`).
    pub rule: String,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Schema version of [`JsonReport`]; bump on incompatible shape changes.
pub const JSON_SCHEMA_VERSION: u32 = 1;

/// The `--json` output envelope.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JsonReport {
    /// [`JSON_SCHEMA_VERSION`].
    pub schema_version: u32,
    pub files_scanned: usize,
    pub diagnostics: Vec<Diagnostic>,
}

impl JsonReport {
    pub fn new(files_scanned: usize, diagnostics: Vec<Diagnostic>) -> Self {
        JsonReport {
            schema_version: JSON_SCHEMA_VERSION,
            files_scanned,
            diagnostics,
        }
    }

    /// Serialize for machine consumers.
    ///
    /// # Panics
    ///
    /// Never in practice: every field is a plain string or integer.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }
}

//! Criterion benchmark of one complete table row: the full Table-3 pipeline
//! (stand-in generation → Algorithm 1 → Procedure 2) for a benchmark stand-in at a
//! small scale. This is the number to watch when optimizing the experiment harness
//! itself; the real tables are produced by the `table*` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use sigfim_core::SignificanceAnalyzer;
use sigfim_datasets::benchmarks::BenchmarkDataset;

fn bench_table3_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables/table3_row");
    group.sample_size(10);
    // The two smallest benchmarks at aggressive down-scaling keep a row under a
    // second while exercising exactly the code path the table binary runs.
    for (bench, scale) in [
        (BenchmarkDataset::Bms1, 64.0),
        (BenchmarkDataset::Bms2, 64.0),
    ] {
        let mut rng = StdRng::seed_from_u64(13);
        let dataset = bench
            .sample_standin(scale, &mut rng)
            .expect("stand-in generation");
        group.bench_with_input(
            BenchmarkId::new("k2", bench.name()),
            &dataset,
            |b, dataset| {
                b.iter(|| {
                    black_box(
                        SignificanceAnalyzer::new(2)
                            .with_replicates(16)
                            .with_seed(5)
                            .with_procedure1(false)
                            .analyze(black_box(dataset))
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_standin_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables/standin_generation");
    group.sample_size(10);
    for bench in BenchmarkDataset::ALL {
        let scale = 64.0;
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name()),
            &bench,
            |b, bench| {
                let mut rng = StdRng::seed_from_u64(17);
                b.iter(|| black_box(bench.sample_standin(scale, &mut rng).unwrap()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table3_row, bench_standin_generation);
criterion_main!(benches);

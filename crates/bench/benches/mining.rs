//! Criterion benchmarks of the frequent-itemset miners: Apriori vs Eclat vs
//! FP-Growth on the access pattern the paper's procedures generate (fixed itemset
//! size, high support threshold), plus a counting-strategy ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use sigfim_datasets::random::QuestConfig;
use sigfim_datasets::transaction::TransactionDataset;
use sigfim_mining::apriori::{Apriori, CountingStrategy};
use sigfim_mining::miner::{KItemsetMiner, MinerKind};

fn quest_dataset(transactions: usize, items: u32) -> TransactionDataset {
    let config = QuestConfig {
        num_items: items,
        num_transactions: transactions,
        avg_transaction_len: 8.0,
        num_patterns: 40,
        avg_pattern_len: 4.0,
        corruption: 0.25,
    };
    let mut rng = StdRng::seed_from_u64(42);
    config
        .generate(&mut rng)
        .expect("valid Quest configuration")
        .0
}

fn bench_miners(c: &mut Criterion) {
    let dataset = quest_dataset(4_000, 300);

    let mut group = c.benchmark_group("miners/k2_at_1pct");
    let threshold = (dataset.num_transactions() / 100) as u64;
    for kind in [MinerKind::Apriori, MinerKind::Eclat, MinerKind::FpGrowth] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, kind| b.iter(|| kind.mine_k(black_box(&dataset), 2, threshold).unwrap()),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("miners/k3_at_0.5pct");
    let threshold = (dataset.num_transactions() / 200).max(2) as u64;
    for kind in [MinerKind::Apriori, MinerKind::Eclat, MinerKind::FpGrowth] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, kind| b.iter(|| kind.mine_k(black_box(&dataset), 3, threshold).unwrap()),
        );
    }
    group.finish();
}

fn bench_counting_strategies(c: &mut Criterion) {
    let dataset = quest_dataset(4_000, 300);
    let threshold = (dataset.num_transactions() / 100) as u64;
    let mut group = c.benchmark_group("apriori/counting_strategy");
    for (label, strategy) in [
        ("auto", None),
        ("vertical", Some(CountingStrategy::Vertical)),
        ("horizontal", Some(CountingStrategy::Horizontal)),
    ] {
        let miner = Apriori {
            prune: true,
            force_strategy: strategy,
        };
        group.bench_function(label, |b| {
            b.iter(|| miner.mine_k(black_box(&dataset), 2, threshold).unwrap())
        });
    }
    group.finish();
}

fn bench_dataset_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("apriori/transaction_scaling");
    group.sample_size(20);
    for transactions in [1_000usize, 4_000, 16_000] {
        let dataset = quest_dataset(transactions, 300);
        let threshold = (transactions / 100) as u64;
        group.bench_with_input(
            BenchmarkId::from_parameter(transactions),
            &dataset,
            |b, dataset| {
                b.iter(|| {
                    Apriori::default()
                        .mine_k(black_box(dataset), 2, threshold)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_miners,
    bench_counting_strategies,
    bench_dataset_scaling
);
criterion_main!(benches);

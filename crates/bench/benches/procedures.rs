//! Criterion benchmarks of the two significance procedures and of the end-to-end
//! analyzer, on planted datasets sized so one iteration stays in the tens of
//! milliseconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use sigfim_core::lambda::MonteCarloLambda;
use sigfim_core::procedure1::Procedure1;
use sigfim_core::procedure2::Procedure2;
use sigfim_core::SignificanceAnalyzer;
use sigfim_datasets::random::{BernoulliModel, PlantedConfig, PlantedModel, PlantedPattern};
use sigfim_datasets::transaction::TransactionDataset;

fn planted_dataset(transactions: usize, items: usize) -> TransactionDataset {
    let background = BernoulliModel::new(transactions, vec![0.03; items]).unwrap();
    let model = PlantedModel::new(PlantedConfig {
        background,
        patterns: vec![
            PlantedPattern::new(vec![1, 2], transactions / 10).unwrap(),
            PlantedPattern::new(vec![5, 9], transactions / 12).unwrap(),
            PlantedPattern::new(vec![11, 12, 13], transactions / 15).unwrap(),
        ],
    })
    .unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    model.sample(&mut rng)
}

fn bench_procedure1(c: &mut Criterion) {
    let mut group = c.benchmark_group("procedure1");
    for transactions in [1_000usize, 4_000] {
        let dataset = planted_dataset(transactions, 60);
        // Mine at a floor low enough to test a few hundred itemsets.
        let s_min = (transactions / 100) as u64;
        group.bench_with_input(
            BenchmarkId::from_parameter(transactions),
            &dataset,
            |b, dataset| {
                b.iter(|| black_box(Procedure1::new(2).run(black_box(dataset), s_min).unwrap()))
            },
        );
    }
    group.finish();
}

fn bench_procedure2(c: &mut Criterion) {
    let mut group = c.benchmark_group("procedure2");
    for transactions in [1_000usize, 4_000] {
        let dataset = planted_dataset(transactions, 60);
        let s_min = (transactions / 100) as u64;
        // A plausible lambda table around the threshold.
        let lambda = MonteCarloLambda::new(
            s_min,
            vec![2.0, 1.0, 0.5, 0.2, 0.08, 0.03, 0.01, 0.004, 0.001, 0.0],
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(transactions),
            &dataset,
            |b, dataset| {
                b.iter(|| {
                    black_box(
                        Procedure2::new(2)
                            .run(black_box(dataset), s_min, &lambda)
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_end_to_end_analyzer(c: &mut Criterion) {
    // The full pipeline: Algorithm 1 (with a modest replicate count) + Procedure 2
    // + the Procedure 1 baseline.
    let mut group = c.benchmark_group("analyzer/end_to_end");
    group.sample_size(10);
    let dataset = planted_dataset(1_000, 40);
    for replicates in [16usize, 48] {
        group.bench_with_input(
            BenchmarkId::from_parameter(replicates),
            &replicates,
            |b, &replicates| {
                b.iter(|| {
                    black_box(
                        SignificanceAnalyzer::new(2)
                            .with_replicates(replicates)
                            .with_seed(3)
                            .analyze(black_box(&dataset))
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_procedure1,
    bench_procedure2,
    bench_end_to_end_analyzer
);
criterion_main!(benches);

//! Criterion benchmarks of the Chen–Stein machinery: exact bound evaluation over an
//! explicit universe, the closed-form Theorem 2/3 bounds, and the two λ estimators
//! (pruned exact enumeration vs Monte-Carlo table lookup) — the ablation called out
//! in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use sigfim_core::chen_stein::{s_min_theorem3, theorem2_bounds, theorem3_bounds, ExactChenStein};
use sigfim_core::lambda::{ExactLambda, LambdaEstimator};
use sigfim_core::montecarlo::FindPoissonThreshold;
use sigfim_datasets::benchmarks::BenchmarkDataset;
use sigfim_datasets::random::BernoulliModel;

fn bench_exact_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("chen_stein/exact");
    for n in [8usize, 16, 24] {
        let freqs: Vec<f64> = (0..n).map(|i| 0.3 / (i as f64 + 1.0).sqrt()).collect();
        let cs = ExactChenStein::new(&freqs, 1_000, 2).unwrap();
        group.bench_with_input(BenchmarkId::new("b1_b2_at_s", n), &cs, |b, cs| {
            b.iter(|| black_box(cs.bounds(black_box(12))))
        });
    }
    group.finish();
}

fn bench_closed_form_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("chen_stein/closed_form");
    group.bench_function("theorem2_homogeneous", |b| {
        b.iter(|| black_box(theorem2_bounds(1_000, 100_000, 3, 20, 0.001).unwrap()))
    });
    let spec = BenchmarkDataset::Bms1.spec();
    let freqs = spec.frequencies().unwrap();
    group.bench_function("theorem3_bms1_profile_single_eval", |b| {
        b.iter(|| {
            black_box(
                theorem3_bounds(black_box(&freqs), spec.num_transactions as u64, 2, 600).unwrap(),
            )
        })
    });
    group.sample_size(10);
    group.bench_function("theorem3_bms1_s_min_search", |b| {
        b.iter(|| {
            black_box(
                s_min_theorem3(black_box(&freqs), spec.num_transactions as u64, 2, 0.01).unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_lambda_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("lambda");
    // Exact pruned enumeration over a Bms1-like profile.
    let spec = BenchmarkDataset::Bms1.spec().scaled(8.0).unwrap();
    let freqs = spec.frequencies().unwrap();
    let exact = ExactLambda::new(&freqs, spec.num_transactions as u64, 2, 1e-12).unwrap();
    group.bench_function("exact_pruned_bms1_k2", |b| {
        b.iter(|| black_box(ExactLambda::lambda(&exact, black_box(40))))
    });

    // Monte-Carlo table lookup (the estimator Procedure 2 actually uses).
    let model = BernoulliModel::new(400, vec![0.1; 12]).unwrap();
    let algo = FindPoissonThreshold {
        replicates: 64,
        ..FindPoissonThreshold::new(2)
    };
    let mut rng = StdRng::seed_from_u64(9);
    let estimate = algo.run(&model, &mut rng).unwrap();
    let table = estimate.lambda_estimator();
    group.bench_function("monte_carlo_table_lookup", |b| {
        b.iter(|| black_box(table.lambda(black_box(estimate.s_min + 2))))
    });
    group.finish();
}

fn bench_algorithm1(c: &mut Criterion) {
    // The full Algorithm 1 run (dataset generation + mining + bound estimation) on a
    // small null model, as a function of the replicate count.
    let mut group = c.benchmark_group("algorithm1/find_poisson_threshold");
    group.sample_size(10);
    let model = BernoulliModel::new(500, vec![0.08; 20]).unwrap();
    for replicates in [16usize, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(replicates),
            &replicates,
            |b, &replicates| {
                let algo = FindPoissonThreshold {
                    replicates,
                    ..FindPoissonThreshold::new(2)
                };
                let mut rng = StdRng::seed_from_u64(11);
                b.iter(|| black_box(algo.run(&model, &mut rng).unwrap()))
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_bounds,
    bench_closed_form_bounds,
    bench_lambda_estimators,
    bench_algorithm1
);
criterion_main!(benches);

//! Benchmarks of the deterministic parallel execution layer: the Monte-Carlo
//! replicate loop of Algorithm 1 (the paper's dominant cost) under the
//! sequential policy vs. rayon pools of increasing size, at the acceptance
//! configuration Δ = 40.
//!
//! Because every replicate draws from its own `(seed, index)` RNG substream,
//! all policies produce bit-identical `ThresholdEstimate`s — these benchmarks
//! measure pure wall-clock scaling, and assert the equality while doing so.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim_core::montecarlo::FindPoissonThreshold;
use sigfim_core::ExecutionPolicy;
use sigfim_datasets::random::BernoulliModel;

/// The workload of the acceptance criterion: Δ = 40 replicates over a dataset
/// sized so one replicate costs real work (generation + Eclat mining).
fn model() -> BernoulliModel {
    BernoulliModel::new(2_000, vec![0.05; 60]).expect("valid frequencies")
}

fn algorithm(policy: ExecutionPolicy) -> FindPoissonThreshold {
    FindPoissonThreshold {
        replicates: 40,
        policy,
        ..FindPoissonThreshold::new(2)
    }
}

fn bench_replicate_loop(c: &mut Criterion) {
    let model = model();

    // The parallel estimate must be bit-identical to the sequential one.
    let reference = {
        let mut rng = StdRng::seed_from_u64(7);
        algorithm(ExecutionPolicy::Sequential)
            .run(&model, &mut rng)
            .unwrap()
    };

    let mut group = c.benchmark_group("montecarlo/delta40");
    group.sample_size(10);
    for (label, policy) in [
        ("sequential", ExecutionPolicy::Sequential),
        ("rayon2", ExecutionPolicy::rayon(2)),
        ("rayon4", ExecutionPolicy::rayon(4)),
        ("rayon0_all_cores", ExecutionPolicy::rayon(0)),
    ] {
        let algo = algorithm(policy);
        group.bench_with_input(BenchmarkId::from_parameter(label), &algo, |b, algo| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                let estimate = algo.run(&model, &mut rng).unwrap();
                assert_eq!(estimate, reference, "policies must be bit-identical");
                estimate
            })
        });
    }
    group.finish();
}

fn bench_map_indexed_overhead(c: &mut Criterion) {
    // The raw fan-out primitive on a trivially cheap task: measures scheduling
    // overhead, the floor below which parallelism cannot pay off.
    let items: Vec<u64> = (0..4096).collect();
    let mut group = c.benchmark_group("exec/map_indexed_4096_cheap_tasks");
    group.sample_size(20);
    for (label, policy) in [
        ("sequential", ExecutionPolicy::Sequential),
        ("rayon4", ExecutionPolicy::rayon(4)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, policy| {
            b.iter(|| policy.map_indexed(&items, |i, &x| x.wrapping_mul(i as u64 | 1)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replicate_loop, bench_map_indexed_overhead);
criterion_main!(benches);

//! Criterion benchmarks of the statistical substrate: the tail probabilities and
//! multiple-testing corrections sitting in the inner loops of Procedures 1 and 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sigfim_stats::multiple_testing::{benjamini_hochberg, benjamini_yekutieli, bonferroni};
use sigfim_stats::special::{ln_choose, reg_inc_beta, reg_upper_gamma};
use sigfim_stats::{Binomial, Poisson};

fn bench_binomial_tail(c: &mut Criterion) {
    // The Procedure-1 p-value: Pr[Bin(t, f_X) >= s] for Table-1-sized t and tiny f.
    let mut group = c.benchmark_group("binomial/sf");
    for (label, t, p, s) in [
        ("retail_pair", 88_162u64, 1e-6f64, 848u64),
        ("kosarak_pair", 990_002, 1e-7, 21_144),
        ("bms1_pair", 59_602, 1e-4, 276),
    ] {
        let dist = Binomial::new(t, p).unwrap();
        group.bench_function(label, |b| b.iter(|| black_box(dist.sf(black_box(s)))));
    }
    group.finish();
}

fn bench_poisson_tail(c: &mut Criterion) {
    // The Procedure-2 p-value: Pr[Poisson(lambda) >= Q].
    let mut group = c.benchmark_group("poisson/sf");
    for (label, lambda, q) in [
        ("small", 0.05f64, 6u64),
        ("unit", 1.0, 12),
        ("large", 50.0, 120),
    ] {
        let dist = Poisson::new(lambda).unwrap();
        group.bench_function(label, |b| b.iter(|| black_box(dist.sf(black_box(q)))));
    }
    group.finish();
}

fn bench_special_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("special");
    group.bench_function("ln_choose_large", |b| {
        b.iter(|| black_box(ln_choose(black_box(990_002), black_box(273_266))))
    });
    group.bench_function("reg_inc_beta", |b| {
        b.iter(|| {
            black_box(reg_inc_beta(black_box(848.0), black_box(87_314.0), black_box(1e-4)).unwrap())
        })
    });
    group.bench_function("reg_upper_gamma", |b| {
        b.iter(|| black_box(reg_upper_gamma(black_box(25.0), black_box(3.5)).unwrap()))
    });
    group.finish();
}

fn bench_multiple_testing(c: &mut Criterion) {
    // Correcting |F_k(s_min)|-many p-values against m = C(n,k) hypotheses, at the
    // sizes Procedure 1 sees on the larger benchmarks.
    let mut group = c.benchmark_group("multiple_testing");
    for size in [100usize, 10_000] {
        let p_values: Vec<f64> = (0..size)
            .map(|i| ((i + 1) as f64 / (size as f64 * 10.0)).powf(1.5))
            .collect();
        let m_total = 1.0e9f64;
        group.bench_with_input(
            BenchmarkId::new("benjamini_yekutieli", size),
            &p_values,
            |b, p| b.iter(|| black_box(benjamini_yekutieli(black_box(p), 0.05, m_total).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("benjamini_hochberg", size),
            &p_values,
            |b, p| b.iter(|| black_box(benjamini_hochberg(black_box(p), 0.05, m_total).unwrap())),
        );
        group.bench_with_input(BenchmarkId::new("bonferroni", size), &p_values, |b, p| {
            b.iter(|| black_box(bonferroni(black_box(p), 0.05, m_total).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_binomial_tail,
    bench_poisson_tail,
    bench_special_functions,
    bench_multiple_testing
);
criterion_main!(benches);

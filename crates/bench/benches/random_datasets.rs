//! Criterion benchmarks of the random-dataset generators: the paper's Bernoulli
//! null model (the inner loop of Algorithm 1), the planted-pattern generator, the
//! Quest generator and swap randomization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use sigfim_datasets::benchmarks::BenchmarkDataset;
use sigfim_datasets::random::{swap_randomize, BernoulliModel, QuestConfig};

fn bench_bernoulli_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("null_model/sample");
    group.sample_size(20);
    for bench in [BenchmarkDataset::Bms1, BenchmarkDataset::Retail] {
        let model = bench.null_model(32.0).expect("null model");
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name()),
            &model,
            |b, model: &BernoulliModel| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| black_box(model.sample(&mut rng)))
            },
        );
    }
    group.finish();
}

fn bench_planted_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("planted_model/sample");
    group.sample_size(20);
    for bench in [BenchmarkDataset::Bms1, BenchmarkDataset::Retail] {
        let model = bench.planted_model(32.0).expect("planted model");
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name()),
            &model,
            |b, model| {
                let mut rng = StdRng::seed_from_u64(2);
                b.iter(|| black_box(model.sample(&mut rng)))
            },
        );
    }
    group.finish();
}

fn bench_quest_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("quest/generate");
    group.sample_size(20);
    for transactions in [2_000usize, 8_000] {
        let config = QuestConfig {
            num_items: 500,
            num_transactions: transactions,
            avg_transaction_len: 8.0,
            num_patterns: 50,
            avg_pattern_len: 4.0,
            corruption: 0.25,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(transactions),
            &config,
            |b, config| {
                let mut rng = StdRng::seed_from_u64(3);
                b.iter(|| black_box(config.generate(&mut rng).unwrap()))
            },
        );
    }
    group.finish();
}

fn bench_swap_randomization(c: &mut Criterion) {
    let mut group = c.benchmark_group("swap_randomization");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(4);
    let dataset = BenchmarkDataset::Bms1
        .sample_standin(32.0, &mut rng)
        .expect("stand-in");
    let swaps = dataset.num_entries() * 2;
    group.bench_function("bms1_standin_2x_entries", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| black_box(swap_randomize(&dataset, swaps, &mut rng)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bernoulli_sampling,
    bench_planted_sampling,
    bench_quest_generator,
    bench_swap_randomization
);
criterion_main!(benches);

//! Tid-list vs bitmap support counting across density × k.
//!
//! Measures the two vertical counting backends (plus the bitmap batch path
//! that skips the per-batch bitmap build) on Bernoulli datasets of increasing
//! density, counting a fixed candidate batch of the top frequent k-itemsets.
//! This is the workload of Algorithm 1's support-counting of the pool `W` and
//! of `Q_{k,s}` profiling; the expectation is parity in the sparse regime and
//! a multiple-× bitmap win in the dense one (a tid-list walk touches
//! `density · t` ids per item, the bitmap always `⌈t/64⌉` words).
//!
//! The null-model replicate loop is measured too: CSR materialization vs
//! bit-sliced sampling into a reusable scratch bitmap plus bitset-Eclat
//! mining, which is the Monte-Carlo hot path of `FindPoissonThreshold`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use sigfim_datasets::bitmap::{with_bitmap_scratch, BitmapDataset};
use sigfim_datasets::random::BernoulliModel;
use sigfim_datasets::transaction::{ItemId, TransactionDataset};
use sigfim_mining::counting::{
    count_candidates_bitmap, BitmapCounter, SupportCounter, TidListCounter,
};
use sigfim_mining::eclat::Eclat;
use sigfim_mining::miner::KItemsetMiner;

const TRANSACTIONS: usize = 8_000;
const ITEMS: usize = 60;
const CANDIDATES: usize = 256;

/// Densities spanning the auto heuristic's break-even point of 1/64.
const DENSITIES: [f64; 3] = [0.005, 0.05, 0.25];

fn dataset_at_density(density: f64) -> TransactionDataset {
    let model = BernoulliModel::new(TRANSACTIONS, vec![density; ITEMS]).unwrap();
    model.sample(&mut StdRng::seed_from_u64(7))
}

/// The `CANDIDATES` lexicographically-first k-itemsets over the most frequent
/// items — a stand-in for the pool `W` of Algorithm 1.
fn candidate_batch(dataset: &TransactionDataset, k: usize) -> Vec<Vec<ItemId>> {
    let mut by_support: Vec<(u64, ItemId)> = dataset
        .item_supports()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (s, i as ItemId))
        .collect();
    by_support.sort_unstable_by(|a, b| b.cmp(a));
    let top: Vec<ItemId> = by_support.iter().map(|&(_, i)| i).take(ITEMS).collect();
    let mut candidates = Vec::with_capacity(CANDIDATES);
    sigfim_mining::itemset::for_each_k_subset(&top, k, |subset| {
        if candidates.len() < CANDIDATES {
            let mut set = subset.to_vec();
            set.sort_unstable();
            candidates.push(set);
        }
    });
    candidates
}

fn bench_counting_backends(c: &mut Criterion) {
    for density in DENSITIES {
        let dataset = dataset_at_density(density);
        let bitmap = BitmapDataset::from_dataset(&dataset);
        for k in [2usize, 3] {
            let candidates = candidate_batch(&dataset, k);
            let mut group = c.benchmark_group(format!("counting_backends/density_{density}/k{k}"));
            group.bench_with_input(
                BenchmarkId::from_parameter("tid-list"),
                &candidates,
                |b, candidates| {
                    b.iter(|| TidListCounter.count(black_box(&dataset), black_box(candidates)))
                },
            );
            // The SupportCounter entry point, paying the bitmap build per batch…
            group.bench_with_input(
                BenchmarkId::from_parameter("bitmap"),
                &candidates,
                |b, candidates| {
                    b.iter(|| BitmapCounter.count(black_box(&dataset), black_box(candidates)))
                },
            );
            // …and the pre-built-columns path Procedure 2 and the replicate
            // loop actually use.
            group.bench_with_input(
                BenchmarkId::from_parameter("bitmap-prebuilt"),
                &candidates,
                |b, candidates| {
                    b.iter(|| count_candidates_bitmap(black_box(&bitmap), black_box(candidates)))
                },
            );
            group.finish();
        }
    }
}

fn bench_replicate_generation(c: &mut Criterion) {
    for density in DENSITIES {
        let model = BernoulliModel::new(TRANSACTIONS, vec![density; ITEMS]).unwrap();
        let floor = ((TRANSACTIONS as f64 * density * density).floor() as u64).max(1);
        let mut group = c.benchmark_group(format!("null_replicate/density_{density}"));
        group.bench_function("csr_sample_and_eclat", |b| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let dataset = model.sample(&mut rng);
                Eclat.mine_k(black_box(&dataset), 2, floor).unwrap().len()
            })
        });
        group.bench_function("bitmap_scratch_and_bitset_eclat", |b| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                with_bitmap_scratch(|scratch| {
                    model.sample_into_bitmap(&mut rng, scratch);
                    Eclat
                        .mine_k_bitmap(black_box(scratch), 2, floor)
                        .unwrap()
                        .len()
                })
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_counting_backends, bench_replicate_generation);
criterion_main!(benches);

//! Tid-list vs bitmap support counting across density × k.
//!
//! Measures the two vertical counting backends (plus the bitmap batch path
//! that skips the per-batch bitmap build) on Bernoulli datasets of increasing
//! density, counting a fixed candidate batch of the top frequent k-itemsets.
//! This is the workload of Algorithm 1's support-counting of the pool `W` and
//! of `Q_{k,s}` profiling; the expectation is parity in the sparse regime and
//! a multiple-× bitmap win in the dense one (a tid-list walk touches
//! `density · t` ids per item, the bitmap always `⌈t/64⌉` words).
//!
//! The null-model replicate loop is measured too: CSR materialization vs
//! bit-sliced sampling into a reusable scratch bitmap plus bitset-Eclat
//! mining, which is the Monte-Carlo hot path of `FindPoissonThreshold`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use sigfim_datasets::bitmap::{with_bitmap_scratch, BitmapDataset};
use sigfim_datasets::random::BernoulliModel;
use sigfim_datasets::transaction::{ItemId, TransactionDataset};
use sigfim_mining::counting::{
    count_candidates_bitmap, BitmapCounter, SupportCounter, TidListCounter,
};
use sigfim_mining::eclat::Eclat;
use sigfim_mining::miner::KItemsetMiner;

const TRANSACTIONS: usize = 8_000;
const ITEMS: usize = 60;
const CANDIDATES: usize = 256;

/// Densities spanning the auto heuristic's break-even point of 1/64.
const DENSITIES: [f64; 3] = [0.005, 0.05, 0.25];

fn dataset_at_density(density: f64) -> TransactionDataset {
    let model = BernoulliModel::new(TRANSACTIONS, vec![density; ITEMS]).unwrap();
    model.sample(&mut StdRng::seed_from_u64(7))
}

/// The `CANDIDATES` lexicographically-first k-itemsets over the most frequent
/// items — a stand-in for the pool `W` of Algorithm 1.
fn candidate_batch(dataset: &TransactionDataset, k: usize) -> Vec<Vec<ItemId>> {
    let mut by_support: Vec<(u64, ItemId)> = dataset
        .item_supports()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (s, i as ItemId))
        .collect();
    by_support.sort_unstable_by(|a, b| b.cmp(a));
    let top: Vec<ItemId> = by_support.iter().map(|&(_, i)| i).take(ITEMS).collect();
    let mut candidates = Vec::with_capacity(CANDIDATES);
    sigfim_mining::itemset::for_each_k_subset(&top, k, |subset| {
        if candidates.len() < CANDIDATES {
            let mut set = subset.to_vec();
            set.sort_unstable();
            candidates.push(set);
        }
    });
    candidates
}

fn bench_counting_backends(c: &mut Criterion) {
    for density in DENSITIES {
        let dataset = dataset_at_density(density);
        let bitmap = BitmapDataset::from_dataset(&dataset);
        for k in [2usize, 3] {
            let candidates = candidate_batch(&dataset, k);
            let mut group = c.benchmark_group(format!("counting_backends/density_{density}/k{k}"));
            group.bench_with_input(
                BenchmarkId::from_parameter("tid-list"),
                &candidates,
                |b, candidates| {
                    b.iter(|| TidListCounter.count(black_box(&dataset), black_box(candidates)))
                },
            );
            // The SupportCounter entry point, paying the bitmap build per batch…
            group.bench_with_input(
                BenchmarkId::from_parameter("bitmap"),
                &candidates,
                |b, candidates| {
                    b.iter(|| BitmapCounter.count(black_box(&dataset), black_box(candidates)))
                },
            );
            // …and the pre-built-columns path Procedure 2 and the replicate
            // loop actually use.
            group.bench_with_input(
                BenchmarkId::from_parameter("bitmap-prebuilt"),
                &candidates,
                |b, candidates| {
                    b.iter(|| count_candidates_bitmap(black_box(&bitmap), black_box(candidates)))
                },
            );
            group.finish();
        }
    }
}

fn bench_replicate_generation(c: &mut Criterion) {
    for density in DENSITIES {
        let model = BernoulliModel::new(TRANSACTIONS, vec![density; ITEMS]).unwrap();
        let floor = ((TRANSACTIONS as f64 * density * density).floor() as u64).max(1);
        let mut group = c.benchmark_group(format!("null_replicate/density_{density}"));
        group.bench_function("csr_sample_and_eclat", |b| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let dataset = model.sample(&mut rng);
                Eclat.mine_k(black_box(&dataset), 2, floor).unwrap().len()
            })
        });
        group.bench_function("bitmap_scratch_and_bitset_eclat", |b| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                with_bitmap_scratch(|scratch| {
                    model.sample_into_bitmap(&mut rng, scratch);
                    Eclat
                        .mine_k_bitmap(black_box(scratch), 2, floor)
                        .unwrap()
                        .len()
                })
            })
        });
        group.finish();
    }
}

/// Apriori's *per-level* strategy choice, before vs after bitmap-aware levels.
///
/// Before this change `CountingStrategy::for_density` (the per-level heuristic
/// inside a running miner) only chose horizontal vs tid-list, so dense
/// `mine_k` calls outside the Eclat path walked `density · t` ids per
/// candidate item even when a word-parallel bitmap would touch 64× less
/// memory. Now the heuristic adds the bitmap as a third option — charged the
/// one-time column build at the first level that wants it, build-free at
/// every later level — so the pre-change behaviour is exactly the
/// `force=Vertical` arm below and the new behaviour is the `auto` arm.
///
/// Measured on the 8 000 × 60 Bernoulli matrices of this file (single-core
/// container, release build, wall-clock medians):
///
/// * density 0.25, k = 3, floor 420: auto ≈ 228 ms vs forced-vertical
///   ≈ 1.38 s (~6.1×) — each candidate item saves a ~2 000-id tid-list walk
///   for 125 words of AND + popcount.
/// * density 0.05, k = 3, floor 64: auto ≈ 2.5 ms vs forced-vertical
///   ≈ 9.5 ms (~3.8×) — mid-density, the build still amortizes across the
///   level's candidate batch.
/// * density 0.005 (sparse): the heuristic keeps tid-lists; parity.
fn bench_apriori_level_counting(c: &mut Criterion) {
    use sigfim_mining::apriori::{Apriori, CountingStrategy};
    for (density, floor) in [(0.05, 64), (0.25, 420)] {
        let dataset = dataset_at_density(density);
        let mut group = c.benchmark_group(format!("apriori_levels/density_{density}"));
        group.bench_function("auto_bitmap_aware", |b| {
            b.iter(|| {
                Apriori::default()
                    .mine_k(black_box(&dataset), 3, floor)
                    .unwrap()
                    .len()
            })
        });
        group.bench_function("forced_vertical_pre_change", |b| {
            let apriori = Apriori {
                force_strategy: Some(CountingStrategy::Vertical),
                prune: true,
            };
            b.iter(|| apriori.mine_k(black_box(&dataset), 3, floor).unwrap().len())
        });
        group.finish();
    }
}

criterion_group!(
    benches,
    bench_counting_backends,
    bench_replicate_generation,
    bench_apriori_level_counting
);
criterion_main!(benches);

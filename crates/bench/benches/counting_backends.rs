//! Tid-list vs bitmap support counting across density × k.
//!
//! Measures the two vertical counting backends (plus the bitmap batch path
//! that skips the per-batch bitmap build) on Bernoulli datasets of increasing
//! density, counting a fixed candidate batch of the top frequent k-itemsets.
//! This is the workload of Algorithm 1's support-counting of the pool `W` and
//! of `Q_{k,s}` profiling; the expectation is parity in the sparse regime and
//! a multiple-× bitmap win in the dense one (a tid-list walk touches
//! `density · t` ids per item, the bitmap always `⌈t/64⌉` words).
//!
//! The null-model replicate loop is measured too: CSR materialization vs
//! bit-sliced sampling into a reusable scratch bitmap plus bitset-Eclat
//! mining, which is the Monte-Carlo hot path of `FindPoissonThreshold`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use sigfim_datasets::bitmap::{with_bitmap_scratch, BitmapDataset};
use sigfim_datasets::kernels::{kernels_for, KernelMode};
use sigfim_datasets::random::BernoulliModel;
use sigfim_datasets::sharded::ShardedBitmapDataset;
use sigfim_datasets::transaction::{ItemId, TransactionDataset};
use sigfim_exec::ExecutionPolicy;
use sigfim_mining::counting::{
    count_candidates_bitmap, BitmapCounter, SupportCounter, TidListCounter,
};
use sigfim_mining::eclat::Eclat;
use sigfim_mining::miner::KItemsetMiner;
use sigfim_mining::sharded::count_candidates_sharded;

const TRANSACTIONS: usize = 8_000;
const ITEMS: usize = 60;
const CANDIDATES: usize = 256;

/// Densities spanning the auto heuristic's break-even point of 1/64.
const DENSITIES: [f64; 3] = [0.005, 0.05, 0.25];

fn dataset_at_density(density: f64) -> TransactionDataset {
    let model = BernoulliModel::new(TRANSACTIONS, vec![density; ITEMS]).unwrap();
    model.sample(&mut StdRng::seed_from_u64(7))
}

/// The `CANDIDATES` lexicographically-first k-itemsets over the most frequent
/// items — a stand-in for the pool `W` of Algorithm 1.
fn candidate_batch(dataset: &TransactionDataset, k: usize) -> Vec<Vec<ItemId>> {
    let mut by_support: Vec<(u64, ItemId)> = dataset
        .item_supports()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (s, i as ItemId))
        .collect();
    by_support.sort_unstable_by(|a, b| b.cmp(a));
    let top: Vec<ItemId> = by_support.iter().map(|&(_, i)| i).take(ITEMS).collect();
    let mut candidates = Vec::with_capacity(CANDIDATES);
    sigfim_mining::itemset::for_each_k_subset(&top, k, |subset| {
        if candidates.len() < CANDIDATES {
            let mut set = subset.to_vec();
            set.sort_unstable();
            candidates.push(set);
        }
    });
    candidates
}

fn bench_counting_backends(c: &mut Criterion) {
    for density in DENSITIES {
        let dataset = dataset_at_density(density);
        let bitmap = BitmapDataset::from_dataset(&dataset);
        for k in [2usize, 3] {
            let candidates = candidate_batch(&dataset, k);
            let mut group = c.benchmark_group(format!("counting_backends/density_{density}/k{k}"));
            group.bench_with_input(
                BenchmarkId::from_parameter("tid-list"),
                &candidates,
                |b, candidates| {
                    b.iter(|| TidListCounter.count(black_box(&dataset), black_box(candidates)))
                },
            );
            // The SupportCounter entry point, paying the bitmap build per batch…
            group.bench_with_input(
                BenchmarkId::from_parameter("bitmap"),
                &candidates,
                |b, candidates| {
                    b.iter(|| BitmapCounter.count(black_box(&dataset), black_box(candidates)))
                },
            );
            // …and the pre-built-columns path Procedure 2 and the replicate
            // loop actually use.
            group.bench_with_input(
                BenchmarkId::from_parameter("bitmap-prebuilt"),
                &candidates,
                |b, candidates| {
                    b.iter(|| count_candidates_bitmap(black_box(&bitmap), black_box(candidates)))
                },
            );
            group.finish();
        }
    }
}

fn bench_replicate_generation(c: &mut Criterion) {
    for density in DENSITIES {
        let model = BernoulliModel::new(TRANSACTIONS, vec![density; ITEMS]).unwrap();
        let floor = ((TRANSACTIONS as f64 * density * density).floor() as u64).max(1);
        let mut group = c.benchmark_group(format!("null_replicate/density_{density}"));
        group.bench_function("csr_sample_and_eclat", |b| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let dataset = model.sample(&mut rng);
                Eclat.mine_k(black_box(&dataset), 2, floor).unwrap().len()
            })
        });
        group.bench_function("bitmap_scratch_and_bitset_eclat", |b| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                with_bitmap_scratch(|scratch| {
                    model.sample_into_bitmap(&mut rng, scratch);
                    Eclat
                        .mine_k_bitmap(black_box(scratch), 2, floor)
                        .unwrap()
                        .len()
                })
            })
        });
        group.finish();
    }
}

/// Apriori's *per-level* strategy choice, before vs after bitmap-aware levels.
///
/// Before this change `CountingStrategy::for_density` (the per-level heuristic
/// inside a running miner) only chose horizontal vs tid-list, so dense
/// `mine_k` calls outside the Eclat path walked `density · t` ids per
/// candidate item even when a word-parallel bitmap would touch 64× less
/// memory. Now the heuristic adds the bitmap as a third option — charged the
/// one-time column build at the first level that wants it, build-free at
/// every later level — so the pre-change behaviour is exactly the
/// `force=Vertical` arm below and the new behaviour is the `auto` arm.
///
/// Measured on the 8 000 × 60 Bernoulli matrices of this file (single-core
/// container, release build, wall-clock medians):
///
/// * density 0.25, k = 3, floor 420: auto ≈ 228 ms vs forced-vertical
///   ≈ 1.38 s (~6.1×) — each candidate item saves a ~2 000-id tid-list walk
///   for 125 words of AND + popcount.
/// * density 0.05, k = 3, floor 64: auto ≈ 2.5 ms vs forced-vertical
///   ≈ 9.5 ms (~3.8×) — mid-density, the build still amortizes across the
///   level's candidate batch.
/// * density 0.005 (sparse): the heuristic keeps tid-lists; parity.
fn bench_apriori_level_counting(c: &mut Criterion) {
    use sigfim_mining::apriori::{Apriori, CountingStrategy};
    for (density, floor) in [(0.05, 64), (0.25, 420)] {
        let dataset = dataset_at_density(density);
        let mut group = c.benchmark_group(format!("apriori_levels/density_{density}"));
        group.bench_function("auto_bitmap_aware", |b| {
            b.iter(|| {
                Apriori::default()
                    .mine_k(black_box(&dataset), 3, floor)
                    .unwrap()
                    .len()
            })
        });
        group.bench_function("forced_vertical_pre_change", |b| {
            let apriori = Apriori {
                force_strategy: Some(CountingStrategy::Vertical),
                prune: true,
            };
            b.iter(|| apriori.mine_k(black_box(&dataset), 3, floor).unwrap().len())
        });
        group.finish();
    }
}

/// The kernel-dispatch axis: the same AND + popcount workload under each
/// kernel the machine supports, against the forced-scalar baseline (the
/// pre-kernel behaviour — what `SIGFIM_KERNELS=scalar` pins the whole process
/// to).
///
/// The workload is the inner loop of `count_candidates_bitmap` made explicit:
/// for each of the 256 three-item candidates, seed a scratch buffer from the
/// rarest column and `and_count_into` the other two (125 words per column at
/// 8 000 transactions).
///
/// Measured on this container (single-core AVX-512 CPU, release build,
/// wall-clock medians, density 0.25 / k = 3 batch):
///
/// * `scalar` ≈ 72 µs per batch — rustc's baseline x86-64 target has no
///   POPCNT instruction, but LLVM autovectorizes the rolled SWAR loop fairly
///   well already;
/// * `unrolled` ≈ parity with scalar (73 µs; the autovectorizer was already
///   extracting the ILP the manual unroll provides) — kept as the portable
///   `auto` fallback for targets where it is not;
/// * `avx2` ≈ 28 µs (**~2.5× over scalar**) — 256-bit `VPAND` + `PSHUFB`
///   nibble lookup + `VPSADBW`, four words per instruction;
/// * `avx512` ≈ 15.8 µs (**~4.5× over scalar, ~1.8× over avx2**) — 512-bit
///   `VPANDQ` + native `VPOPCNTQ` from the `VPOPCNTDQ` extension, eight words
///   per instruction with no nibble-table emulation.
///
/// The gap widens on the pure-popcount op (`popcount_slice` over the 7 500
/// word matrix): scalar ≈ 5.0 µs, unrolled ≈ 5.2 µs, avx2 ≈ 1.6 µs (~3.2×),
/// avx512 ≈ 0.79 µs (**~6.3× over scalar**).
fn bench_kernel_dispatch(c: &mut Criterion) {
    let dataset = dataset_at_density(0.25);
    let bitmap = BitmapDataset::from_dataset(&dataset);
    let candidates = candidate_batch(&dataset, 3);
    let words = bitmap.words_per_column();
    let all_words: Vec<u64> = (0..ITEMS as ItemId)
        .flat_map(|i| bitmap.column(i).to_vec())
        .collect();
    for mode in [
        KernelMode::Scalar,
        KernelMode::Unrolled,
        KernelMode::Avx2,
        KernelMode::Avx512,
    ] {
        if !mode.is_supported() {
            continue;
        }
        let kernels = kernels_for(mode);
        let mut group = c.benchmark_group(format!("kernels/{mode}"));
        group.bench_function("candidate_batch_and_count_into", |b| {
            let mut scratch = vec![0u64; words];
            b.iter(|| {
                let mut total = 0u64;
                for candidate in &candidates {
                    scratch.copy_from_slice(bitmap.column(candidate[0]));
                    let mut support = kernels.popcount_slice(&scratch);
                    for &item in &candidate[1..] {
                        support = kernels.and_count_into(&mut scratch, bitmap.column(item));
                    }
                    total += support;
                }
                black_box(total)
            })
        });
        group.bench_function("popcount_whole_matrix", |b| {
            b.iter(|| kernels.popcount_slice(black_box(&all_words)))
        });
        group.finish();
    }
}

/// Transaction-sharded counting: the same dense candidate batch counted on
/// the unsharded bitmap vs shard-by-shard (L2-sized shards) at 1, 2 and 4
/// counting workers.
///
/// Measured on this container (single-core, release build, density 0.25,
/// k = 3, 256 candidates, 8 000 transactions, L2-sized shards; wall-clock
/// medians):
///
/// * unsharded bitmap ≈ 36.8 µs; sharded sequential ≈ 33.0 µs — the
///   word-aligned split and fixed-order reduce cost nothing (slightly ahead
///   here because each shard's column set stays cache-resident across the
///   whole candidate batch);
/// * sharded at 2 / 4 rayon workers ≈ 32.6 / 32.5 µs — **this container
///   exposes one core**, so no speedup is measurable locally: the number to
///   take away is parity (fan-out adds no overhead). The parity suites pin
///   bit-identical results at every worker count, and multi-core hosts get
///   the shard-parallel scaling the layout exists for (one dataset's
///   counting pass split across workers, per the roadmap).
fn bench_sharded_counting(c: &mut Criterion) {
    let dataset = dataset_at_density(0.25);
    let bitmap = BitmapDataset::from_dataset(&dataset);
    let sharded = ShardedBitmapDataset::from_dataset(&dataset);
    let candidates = candidate_batch(&dataset, 3);
    let mut group = c.benchmark_group("sharded_counting/density_0.25/k3");
    group.bench_function("bitmap_unsharded", |b| {
        b.iter(|| count_candidates_bitmap(black_box(&bitmap), black_box(&candidates)))
    });
    group.bench_function("sharded_sequential", |b| {
        b.iter(|| {
            count_candidates_sharded(
                black_box(&sharded),
                black_box(&candidates),
                ExecutionPolicy::Sequential,
            )
        })
    });
    for workers in [2usize, 4] {
        group.bench_function(format!("sharded_rayon{workers}"), |b| {
            b.iter(|| {
                count_candidates_sharded(
                    black_box(&sharded),
                    black_box(&candidates),
                    ExecutionPolicy::rayon(workers),
                )
            })
        });
    }
    group.finish();
}

/// Subtree-parallel bitset Eclat on the k = 3 dense profile-mining workload:
/// full `mine_k_bitmap` (floor 1, the `Q_{k,s}` profiling support floor)
/// under sequential Eclat vs `ParallelEclat` at 1, 2 and 8 workers, unsharded
/// and composed with transaction sharding.
///
/// Measured on this container (single-core AVX-512 CPU, release build,
/// density 0.25, 8 000 × 60, ≈ 34 k emitted 3-itemsets, wall-clock minima of
/// 10 samples):
///
/// * sequential `Eclat::mine_k_bitmap` ≈ 1.80 ms; `ParallelEclat` at
///   1 worker ≈ 1.82 ms — **parity**: the Sequential policy arm drains the
///   per-item root frames inline with the identical DFS, so the frame
///   machinery costs ≈ 1 %;
/// * `ParallelEclat` at 2 / 8 rayon workers ≈ 2.7 ms — **this container
///   exposes one core**, so no parallel speedup is physically available and
///   the wall clock instead *sums* both workers' coordination (scoped-thread
///   spawn ≈ 40 µs, multi-threaded allocator arenas for the ~34 k emission
///   allocations, queue mutex traffic and context switches all serialized
///   onto the one core). On multi-core hosts the item-subtree frames are
///   independent by construction and scale with workers; the parity suites
///   pin bit-identical output at every worker count, and the CLI's
///   `--miner auto` only selects the parallel miner when more than one
///   worker is actually available;
/// * sharded `ParallelEclat` at 2 workers ≈ 2.6 ms — the subtree × shard
///   composition (per-shard AND segments, exact per-shard popcounts summed)
///   costs nothing beyond the unsharded fan-out.
fn bench_par_eclat_mining(c: &mut Criterion) {
    use sigfim_mining::par_eclat::ParallelEclat;
    let dataset = dataset_at_density(0.25);
    let bitmap = BitmapDataset::from_dataset(&dataset);
    let sharded = ShardedBitmapDataset::from_dataset(&dataset);
    let floor = 1u64;
    let mut group = c.benchmark_group("par_eclat/density_0.25/k3");
    group.sample_size(10);
    group.bench_function("eclat_sequential", |b| {
        b.iter(|| {
            Eclat
                .mine_k_bitmap(black_box(&bitmap), 3, floor)
                .unwrap()
                .len()
        })
    });
    for workers in [1usize, 2, 8] {
        let miner = ParallelEclat::new(ExecutionPolicy::from_threads(workers));
        group.bench_function(format!("par_eclat_workers{workers}"), |b| {
            b.iter(|| {
                miner
                    .mine_k_bitmap(black_box(&bitmap), 3, floor)
                    .unwrap()
                    .len()
            })
        });
    }
    let miner = ParallelEclat::new(ExecutionPolicy::from_threads(2));
    group.bench_function("par_eclat_sharded_workers2", |b| {
        b.iter(|| {
            miner
                .mine_k_sharded(black_box(&sharded), 3, floor)
                .unwrap()
                .len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_counting_backends,
    bench_replicate_generation,
    bench_apriori_level_counting,
    bench_kernel_dispatch,
    bench_sharded_counting,
    bench_par_eclat_mining
);
criterion_main!(benches);

//! Table 4 of the paper: robustness of Procedure 2 on purely random datasets.
//!
//! For each benchmark configuration, generate `instances` datasets *from the null
//! model itself* and count how often Procedure 2 (falsely) returns a finite
//! threshold `s*`. The paper reports 0 out of 100 everywhere except 2/100 for
//! Pumsb* at k = 2, and in those two cases only one and two itemsets were returned.
//!
//! ```text
//! cargo run -p sigfim-bench --release --bin table4 [-- --full | --instances <n> | --k <list>]
//! ```
//!
//! Each random instance is analyzed as one multi-k engine batch (instances get
//! distinct seeds, so their thresholds are genuinely recomputed per instance).

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim_bench::{rule, ExperimentConfig};
use sigfim_core::engine::{AnalysisEngine, AnalysisRequest};

fn main() {
    let config = ExperimentConfig::from_env();
    let replicates = config.replicates();
    let instances = config.instances();
    println!(
        "Table 4 — Procedure 2 on random instances of the benchmarks (alpha = beta = 0.05, \
         Delta = {replicates}, {instances} instances per configuration)"
    );
    println!();
    println!(
        "{:<14} {:>6} {:>8} {:>18} {:>22}",
        "dataset", "k", "scale", "finite s* count", "max |F_k(s*)| observed"
    );
    println!("{}", rule(74));

    for bench in config.benchmarks() {
        let scale = config.scale_for(bench);
        let model = bench.null_model(scale).expect("null model construction");
        let mut finite = vec![0usize; config.ks.len()];
        let mut max_family = vec![0usize; config.ks.len()];
        for instance in 0..instances {
            let mut rng = StdRng::seed_from_u64(config.seed ^ ((instance as u64) << 24));
            let dataset = model.sample(&mut rng);
            let request = AnalysisRequest::for_ks(config.ks.iter().copied())
                .with_replicates(replicates)
                .with_seed(config.seed ^ (instance as u64))
                .with_baseline(false);
            let mut engine = AnalysisEngine::from_dataset(dataset)
                .expect("non-empty instance")
                .with_backend(config.backend);
            let response = engine.run(&request).expect("analysis runs");
            for (slot, run) in response.runs.iter().enumerate() {
                if run.report.procedure2.s_star.is_some() {
                    finite[slot] += 1;
                    max_family[slot] =
                        max_family[slot].max(run.report.procedure2.num_significant());
                }
            }
        }
        for (slot, &k) in config.ks.iter().enumerate() {
            println!(
                "Random{:<8} {:>6} {:>8} {:>12} / {:<4} {:>22}",
                bench.name(),
                k,
                scale,
                finite[slot],
                instances,
                max_family[slot]
            );
        }
    }
    println!();
    println!(
        "paper (100 instances each): 0 finite thresholds everywhere except RandomPumsb* k=2 (2/100, \
         with only 1 and 2 itemsets returned)"
    );
}

//! Table 5 of the paper: relative effectiveness of Procedure 1 (the
//! Benjamini–Yekutieli baseline) and Procedure 2, both with FDR budget β = 0.05.
//!
//! For each benchmark and k, the table reports `|R|` — the number of k-itemsets the
//! baseline flags as significant among those with support ≥ ŝ_min — and the ratio
//! `r = Q_{k,s*} / |R|`. The paper's headline finding is `r ≥ 1` (often ≫ 1)
//! wherever Procedure 2 finds a finite threshold: testing the family as a whole is
//! more powerful than correcting `C(n,k)` individual hypotheses.
//!
//! ```text
//! cargo run -p sigfim-bench --release --bin table5 [-- --full | --scale <x> | --k <list>]
//! ```
//!
//! Each benchmark runs as one multi-k engine batch with the baseline enabled.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim_bench::{format_threshold, rule, ExperimentConfig};
use sigfim_core::engine::{AnalysisEngine, AnalysisRequest};

fn main() {
    let config = ExperimentConfig::from_env();
    let replicates = config.replicates();
    println!(
        "Table 5 — Procedure 1 vs Procedure 2 on the benchmark stand-ins (beta = 0.05, Delta = {replicates})"
    );
    println!();
    println!(
        "{:<10} {:>6} {:>8} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "dataset", "k", "scale", "s_min", "s*", "Q_{k,s*}", "|R|", "r"
    );
    println!("{}", rule(84));

    let request = AnalysisRequest::for_ks(config.ks.iter().copied())
        .with_replicates(replicates)
        .with_seed(config.seed)
        .with_baseline(true);
    for bench in config.benchmarks() {
        let scale = config.scale_for(bench);
        let mut data_rng = StdRng::seed_from_u64(config.seed);
        let dataset = bench
            .sample_standin(scale, &mut data_rng)
            .expect("stand-in generation");
        let mut engine = AnalysisEngine::from_dataset(dataset)
            .expect("non-empty stand-in")
            .with_backend(config.backend);
        let response = engine.run(&request).expect("analysis runs");
        for run in &response.runs {
            let (s_star, q, _) = run.report.table3_row();
            let (r_size, ratio) = run.report.table5_row().expect("baseline enabled");
            println!(
                "{:<10} {:>6} {:>8} {:>10} {:>10} {:>12} {:>10} {:>10.3}",
                bench.name(),
                run.k,
                scale,
                run.report.threshold.s_min,
                format_threshold(s_star),
                q,
                r_size,
                ratio
            );
        }
    }
    println!();
    println!(
        "paper (full scale), |R| and r for k = 2/3/4: Retail 3,0 / 3,0 / 6,1.0; Kosarak 1,0 / 1,0 / 12,1.0; \
         Bms1 60,0.93 / 64367,4.44 / 219706,122.9; Bms2 429,1.0 / 25906,1.39 / 60927,11.7; \
         Bmspos 2,0 / 23,0.96 / 891,1.0; Pumsb* 29,1.0 / 406,1.0 / 6288,1.001"
    );
}

//! Table 1 of the paper: parameters of the benchmark datasets.
//!
//! Prints, for each benchmark, (a) the published full-scale parameters the stand-in
//! is calibrated to, and (b) the parameters actually measured on a sampled stand-in
//! at the run's scale — the two should agree up to the scale factor on `t` and
//! sampling noise on `m` and the frequency range.
//!
//! ```text
//! cargo run -p sigfim-bench --release --bin table1 [-- --full | --scale <x> | --datasets <list>]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim_bench::{rule, ExperimentConfig};
use sigfim_datasets::summary::DatasetSummary;

fn main() {
    let config = ExperimentConfig::from_env();
    println!("Table 1 — parameters of the benchmark datasets (paper values vs sampled stand-ins)");
    println!();
    println!(
        "{:<10} {:>8} {:>22} {:>7} {:>9}    | {:>6} {:>9} {:>22} {:>7}",
        "dataset", "n", "[fmin ; fmax]", "m", "t", "scale", "t/scale", "measured [fmin;fmax]", "m"
    );
    println!("{}", rule(130));
    for bench in config.benchmarks() {
        let spec = bench.spec();
        let scale = config.scale_for(bench);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let standin = bench
            .sample_standin(scale, &mut rng)
            .expect("stand-in generation");
        let measured = DatasetSummary::from_dataset(&standin);
        println!(
            "{:<10} {:>8} {:>10.2e} ; {:>8.2} {:>7.1} {:>9}    | {:>6} {:>9} {:>10.2e} ; {:>8.2} {:>7.1}",
            spec.name,
            spec.num_items,
            spec.min_frequency,
            spec.max_frequency,
            spec.avg_transaction_len,
            spec.num_transactions,
            scale,
            measured.num_transactions,
            measured.min_frequency.unwrap_or(0.0),
            measured.max_frequency.unwrap_or(0.0),
            measured.avg_transaction_len,
        );
    }
    println!();
    println!(
        "paper columns: n = items, [fmin;fmax] = item frequency range, m = average transaction length, t = transactions"
    );
}

//! CI bench snapshot: a fast, dependency-free runner that re-measures the
//! headline groups of `benches/counting_backends.rs` with `std::time::Instant`
//! and writes the medians to `BENCH_counting.json` (group → median ns).
//!
//! Criterion runs take minutes; CI wants a single-digit-seconds artifact that
//! tracks the same workloads — kernel dispatch, sharded counting, spilled
//! (out-of-core) counting, and subtree-parallel Eclat — so a regression shows
//! up as a diff in the snapshot file, not as a silently slower merge. The
//! numbers are medians of `SAMPLES` timed repetitions after one warm-up pass;
//! absolute values vary with the runner, relative movement between adjacent
//! commits is the signal.
//!
//! On Linux each group also records its peak resident set (`VmHWM` from
//! `/proc/self/status`, watermark reset between groups via
//! `/proc/self/clear_refs`) as a `<group>/peak_rss_kb` entry — the footprint
//! axis the out-of-core work optimizes, tracked beside the latency axis it
//! must not regress.
//!
//! ```text
//! cargo run -p sigfim-bench --release --bin bench_snapshot [-- <output-path>]
//! ```

use std::hint::black_box;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim_datasets::bitmap::{with_bitmap_scratch, BitmapDataset};
use sigfim_datasets::kernels::{kernels_for, KernelMode};
use sigfim_datasets::random::BernoulliModel;
use sigfim_datasets::sharded::ShardedBitmapDataset;
use sigfim_datasets::spill::{ShardResidency, SpillMode, SpilledShards, MMAP_SUPPORTED};
use sigfim_datasets::transaction::{ItemId, TransactionDataset};
use sigfim_exec::{substream, ExecutionPolicy};
use sigfim_mining::counting::count_candidates_bitmap;
use sigfim_mining::eclat::Eclat;
use sigfim_mining::par_eclat::ParallelEclat;
use sigfim_mining::sharded::{count_candidates_sharded, count_candidates_spilled};

/// Smaller than the criterion workload so the whole snapshot stays fast.
const TRANSACTIONS: usize = 4_000;
const ITEMS: usize = 40;
const CANDIDATES: usize = 128;
const DENSITY: f64 = 0.25;
const SAMPLES: usize = 7;

fn dense_dataset() -> TransactionDataset {
    let model = BernoulliModel::new(TRANSACTIONS, vec![DENSITY; ITEMS]).unwrap();
    model.sample(&mut StdRng::seed_from_u64(7))
}

/// The `CANDIDATES` lexicographically-first 3-itemsets over the most frequent
/// items — the same batch shape the criterion benches use.
fn candidate_batch(dataset: &TransactionDataset) -> Vec<Vec<ItemId>> {
    let mut by_support: Vec<(u64, ItemId)> = dataset
        .item_supports()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (s, i as ItemId))
        .collect();
    by_support.sort_unstable_by(|a, b| b.cmp(a));
    let top: Vec<ItemId> = by_support.iter().map(|&(_, i)| i).take(ITEMS).collect();
    let mut candidates = Vec::with_capacity(CANDIDATES);
    sigfim_mining::itemset::for_each_k_subset(&top, 3, |subset| {
        if candidates.len() < CANDIDATES {
            let mut set = subset.to_vec();
            set.sort_unstable();
            candidates.push(set);
        }
    });
    candidates
}

/// Median wall-clock nanoseconds of `SAMPLES` runs after one warm-up pass.
fn median_ns(mut run: impl FnMut()) -> u64 {
    run();
    let mut samples: Vec<u64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// `VmHWM` (peak resident set, kB) from `/proc/self/status`.
#[cfg(target_os = "linux")]
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(not(target_os = "linux"))]
fn vm_hwm_kb() -> Option<u64> {
    None
}

/// Reset the peak-RSS watermark to the current RSS so each group's `VmHWM`
/// reflects that group alone. `false` when the kernel refuses (non-Linux, or
/// a locked-down `/proc`) — peak-RSS entries are then omitted.
#[cfg(target_os = "linux")]
fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

#[cfg(not(target_os = "linux"))]
fn reset_peak_rss() -> bool {
    false
}

/// Time one snapshot group and record its median latency plus, where the
/// watermark is resettable, the group's peak resident set.
fn record(entries: &mut Vec<(String, u64)>, name: String, run: impl FnMut()) {
    let tracked = reset_peak_rss();
    let ns = median_ns(run);
    entries.push((name.clone(), ns));
    if tracked {
        if let Some(kb) = vm_hwm_kb() {
            entries.push((format!("{name}/peak_rss_kb"), kb));
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_counting.json".to_string());
    let dataset = dense_dataset();
    let bitmap = BitmapDataset::from_dataset(&dataset);
    let sharded = ShardedBitmapDataset::from_dataset(&dataset);
    let candidates = candidate_batch(&dataset);
    let words = bitmap.words_per_column();

    let mut entries: Vec<(String, u64)> = Vec::new();

    // Kernel dispatch: the candidate-batch AND + popcount loop per mode.
    for mode in [
        KernelMode::Scalar,
        KernelMode::Unrolled,
        KernelMode::Avx2,
        KernelMode::Avx512,
    ] {
        if !mode.is_supported() {
            continue;
        }
        let kernels = kernels_for(mode);
        let mut scratch = vec![0u64; words];
        record(
            &mut entries,
            format!("kernels/{mode}/candidate_batch"),
            || {
                let mut total = 0u64;
                for candidate in &candidates {
                    scratch.copy_from_slice(bitmap.column(candidate[0]));
                    let mut support = kernels.popcount_slice(&scratch);
                    for &item in &candidate[1..] {
                        support = kernels.and_count_into(&mut scratch, bitmap.column(item));
                    }
                    total += support;
                }
                black_box(total);
            },
        );
    }

    // Sharded vs unsharded candidate counting.
    record(
        &mut entries,
        "counting/bitmap_unsharded".to_string(),
        || {
            black_box(count_candidates_bitmap(&bitmap, &candidates));
        },
    );
    for workers in [1usize, 2] {
        let policy = ExecutionPolicy::from_threads(workers);
        record(
            &mut entries,
            format!("counting/sharded_workers{workers}"),
            || {
                black_box(count_candidates_sharded(&sharded, &candidates, policy));
            },
        );
    }

    // Out-of-core counting: the same candidate batch against a spilled view,
    // fully pinned (budget covers everything: measures the fault-free guard
    // overhead) and fully cold (1-byte budget: every shard faults from its
    // spill file once per batch).
    let spill_mode = if MMAP_SUPPORTED {
        SpillMode::Mmap
    } else {
        SpillMode::Read
    };
    for (tag, budget) in [("pinned", u64::MAX), ("cold", 1u64)] {
        let residency = ShardResidency {
            budget_bytes: budget,
            mode: spill_mode,
            dir: None,
        };
        let spilled = SpilledShards::spill_dataset(&dataset, &residency).expect("spill to tmp");
        for workers in [1usize, 2] {
            let policy = ExecutionPolicy::from_threads(workers);
            record(
                &mut entries,
                format!("counting/spilled_{tag}_workers{workers}"),
                || {
                    black_box(count_candidates_spilled(&spilled, &candidates, policy));
                },
            );
        }
    }

    // Subtree-parallel bitset Eclat, k = 3 profile-mining floor.
    record(
        &mut entries,
        "par_eclat/eclat_sequential_k3".to_string(),
        || {
            black_box(Eclat.mine_k_bitmap(&bitmap, 3, 1).unwrap().len());
        },
    );
    for workers in [1usize, 2, 8] {
        let miner = ParallelEclat::new(ExecutionPolicy::from_threads(workers));
        record(
            &mut entries,
            format!("par_eclat/workers{workers}_k3"),
            || {
                black_box(miner.mine_k_bitmap(&bitmap, 3, 1).unwrap().len());
            },
        );
    }
    let miner = ParallelEclat::new(ExecutionPolicy::from_threads(2));
    record(
        &mut entries,
        "par_eclat/sharded_workers2_k3".to_string(),
        || {
            black_box(miner.mine_k_sharded(&sharded, 3, 1).unwrap().len());
        },
    );

    // Replicate-loop fills: the legacy cellwise (fused-count) sampler vs the
    // geometric-jump gaps sampler, one `(seed, replicate)` substream per
    // replicate exactly as Algorithm 1 draws them, across the density axis
    // the `auto` sampler gate discriminates on (gaps is O(set bits), so its
    // advantage grows as density falls).
    const REPLICATES: u64 = 8;
    for density in [0.02f64, 0.05] {
        let model = BernoulliModel::new(TRANSACTIONS, vec![density; ITEMS]).unwrap();
        for gaps in [false, true] {
            let sampler = if gaps { "gaps" } else { "cellwise" };
            record(
                &mut entries,
                format!("replicate_loop/{sampler}_density{density}"),
                || {
                    with_bitmap_scratch(|scratch| {
                        let mut total = 0u64;
                        for replicate in 0..REPLICATES {
                            let mut rng = substream(0x51F1_D009, replicate);
                            let supports = if gaps {
                                model.sample_into_bitmap_gaps(&mut rng, scratch)
                            } else {
                                model.sample_into_bitmap_counted(&mut rng, scratch)
                            };
                            total += supports.iter().sum::<u64>();
                        }
                        black_box(total);
                    });
                },
            );
        }
    }

    let body: Vec<String> = entries
        .iter()
        .map(|(name, ns)| format!("  \"{}\": {ns}", json_escape(name)))
        .collect();
    let json = format!("{{\n{}\n}}\n", body.join(",\n"));
    std::fs::write(&output, &json).expect("write snapshot file");
    println!("wrote {} ({} groups)", output, entries.len());
    for (name, value) in &entries {
        let unit = if name.ends_with("/peak_rss_kb") {
            "kB"
        } else {
            "ns"
        };
        println!("  {name}: {value} {unit}");
    }
}

//! CI bench snapshot: a fast, dependency-free runner that re-measures the
//! headline groups of `benches/counting_backends.rs` with `std::time::Instant`
//! and writes the medians to `BENCH_counting.json` (group → median ns).
//!
//! Criterion runs take minutes; CI wants a single-digit-seconds artifact that
//! tracks the same workloads — kernel dispatch, sharded counting, and
//! subtree-parallel Eclat — so a regression shows up as a diff in the snapshot
//! file, not as a silently slower merge. The numbers are medians of
//! `SAMPLES` timed repetitions after one warm-up pass; absolute values vary
//! with the runner, relative movement between adjacent commits is the signal.
//!
//! ```text
//! cargo run -p sigfim-bench --release --bin bench_snapshot [-- <output-path>]
//! ```

use std::hint::black_box;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim_datasets::bitmap::{with_bitmap_scratch, BitmapDataset};
use sigfim_datasets::kernels::{kernels_for, KernelMode};
use sigfim_datasets::random::BernoulliModel;
use sigfim_datasets::sharded::ShardedBitmapDataset;
use sigfim_datasets::transaction::{ItemId, TransactionDataset};
use sigfim_exec::{substream, ExecutionPolicy};
use sigfim_mining::counting::count_candidates_bitmap;
use sigfim_mining::eclat::Eclat;
use sigfim_mining::par_eclat::ParallelEclat;
use sigfim_mining::sharded::count_candidates_sharded;

/// Smaller than the criterion workload so the whole snapshot stays fast.
const TRANSACTIONS: usize = 4_000;
const ITEMS: usize = 40;
const CANDIDATES: usize = 128;
const DENSITY: f64 = 0.25;
const SAMPLES: usize = 7;

fn dense_dataset() -> TransactionDataset {
    let model = BernoulliModel::new(TRANSACTIONS, vec![DENSITY; ITEMS]).unwrap();
    model.sample(&mut StdRng::seed_from_u64(7))
}

/// The `CANDIDATES` lexicographically-first 3-itemsets over the most frequent
/// items — the same batch shape the criterion benches use.
fn candidate_batch(dataset: &TransactionDataset) -> Vec<Vec<ItemId>> {
    let mut by_support: Vec<(u64, ItemId)> = dataset
        .item_supports()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (s, i as ItemId))
        .collect();
    by_support.sort_unstable_by(|a, b| b.cmp(a));
    let top: Vec<ItemId> = by_support.iter().map(|&(_, i)| i).take(ITEMS).collect();
    let mut candidates = Vec::with_capacity(CANDIDATES);
    sigfim_mining::itemset::for_each_k_subset(&top, 3, |subset| {
        if candidates.len() < CANDIDATES {
            let mut set = subset.to_vec();
            set.sort_unstable();
            candidates.push(set);
        }
    });
    candidates
}

/// Median wall-clock nanoseconds of `SAMPLES` runs after one warm-up pass.
fn median_ns(mut run: impl FnMut()) -> u64 {
    run();
    let mut samples: Vec<u64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_counting.json".to_string());
    let dataset = dense_dataset();
    let bitmap = BitmapDataset::from_dataset(&dataset);
    let sharded = ShardedBitmapDataset::from_dataset(&dataset);
    let candidates = candidate_batch(&dataset);
    let words = bitmap.words_per_column();

    let mut entries: Vec<(String, u64)> = Vec::new();

    // Kernel dispatch: the candidate-batch AND + popcount loop per mode.
    for mode in [
        KernelMode::Scalar,
        KernelMode::Unrolled,
        KernelMode::Avx2,
        KernelMode::Avx512,
    ] {
        if !mode.is_supported() {
            continue;
        }
        let kernels = kernels_for(mode);
        let mut scratch = vec![0u64; words];
        let ns = median_ns(|| {
            let mut total = 0u64;
            for candidate in &candidates {
                scratch.copy_from_slice(bitmap.column(candidate[0]));
                let mut support = kernels.popcount_slice(&scratch);
                for &item in &candidate[1..] {
                    support = kernels.and_count_into(&mut scratch, bitmap.column(item));
                }
                total += support;
            }
            black_box(total);
        });
        entries.push((format!("kernels/{mode}/candidate_batch"), ns));
    }

    // Sharded vs unsharded candidate counting.
    entries.push((
        "counting/bitmap_unsharded".to_string(),
        median_ns(|| {
            black_box(count_candidates_bitmap(&bitmap, &candidates));
        }),
    ));
    for workers in [1usize, 2] {
        let policy = ExecutionPolicy::from_threads(workers);
        entries.push((
            format!("counting/sharded_workers{workers}"),
            median_ns(|| {
                black_box(count_candidates_sharded(&sharded, &candidates, policy));
            }),
        ));
    }

    // Subtree-parallel bitset Eclat, k = 3 profile-mining floor.
    entries.push((
        "par_eclat/eclat_sequential_k3".to_string(),
        median_ns(|| {
            black_box(Eclat.mine_k_bitmap(&bitmap, 3, 1).unwrap().len());
        }),
    ));
    for workers in [1usize, 2, 8] {
        let miner = ParallelEclat::new(ExecutionPolicy::from_threads(workers));
        entries.push((
            format!("par_eclat/workers{workers}_k3"),
            median_ns(|| {
                black_box(miner.mine_k_bitmap(&bitmap, 3, 1).unwrap().len());
            }),
        ));
    }
    let miner = ParallelEclat::new(ExecutionPolicy::from_threads(2));
    entries.push((
        "par_eclat/sharded_workers2_k3".to_string(),
        median_ns(|| {
            black_box(miner.mine_k_sharded(&sharded, 3, 1).unwrap().len());
        }),
    ));

    // Replicate-loop fills: the legacy cellwise (fused-count) sampler vs the
    // geometric-jump gaps sampler, one `(seed, replicate)` substream per
    // replicate exactly as Algorithm 1 draws them, across the density axis
    // the `auto` sampler gate discriminates on (gaps is O(set bits), so its
    // advantage grows as density falls).
    const REPLICATES: u64 = 8;
    for density in [0.02f64, 0.05] {
        let model = BernoulliModel::new(TRANSACTIONS, vec![density; ITEMS]).unwrap();
        for gaps in [false, true] {
            let sampler = if gaps { "gaps" } else { "cellwise" };
            let ns = median_ns(|| {
                with_bitmap_scratch(|scratch| {
                    let mut total = 0u64;
                    for replicate in 0..REPLICATES {
                        let mut rng = substream(0x51F1_D009, replicate);
                        let supports = if gaps {
                            model.sample_into_bitmap_gaps(&mut rng, scratch)
                        } else {
                            model.sample_into_bitmap_counted(&mut rng, scratch)
                        };
                        total += supports.iter().sum::<u64>();
                    }
                    black_box(total);
                });
            });
            entries.push((format!("replicate_loop/{sampler}_density{density}"), ns));
        }
    }

    let body: Vec<String> = entries
        .iter()
        .map(|(name, ns)| format!("  \"{}\": {ns}", json_escape(name)))
        .collect();
    let json = format!("{{\n{}\n}}\n", body.join(",\n"));
    std::fs::write(&output, &json).expect("write snapshot file");
    println!("wrote {} ({} groups)", output, entries.len());
    for (name, ns) in &entries {
        println!("  {name}: {ns} ns");
    }
}

//! Table 2 of the paper: the Poisson thresholds `ŝ_min` estimated by Algorithm 1
//! (FindPoissonThreshold) on random datasets with the benchmarks' parameters
//! ("RandRetail", "RandKosarak", …), for k = 2, 3, 4 and ε = 0.01.
//!
//! ```text
//! cargo run -p sigfim-bench --release --bin table2 [-- --full | --scale <x> | --replicates <n> | --k <list>]
//! ```
//!
//! The default run uses Δ = 32 replicates and per-dataset down-scaling; `--full`
//! switches to the paper's Δ = 1000 at full scale. The final column rescales the
//! estimated threshold back to the paper's scale (`ŝ_min × scale`) so the magnitude
//! can be compared with Table 2 directly.
//!
//! This is the engine's threshold-only query shape: one dataset-less
//! `AnalysisEngine` per null model answers the whole k-sweep as a single batch,
//! caching each `(model fingerprint, k, ε, Δ, seed, backend)` key.

use sigfim_bench::{rule, ExperimentConfig};
use sigfim_core::engine::{AnalysisEngine, AnalysisRequest};

fn main() {
    let config = ExperimentConfig::from_env();
    let replicates = config.replicates();
    println!(
        "Table 2 — ŝ_min from Algorithm 1 on random (null-model) datasets, epsilon = 0.01, Delta = {replicates}"
    );
    println!();
    println!(
        "{:<14} {:>6} {:>8} {:>12} {:>12} {:>18} {:>10}",
        "dataset", "k", "scale", "s~ (floor)", "s_min", "s_min x scale", "pool |W|"
    );
    println!("{}", rule(88));

    let request = AnalysisRequest::for_ks(config.ks.iter().copied())
        .with_epsilon(0.01)
        .with_replicates(replicates)
        .with_seed(config.seed);
    for bench in config.benchmarks() {
        let scale = config.scale_for(bench);
        let model = bench.null_model(scale).expect("null model construction");
        let mut engine = AnalysisEngine::from_model(model).with_backend(config.backend);
        let runs = engine.thresholds(&request).expect("Algorithm 1 runs");
        for run in runs {
            println!(
                "Rand{:<10} {:>6} {:>8} {:>12} {:>12} {:>18.0} {:>10}",
                bench.name(),
                run.k,
                scale,
                run.estimate.s_tilde,
                run.estimate.s_min,
                run.estimate.s_min as f64 * scale,
                run.estimate.pool_size
            );
        }
    }
    println!();
    println!(
        "paper (full scale, Delta = 1000): RandRetail 9237/4366/784, RandKosarak 273266/100543/20120, \
         RandBms1 268/23/5, RandBms2 168/13/4, RandBmspos 76672/15714/2717, RandPumsb* 29303/21893/16265 (k = 2/3/4)"
    );
}

//! Table 3 of the paper: Procedure 2 applied to the benchmark datasets with
//! α = β = 0.05 and α_i = β_i⁻¹ = 0.05/h — the support threshold `s*`, the number
//! `Q_{k,s*}` of significant k-itemsets, and the expected number `λ(s*)` of itemsets
//! at that support in a random dataset.
//!
//! ```text
//! cargo run -p sigfim-bench --release --bin table3 [-- --full | --scale <x> | --k <list> | --closed-analysis]
//! ```
//!
//! The run uses planted stand-ins of the benchmarks (the real FIMI files are not
//! available offline): the qualitative shape to compare with the paper is *where*
//! `s*` is finite (Retail/Kosarak only at k = 4, Bmspos at k = 3,4, the rest at all
//! k) and that `λ(s*)` stays far below `Q_{k,s*}`. With `--closed-analysis` the
//! binary also reproduces the Section 4.1 observation on Bms1 at k = 4: a handful of
//! large closed itemsets accounts for most of the significant family.
//!
//! Each benchmark runs as **one multi-k engine batch**: the dataset view is
//! built once per stand-in and shared across the whole k-sweep.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim_bench::{format_threshold, rule, ExperimentConfig};
use sigfim_core::engine::{AnalysisEngine, AnalysisRequest};
use sigfim_datasets::benchmarks::BenchmarkDataset;
use sigfim_mining::closed::closed_generator_analysis;

fn main() {
    let config = ExperimentConfig::from_env();
    let replicates = config.replicates();
    println!(
        "Table 3 — Procedure 2 on the benchmark stand-ins (alpha = beta = 0.05, Delta = {replicates})"
    );
    println!();
    println!(
        "{:<10} {:>6} {:>8} {:>10} {:>10} {:>12} {:>12}",
        "dataset", "k", "scale", "s_min", "s*", "Q_{k,s*}", "lambda(s*)"
    );
    println!("{}", rule(76));

    let request = AnalysisRequest::for_ks(config.ks.iter().copied())
        .with_replicates(replicates)
        .with_seed(config.seed)
        .with_baseline(false);
    for bench in config.benchmarks() {
        let scale = config.scale_for(bench);
        let mut data_rng = StdRng::seed_from_u64(config.seed);
        let dataset = bench
            .sample_standin(scale, &mut data_rng)
            .expect("stand-in generation");
        let mut engine = AnalysisEngine::from_dataset(dataset.clone())
            .expect("non-empty stand-in")
            .with_backend(config.backend);
        let response = engine.run(&request).expect("analysis runs");
        for run in &response.runs {
            let k = run.k;
            let (s_star, q, lambda) = run.report.table3_row();
            println!(
                "{:<10} {:>6} {:>8} {:>10} {:>10} {:>12} {:>12.3}",
                bench.name(),
                k,
                scale,
                run.report.threshold.s_min,
                format_threshold(s_star),
                q,
                lambda
            );

            let closed_at = if config.closed_analysis && bench == BenchmarkDataset::Bms1 {
                s_star
            } else {
                None
            };
            if let Some(s_star) = closed_at {
                let analysis = closed_generator_analysis(&dataset, k, s_star)
                    .expect("closed-itemset analysis");
                if let Some(top) = analysis.closed_generators.first() {
                    println!(
                        "           -> Section 4.1 analysis: largest closed itemset has {} items \
                         (support {}), accounting for {} of the {} significant {k}-itemsets",
                        top.items.len(),
                        top.support,
                        top.k_subsets.min(analysis.total_k_itemsets),
                        analysis.total_k_itemsets
                    );
                }
            }
        }
    }
    println!();
    println!(
        "paper (full scale): Retail inf/inf/848, Kosarak inf/inf/21144, Bms1 276/23/5, \
         Bms2 168/13/4, Bmspos inf/16226/2717, Pumsb* 29303/21893/16265 (s* for k = 2/3/4); \
         in every finite case lambda(s*) << Q_{{k,s*}}"
    );
}

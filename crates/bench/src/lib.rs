//! # sigfim-bench
//!
//! The experiment harness of the `sigfim` workspace: one binary per table of the
//! paper's evaluation (Section 4) plus the Criterion micro/macro benchmarks.
//!
//! | target | reproduces |
//! |--------|------------|
//! | `cargo run -p sigfim-bench --release --bin table1` | Table 1 — benchmark dataset parameters |
//! | `cargo run -p sigfim-bench --release --bin table2` | Table 2 — `ŝ_min` on random datasets (Algorithm 1) |
//! | `cargo run -p sigfim-bench --release --bin table3` | Table 3 — Procedure 2: `s*`, `Q_{k,s*}`, `λ(s*)` |
//! | `cargo run -p sigfim-bench --release --bin table4` | Table 4 — robustness on random instances |
//! | `cargo run -p sigfim-bench --release --bin table5` | Table 5 — Procedure 1 vs Procedure 2 |
//! | `cargo bench --workspace` | performance characterization (not in the paper) |
//!
//! The original FIMI files are not available offline, so the binaries run on the
//! synthetic stand-ins of [`sigfim_datasets::benchmarks`] (see DESIGN.md §4 for the
//! substitution argument). All binaries accept:
//!
//! * `--full` — run at full Table-1 scale with the paper's Δ = 1000 replicates and
//!   100 robustness instances (slow; the default is a reduced configuration that
//!   preserves the qualitative shape),
//! * `--scale <x>` — override the per-dataset down-scaling factor,
//! * `--replicates <n>` — override the number of Monte-Carlo replicates Δ,
//! * `--instances <n>` — override the number of robustness instances (table4),
//! * `--datasets <a,b,…>` — restrict to a subset of the six benchmarks,
//! * `--backend <auto|csr|bitmap>` — force the physical dataset representation
//!   (results are identical either way; only the speed changes),
//! * `--k <list>` — restrict the itemset sizes (default `2,3,4`).

use sigfim_datasets::benchmarks::BenchmarkDataset;
use sigfim_datasets::bitmap::DatasetBackend;

/// Configuration shared by the table binaries, parsed from the command line.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Run at the paper's full scale (Δ = 1000, 100 instances, scale 1).
    pub full: bool,
    /// Override of the per-dataset scale factor.
    pub scale_override: Option<f64>,
    /// Override of the Monte-Carlo replicate count Δ.
    pub replicates_override: Option<usize>,
    /// Override of the number of robustness instances (Table 4).
    pub instances_override: Option<usize>,
    /// Restriction of the benchmark set (empty = all six).
    pub datasets: Vec<BenchmarkDataset>,
    /// The itemset sizes to evaluate.
    pub ks: Vec<usize>,
    /// Base random seed.
    pub seed: u64,
    /// Physical dataset backend for the pipeline ({auto, csr, bitmap}).
    pub backend: DatasetBackend,
    /// Run the Section 4.1 closed-itemset analysis where applicable (table3).
    pub closed_analysis: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            full: false,
            scale_override: None,
            replicates_override: None,
            instances_override: None,
            datasets: Vec::new(),
            ks: vec![2, 3, 4],
            seed: 0xF1A1,
            backend: DatasetBackend::Auto,
            closed_analysis: false,
        }
    }
}

impl ExperimentConfig {
    /// Parse a configuration from an iterator of command-line arguments (without the
    /// program name). Unknown flags abort with a message listing the valid options.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut config = ExperimentConfig::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--full" => config.full = true,
                "--closed-analysis" => config.closed_analysis = true,
                "--scale" => {
                    config.scale_override = Some(
                        expect_value(&mut iter, "--scale")
                            .parse()
                            .expect("numeric --scale"),
                    );
                }
                "--replicates" => {
                    config.replicates_override = Some(
                        expect_value(&mut iter, "--replicates")
                            .parse()
                            .expect("integer --replicates"),
                    );
                }
                "--instances" => {
                    config.instances_override = Some(
                        expect_value(&mut iter, "--instances")
                            .parse()
                            .expect("integer --instances"),
                    );
                }
                "--seed" => {
                    config.seed = expect_value(&mut iter, "--seed")
                        .parse()
                        .expect("integer --seed");
                }
                "--k" => {
                    config.ks = expect_value(&mut iter, "--k")
                        .split(',')
                        .map(|s| s.trim().parse().expect("integer k"))
                        .collect();
                }
                "--backend" => {
                    config.backend = expect_value(&mut iter, "--backend")
                        .parse()
                        .expect("--backend expects auto, csr or bitmap");
                }
                "--datasets" => {
                    config.datasets = expect_value(&mut iter, "--datasets")
                        .split(',')
                        .map(|name| parse_dataset(name.trim()))
                        .collect();
                }
                other => {
                    panic!(
                        "unknown argument `{other}`; valid flags: --full --scale <x> \
                         --replicates <n> --instances <n> --seed <n> --k <list> \
                         --datasets <list> --backend <auto|csr|bitmap> --closed-analysis"
                    );
                }
            }
        }
        config
    }

    /// Parse from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// The benchmarks this run covers.
    pub fn benchmarks(&self) -> Vec<BenchmarkDataset> {
        if self.datasets.is_empty() {
            BenchmarkDataset::ALL.to_vec()
        } else {
            self.datasets.clone()
        }
    }

    /// The down-scaling factor applied to a benchmark's transaction count.
    pub fn scale_for(&self, bench: BenchmarkDataset) -> f64 {
        if let Some(scale) = self.scale_override {
            return scale;
        }
        if self.full {
            return 1.0;
        }
        default_scale(bench)
    }

    /// The number of Monte-Carlo replicates Δ for Algorithm 1.
    pub fn replicates(&self) -> usize {
        if let Some(r) = self.replicates_override {
            return r;
        }
        if self.full {
            1_000 // the paper's Δ
        } else {
            32
        }
    }

    /// The number of random instances per configuration for the robustness study.
    pub fn instances(&self) -> usize {
        if let Some(i) = self.instances_override {
            return i;
        }
        if self.full {
            100 // the paper's count
        } else {
            10
        }
    }
}

fn expect_value<I: Iterator<Item = String>>(iter: &mut I, flag: &str) -> String {
    iter.next()
        .unwrap_or_else(|| panic!("flag {flag} requires a value"))
}

fn parse_dataset(name: &str) -> BenchmarkDataset {
    BenchmarkDataset::ALL
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            panic!(
                "unknown dataset `{name}`; valid names: {}",
                BenchmarkDataset::ALL.map(|b| b.name()).join(", ")
            )
        })
}

/// The default down-scaling factor per benchmark, chosen so that every table binary
/// completes in minutes on a laptop while keeping thousands of transactions per
/// dataset (supports, and therefore every statistic the procedures consume, scale
/// linearly with `t`).
pub fn default_scale(bench: BenchmarkDataset) -> f64 {
    match bench {
        BenchmarkDataset::Retail => 16.0,
        BenchmarkDataset::Kosarak => 64.0,
        BenchmarkDataset::Bms1 => 8.0,
        BenchmarkDataset::Bms2 => 8.0,
        BenchmarkDataset::Bmspos => 32.0,
        BenchmarkDataset::PumsbStar => 8.0,
    }
}

/// Format an `Option<u64>` threshold the way the paper's tables do (`∞` for "no
/// threshold found").
pub fn format_threshold(s_star: Option<u64>) -> String {
    match s_star {
        Some(s) => s.to_string(),
        None => "inf".to_string(),
    }
}

/// Render a separator line matching a header width.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config() {
        let config = ExperimentConfig::default();
        assert!(!config.full);
        assert_eq!(config.ks, vec![2, 3, 4]);
        assert_eq!(config.benchmarks().len(), 6);
        assert_eq!(config.replicates(), 32);
        assert_eq!(config.instances(), 10);
        assert!(
            config.scale_for(BenchmarkDataset::Kosarak) > config.scale_for(BenchmarkDataset::Bms1)
        );
    }

    #[test]
    fn full_mode_uses_paper_parameters() {
        let config = ExperimentConfig::parse(vec!["--full".to_string()]);
        assert!(config.full);
        assert_eq!(config.replicates(), 1_000);
        assert_eq!(config.instances(), 100);
        for bench in BenchmarkDataset::ALL {
            assert_eq!(config.scale_for(bench), 1.0);
        }
    }

    #[test]
    fn overrides_win() {
        let config = ExperimentConfig::parse(
            [
                "--scale",
                "4",
                "--replicates",
                "7",
                "--instances",
                "3",
                "--seed",
                "9",
                "--k",
                "2,4",
            ]
            .map(str::to_string),
        );
        assert_eq!(config.scale_for(BenchmarkDataset::Retail), 4.0);
        assert_eq!(config.replicates(), 7);
        assert_eq!(config.instances(), 3);
        assert_eq!(config.seed, 9);
        assert_eq!(config.ks, vec![2, 4]);
    }

    #[test]
    fn dataset_filter() {
        let config = ExperimentConfig::parse(["--datasets", "bms1,Pumsb*"].map(str::to_string));
        assert_eq!(
            config.benchmarks(),
            vec![BenchmarkDataset::Bms1, BenchmarkDataset::PumsbStar]
        );
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_panics() {
        let _ = ExperimentConfig::parse(vec!["--bogus".to_string()]);
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        let _ = ExperimentConfig::parse(["--datasets", "nope"].map(str::to_string));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(format_threshold(Some(42)), "42");
        assert_eq!(format_threshold(None), "inf");
        assert_eq!(rule(3), "---");
    }
}

//! Process-wide mining dispatch counters.
//!
//! Operators running the multi-tenant service need to see which mining code
//! path production traffic actually takes — an auto-selected backend or miner
//! can silently route everything down an unexpected path, and a counter is
//! the cheapest way to notice. Every mining *entry point* increments exactly
//! one counter here (relaxed atomics — the cost is one increment per mining
//! pass, not per itemset):
//!
//! * the four CSR miners count in [`crate::miner::MinerKind::mine_k`],
//! * the bitset Eclat counts in [`crate::eclat::Eclat::mine_k_bitmap`],
//! * the level-wise sharded miner counts in [`crate::sharded::mine_k_sharded`],
//! * the subtree-parallel miner counts in
//!   [`crate::par_eclat::ParallelEclat::mine_k_bitmap`] /
//!   [`crate::par_eclat::ParallelEclat::mine_k_sharded`].
//!
//! The service aggregates a [`dispatch_counts`] snapshot into `/v1/stats`.
//! Counters are process-global and monotone; they are a telemetry surface,
//! not a correctness one.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

static APRIORI: AtomicU64 = AtomicU64::new(0);
static ECLAT: AtomicU64 = AtomicU64::new(0);
static FP_GROWTH: AtomicU64 = AtomicU64::new(0);
static BRUTE_FORCE: AtomicU64 = AtomicU64::new(0);
static ECLAT_BITMAP: AtomicU64 = AtomicU64::new(0);
static SHARDED: AtomicU64 = AtomicU64::new(0);
static PAR_ECLAT: AtomicU64 = AtomicU64::new(0);
static PAR_ECLAT_SHARDED: AtomicU64 = AtomicU64::new(0);

/// The mining entry point a pass went through (see the module docs for where
/// each is recorded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DispatchPath {
    Apriori,
    Eclat,
    FpGrowth,
    BruteForce,
    EclatBitmap,
    Sharded,
    ParEclat,
    ParEclatSharded,
}

/// Record one mining pass through `path`.
pub(crate) fn record(path: DispatchPath) {
    let counter = match path {
        DispatchPath::Apriori => &APRIORI,
        DispatchPath::Eclat => &ECLAT,
        DispatchPath::FpGrowth => &FP_GROWTH,
        DispatchPath::BruteForce => &BRUTE_FORCE,
        DispatchPath::EclatBitmap => &ECLAT_BITMAP,
        DispatchPath::Sharded => &SHARDED,
        DispatchPath::ParEclat => &PAR_ECLAT,
        DispatchPath::ParEclatSharded => &PAR_ECLAT_SHARDED,
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

/// A snapshot of the per-miner dispatch counters, one field per mining entry
/// point. Monotone per process; differences between snapshots measure
/// traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DispatchCounts {
    /// CSR-path Apriori passes ([`crate::apriori::Apriori`]).
    pub apriori: u64,
    /// CSR-path tid-list Eclat passes.
    pub eclat: u64,
    /// CSR-path FP-Growth passes.
    pub fp_growth: u64,
    /// CSR-path brute-force reference passes.
    pub brute_force: u64,
    /// Sequential bitset Eclat passes (`Eclat::mine_k_bitmap`).
    pub eclat_bitmap: u64,
    /// Level-wise shard-parallel passes (`mine_k_sharded`).
    pub sharded: u64,
    /// Subtree-parallel bitset Eclat passes over an unsharded bitmap.
    pub par_eclat: u64,
    /// Subtree-parallel passes composed with transaction sharding.
    pub par_eclat_sharded: u64,
}

impl DispatchCounts {
    /// Total mining passes across every entry point.
    pub fn total(&self) -> u64 {
        self.apriori
            + self.eclat
            + self.fp_growth
            + self.brute_force
            + self.eclat_bitmap
            + self.sharded
            + self.par_eclat
            + self.par_eclat_sharded
    }
}

/// Snapshot the process-wide dispatch counters.
pub fn dispatch_counts() -> DispatchCounts {
    DispatchCounts {
        apriori: APRIORI.load(Ordering::Relaxed),
        eclat: ECLAT.load(Ordering::Relaxed),
        fp_growth: FP_GROWTH.load(Ordering::Relaxed),
        brute_force: BRUTE_FORCE.load(Ordering::Relaxed),
        eclat_bitmap: ECLAT_BITMAP.load(Ordering::Relaxed),
        sharded: SHARDED.load(Ordering::Relaxed),
        par_eclat: PAR_ECLAT.load(Ordering::Relaxed),
        par_eclat_sharded: PAR_ECLAT_SHARDED.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_increments_the_matching_counter() {
        // Counters are process-global and other tests mine concurrently, so
        // assert monotone growth of the targeted field rather than absolute
        // values.
        let before = dispatch_counts();
        record(DispatchPath::ParEclat);
        record(DispatchPath::ParEclatSharded);
        record(DispatchPath::EclatBitmap);
        let after = dispatch_counts();
        assert!(after.par_eclat > before.par_eclat);
        assert!(after.par_eclat_sharded > before.par_eclat_sharded);
        assert!(after.eclat_bitmap > before.eclat_bitmap);
        assert!(after.total() >= before.total() + 3);
    }

    #[test]
    fn snapshot_serde_round_trips() {
        let snapshot = dispatch_counts();
        let value = serde::Serialize::to_value(&snapshot);
        let back: DispatchCounts = serde::Deserialize::from_value(&value).unwrap();
        assert_eq!(back, snapshot);
    }
}

//! Eclat: depth-first frequent itemset mining over vertical tid-lists.
//!
//! Eclat (Zaki) represents each itemset by the sorted list of transaction ids that
//! contain it; extending an itemset by one item is a tid-list intersection, and the
//! support is the list length. A depth-first search over the prefix tree of item
//! combinations, pruned as soon as a prefix drops below the support threshold,
//! enumerates the frequent itemsets. We bound the search depth by the target size
//! `k`, which together with the high thresholds used by the paper keeps the search
//! tree tiny.

use sigfim_datasets::bitmap::{and_into, BitmapDataset};
use sigfim_datasets::transaction::{ItemId, TransactionDataset, TransactionId};

use crate::counting::intersect_tids;
use crate::itemset::{sort_canonical, ItemsetSupport};
use crate::miner::{validate_mining_args, KItemsetMiner};
use crate::Result;

/// The Eclat miner. Stateless: every invocation rebuilds the vertical tid-lists from
/// the dataset (the paper's procedures mine each dataset once, so caching the lists
/// buys nothing and would complicate ownership).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Eclat;

struct SearchState<'a> {
    min_support: u64,
    target: usize,
    collect_prefixes: bool,
    output: &'a mut Vec<ItemsetSupport>,
}

/// Depth-first extension of `prefix` (whose supporting transactions are `tids`) with
/// items from `tail` (each paired with its tid-list).
fn dfs(
    prefix: &mut Vec<ItemId>,
    tids: Option<&[TransactionId]>,
    tail: &[(ItemId, Vec<TransactionId>)],
    state: &mut SearchState<'_>,
) {
    for (idx, (item, item_tids)) in tail.iter().enumerate() {
        let combined: Vec<TransactionId> = match tids {
            None => item_tids.clone(),
            Some(existing) => intersect_tids(existing, item_tids),
        };
        if (combined.len() as u64) < state.min_support {
            continue;
        }
        prefix.push(*item);
        let depth = prefix.len();
        if depth == state.target || (state.collect_prefixes && depth < state.target) {
            state.output.push(ItemsetSupport {
                items: prefix.clone(),
                support: combined.len() as u64,
            });
        }
        if depth < state.target {
            dfs(prefix, Some(&combined), &tail[idx + 1..], state);
        }
        prefix.pop();
    }
}

fn frequent_item_tidlists(
    dataset: &TransactionDataset,
    min_support: u64,
) -> Vec<(ItemId, Vec<TransactionId>)> {
    dataset
        .tid_lists()
        .into_iter()
        .enumerate()
        .filter(|(_, tids)| tids.len() as u64 >= min_support)
        .map(|(item, tids)| (item as ItemId, tids))
        .collect()
}

/// Depth-first extension over vertical bit-columns: the bitset analogue of
/// [`dfs`], with tid-list intersections replaced by word-parallel AND +
/// popcount into per-depth scratch buffers. `scratch` holds one buffer per
/// remaining depth; `split_at_mut` peels the current level off so the parent's
/// buffer can be read while the child's is written.
fn dfs_bitmap(
    dataset: &BitmapDataset,
    tail: &[(ItemId, u64)],
    prefix: &mut Vec<ItemId>,
    current: Option<&[u64]>,
    scratch: &mut [Vec<u64>],
    state: &mut SearchState<'_>,
) {
    for (idx, &(item, item_support)) in tail.iter().enumerate() {
        let column = dataset.column(item);
        match current {
            None => {
                // Depth 1: the item's own column is the covering set; no copy.
                debug_assert!(item_support >= state.min_support);
                prefix.push(item);
                if prefix.len() == state.target
                    || (state.collect_prefixes && prefix.len() < state.target)
                {
                    state.output.push(ItemsetSupport {
                        items: prefix.clone(),
                        support: item_support,
                    });
                }
                if prefix.len() < state.target {
                    dfs_bitmap(
                        dataset,
                        &tail[idx + 1..],
                        prefix,
                        Some(column),
                        scratch,
                        state,
                    );
                }
                prefix.pop();
            }
            Some(covering) => {
                let (level, deeper) = scratch.split_at_mut(1);
                let combined = &mut level[0];
                let support = and_into(combined, covering, column);
                if support < state.min_support {
                    continue;
                }
                prefix.push(item);
                let depth = prefix.len();
                if depth == state.target || (state.collect_prefixes && depth < state.target) {
                    state.output.push(ItemsetSupport {
                        items: prefix.clone(),
                        support,
                    });
                }
                if depth < state.target {
                    dfs_bitmap(
                        dataset,
                        &tail[idx + 1..],
                        prefix,
                        Some(combined),
                        deeper,
                        state,
                    );
                }
                prefix.pop();
            }
        }
    }
}

impl Eclat {
    /// The bitset Eclat variant: mine all k-itemsets with support at least
    /// `min_support` directly from a vertical bitmap. Same answers as
    /// [`KItemsetMiner::mine_k`] on the equivalent CSR dataset (exact supports,
    /// canonical order), but every intersection is an AND + popcount over
    /// `⌈t/64⌉` words, and the whole search allocates exactly `k − 1` scratch
    /// buffers regardless of how many itemsets it visits.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MiningError::InvalidParameter`] for `k == 0` or
    /// `min_support == 0`.
    pub fn mine_k_bitmap(
        &self,
        dataset: &BitmapDataset,
        k: usize,
        min_support: u64,
    ) -> Result<Vec<ItemsetSupport>> {
        validate_mining_args(k, min_support)?;
        crate::dispatch::record(crate::dispatch::DispatchPath::EclatBitmap);
        let tail: Vec<(ItemId, u64)> = (0..dataset.num_items())
            .map(|item| (item, dataset.item_support(item)))
            .filter(|&(_, support)| support >= min_support)
            .collect();
        let mut output = Vec::new();
        let mut state = SearchState {
            min_support,
            target: k,
            collect_prefixes: false,
            output: &mut output,
        };
        let words = dataset.words_per_column();
        let mut scratch: Vec<Vec<u64>> = vec![vec![0u64; words]; k.saturating_sub(1)];
        let mut prefix = Vec::with_capacity(k);
        dfs_bitmap(dataset, &tail, &mut prefix, None, &mut scratch, &mut state);
        sort_canonical(&mut output);
        Ok(output)
    }

    fn mine(
        &self,
        dataset: &TransactionDataset,
        k: usize,
        min_support: u64,
        collect_prefixes: bool,
    ) -> Result<Vec<ItemsetSupport>> {
        validate_mining_args(k, min_support)?;
        let tail = frequent_item_tidlists(dataset, min_support);
        let mut output = Vec::new();
        let mut state = SearchState {
            min_support,
            target: k,
            collect_prefixes,
            output: &mut output,
        };
        let mut prefix = Vec::with_capacity(k);
        dfs(&mut prefix, None, &tail, &mut state);
        sort_canonical(&mut output);
        Ok(output)
    }
}

impl KItemsetMiner for Eclat {
    fn mine_k(
        &self,
        dataset: &TransactionDataset,
        k: usize,
        min_support: u64,
    ) -> Result<Vec<ItemsetSupport>> {
        self.mine(dataset, k, min_support, false)
    }

    fn mine_up_to(
        &self,
        dataset: &TransactionDataset,
        max_k: usize,
        min_support: u64,
    ) -> Result<Vec<ItemsetSupport>> {
        self.mine(dataset, max_k, min_support, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::Apriori;

    fn toy() -> TransactionDataset {
        TransactionDataset::from_transactions(
            5,
            vec![
                vec![0, 1, 2],
                vec![0, 1, 2, 3],
                vec![0, 1],
                vec![0, 1, 3],
                vec![0, 2, 3],
                vec![1, 2, 4],
                vec![0, 1, 2],
            ],
        )
        .unwrap()
    }

    #[test]
    fn matches_apriori_on_toy_data() {
        let d = toy();
        for k in 1..=4 {
            for s in 1..=5 {
                assert_eq!(
                    Eclat.mine_k(&d, k, s).unwrap(),
                    Apriori::default().mine_k(&d, k, s).unwrap(),
                    "k = {k}, s = {s}"
                );
            }
        }
    }

    #[test]
    fn pair_supports_are_exact() {
        let d = toy();
        let mined = Eclat.mine_k(&d, 2, 4).unwrap();
        for m in &mined {
            assert_eq!(m.support, d.itemset_support(&m.items));
        }
        assert_eq!(mined.len(), 3);
    }

    #[test]
    fn mine_up_to_includes_all_sizes() {
        let d = toy();
        let all = Eclat.mine_up_to(&d, 3, 3).unwrap();
        let by_level: usize = (1..=3).map(|k| Eclat.mine_k(&d, k, 3).unwrap().len()).sum();
        assert_eq!(all.len(), by_level);
        // Every reported support is exact.
        for m in &all {
            assert_eq!(m.support, d.itemset_support(&m.items));
        }
    }

    #[test]
    fn deep_target_on_shallow_data_is_empty() {
        let d = toy();
        assert!(Eclat.mine_k(&d, 5, 1).unwrap().is_empty());
    }

    #[test]
    fn bitmap_variant_matches_tidlist_variant() {
        let d = toy();
        let bitmap = BitmapDataset::from_dataset(&d);
        for k in 1..=4 {
            for s in 1..=5 {
                assert_eq!(
                    Eclat.mine_k_bitmap(&bitmap, k, s).unwrap(),
                    Eclat.mine_k(&d, k, s).unwrap(),
                    "k = {k}, s = {s}"
                );
            }
        }
        // Argument validation is shared with the tid-list path.
        assert!(Eclat.mine_k_bitmap(&bitmap, 0, 1).is_err());
        assert!(Eclat.mine_k_bitmap(&bitmap, 2, 0).is_err());
        // Deep targets and empty bitmaps degenerate cleanly.
        assert!(Eclat.mine_k_bitmap(&bitmap, 6, 1).unwrap().is_empty());
        let empty = BitmapDataset::new(4, 0);
        assert!(Eclat.mine_k_bitmap(&empty, 2, 1).unwrap().is_empty());
    }

    #[test]
    fn empty_dataset() {
        let d = TransactionDataset::empty(4);
        assert!(Eclat.mine_k(&d, 2, 1).unwrap().is_empty());
    }
}

//! Eclat: depth-first frequent itemset mining over vertical tid-lists.
//!
//! Eclat (Zaki) represents each itemset by the sorted list of transaction ids that
//! contain it; extending an itemset by one item is a tid-list intersection, and the
//! support is the list length. A depth-first search over the prefix tree of item
//! combinations, pruned as soon as a prefix drops below the support threshold,
//! enumerates the frequent itemsets. We bound the search depth by the target size
//! `k`, which together with the high thresholds used by the paper keeps the search
//! tree tiny.

use sigfim_datasets::transaction::{ItemId, TransactionDataset, TransactionId};

use crate::counting::intersect_tids;
use crate::itemset::{sort_canonical, ItemsetSupport};
use crate::miner::{validate_mining_args, KItemsetMiner};
use crate::Result;

/// The Eclat miner. Stateless: every invocation rebuilds the vertical tid-lists from
/// the dataset (the paper's procedures mine each dataset once, so caching the lists
/// buys nothing and would complicate ownership).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Eclat;

struct SearchState<'a> {
    min_support: u64,
    target: usize,
    collect_prefixes: bool,
    output: &'a mut Vec<ItemsetSupport>,
}

/// Depth-first extension of `prefix` (whose supporting transactions are `tids`) with
/// items from `tail` (each paired with its tid-list).
fn dfs(
    prefix: &mut Vec<ItemId>,
    tids: Option<&[TransactionId]>,
    tail: &[(ItemId, Vec<TransactionId>)],
    state: &mut SearchState<'_>,
) {
    for (idx, (item, item_tids)) in tail.iter().enumerate() {
        let combined: Vec<TransactionId> = match tids {
            None => item_tids.clone(),
            Some(existing) => intersect_tids(existing, item_tids),
        };
        if (combined.len() as u64) < state.min_support {
            continue;
        }
        prefix.push(*item);
        let depth = prefix.len();
        if depth == state.target || (state.collect_prefixes && depth < state.target) {
            state.output.push(ItemsetSupport {
                items: prefix.clone(),
                support: combined.len() as u64,
            });
        }
        if depth < state.target {
            dfs(prefix, Some(&combined), &tail[idx + 1..], state);
        }
        prefix.pop();
    }
}

fn frequent_item_tidlists(
    dataset: &TransactionDataset,
    min_support: u64,
) -> Vec<(ItemId, Vec<TransactionId>)> {
    dataset
        .tid_lists()
        .into_iter()
        .enumerate()
        .filter(|(_, tids)| tids.len() as u64 >= min_support)
        .map(|(item, tids)| (item as ItemId, tids))
        .collect()
}

impl Eclat {
    fn mine(
        &self,
        dataset: &TransactionDataset,
        k: usize,
        min_support: u64,
        collect_prefixes: bool,
    ) -> Result<Vec<ItemsetSupport>> {
        validate_mining_args(k, min_support)?;
        let tail = frequent_item_tidlists(dataset, min_support);
        let mut output = Vec::new();
        let mut state = SearchState {
            min_support,
            target: k,
            collect_prefixes,
            output: &mut output,
        };
        let mut prefix = Vec::with_capacity(k);
        dfs(&mut prefix, None, &tail, &mut state);
        sort_canonical(&mut output);
        Ok(output)
    }
}

impl KItemsetMiner for Eclat {
    fn mine_k(
        &self,
        dataset: &TransactionDataset,
        k: usize,
        min_support: u64,
    ) -> Result<Vec<ItemsetSupport>> {
        self.mine(dataset, k, min_support, false)
    }

    fn mine_up_to(
        &self,
        dataset: &TransactionDataset,
        max_k: usize,
        min_support: u64,
    ) -> Result<Vec<ItemsetSupport>> {
        self.mine(dataset, max_k, min_support, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::Apriori;

    fn toy() -> TransactionDataset {
        TransactionDataset::from_transactions(
            5,
            vec![
                vec![0, 1, 2],
                vec![0, 1, 2, 3],
                vec![0, 1],
                vec![0, 1, 3],
                vec![0, 2, 3],
                vec![1, 2, 4],
                vec![0, 1, 2],
            ],
        )
        .unwrap()
    }

    #[test]
    fn matches_apriori_on_toy_data() {
        let d = toy();
        for k in 1..=4 {
            for s in 1..=5 {
                assert_eq!(
                    Eclat.mine_k(&d, k, s).unwrap(),
                    Apriori::default().mine_k(&d, k, s).unwrap(),
                    "k = {k}, s = {s}"
                );
            }
        }
    }

    #[test]
    fn pair_supports_are_exact() {
        let d = toy();
        let mined = Eclat.mine_k(&d, 2, 4).unwrap();
        for m in &mined {
            assert_eq!(m.support, d.itemset_support(&m.items));
        }
        assert_eq!(mined.len(), 3);
    }

    #[test]
    fn mine_up_to_includes_all_sizes() {
        let d = toy();
        let all = Eclat.mine_up_to(&d, 3, 3).unwrap();
        let by_level: usize = (1..=3).map(|k| Eclat.mine_k(&d, k, 3).unwrap().len()).sum();
        assert_eq!(all.len(), by_level);
        // Every reported support is exact.
        for m in &all {
            assert_eq!(m.support, d.itemset_support(&m.items));
        }
    }

    #[test]
    fn deep_target_on_shallow_data_is_empty() {
        let d = toy();
        assert!(Eclat.mine_k(&d, 5, 1).unwrap().is_empty());
    }

    #[test]
    fn empty_dataset() {
        let d = TransactionDataset::empty(4);
        assert!(Eclat.mine_k(&d, 2, 1).unwrap().is_empty());
    }
}

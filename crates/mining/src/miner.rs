//! The miner abstraction: every algorithm in this crate answers the same question —
//! *which k-itemsets have support at least `s`?* — so they share one trait and can be
//! swapped freely (and cross-checked against each other in tests).

use serde::{Deserialize, Serialize};
use sigfim_datasets::transaction::TransactionDataset;

use crate::apriori::Apriori;
use crate::bruteforce::BruteForce;
use crate::dispatch::{self, DispatchPath};
use crate::eclat::Eclat;
use crate::fpgrowth::FpGrowth;
use crate::itemset::{sort_canonical, ItemsetSupport};
use crate::par_eclat::ParallelEclat;
use crate::{MiningError, Result};

/// A frequent-k-itemset miner.
///
/// Implementations must return **exactly** the k-itemsets with support ≥
/// `min_support`, each with its exact support, in canonical (lexicographic) order.
pub trait KItemsetMiner {
    /// Mine all k-itemsets with support at least `min_support`.
    ///
    /// # Errors
    ///
    /// Returns [`MiningError::InvalidParameter`] for `k == 0` or `min_support == 0`
    /// (a zero threshold would make *every* subset of the item universe "frequent",
    /// which is never what the statistics upstream want).
    fn mine_k(
        &self,
        dataset: &TransactionDataset,
        k: usize,
        min_support: u64,
    ) -> Result<Vec<ItemsetSupport>>;

    /// Mine all itemsets of size `1..=max_k` with support at least `min_support`.
    /// The default implementation simply calls [`KItemsetMiner::mine_k`] per size;
    /// miners that naturally produce all sizes in one pass (FP-Growth, Eclat)
    /// override it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KItemsetMiner::mine_k`].
    fn mine_up_to(
        &self,
        dataset: &TransactionDataset,
        max_k: usize,
        min_support: u64,
    ) -> Result<Vec<ItemsetSupport>> {
        let mut all = Vec::new();
        for k in 1..=max_k {
            all.extend(self.mine_k(dataset, k, min_support)?);
        }
        sort_canonical(&mut all);
        Ok(all)
    }
}

/// Validate the `(k, min_support)` arguments shared by all miners.
pub(crate) fn validate_mining_args(k: usize, min_support: u64) -> Result<()> {
    if k == 0 {
        return Err(MiningError::InvalidParameter {
            name: "k",
            reason: "itemset size must be at least 1".into(),
        });
    }
    if min_support == 0 {
        return Err(MiningError::InvalidParameter {
            name: "min_support",
            reason: "support threshold must be at least 1".into(),
        });
    }
    Ok(())
}

/// Enumeration of the available mining algorithms, for configuration surfaces
/// (benchmarks, the high-level analyzer) that want to select one by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum MinerKind {
    /// Level-wise Apriori with hybrid candidate counting (the default: its work is
    /// proportional to the number of candidates, which is tiny at the high supports
    /// the paper's procedures operate at).
    #[default]
    Apriori,
    /// Depth-first Eclat over vertical tid-lists.
    Eclat,
    /// FP-Growth over an FP-tree.
    FpGrowth,
    /// Exhaustive enumeration of all `C(n', k)` candidate combinations of frequent
    /// items. Reference implementation for tests; infeasible for large `n'`.
    BruteForce,
    /// Subtree-parallel depth-first bitset Eclat
    /// ([`crate::par_eclat::ParallelEclat`]): item subtrees fan out across
    /// workers, bit-identical to `Eclat` at any worker count.
    ParEclat,
}

impl MinerKind {
    /// All algorithm kinds (useful for cross-checking tests and benches).
    pub const ALL: [MinerKind; 5] = [
        MinerKind::Apriori,
        MinerKind::Eclat,
        MinerKind::FpGrowth,
        MinerKind::BruteForce,
        MinerKind::ParEclat,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            MinerKind::Apriori => "apriori",
            MinerKind::Eclat => "eclat",
            MinerKind::FpGrowth => "fp-growth",
            MinerKind::BruteForce => "brute-force",
            MinerKind::ParEclat => "par-eclat",
        }
    }

    /// Mine with the selected algorithm.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KItemsetMiner::mine_k`].
    pub fn mine_k(
        &self,
        dataset: &TransactionDataset,
        k: usize,
        min_support: u64,
    ) -> Result<Vec<ItemsetSupport>> {
        match self {
            MinerKind::Apriori => {
                dispatch::record(DispatchPath::Apriori);
                Apriori::default().mine_k(dataset, k, min_support)
            }
            MinerKind::Eclat => {
                dispatch::record(DispatchPath::Eclat);
                Eclat.mine_k(dataset, k, min_support)
            }
            MinerKind::FpGrowth => {
                dispatch::record(DispatchPath::FpGrowth);
                FpGrowth.mine_k(dataset, k, min_support)
            }
            MinerKind::BruteForce => {
                dispatch::record(DispatchPath::BruteForce);
                BruteForce.mine_k(dataset, k, min_support)
            }
            // The parallel miner records its own (more specific) counters at
            // its bitmap/sharded entry points.
            MinerKind::ParEclat => ParallelEclat::default().mine_k(dataset, k, min_support),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_args_are_rejected_uniformly() {
        let d = TransactionDataset::from_transactions(2, vec![vec![0, 1]]).unwrap();
        for kind in MinerKind::ALL {
            assert!(kind.mine_k(&d, 0, 1).is_err(), "{}", kind.name());
            assert!(kind.mine_k(&d, 2, 0).is_err(), "{}", kind.name());
        }
    }

    #[test]
    fn kind_names_are_unique() {
        let mut names: Vec<_> = MinerKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), MinerKind::ALL.len());
    }

    #[test]
    fn default_kind_is_apriori() {
        assert_eq!(MinerKind::default(), MinerKind::Apriori);
    }
}

//! Support counting utilities.
//!
//! The paper's procedures never need *all* frequent itemsets of every size — they
//! need, for a fixed size `k`:
//!
//! * the supports of an explicit list of candidate k-itemsets (Algorithm 1 tracks the
//!   supports of the itemset pool `W` across Δ random datasets), and
//! * the count `Q_{k,s}` of k-itemsets with support at least `s`, for a whole range
//!   of thresholds `s` (Procedure 2 probes `s_i = s_min + 2^i`).
//!
//! Both are served here. [`supports_of`] batch-counts explicit candidates by
//! intersecting the vertical tid-lists of their items; [`SupportProfile`] materializes
//! the supports of every k-itemset above a floor threshold once and then answers
//! `Q_{k,s}` queries for any `s` above the floor in `O(log)` time.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use sigfim_datasets::bitmap::{
    and_count, and_count_into, BitmapDataset, ColumnsRef, DatasetBackend,
};
use sigfim_datasets::sharded::ShardedBitmapDataset;
use sigfim_datasets::spill::SpilledShards;
use sigfim_datasets::transaction::{ItemId, TransactionDataset, TransactionId};
use sigfim_datasets::view::DatasetView;
use sigfim_datasets::ResolvedBackend;
use sigfim_exec::ExecutionPolicy;

use crate::apriori::Apriori;
use crate::eclat::Eclat;
use crate::itemset::ItemsetSupport;
use crate::miner::KItemsetMiner;
use crate::Result;

/// Length ratio beyond which intersections switch from a linear merge to
/// galloping (exponential) search through the longer list: at ≥8× skew the
/// `O(short · log(long/short))` gallop beats walking the long list element by
/// element.
const GALLOP_SKEW: usize = 8;

/// Upper bound on the eagerly reserved capacity of a materialized
/// intersection. Real intersections are usually far smaller than
/// `min(|a|, |b|)`, so reserving that much up front wastes memory on dense
/// datasets; beyond this cap the vector simply grows geometrically.
const INTERSECT_CAPACITY_CAP: usize = 1024;

/// The first index `>= from` at which `list` holds a value `>= target`, found
/// by exponential (galloping) probing followed by a binary search of the
/// bracketed window. `list` must be sorted ascending.
#[inline]
fn first_index_ge(list: &[TransactionId], from: usize, target: TransactionId) -> usize {
    if from >= list.len() || list[from] >= target {
        return from;
    }
    // Invariant entering the binary search: list[from + bound/2] < target.
    let mut bound = 1usize;
    while from + bound < list.len() && list[from + bound] < target {
        bound <<= 1;
    }
    let lo = from + bound / 2 + 1;
    let hi = (from + bound).min(list.len());
    lo + list[lo..hi].partition_point(|&y| y < target)
}

/// Walk the shorter list, galloping through the longer one, invoking `found`
/// on every common element (in ascending order). Requires `short.len() <=
/// long.len()`; both lists sorted ascending.
#[inline]
fn gallop_common<F: FnMut(TransactionId)>(
    short: &[TransactionId],
    long: &[TransactionId],
    mut found: F,
) {
    let mut from = 0usize;
    for &x in short {
        from = first_index_ge(long, from, x);
        if from == long.len() {
            return;
        }
        if long[from] == x {
            found(x);
            from += 1;
        }
    }
}

/// Intersect two sorted transaction-id lists: a linear merge for comparable
/// lengths, galloping search through the longer list at ≥8× skew.
pub fn intersect_tids(a: &[TransactionId], b: &[TransactionId]) -> Vec<TransactionId> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(short.len().min(INTERSECT_CAPACITY_CAP));
    if long.len() >= GALLOP_SKEW * short.len() {
        gallop_common(short, long, |x| out.push(x));
        return out;
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Size of the intersection of two sorted tid-lists without materializing it
/// (same linear/galloping dispatch as [`intersect_tids`]).
pub fn intersection_size(a: &[TransactionId], b: &[TransactionId]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut count = 0usize;
    if long.len() >= GALLOP_SKEW * short.len() {
        gallop_common(short, long, |_| count += 1);
        return count;
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Batch support counting for an explicit list of itemsets, dispatched through
/// [`SupportCounter`]: when all itemsets share one (positive) size, the counting
/// path is selected from the dataset's density via
/// [`CountingStrategy::for_dataset`]; mixed-size lists always take the tid-list
/// path (the horizontal pass requires a uniform subset size).
///
/// Itemsets must be sorted and duplicate-free (as produced by every miner in this
/// crate). Empty itemsets get support `t` by convention.
pub fn supports_of(dataset: &TransactionDataset, itemsets: &[Vec<ItemId>]) -> Vec<u64> {
    let uniform_k = itemsets
        .first()
        .map(|set| set.len())
        .filter(|&k| k > 0 && itemsets.iter().all(|set| set.len() == k));
    match uniform_k {
        Some(k) => CountingStrategy::for_dataset(dataset, k, itemsets.len())
            .counter()
            .count(dataset, itemsets),
        None => TidListCounter.count(dataset, itemsets),
    }
}

/// Support of one itemset given pre-built tid-lists. Intersections are performed
/// starting from the rarest item so the working list shrinks as fast as possible.
pub fn support_from_tidlists(
    tid_lists: &[Vec<TransactionId>],
    itemset: &[ItemId],
    num_transactions: usize,
) -> u64 {
    if itemset.is_empty() {
        return num_transactions as u64;
    }
    // Order the items by ascending tid-list length.
    let mut order: Vec<&Vec<TransactionId>> =
        itemset.iter().map(|&i| &tid_lists[i as usize]).collect();
    order.sort_by_key(|l| l.len());
    if order.len() == 1 {
        return order[0].len() as u64;
    }
    if order.len() == 2 {
        return intersection_size(order[0], order[1]) as u64;
    }
    let mut current = intersect_tids(order[0], order[1]);
    for list in &order[2..] {
        if current.is_empty() {
            return 0;
        }
        current = intersect_tids(&current, list);
    }
    current.len() as u64
}

/// Count, for each candidate, the number of transactions containing it, using a
/// horizontal pass over the dataset and a hash lookup per transaction k-subset.
/// Used by the Apriori miner when subset enumeration is cheaper than per-candidate
/// scans; exposed for testing and benchmarking against the vertical strategy.
pub fn count_candidates_horizontal(
    dataset: &TransactionDataset,
    candidates: &[Vec<ItemId>],
) -> Vec<u64> {
    if candidates.is_empty() {
        return Vec::new();
    }
    let k = candidates[0].len();
    debug_assert!(candidates.iter().all(|c| c.len() == k));
    // Duplicate candidates all alias the first occurrence's counter (and are
    // copied back out at the end), so repeats in the input list do not lose
    // their counts to the hash lookup keeping only one slot per itemset.
    let mut index: HashMap<&[ItemId], usize> = HashMap::with_capacity(candidates.len());
    for (i, c) in candidates.iter().enumerate() {
        index.entry(c.as_slice()).or_insert(i);
    }
    let mut counts = vec![0u64; candidates.len()];
    // Only items that occur in some candidate can contribute to a match.
    let mut relevant = vec![false; dataset.num_items() as usize];
    for c in candidates {
        for &i in c {
            relevant[i as usize] = true;
        }
    }
    let mut restricted: Vec<ItemId> = Vec::new();
    for txn in dataset.iter() {
        restricted.clear();
        restricted.extend(txn.iter().copied().filter(|&i| relevant[i as usize]));
        if restricted.len() < k {
            continue;
        }
        crate::itemset::for_each_k_subset(&restricted, k, |subset| {
            if let Some(&idx) = index.get(subset) {
                counts[idx] += 1;
            }
        });
    }
    for (i, c) in candidates.iter().enumerate() {
        counts[i] = counts[index[c.as_slice()]];
    }
    counts
}

/// The unified interface over the two support-counting paths: a horizontal pass
/// hashing transaction subsets, or vertical tid-list intersections.
///
/// Every consumer that needs candidate supports — the miners' level counting,
/// [`supports_of`], and through the miners Procedures 1 and 2 — goes through
/// this trait, selecting an implementation per dataset density via
/// [`CountingStrategy::for_density`] (or forcing one for ablations).
pub trait SupportCounter {
    /// Human-readable name for benchmark output and reports.
    fn name(&self) -> &'static str;

    /// Exact support of each candidate itemset. Candidates must be sorted and
    /// duplicate-free; for [`HorizontalCounter`] they must also share one size.
    fn count(&self, dataset: &TransactionDataset, candidates: &[Vec<ItemId>]) -> Vec<u64>;

    /// Like [`SupportCounter::count`], reusing pre-built tid-lists when the
    /// implementation can (the horizontal path ignores them).
    fn count_with_tidlists(
        &self,
        dataset: &TransactionDataset,
        _tid_lists: &[Vec<TransactionId>],
        candidates: &[Vec<ItemId>],
    ) -> Vec<u64> {
        self.count(dataset, candidates)
    }
}

/// Support counting by one horizontal pass over the transactions, hashing each
/// transaction's k-subsets into the candidate table. Cheap when transactions
/// restricted to frequent items are short but candidates are many (dense,
/// short-transaction datasets).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HorizontalCounter;

impl SupportCounter for HorizontalCounter {
    fn name(&self) -> &'static str {
        "horizontal"
    }

    fn count(&self, dataset: &TransactionDataset, candidates: &[Vec<ItemId>]) -> Vec<u64> {
        count_candidates_horizontal(dataset, candidates)
    }
}

/// Support counting by intersecting the vertical tid-lists of each candidate's
/// items. Cheap when there are few candidates relative to the transaction count
/// (sparse datasets at high thresholds — the regime the paper's procedures
/// operate in).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TidListCounter;

impl SupportCounter for TidListCounter {
    fn name(&self) -> &'static str {
        "tid-list"
    }

    fn count(&self, dataset: &TransactionDataset, candidates: &[Vec<ItemId>]) -> Vec<u64> {
        self.count_with_tidlists(dataset, &dataset.tid_lists(), candidates)
    }

    fn count_with_tidlists(
        &self,
        dataset: &TransactionDataset,
        tid_lists: &[Vec<TransactionId>],
        candidates: &[Vec<ItemId>],
    ) -> Vec<u64> {
        candidates
            .iter()
            .map(|c| support_from_tidlists(tid_lists, c, dataset.num_transactions()))
            .collect()
    }
}

/// Support counting by AND + popcount over vertical bit-columns. Cheap on
/// dense datasets, where a tid-list walk touches ~64× more memory than the
/// word-parallel bitmap; the CSR entry point pays one bitmap build per batch,
/// so it wants enough candidates to amortize (callers holding a
/// [`BitmapDataset`] already should use [`count_candidates_bitmap`] directly).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitmapCounter;

impl SupportCounter for BitmapCounter {
    fn name(&self) -> &'static str {
        "bitmap"
    }

    fn count(&self, dataset: &TransactionDataset, candidates: &[Vec<ItemId>]) -> Vec<u64> {
        let bitmap = BitmapDataset::from_dataset(dataset);
        count_candidates_bitmap(&bitmap, candidates)
    }
}

/// Batch support counting for candidates against a vertical bitmap: AND +
/// popcount over each candidate's bit-columns, rarest column first. One word
/// buffer and one ordering buffer are reused across the whole batch, so the
/// count allocates nothing per candidate. Handles mixed sizes; empty itemsets
/// get support `t` by convention.
pub fn count_candidates_bitmap(bitmap: &BitmapDataset, candidates: &[Vec<ItemId>]) -> Vec<u64> {
    count_candidates_bitmap_with_supports(bitmap, &bitmap.item_supports(), candidates)
}

/// Like [`count_candidates_bitmap`], but with the per-item supports (used for
/// the rarest-first ordering and as the answers for singleton candidates)
/// supplied by the caller — so a level-wise miner that counts many batches
/// against the same bitmap scans its columns for supports only once.
pub fn count_candidates_bitmap_with_supports(
    bitmap: &BitmapDataset,
    item_supports: &[u64],
    candidates: &[Vec<ItemId>],
) -> Vec<u64> {
    count_candidates_columns_with_supports(bitmap.as_columns(), item_supports, candidates)
}

/// The representation-free core of [`count_candidates_bitmap_with_supports`]:
/// counts against any borrowed [`ColumnsRef`], so the same loop serves an
/// owned [`BitmapDataset`], one shard of a sharded view, or a shard mapped
/// back from a spill file (the spilled path counts straight out of the
/// mapping, no copy). `item_supports` are the supports *within these columns*
/// (used for rarest-first ordering and as singleton answers).
pub fn count_candidates_columns_with_supports(
    columns: ColumnsRef<'_>,
    item_supports: &[u64],
    candidates: &[Vec<ItemId>],
) -> Vec<u64> {
    debug_assert_eq!(item_supports.len(), columns.num_items() as usize);
    let mut scratch: Vec<u64> = Vec::with_capacity(columns.words_per_column());
    let mut order: Vec<ItemId> = Vec::new();
    candidates
        .iter()
        .map(|candidate| match candidate.as_slice() {
            [] => columns.num_transactions() as u64,
            [single] => item_supports[*single as usize],
            [a, b] => and_count(columns.column(*a), columns.column(*b)),
            items => {
                order.clear();
                order.extend_from_slice(items);
                order.sort_unstable_by_key(|&i| item_supports[i as usize]);
                scratch.clear();
                scratch.extend_from_slice(columns.column(order[0]));
                let mut support = item_supports[order[0] as usize];
                for &item in &order[1..] {
                    if support == 0 {
                        break;
                    }
                    support = and_count_into(&mut scratch, columns.column(item));
                }
                support
            }
        })
        .collect()
}

/// [`supports_of`] over a [`DatasetView`]: the CSR side keeps its
/// density-dispatched counting, the bitmap side counts by AND + popcount
/// directly on the columns it already has, and the sharded side reduces
/// per-shard partial counts (sequentially here — callers that want the
/// fan-out use [`crate::sharded::count_candidates_sharded`] with a policy).
pub fn supports_of_view(view: DatasetView<'_>, itemsets: &[Vec<ItemId>]) -> Vec<u64> {
    match view {
        DatasetView::Csr(dataset) => supports_of(dataset, itemsets),
        DatasetView::Bitmap(bitmap) => count_candidates_bitmap(bitmap, itemsets),
        DatasetView::Sharded(sharded) => {
            crate::sharded::count_candidates_sharded(sharded, itemsets, ExecutionPolicy::Sequential)
        }
    }
}

/// How candidate supports are counted within one mining level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CountingStrategy {
    /// Intersect vertical tid-lists per candidate ([`TidListCounter`]).
    Vertical,
    /// Hash each transaction's subsets into the candidate table
    /// ([`HorizontalCounter`]).
    Horizontal,
    /// AND + popcount over vertical bit-columns ([`BitmapCounter`]).
    Bitmap,
}

impl CountingStrategy {
    /// The counter implementing this strategy.
    pub fn counter(self) -> &'static dyn SupportCounter {
        match self {
            CountingStrategy::Vertical => &TidListCounter,
            CountingStrategy::Horizontal => &HorizontalCounter,
            CountingStrategy::Bitmap => &BitmapCounter,
        }
    }

    /// Choose a strategy from the dataset's density profile: compare the
    /// estimated subset-enumeration work of a horizontal pass (`t · C(len, k)`
    /// per transaction restricted to relevant items), the tid-list walks of a
    /// vertical pass (`candidates · k` lists of average length `t · density`),
    /// and the word-parallel AND + popcount of a bitmap pass
    /// (`candidates · k · ⌈t/64⌉` words, plus the one-time column build of
    /// `n · ⌈t/64⌉ + entries` words when no bitmap exists yet).
    ///
    /// This is the *per-level* choice used inside a running miner, which
    /// already holds tid-lists. It selects [`CountingStrategy::Bitmap`] only
    /// once the level's candidate count amortizes the bitmap build — and a
    /// miner that has already built (and kept) a bitmap for an earlier level
    /// passes `bitmap_ready = true`, making the build free and the bitmap
    /// correspondingly easier to justify for the remaining levels.
    /// Whole-batch counting against a cold dataset goes through the three-way
    /// [`CountingStrategy::for_dataset`] instead.
    pub fn for_density(
        num_candidates: usize,
        avg_restricted_len: f64,
        num_transactions: usize,
        num_items: usize,
        level: usize,
        bitmap_ready: bool,
    ) -> CountingStrategy {
        let horizontal_work = num_transactions as f64
            * crate::itemset::binomial_u64(avg_restricted_len.round() as u64, level as u64) as f64;
        let vertical_work =
            num_candidates as f64 * level as f64 * (num_transactions as f64 * 0.1).max(16.0);
        let words = num_transactions.div_ceil(64);
        let build_work = if bitmap_ready {
            0.0
        } else {
            // Column build: touch every word once plus one strided store per
            // incidence (≈ t · avg restricted length entries).
            (num_items * words) as f64 + num_transactions as f64 * avg_restricted_len
        };
        let bitmap_work = build_work + num_candidates as f64 * level as f64 * words.max(16) as f64;
        if horizontal_work <= vertical_work && horizontal_work <= bitmap_work {
            CountingStrategy::Horizontal
        } else if bitmap_work < vertical_work {
            CountingStrategy::Bitmap
        } else {
            CountingStrategy::Vertical
        }
    }

    /// Choose a strategy for counting `num_candidates` k-itemset candidates
    /// against a whole dataset, deriving the density from the dataset itself.
    ///
    /// Three-way comparison of estimated work (in touched-word units):
    ///
    /// * horizontal — `t · C(avg_len, k)` subset enumerations,
    /// * tid-list — `entries` to build the lists plus `k · density · t` ids
    ///   walked per candidate,
    /// * bitmap — `n · ⌈t/64⌉ + entries` to build the columns plus
    ///   `k · ⌈t/64⌉` words ANDed per candidate; the word-parallel factor of 64
    ///   is what makes it win on dense matrices with enough candidates to
    ///   amortize the build.
    pub fn for_dataset(
        dataset: &TransactionDataset,
        k: usize,
        num_candidates: usize,
    ) -> CountingStrategy {
        let t = dataset.num_transactions();
        let n = dataset.num_items() as usize;
        let entries = dataset.num_entries();
        let avg_len = if t == 0 {
            0.0
        } else {
            entries as f64 / t as f64
        };
        let level = k.max(1);

        let horizontal_work =
            t as f64 * crate::itemset::binomial_u64(avg_len.round() as u64, level as u64) as f64;
        let density = if n * t == 0 {
            0.0
        } else {
            entries as f64 / (n * t) as f64
        };
        let tidlist_work =
            entries as f64 + num_candidates as f64 * level as f64 * (density * t as f64).max(16.0);
        let words = t.div_ceil(64);
        let bitmap_work = (n * words + entries) as f64
            + num_candidates as f64 * level as f64 * words.max(16) as f64;

        if horizontal_work <= tidlist_work && horizontal_work <= bitmap_work {
            CountingStrategy::Horizontal
        } else if bitmap_work < tidlist_work {
            CountingStrategy::Bitmap
        } else {
            CountingStrategy::Vertical
        }
    }
}

/// The number of k-itemsets with support at least `s` in the dataset (`Q_{k,s}` in
/// the paper), computed by mining at threshold `s` with Apriori.
///
/// # Errors
///
/// Propagates miner errors (invalid `k` or threshold).
pub fn q_k_s(dataset: &TransactionDataset, k: usize, s: u64) -> Result<u64> {
    Ok(Apriori::default().mine_k(dataset, k, s)?.len() as u64)
}

/// The supports of every k-itemset whose support is at least a floor threshold,
/// stored sorted descending so that `Q_{k,s}` for any `s ≥ floor` is a binary search.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupportProfile {
    k: usize,
    floor: u64,
    /// Supports of all k-itemsets with support ≥ `floor`, sorted descending.
    supports: Vec<u64>,
}

impl SupportProfile {
    /// Mine the dataset once at threshold `floor` and record the support of every
    /// frequent k-itemset.
    ///
    /// # Errors
    ///
    /// Propagates miner errors (e.g. `k = 0` or `floor = 0`).
    pub fn new(dataset: &TransactionDataset, k: usize, floor: u64) -> Result<Self> {
        Self::with_miner(crate::miner::MinerKind::Apriori, dataset, k, floor)
    }

    /// Like [`SupportProfile::new`], but mining with an explicitly selected
    /// algorithm (each of which counts through the density-selected
    /// [`SupportCounter`]).
    ///
    /// # Errors
    ///
    /// Propagates miner errors (e.g. `k = 0` or `floor = 0`).
    pub fn with_miner(
        miner: crate::miner::MinerKind,
        dataset: &TransactionDataset,
        k: usize,
        floor: u64,
    ) -> Result<Self> {
        let mined = miner.mine_k(dataset, k, floor)?;
        Ok(Self::from_itemsets(k, floor, &mined))
    }

    /// Like [`SupportProfile::with_miner`], but honoring a dataset-backend
    /// choice: when `backend` resolves to the bitmap for this dataset, the
    /// profile is mined by the bitset Eclat variant
    /// ([`Eclat::mine_k_bitmap`]) over a bitmap built once from the CSR data —
    /// the requested `miner` only applies on the CSR path. All miners and
    /// backends return identical profiles; the choice is purely about speed.
    ///
    /// # Errors
    ///
    /// Propagates miner errors (e.g. `k = 0` or `floor = 0`).
    pub fn with_backend(
        miner: crate::miner::MinerKind,
        dataset: &TransactionDataset,
        k: usize,
        floor: u64,
        backend: DatasetBackend,
    ) -> Result<Self> {
        match backend.resolve_for_dataset(dataset) {
            ResolvedBackend::Csr => Self::with_miner(miner, dataset, k, floor),
            ResolvedBackend::Bitmap => {
                Self::from_bitmap(&BitmapDataset::from_dataset(dataset), k, floor)
            }
            ResolvedBackend::ShardedBitmap => Self::from_sharded(
                &ShardedBitmapDataset::from_dataset(dataset),
                k,
                floor,
                ExecutionPolicy::Sequential,
            ),
        }
    }

    /// Mine the profile from an existing vertical bitmap with the bitset Eclat
    /// variant.
    ///
    /// # Errors
    ///
    /// Propagates miner errors (e.g. `k = 0` or `floor = 0`).
    pub fn from_bitmap(bitmap: &BitmapDataset, k: usize, floor: u64) -> Result<Self> {
        let mined = Eclat.mine_k_bitmap(bitmap, k, floor)?;
        Ok(Self::from_itemsets(k, floor, &mined))
    }

    /// Mine the profile from a transaction-sharded bitmap: the level-wise
    /// sweep of [`crate::sharded::mine_k_sharded`], whose per-level counting
    /// pass fans each shard out to a worker under `policy`. Identical
    /// profiles at any shard width and worker count (partial counts are exact
    /// and reduced in fixed shard order).
    ///
    /// # Errors
    ///
    /// Propagates miner errors (e.g. `k = 0` or `floor = 0`).
    pub fn from_sharded(
        sharded: &ShardedBitmapDataset,
        k: usize,
        floor: u64,
        policy: ExecutionPolicy,
    ) -> Result<Self> {
        let mined = crate::sharded::mine_k_sharded(sharded, k, floor, policy)?;
        Ok(Self::from_itemsets(k, floor, &mined))
    }

    /// Mine the profile from an out-of-core spilled dataset: the same
    /// level-wise sweep as [`SupportProfile::from_sharded`], but each worker
    /// pins its shard through the residency set, faulting cold shards back
    /// from their spill files on demand. Bit-identical to every resident
    /// constructor at any residency budget, worker count, or kernel.
    ///
    /// # Errors
    ///
    /// Propagates miner errors (e.g. `k = 0` or `floor = 0`).
    pub fn from_spilled(
        spilled: &SpilledShards,
        k: usize,
        floor: u64,
        policy: ExecutionPolicy,
    ) -> Result<Self> {
        let mined = crate::sharded::mine_k_spilled(spilled, k, floor, policy)?;
        Ok(Self::from_itemsets(k, floor, &mined))
    }

    /// Like [`SupportProfile::from_spilled`], but mining with the
    /// subtree-parallel [`crate::par_eclat::ParallelEclat`] when the
    /// residency budget holds every shard (falling back to the level-wise
    /// spilled sweep when it does not — a depth-first search re-visits
    /// columns far too often to page shards through a small budget).
    ///
    /// # Errors
    ///
    /// Propagates miner errors (e.g. `k = 0` or `floor = 0`).
    pub fn from_spilled_parallel(
        spilled: &SpilledShards,
        k: usize,
        floor: u64,
        policy: ExecutionPolicy,
    ) -> Result<Self> {
        let mined =
            crate::par_eclat::ParallelEclat::new(policy).mine_k_spilled(spilled, k, floor)?;
        Ok(Self::from_itemsets(k, floor, &mined))
    }

    /// Like [`SupportProfile::from_bitmap`], but mining with the
    /// subtree-parallel [`crate::par_eclat::ParallelEclat`] under `policy`.
    /// The profile is bit-identical to [`SupportProfile::from_bitmap`] at any
    /// worker count — the parallel miner's output equals the sequential one
    /// exactly, and [`SupportProfile::from_itemsets`] only sorts supports.
    ///
    /// # Errors
    ///
    /// Propagates miner errors (e.g. `k = 0` or `floor = 0`).
    pub fn from_bitmap_parallel(
        bitmap: &BitmapDataset,
        k: usize,
        floor: u64,
        policy: ExecutionPolicy,
    ) -> Result<Self> {
        let mined = crate::par_eclat::ParallelEclat::new(policy).mine_k_bitmap(bitmap, k, floor)?;
        Ok(Self::from_itemsets(k, floor, &mined))
    }

    /// Like [`SupportProfile::from_sharded`], but mining with the
    /// subtree-parallel [`crate::par_eclat::ParallelEclat`] composed with the
    /// sharded layout (subtree × shard). Bit-identical to every other
    /// constructor at any worker count and shard width.
    ///
    /// # Errors
    ///
    /// Propagates miner errors (e.g. `k = 0` or `floor = 0`).
    pub fn from_sharded_parallel(
        sharded: &ShardedBitmapDataset,
        k: usize,
        floor: u64,
        policy: ExecutionPolicy,
    ) -> Result<Self> {
        let mined =
            crate::par_eclat::ParallelEclat::new(policy).mine_k_sharded(sharded, k, floor)?;
        Ok(Self::from_itemsets(k, floor, &mined))
    }

    /// Build a profile from an already-mined list of k-itemsets (all with support
    /// ≥ `floor`).
    pub fn from_itemsets(k: usize, floor: u64, itemsets: &[ItemsetSupport]) -> Self {
        let mut supports: Vec<u64> = itemsets.iter().map(|i| i.support).collect();
        supports.sort_unstable_by(|a, b| b.cmp(a));
        SupportProfile { k, floor, supports }
    }

    /// The itemset size this profile describes.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The floor threshold below which the profile has no information.
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// `Q_{k,s}`: the number of k-itemsets with support at least `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s < floor` — the profile holds no information below its floor, and
    /// silently returning a wrong count would corrupt the statistics downstream.
    pub fn q_at(&self, s: u64) -> u64 {
        assert!(
            s >= self.floor,
            "SupportProfile was built with floor {} but was queried at s = {s}",
            self.floor
        );
        // supports is sorted descending; count entries >= s.
        self.supports.partition_point(|&x| x >= s) as u64
    }

    /// The largest support of any k-itemset (0 if none reach the floor).
    pub fn max_support(&self) -> u64 {
        self.supports.first().copied().unwrap_or(0)
    }

    /// Number of itemsets at or above the floor.
    pub fn len(&self) -> usize {
        self.supports.len()
    }

    /// True if no itemset reaches the floor.
    pub fn is_empty(&self) -> bool {
        self.supports.is_empty()
    }

    /// The raw descending support values.
    pub fn supports(&self) -> &[u64] {
        &self.supports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TransactionDataset {
        // Items 0,1 co-occur in 4 transactions; 0,1,2 in 2; item 3 is rare.
        TransactionDataset::from_transactions(
            4,
            vec![
                vec![0, 1, 2],
                vec![0, 1, 2],
                vec![0, 1],
                vec![0, 1, 3],
                vec![0],
                vec![1],
                vec![2, 3],
            ],
        )
        .unwrap()
    }

    #[test]
    fn tid_intersections() {
        assert_eq!(intersect_tids(&[1, 3, 5, 7], &[2, 3, 5, 8]), vec![3, 5]);
        assert_eq!(intersect_tids(&[], &[1, 2]), Vec::<TransactionId>::new());
        assert_eq!(intersection_size(&[1, 3, 5, 7], &[2, 3, 5, 8]), 2);
        assert_eq!(intersection_size(&[1, 2, 3], &[4, 5]), 0);
    }

    #[test]
    fn galloping_path_matches_linear_merge() {
        // A long list (0, 3, 6, …) against short lists of various shapes: the
        // ≥8× skew triggers the galloping path, which must agree with a plain
        // merge in content, order and count — in both argument orders.
        let long: Vec<TransactionId> = (0..4000).map(|i| i * 3).collect();
        let reference = |a: &[TransactionId], b: &[TransactionId]| -> Vec<TransactionId> {
            a.iter().copied().filter(|x| b.contains(x)).collect()
        };
        let shorts: Vec<Vec<TransactionId>> = vec![
            vec![],
            vec![0],
            vec![1],
            vec![11999],
            vec![12000],
            vec![0, 2999, 3000, 3001, 11997, 20000],
            (0..40).map(|i| i * 301).collect(),
            (5990..6010).collect(),
        ];
        for short in &shorts {
            let expected = reference(short, &long);
            assert_eq!(intersect_tids(short, &long), expected, "short = {short:?}");
            assert_eq!(intersect_tids(&long, short), expected, "short = {short:?}");
            assert_eq!(intersection_size(short, &long), expected.len());
            assert_eq!(intersection_size(&long, short), expected.len());
        }
    }

    #[test]
    fn first_index_ge_brackets_correctly() {
        let list: Vec<TransactionId> = vec![2, 4, 4, 8, 16, 32, 64];
        assert_eq!(first_index_ge(&list, 0, 0), 0);
        assert_eq!(first_index_ge(&list, 0, 2), 0);
        assert_eq!(first_index_ge(&list, 0, 3), 1);
        assert_eq!(first_index_ge(&list, 0, 4), 1);
        assert_eq!(first_index_ge(&list, 2, 4), 2);
        assert_eq!(first_index_ge(&list, 0, 5), 3);
        assert_eq!(first_index_ge(&list, 0, 64), 6);
        assert_eq!(first_index_ge(&list, 0, 65), 7);
        assert_eq!(first_index_ge(&list, 7, 1), 7);
    }

    #[test]
    fn bitmap_counter_matches_other_paths() {
        let d = toy();
        let candidates = vec![
            vec![0, 1],
            vec![0, 2],
            vec![1, 2],
            vec![2, 3],
            vec![0, 1, 2],
            vec![0, 1, 3],
        ];
        let expected: Vec<u64> = candidates.iter().map(|c| d.itemset_support(c)).collect();
        assert_eq!(BitmapCounter.count(&d, &candidates), expected);
        // Mixed sizes and the empty itemset go through the batch path too.
        let mixed = vec![vec![], vec![2], vec![0, 1], vec![0, 1, 2]];
        let bitmap = sigfim_datasets::BitmapDataset::from_dataset(&d);
        let got = count_candidates_bitmap(&bitmap, &mixed);
        let expected: Vec<u64> = mixed.iter().map(|c| d.itemset_support(c)).collect();
        assert_eq!(got, expected);
        assert_eq!(BitmapCounter.name(), "bitmap");
    }

    #[test]
    fn view_counting_dispatches_to_both_backends() {
        let d = toy();
        let bitmap = sigfim_datasets::BitmapDataset::from_dataset(&d);
        let sets = vec![vec![0, 1], vec![0, 1, 2], vec![]];
        let expected: Vec<u64> = sets.iter().map(|s| d.itemset_support(s)).collect();
        assert_eq!(supports_of_view(DatasetView::Csr(&d), &sets), expected);
        assert_eq!(
            supports_of_view(DatasetView::Bitmap(&bitmap), &sets),
            expected
        );
    }

    #[test]
    fn strategy_counter_round_trip() {
        for strategy in [
            CountingStrategy::Vertical,
            CountingStrategy::Horizontal,
            CountingStrategy::Bitmap,
        ] {
            let d = toy();
            let candidates = vec![vec![0, 1], vec![1, 2]];
            let expected: Vec<u64> = candidates.iter().map(|c| d.itemset_support(c)).collect();
            assert_eq!(
                strategy.counter().count(&d, &candidates),
                expected,
                "{}",
                strategy.counter().name()
            );
        }
    }

    #[test]
    fn for_dataset_prefers_bitmap_on_dense_many_candidate_batches() {
        // Dense matrix, many candidates: bitmap. (400 transactions, 20 items,
        // density ~0.5 — a tid-list walk is ~200 ids per item, the bitmap 7
        // words.)
        let dense = TransactionDataset::from_transactions(
            20,
            (0..400)
                .map(|i| (0..20).filter(|j| (i + j) % 2 == 0).collect())
                .collect(),
        )
        .unwrap();
        assert_eq!(
            CountingStrategy::for_dataset(&dense, 3, 500),
            CountingStrategy::Bitmap
        );
        // Sparse data keeps the tid-list walks short, so the word-parallel
        // payoff never materializes there: with ~1% density the per-candidate
        // cost floors are equal and the bitmap's larger build cost loses.
        let sparse = TransactionDataset::from_transactions(
            200,
            (0..500)
                .map(|i| vec![(i % 200) as ItemId, ((i * 7) % 200) as ItemId])
                .collect(),
        )
        .unwrap();
        assert_ne!(
            CountingStrategy::for_dataset(&sparse, 2, 50),
            CountingStrategy::Bitmap
        );
        // Degenerate empty datasets never pick the bitmap either.
        assert_ne!(
            CountingStrategy::for_dataset(&TransactionDataset::empty(5), 2, 10),
            CountingStrategy::Bitmap
        );
    }

    #[test]
    fn batch_supports_match_reference() {
        let d = toy();
        let sets = vec![
            vec![0],
            vec![0, 1],
            vec![0, 1, 2],
            vec![0, 3],
            vec![2, 3],
            vec![],
        ];
        let got = supports_of(&d, &sets);
        let expected: Vec<u64> = sets.iter().map(|s| d.itemset_support(s)).collect();
        assert_eq!(got, expected);
        assert_eq!(got, vec![5, 4, 2, 1, 1, 7]);
    }

    #[test]
    fn horizontal_counting_matches_vertical() {
        let d = toy();
        let candidates = vec![vec![0, 1], vec![0, 2], vec![1, 2], vec![2, 3]];
        let horizontal = count_candidates_horizontal(&d, &candidates);
        let vertical = supports_of(&d, &candidates);
        assert_eq!(horizontal, vertical);
    }

    #[test]
    fn duplicate_candidates_each_get_their_full_support() {
        // A repeated candidate must report its support at every position under
        // both counting paths (the horizontal hash index aliases duplicates).
        let d = toy();
        let candidates = vec![vec![0, 1], vec![1, 2], vec![0, 1]];
        let expected: Vec<u64> = candidates.iter().map(|c| d.itemset_support(c)).collect();
        assert_eq!(
            expected[0], expected[2],
            "sanity: duplicates share a support"
        );
        assert_eq!(count_candidates_horizontal(&d, &candidates), expected);
        assert_eq!(TidListCounter.count(&d, &candidates), expected);
        assert_eq!(supports_of(&d, &candidates), expected);
    }

    #[test]
    fn q_counts() {
        let d = toy();
        assert_eq!(q_k_s(&d, 2, 4).unwrap(), 1); // only {0,1}
        assert_eq!(q_k_s(&d, 2, 2).unwrap(), 3); // {0,1}, {0,2}, {1,2}
        assert_eq!(q_k_s(&d, 3, 2).unwrap(), 1); // {0,1,2}
        assert_eq!(q_k_s(&d, 3, 3).unwrap(), 0);
    }

    #[test]
    fn support_profile_answers_q_queries() {
        let d = toy();
        let profile = SupportProfile::new(&d, 2, 1).unwrap();
        assert_eq!(profile.k(), 2);
        assert_eq!(profile.floor(), 1);
        assert_eq!(profile.q_at(1), 6); // {0,1},{0,2},{0,3},{1,2},{1,3},{2,3}
        assert_eq!(profile.q_at(2), 3);
        assert_eq!(profile.q_at(4), 1);
        assert_eq!(profile.q_at(5), 0);
        assert_eq!(profile.max_support(), 4);
        assert_eq!(profile.len(), 6);
        assert!(!profile.is_empty());
    }

    #[test]
    #[should_panic(expected = "floor")]
    fn support_profile_rejects_queries_below_floor() {
        let d = toy();
        let profile = SupportProfile::new(&d, 2, 3).unwrap();
        let _ = profile.q_at(1);
    }

    #[test]
    fn support_profile_from_explicit_itemsets() {
        let sets = vec![
            ItemsetSupport::new(vec![1, 2], 10),
            ItemsetSupport::new(vec![1, 3], 7),
            ItemsetSupport::new(vec![2, 3], 7),
        ];
        let profile = SupportProfile::from_itemsets(2, 5, &sets);
        assert_eq!(profile.q_at(7), 3);
        assert_eq!(profile.q_at(8), 1);
        assert_eq!(profile.q_at(11), 0);
        assert_eq!(profile.supports(), &[10, 7, 7]);
    }

    #[test]
    fn empty_profile() {
        let d = toy();
        let profile = SupportProfile::new(&d, 4, 3).unwrap();
        assert!(profile.is_empty());
        assert_eq!(profile.max_support(), 0);
        assert_eq!(profile.q_at(10), 0);
    }
}

//! Support counting utilities.
//!
//! The paper's procedures never need *all* frequent itemsets of every size — they
//! need, for a fixed size `k`:
//!
//! * the supports of an explicit list of candidate k-itemsets (Algorithm 1 tracks the
//!   supports of the itemset pool `W` across Δ random datasets), and
//! * the count `Q_{k,s}` of k-itemsets with support at least `s`, for a whole range
//!   of thresholds `s` (Procedure 2 probes `s_i = s_min + 2^i`).
//!
//! Both are served here. [`supports_of`] batch-counts explicit candidates by
//! intersecting the vertical tid-lists of their items; [`SupportProfile`] materializes
//! the supports of every k-itemset above a floor threshold once and then answers
//! `Q_{k,s}` queries for any `s` above the floor in `O(log)` time.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use sigfim_datasets::transaction::{ItemId, TransactionDataset, TransactionId};

use crate::apriori::Apriori;
use crate::itemset::ItemsetSupport;
use crate::miner::KItemsetMiner;
use crate::Result;

/// Intersect two sorted transaction-id lists (linear merge).
pub fn intersect_tids(a: &[TransactionId], b: &[TransactionId]) -> Vec<TransactionId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Size of the intersection of two sorted tid-lists without materializing it.
pub fn intersection_size(a: &[TransactionId], b: &[TransactionId]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Batch support counting for an explicit list of itemsets, via vertical tid-list
/// intersections. The tid-lists of the dataset are built once; each itemset then
/// costs `O(k · min tid-list length)`.
///
/// Itemsets must be sorted and duplicate-free (as produced by every miner in this
/// crate). Empty itemsets get support `t` by convention.
pub fn supports_of(dataset: &TransactionDataset, itemsets: &[Vec<ItemId>]) -> Vec<u64> {
    let tid_lists = dataset.tid_lists();
    itemsets.iter().map(|set| support_from_tidlists(&tid_lists, set, dataset.num_transactions())).collect()
}

/// Support of one itemset given pre-built tid-lists. Intersections are performed
/// starting from the rarest item so the working list shrinks as fast as possible.
pub fn support_from_tidlists(
    tid_lists: &[Vec<TransactionId>],
    itemset: &[ItemId],
    num_transactions: usize,
) -> u64 {
    if itemset.is_empty() {
        return num_transactions as u64;
    }
    // Order the items by ascending tid-list length.
    let mut order: Vec<&Vec<TransactionId>> =
        itemset.iter().map(|&i| &tid_lists[i as usize]).collect();
    order.sort_by_key(|l| l.len());
    if order.len() == 1 {
        return order[0].len() as u64;
    }
    if order.len() == 2 {
        return intersection_size(order[0], order[1]) as u64;
    }
    let mut current = intersect_tids(order[0], order[1]);
    for list in &order[2..] {
        if current.is_empty() {
            return 0;
        }
        current = intersect_tids(&current, list);
    }
    current.len() as u64
}

/// Count, for each candidate, the number of transactions containing it, using a
/// horizontal pass over the dataset and a hash lookup per transaction k-subset.
/// Used by the Apriori miner when subset enumeration is cheaper than per-candidate
/// scans; exposed for testing and benchmarking against the vertical strategy.
pub fn count_candidates_horizontal(
    dataset: &TransactionDataset,
    candidates: &[Vec<ItemId>],
) -> Vec<u64> {
    if candidates.is_empty() {
        return Vec::new();
    }
    let k = candidates[0].len();
    debug_assert!(candidates.iter().all(|c| c.len() == k));
    let index: HashMap<&[ItemId], usize> =
        candidates.iter().enumerate().map(|(i, c)| (c.as_slice(), i)).collect();
    let mut counts = vec![0u64; candidates.len()];
    // Only items that occur in some candidate can contribute to a match.
    let mut relevant = vec![false; dataset.num_items() as usize];
    for c in candidates {
        for &i in c {
            relevant[i as usize] = true;
        }
    }
    let mut restricted: Vec<ItemId> = Vec::new();
    for txn in dataset.iter() {
        restricted.clear();
        restricted.extend(txn.iter().copied().filter(|&i| relevant[i as usize]));
        if restricted.len() < k {
            continue;
        }
        crate::itemset::for_each_k_subset(&restricted, k, |subset| {
            if let Some(&idx) = index.get(subset) {
                counts[idx] += 1;
            }
        });
    }
    counts
}

/// The number of k-itemsets with support at least `s` in the dataset (`Q_{k,s}` in
/// the paper), computed by mining at threshold `s` with Apriori.
///
/// # Errors
///
/// Propagates miner errors (invalid `k` or threshold).
pub fn q_k_s(dataset: &TransactionDataset, k: usize, s: u64) -> Result<u64> {
    Ok(Apriori::default().mine_k(dataset, k, s)?.len() as u64)
}

/// The supports of every k-itemset whose support is at least a floor threshold,
/// stored sorted descending so that `Q_{k,s}` for any `s ≥ floor` is a binary search.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupportProfile {
    k: usize,
    floor: u64,
    /// Supports of all k-itemsets with support ≥ `floor`, sorted descending.
    supports: Vec<u64>,
}

impl SupportProfile {
    /// Mine the dataset once at threshold `floor` and record the support of every
    /// frequent k-itemset.
    ///
    /// # Errors
    ///
    /// Propagates miner errors (e.g. `k = 0` or `floor = 0`).
    pub fn new(dataset: &TransactionDataset, k: usize, floor: u64) -> Result<Self> {
        let mined = Apriori::default().mine_k(dataset, k, floor)?;
        Ok(Self::from_itemsets(k, floor, &mined))
    }

    /// Build a profile from an already-mined list of k-itemsets (all with support
    /// ≥ `floor`).
    pub fn from_itemsets(k: usize, floor: u64, itemsets: &[ItemsetSupport]) -> Self {
        let mut supports: Vec<u64> = itemsets.iter().map(|i| i.support).collect();
        supports.sort_unstable_by(|a, b| b.cmp(a));
        SupportProfile { k, floor, supports }
    }

    /// The itemset size this profile describes.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The floor threshold below which the profile has no information.
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// `Q_{k,s}`: the number of k-itemsets with support at least `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s < floor` — the profile holds no information below its floor, and
    /// silently returning a wrong count would corrupt the statistics downstream.
    pub fn q_at(&self, s: u64) -> u64 {
        assert!(
            s >= self.floor,
            "SupportProfile was built with floor {} but was queried at s = {s}",
            self.floor
        );
        // supports is sorted descending; count entries >= s.
        self.supports.partition_point(|&x| x >= s) as u64
    }

    /// The largest support of any k-itemset (0 if none reach the floor).
    pub fn max_support(&self) -> u64 {
        self.supports.first().copied().unwrap_or(0)
    }

    /// Number of itemsets at or above the floor.
    pub fn len(&self) -> usize {
        self.supports.len()
    }

    /// True if no itemset reaches the floor.
    pub fn is_empty(&self) -> bool {
        self.supports.is_empty()
    }

    /// The raw descending support values.
    pub fn supports(&self) -> &[u64] {
        &self.supports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TransactionDataset {
        // Items 0,1 co-occur in 4 transactions; 0,1,2 in 2; item 3 is rare.
        TransactionDataset::from_transactions(
            4,
            vec![
                vec![0, 1, 2],
                vec![0, 1, 2],
                vec![0, 1],
                vec![0, 1, 3],
                vec![0],
                vec![1],
                vec![2, 3],
            ],
        )
        .unwrap()
    }

    #[test]
    fn tid_intersections() {
        assert_eq!(intersect_tids(&[1, 3, 5, 7], &[2, 3, 5, 8]), vec![3, 5]);
        assert_eq!(intersect_tids(&[], &[1, 2]), Vec::<TransactionId>::new());
        assert_eq!(intersection_size(&[1, 3, 5, 7], &[2, 3, 5, 8]), 2);
        assert_eq!(intersection_size(&[1, 2, 3], &[4, 5]), 0);
    }

    #[test]
    fn batch_supports_match_reference() {
        let d = toy();
        let sets = vec![vec![0], vec![0, 1], vec![0, 1, 2], vec![0, 3], vec![2, 3], vec![]];
        let got = supports_of(&d, &sets);
        let expected: Vec<u64> = sets.iter().map(|s| d.itemset_support(s)).collect();
        assert_eq!(got, expected);
        assert_eq!(got, vec![5, 4, 2, 1, 1, 7]);
    }

    #[test]
    fn horizontal_counting_matches_vertical() {
        let d = toy();
        let candidates = vec![vec![0, 1], vec![0, 2], vec![1, 2], vec![2, 3]];
        let horizontal = count_candidates_horizontal(&d, &candidates);
        let vertical = supports_of(&d, &candidates);
        assert_eq!(horizontal, vertical);
    }

    #[test]
    fn q_counts() {
        let d = toy();
        assert_eq!(q_k_s(&d, 2, 4).unwrap(), 1); // only {0,1}
        assert_eq!(q_k_s(&d, 2, 2).unwrap(), 3); // {0,1}, {0,2}, {1,2}
        assert_eq!(q_k_s(&d, 3, 2).unwrap(), 1); // {0,1,2}
        assert_eq!(q_k_s(&d, 3, 3).unwrap(), 0);
    }

    #[test]
    fn support_profile_answers_q_queries() {
        let d = toy();
        let profile = SupportProfile::new(&d, 2, 1).unwrap();
        assert_eq!(profile.k(), 2);
        assert_eq!(profile.floor(), 1);
        assert_eq!(profile.q_at(1), 6); // {0,1},{0,2},{0,3},{1,2},{1,3},{2,3}
        assert_eq!(profile.q_at(2), 3);
        assert_eq!(profile.q_at(4), 1);
        assert_eq!(profile.q_at(5), 0);
        assert_eq!(profile.max_support(), 4);
        assert_eq!(profile.len(), 6);
        assert!(!profile.is_empty());
    }

    #[test]
    #[should_panic(expected = "floor")]
    fn support_profile_rejects_queries_below_floor() {
        let d = toy();
        let profile = SupportProfile::new(&d, 2, 3).unwrap();
        let _ = profile.q_at(1);
    }

    #[test]
    fn support_profile_from_explicit_itemsets() {
        let sets = vec![
            ItemsetSupport::new(vec![1, 2], 10),
            ItemsetSupport::new(vec![1, 3], 7),
            ItemsetSupport::new(vec![2, 3], 7),
        ];
        let profile = SupportProfile::from_itemsets(2, 5, &sets);
        assert_eq!(profile.q_at(7), 3);
        assert_eq!(profile.q_at(8), 1);
        assert_eq!(profile.q_at(11), 0);
        assert_eq!(profile.supports(), &[10, 7, 7]);
    }

    #[test]
    fn empty_profile() {
        let d = toy();
        let profile = SupportProfile::new(&d, 4, 3).unwrap();
        assert!(profile.is_empty());
        assert_eq!(profile.max_support(), 0);
        assert_eq!(profile.q_at(10), 0);
    }
}

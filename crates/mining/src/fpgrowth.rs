//! FP-Growth: frequent itemset mining over an FP-tree (Han et al.).
//!
//! The FP-tree compresses the dataset into a prefix tree over the frequent items,
//! ordered by decreasing support, with a header table of per-item linked lists.
//! Mining proceeds by recursively building *conditional* FP-trees for each item's
//! pattern base. We bound the recursion by the target itemset size `k` so the miner
//! does exactly the work required by the paper's fixed-size queries.
//!
//! FP-Growth is included both for completeness of the substrate (it is the standard
//! high-performance miner on dense data such as Pumsb*) and as a third independent
//! implementation to cross-check Apriori and Eclat in the test suite.

use sigfim_datasets::transaction::{ItemId, TransactionDataset};

use crate::itemset::{sort_canonical, ItemsetSupport};
use crate::miner::{validate_mining_args, KItemsetMiner};
use crate::Result;

/// The FP-Growth miner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FpGrowth;

/// A node of the FP-tree. Nodes live in one arena (`Vec<Node>`); links are indices,
/// which sidesteps `Rc<RefCell<…>>` entirely and keeps the tree cache-friendly.
#[derive(Debug, Clone)]
struct Node {
    item: u32,
    count: u64,
    parent: usize,
    children: Vec<usize>,
    /// Next node carrying the same item (header-table chain).
    next_same_item: Option<usize>,
}

const ROOT: usize = 0;
const NO_ITEM: u32 = u32::MAX;

/// An FP-tree over items relabelled `0..num_items` (dense ranks by decreasing
/// support). `counts[i]` is the total support of rank-`i` item within the tree.
#[derive(Debug)]
struct FpTree {
    nodes: Vec<Node>,
    /// First node of each item's chain.
    heads: Vec<Option<usize>>,
    /// Total count per item within this tree.
    counts: Vec<u64>,
}

impl FpTree {
    fn new(num_items: usize) -> Self {
        FpTree {
            nodes: vec![Node {
                item: NO_ITEM,
                count: 0,
                parent: ROOT,
                children: Vec::new(),
                next_same_item: None,
            }],
            heads: vec![None; num_items],
            counts: vec![0; num_items],
        }
    }

    /// Insert a transaction (items already mapped to ranks and sorted ascending by
    /// rank, i.e. descending by global support) with multiplicity `count`.
    fn insert(&mut self, ranked_items: &[u32], count: u64) {
        let mut current = ROOT;
        for &item in ranked_items {
            self.counts[item as usize] += count;
            let found = self.nodes[current]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c].item == item);
            current = match found {
                Some(child) => {
                    self.nodes[child].count += count;
                    child
                }
                None => {
                    let idx = self.nodes.len();
                    self.nodes.push(Node {
                        item,
                        count,
                        parent: current,
                        children: Vec::new(),
                        next_same_item: self.heads[item as usize],
                    });
                    self.heads[item as usize] = Some(idx);
                    self.nodes[current].children.push(idx);
                    idx
                }
            };
        }
    }

    /// The conditional pattern base of `item`: for every node carrying the item, the
    /// path of ranks from the root (exclusive) to the node (exclusive), weighted by
    /// the node count.
    fn pattern_base(&self, item: u32) -> Vec<(Vec<u32>, u64)> {
        let mut base = Vec::new();
        let mut cursor = self.heads[item as usize];
        while let Some(node_idx) = cursor {
            let node = &self.nodes[node_idx];
            let mut path = Vec::new();
            let mut up = node.parent;
            while up != ROOT {
                path.push(self.nodes[up].item);
                up = self.nodes[up].parent;
            }
            path.reverse();
            if !path.is_empty() {
                base.push((path, node.count));
            }
            cursor = node.next_same_item;
        }
        base
    }
}

/// Recursively mine the tree. `suffix` is the set of (original) item ids already
/// fixed, with `suffix_support` its support. Emits every frequent itemset of size
/// `<= max_len` that extends the suffix; the caller filters for the target size.
fn mine_tree(
    tree: &FpTree,
    rank_to_item: &[ItemId],
    min_support: u64,
    max_len: usize,
    suffix: &mut Vec<ItemId>,
    output: &mut Vec<ItemsetSupport>,
) {
    if suffix.len() >= max_len {
        return;
    }
    // Iterate items present in this conditional tree, from least to most frequent
    // rank (bottom-up), the standard FP-Growth order.
    for rank in (0..tree.counts.len()).rev() {
        let support = tree.counts[rank];
        if support < min_support {
            continue;
        }
        suffix.push(rank_to_item[rank]);
        let mut items = suffix.clone();
        items.sort_unstable();
        output.push(ItemsetSupport { items, support });

        if suffix.len() < max_len {
            // Build the conditional tree for this item.
            let base = tree.pattern_base(rank as u32);
            if !base.is_empty() {
                let mut conditional = FpTree::new(tree.counts.len());
                for (path, count) in &base {
                    conditional.insert(path, *count);
                }
                mine_tree(
                    &conditional,
                    rank_to_item,
                    min_support,
                    max_len,
                    suffix,
                    output,
                );
            }
        }
        suffix.pop();
    }
}

impl FpGrowth {
    fn mine_all(
        &self,
        dataset: &TransactionDataset,
        max_len: usize,
        min_support: u64,
    ) -> Result<Vec<ItemsetSupport>> {
        validate_mining_args(max_len, min_support)?;
        let supports = dataset.item_supports();
        // Frequent items ranked by decreasing support (ties by item id for
        // determinism).
        let mut frequent: Vec<ItemId> = (0..dataset.num_items())
            .filter(|&i| supports[i as usize] >= min_support)
            .collect();
        frequent.sort_by(|&a, &b| {
            supports[b as usize]
                .cmp(&supports[a as usize])
                .then(a.cmp(&b))
        });
        if frequent.is_empty() {
            return Ok(Vec::new());
        }
        let mut item_to_rank = vec![u32::MAX; dataset.num_items() as usize];
        for (rank, &item) in frequent.iter().enumerate() {
            item_to_rank[item as usize] = rank as u32;
        }

        let mut tree = FpTree::new(frequent.len());
        let mut ranked: Vec<u32> = Vec::new();
        for txn in dataset.iter() {
            ranked.clear();
            ranked.extend(
                txn.iter()
                    .map(|&i| item_to_rank[i as usize])
                    .filter(|&r| r != u32::MAX),
            );
            ranked.sort_unstable();
            tree.insert(&ranked, 1);
        }

        let mut output = Vec::new();
        let mut suffix = Vec::new();
        mine_tree(
            &tree,
            &frequent,
            min_support,
            max_len,
            &mut suffix,
            &mut output,
        );
        sort_canonical(&mut output);
        Ok(output)
    }
}

impl KItemsetMiner for FpGrowth {
    fn mine_k(
        &self,
        dataset: &TransactionDataset,
        k: usize,
        min_support: u64,
    ) -> Result<Vec<ItemsetSupport>> {
        let mut all = self.mine_all(dataset, k, min_support)?;
        all.retain(|s| s.items.len() == k);
        Ok(all)
    }

    fn mine_up_to(
        &self,
        dataset: &TransactionDataset,
        max_k: usize,
        min_support: u64,
    ) -> Result<Vec<ItemsetSupport>> {
        self.mine_all(dataset, max_k, min_support)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::Apriori;
    use crate::eclat::Eclat;

    fn toy() -> TransactionDataset {
        TransactionDataset::from_transactions(
            6,
            vec![
                vec![0, 1, 2],
                vec![0, 1, 2, 3],
                vec![0, 1],
                vec![0, 1, 3],
                vec![0, 2, 3],
                vec![1, 2, 4],
                vec![0, 1, 2],
                vec![2, 3, 4, 5],
                vec![0, 3, 4],
            ],
        )
        .unwrap()
    }

    #[test]
    fn matches_apriori_and_eclat() {
        let d = toy();
        for k in 1..=4 {
            for s in 1..=4 {
                let fp = FpGrowth.mine_k(&d, k, s).unwrap();
                let ap = Apriori::default().mine_k(&d, k, s).unwrap();
                let ec = Eclat.mine_k(&d, k, s).unwrap();
                assert_eq!(fp, ap, "FP vs Apriori at k={k}, s={s}");
                assert_eq!(fp, ec, "FP vs Eclat at k={k}, s={s}");
            }
        }
    }

    #[test]
    fn supports_are_exact() {
        let d = toy();
        let mined = FpGrowth.mine_up_to(&d, 3, 2).unwrap();
        assert!(!mined.is_empty());
        for m in &mined {
            assert_eq!(
                m.support,
                d.itemset_support(&m.items),
                "itemset {:?}",
                m.items
            );
        }
    }

    #[test]
    fn single_path_tree() {
        // All transactions identical: the FP-tree is one path; every subset of the
        // transaction is frequent with the same support.
        let d = TransactionDataset::from_transactions(4, vec![vec![0, 1, 2]; 5]).unwrap();
        let pairs = FpGrowth.mine_k(&d, 2, 5).unwrap();
        assert_eq!(pairs.len(), 3);
        assert!(pairs.iter().all(|p| p.support == 5));
        let triples = FpGrowth.mine_k(&d, 3, 5).unwrap();
        assert_eq!(triples.len(), 1);
    }

    #[test]
    fn respects_min_support() {
        let d = toy();
        for m in FpGrowth.mine_k(&d, 2, 3).unwrap() {
            assert!(m.support >= 3);
        }
        assert!(FpGrowth.mine_k(&d, 2, 100).unwrap().is_empty());
    }

    #[test]
    fn empty_dataset() {
        let d = TransactionDataset::empty(8);
        assert!(FpGrowth.mine_k(&d, 2, 1).unwrap().is_empty());
    }
}

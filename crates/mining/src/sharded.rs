//! Counting and level-wise mining over [`ShardedBitmapDataset`]s.
//!
//! This is where the transaction-axis sharding of `sigfim-datasets` meets the
//! execution layer: a candidate batch is counted by handing **each shard** to
//! a worker ([`ExecutionPolicy::map_indexed`] keeps outputs in input order),
//! then reducing the per-shard partial counts **in fixed shard order**.
//! Partial supports are exact integers, so the reduction is plain addition
//! and the totals are bit-identical to an unsharded count at any shard width
//! and any worker count — sharding is a pure performance knob, exactly like
//! the backend choice itself.
//!
//! [`mine_k_sharded`] builds on that: a level-wise Apriori sweep (the same
//! `join`/`prune` steps as [`crate::apriori::Apriori`]) whose per-level
//! counting pass fans out across shards. Previously one dataset's counting
//! pass was single-threaded — parallelism existed only *across* Monte-Carlo
//! replicates; this gives the observed-dataset passes of Procedure 2 (profile
//! mining, `Q_{k,s}` answering, final family extraction) the same scaling.

use sigfim_datasets::sharded::ShardedBitmapDataset;
use sigfim_datasets::spill::SpilledShards;
use sigfim_datasets::transaction::ItemId;
use sigfim_exec::ExecutionPolicy;

use crate::apriori::mine_k_levelwise;
use crate::counting::{
    count_candidates_bitmap, count_candidates_bitmap_with_supports,
    count_candidates_columns_with_supports,
};
use crate::itemset::ItemsetSupport;
use crate::miner::validate_mining_args;
use crate::Result;

/// Batch support counting over a sharded bitmap: each shard is counted by
/// [`count_candidates_bitmap`] (kernel-dispatched AND + popcount) on its own
/// worker, and the per-shard partials are summed in shard order. Handles
/// mixed sizes; empty itemsets get support `t` by convention.
pub fn count_candidates_sharded(
    sharded: &ShardedBitmapDataset,
    candidates: &[Vec<ItemId>],
    policy: ExecutionPolicy,
) -> Vec<u64> {
    if candidates.is_empty() {
        return Vec::new();
    }
    let partials = policy.map_indexed(sharded.shards(), |_, shard| {
        count_candidates_bitmap(shard, candidates)
    });
    reduce_in_shard_order(&partials, candidates.len())
}

/// Per-shard item supports, one shard per worker, in shard order. This is the
/// single column scan [`mine_k_sharded`] seeds itself with (the partials feed
/// every level's rarest-first candidate ordering).
fn per_shard_item_supports(
    sharded: &ShardedBitmapDataset,
    policy: ExecutionPolicy,
) -> Vec<Vec<u64>> {
    policy.map_indexed(sharded.shards(), |_, shard| shard.item_supports())
}

/// Sum partial count vectors in their (fixed, input-order) shard order.
/// `map_indexed` already guarantees input-order outputs under every policy,
/// and integer addition makes the fold exact — together these are the
/// bit-identity argument for sharded counting.
fn reduce_in_shard_order(partials: &[Vec<u64>], len: usize) -> Vec<u64> {
    let mut totals = vec![0u64; len];
    for partial in partials {
        debug_assert_eq!(partial.len(), len);
        for (total, p) in totals.iter_mut().zip(partial) {
            *total += p;
        }
    }
    totals
}

/// Residency-aware batch counting over an out-of-core spilled dataset. The
/// per-batch shard schedule comes from [`SpilledShards::schedule`] — resident
/// shards first, cold shards after — so workers count what is already in
/// memory while the cold tail faults in, and each cold shard is faulted
/// **exactly once per batch** instead of thrashing the budget. Each worker
/// pins its shard with a [`sigfim_datasets::spill::ShardGuard`] for the
/// duration of its count (eviction skips pinned slots), and the partials are
/// still reduced in fixed *shard* order — the schedule only permutes who
/// counts when, never what is summed in which order, so totals stay
/// bit-identical to [`count_candidates_sharded`] at any budget.
pub fn count_candidates_spilled(
    spilled: &SpilledShards,
    candidates: &[Vec<ItemId>],
    policy: ExecutionPolicy,
) -> Vec<u64> {
    if candidates.is_empty() {
        return Vec::new();
    }
    let schedule = spilled.schedule();
    let partials = policy.map_indexed(&schedule, |_, &shard| {
        let guard = spilled.shard(shard);
        count_candidates_columns_with_supports(
            guard.columns(),
            spilled.shard_item_supports(shard),
            candidates,
        )
    });
    // Un-permute: partials arrive in schedule order, the exact reduction
    // below wants fixed shard order.
    let mut by_shard: Vec<Vec<u64>> = vec![Vec::new(); spilled.num_shards()];
    for (position, partial) in partials.into_iter().enumerate() {
        by_shard[schedule[position]] = partial;
    }
    reduce_in_shard_order(&by_shard, candidates.len())
}

/// Level-wise mining over an out-of-core spilled dataset: the same sweep as
/// [`mine_k_sharded`], with each level's counting pass going through
/// [`count_candidates_spilled`]'s residency-aware schedule. The per-shard
/// item supports were recorded at spill time, so seeding the sweep faults
/// nothing in.
///
/// # Errors
///
/// Returns [`crate::MiningError::InvalidParameter`] for `k == 0` or
/// `min_support == 0`.
pub fn mine_k_spilled(
    spilled: &SpilledShards,
    k: usize,
    min_support: u64,
    policy: ExecutionPolicy,
) -> Result<Vec<ItemsetSupport>> {
    validate_mining_args(k, min_support)?;
    crate::dispatch::record(crate::dispatch::DispatchPath::Sharded);
    let supports = spilled.item_supports();
    Ok(mine_k_levelwise(
        &supports,
        k,
        min_support,
        true,
        |candidates, _| count_candidates_spilled(spilled, candidates, policy),
    ))
}

/// Mine all k-itemsets with support at least `min_support` from a sharded
/// bitmap: level-wise candidate generation (`join` + `prune`, as in Apriori)
/// with each level's counting pass fanned out shard-by-shard under `policy`.
/// Returns exactly what [`crate::eclat::Eclat::mine_k_bitmap`] returns on the
/// equivalent unsharded bitmap (exact supports, canonical order) — enforced
/// by the sharded-parity proptests.
///
/// # Errors
///
/// Returns [`crate::MiningError::InvalidParameter`] for `k == 0` or
/// `min_support == 0`.
pub fn mine_k_sharded(
    sharded: &ShardedBitmapDataset,
    k: usize,
    min_support: u64,
    policy: ExecutionPolicy,
) -> Result<Vec<ItemsetSupport>> {
    validate_mining_args(k, min_support)?;
    crate::dispatch::record(crate::dispatch::DispatchPath::Sharded);
    // Per-shard item supports are scanned exactly once: they seed the global
    // level-1 supports and then serve every level's rarest-first candidate
    // ordering (re-deriving them per batch would repeat an
    // O(items x words-per-shard) column scan at every level).
    let per_shard_supports = per_shard_item_supports(sharded, policy);
    let supports = reduce_in_shard_order(&per_shard_supports, sharded.num_items() as usize);
    Ok(mine_k_levelwise(
        &supports,
        k,
        min_support,
        true,
        |candidates, _| {
            let partials = policy.map_indexed(sharded.shards(), |shard_index, shard| {
                count_candidates_bitmap_with_supports(
                    shard,
                    &per_shard_supports[shard_index],
                    candidates,
                )
            });
            reduce_in_shard_order(&partials, candidates.len())
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eclat::Eclat;
    use sigfim_datasets::bitmap::BitmapDataset;
    use sigfim_datasets::transaction::TransactionDataset;

    fn toy(t: usize) -> TransactionDataset {
        TransactionDataset::from_transactions(
            5,
            (0..t)
                .map(|i| {
                    (0..5u32)
                        .filter(|&j| (i * (j as usize + 3)).is_multiple_of(j as usize + 2))
                        .collect()
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn sharded_counting_matches_the_bitmap_counter() {
        let csr = toy(200);
        let bitmap = BitmapDataset::from_dataset(&csr);
        let candidates = vec![vec![], vec![2], vec![0, 1], vec![0, 1, 2], vec![2, 3, 4]];
        let expected = count_candidates_bitmap(&bitmap, &candidates);
        for shard_rows in [64, 128, 512] {
            let sharded = ShardedBitmapDataset::with_shard_rows(&csr, shard_rows);
            for policy in [
                ExecutionPolicy::Sequential,
                ExecutionPolicy::rayon(2),
                ExecutionPolicy::rayon(8),
            ] {
                assert_eq!(
                    count_candidates_sharded(&sharded, &candidates, policy),
                    expected,
                    "width {shard_rows}, {policy:?}"
                );
            }
        }
        assert!(count_candidates_sharded(
            &ShardedBitmapDataset::from_dataset(&csr),
            &[],
            ExecutionPolicy::Sequential
        )
        .is_empty());
    }

    #[test]
    fn sharded_mining_matches_bitset_eclat() {
        let csr = toy(150);
        let bitmap = BitmapDataset::from_dataset(&csr);
        let sharded = ShardedBitmapDataset::with_shard_rows(&csr, 64);
        for k in 1..=4 {
            for s in [1u64, 3, 10, 40] {
                let reference = Eclat.mine_k_bitmap(&bitmap, k, s).unwrap();
                for policy in [ExecutionPolicy::Sequential, ExecutionPolicy::rayon(2)] {
                    assert_eq!(
                        mine_k_sharded(&sharded, k, s, policy).unwrap(),
                        reference,
                        "k = {k}, s = {s}, {policy:?}"
                    );
                }
            }
        }
        // Validation is shared with every other miner.
        assert!(mine_k_sharded(&sharded, 0, 1, ExecutionPolicy::Sequential).is_err());
        assert!(mine_k_sharded(&sharded, 2, 0, ExecutionPolicy::Sequential).is_err());
        // Degenerate shapes.
        let empty = ShardedBitmapDataset::from_dataset(&TransactionDataset::empty(4));
        assert!(mine_k_sharded(&empty, 2, 1, ExecutionPolicy::Sequential)
            .unwrap()
            .is_empty());
        assert!(mine_k_sharded(&sharded, 6, 1, ExecutionPolicy::Sequential)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn spilled_counting_and_mining_match_the_resident_shards() {
        use sigfim_datasets::spill::{ShardResidency, SpillMode};

        let csr = toy(200);
        let sharded = ShardedBitmapDataset::with_shard_rows(&csr, 64);
        let candidates = vec![vec![], vec![2], vec![0, 1], vec![0, 1, 2], vec![2, 3, 4]];
        let expected = count_candidates_sharded(&sharded, &candidates, ExecutionPolicy::Sequential);
        // A 1-byte budget forces every shard through the fault/evict cycle; a
        // huge one keeps everything resident. Both must count identically.
        for budget in [1u64, 1 << 30] {
            let residency = ShardResidency {
                budget_bytes: budget,
                mode: SpillMode::Read,
                dir: Some(std::env::temp_dir().join("sigfim-spill-tests")),
            };
            let spilled = SpilledShards::spill_sharded(&sharded, &residency).unwrap();
            for policy in [
                ExecutionPolicy::Sequential,
                ExecutionPolicy::rayon(2),
                ExecutionPolicy::rayon(8),
            ] {
                assert_eq!(
                    count_candidates_spilled(&spilled, &candidates, policy),
                    expected,
                    "budget {budget}, {policy:?}"
                );
                for k in 1..=3 {
                    assert_eq!(
                        mine_k_spilled(&spilled, k, 3, policy).unwrap(),
                        mine_k_sharded(&sharded, k, 3, ExecutionPolicy::Sequential).unwrap(),
                        "budget {budget}, k = {k}, {policy:?}"
                    );
                }
            }
            assert!(
                count_candidates_spilled(&spilled, &[], ExecutionPolicy::Sequential).is_empty()
            );
        }
        // Shared argument validation.
        let residency = ShardResidency {
            budget_bytes: 1,
            mode: SpillMode::Read,
            dir: Some(std::env::temp_dir().join("sigfim-spill-tests")),
        };
        let spilled = SpilledShards::spill_sharded(&sharded, &residency).unwrap();
        assert!(mine_k_spilled(&spilled, 0, 1, ExecutionPolicy::Sequential).is_err());
        assert!(mine_k_spilled(&spilled, 2, 0, ExecutionPolicy::Sequential).is_err());
    }

    #[test]
    fn item_supports_fan_out_matches_reference() {
        let csr = toy(130);
        let sharded = ShardedBitmapDataset::with_shard_rows(&csr, 64);
        let partials = per_shard_item_supports(&sharded, ExecutionPolicy::rayon(3));
        assert_eq!(
            reduce_in_shard_order(&partials, sharded.num_items() as usize),
            csr.item_supports()
        );
    }
}

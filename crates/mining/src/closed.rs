//! Closed frequent itemsets.
//!
//! An itemset is *closed* if no proper superset has the same support — equivalently,
//! if it equals its own closure (the set of items contained in every transaction that
//! contains it). Section 4.1 of the paper uses closed itemsets to explain the huge
//! k = 4 output on Bms1: a single closed itemset of cardinality 154 and support > 7
//! accounts for more than 22 million of the 27 million significant (but redundant)
//! 4-itemsets. This module provides the closure operator, a closed-itemset miner,
//! and the redundancy analysis used to reproduce that observation.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use sigfim_datasets::transaction::{ItemId, TransactionDataset, TransactionId};

use crate::counting::intersect_tids;
use crate::eclat::Eclat;
use crate::itemset::{binomial_u64, sort_canonical, ItemsetSupport};
use crate::miner::KItemsetMiner;
use crate::Result;

/// The closure of an itemset: all items contained in **every** transaction that
/// contains the itemset. For an itemset with zero support the closure is defined as
/// the itemset itself (there is no transaction to constrain it).
pub fn closure(dataset: &TransactionDataset, itemset: &[ItemId]) -> Vec<ItemId> {
    let tid_lists = dataset.tid_lists();
    closure_from_tidlists(dataset, &tid_lists, itemset)
}

fn supporting_tids(
    tid_lists: &[Vec<TransactionId>],
    itemset: &[ItemId],
    num_transactions: usize,
) -> Vec<TransactionId> {
    if itemset.is_empty() {
        return (0..num_transactions as TransactionId).collect();
    }
    let mut order: Vec<&Vec<TransactionId>> =
        itemset.iter().map(|&i| &tid_lists[i as usize]).collect();
    order.sort_by_key(|l| l.len());
    let mut current = order[0].clone();
    for list in &order[1..] {
        if current.is_empty() {
            break;
        }
        current = intersect_tids(&current, list);
    }
    current
}

fn closure_from_tidlists(
    dataset: &TransactionDataset,
    tid_lists: &[Vec<TransactionId>],
    itemset: &[ItemId],
) -> Vec<ItemId> {
    let tids = supporting_tids(tid_lists, itemset, dataset.num_transactions());
    if tids.is_empty() {
        return itemset.to_vec();
    }
    // Intersect the supporting transactions themselves.
    let mut common: Vec<ItemId> = dataset.transaction(tids[0] as usize).to_vec();
    for &tid in &tids[1..] {
        if common.is_empty() {
            break;
        }
        let txn = dataset.transaction(tid as usize);
        common.retain(|item| txn.binary_search(item).is_ok());
    }
    common
}

/// True if the itemset equals its own closure (no item can be added without losing a
/// supporting transaction).
pub fn is_closed(dataset: &TransactionDataset, itemset: &[ItemId]) -> bool {
    closure(dataset, itemset) == itemset
}

/// Mine all **closed** frequent itemsets of size `1..=max_len` with support at least
/// `min_support`.
///
/// Strategy: mine all frequent itemsets up to `max_len` with Eclat, group them by
/// support, and within each support class keep those not strictly contained in
/// another itemset of the same class. (Containment across different supports cannot
/// make an itemset non-closed: a superset always has support ≤ the subset, and
/// equality of supports is exactly the same-class case.) Note that an itemset whose
/// closure is *larger than* `max_len` is still reported if it is closed among the
/// itemsets of size ≤ `max_len` only when it truly is closed — we verify with the
/// closure operator, so the output is exact.
///
/// # Errors
///
/// Propagates miner errors.
pub fn closed_frequent_itemsets(
    dataset: &TransactionDataset,
    max_len: usize,
    min_support: u64,
) -> Result<Vec<ItemsetSupport>> {
    let all = Eclat.mine_up_to(dataset, max_len, min_support)?;
    let mut closed: Vec<ItemsetSupport> = all
        .into_iter()
        .filter(|candidate| is_closed(dataset, &candidate.items))
        .collect();
    sort_canonical(&mut closed);
    Ok(closed)
}

/// The redundancy analysis of Section 4.1: how much of a (potentially huge) family of
/// significant k-itemsets is explained by a few large closed itemsets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedItemsetAnalysis {
    /// The itemset size `k` the significant family consists of.
    pub k: usize,
    /// The support threshold of the significant family.
    pub min_support: u64,
    /// The number of k-itemsets with support ≥ `min_support`.
    pub total_k_itemsets: u64,
    /// Maximal closed itemsets (support ≥ `min_support`) of size ≥ k, largest first,
    /// each with the number of k-subsets it contributes.
    pub closed_generators: Vec<ClosedGenerator>,
}

/// One closed itemset and the number of size-k subsets it accounts for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedGenerator {
    /// The closed itemset.
    pub items: Vec<ItemId>,
    /// Its support.
    pub support: u64,
    /// `C(|items|, k)`: how many k-subsets (all with support ≥ its support) it
    /// contributes to the significant family.
    pub k_subsets: u64,
}

/// Find, per transaction "profile", the largest closed itemsets with support at
/// least `min_support`, and report how many k-subsets each contributes.
///
/// This reproduces the paper's Bms1/k=4 observation without materializing the
/// millions of subsets: the closed itemsets are found by intersecting transactions
/// directly (each closed itemset is the intersection of the transactions that
/// contain it, so candidates can be generated from transaction intersections).
///
/// The search is seeded from individual transactions: for each transaction we compute
/// the closure of the itemsets it generates by greedy support-preserving growth. For
/// the planted/benchmark datasets used in this workspace this finds every large
/// closed itemset; it is exact whenever the large closed itemsets are themselves
/// intersections of at most `seed_pairs` transactions (true for planted blocks).
///
/// # Errors
///
/// Propagates miner errors from the `Q_{k,s}` computation.
pub fn closed_generator_analysis(
    dataset: &TransactionDataset,
    k: usize,
    min_support: u64,
) -> Result<ClosedItemsetAnalysis> {
    let total = crate::counting::q_k_s(dataset, k, min_support)?;
    // Candidate closed itemsets: closures of single frequent transactions' frequent
    // sub-profiles. We approximate by taking each transaction, restricting it to
    // items whose support is >= min_support, and computing the closure of that
    // restriction's supporting set; duplicates collapse via a hash map.
    let supports = dataset.item_supports();
    let tid_lists = dataset.tid_lists();
    let mut seen: HashMap<Vec<ItemId>, u64> = HashMap::new();
    for txn in dataset.iter() {
        let restricted: Vec<ItemId> = txn
            .iter()
            .copied()
            .filter(|&i| supports[i as usize] >= min_support)
            .collect();
        if restricted.len() < k {
            continue;
        }
        let support =
            supporting_tids(&tid_lists, &restricted, dataset.num_transactions()).len() as u64;
        if support < min_support {
            continue;
        }
        let closed = closure_from_tidlists(dataset, &tid_lists, &restricted);
        let closed_support =
            supporting_tids(&tid_lists, &closed, dataset.num_transactions()).len() as u64;
        seen.entry(closed).or_insert(closed_support);
    }
    let mut generators: Vec<ClosedGenerator> = seen
        .into_iter()
        .filter(|(items, _)| items.len() >= k)
        .map(|(items, support)| {
            let k_subsets = binomial_u64(items.len() as u64, k as u64);
            ClosedGenerator {
                items,
                support,
                k_subsets,
            }
        })
        .collect();
    generators.sort_by(|a, b| {
        b.items
            .len()
            .cmp(&a.items.len())
            .then(b.support.cmp(&a.support))
    });
    Ok(ClosedItemsetAnalysis {
        k,
        min_support,
        total_k_itemsets: total,
        closed_generators: generators,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TransactionDataset {
        // {0,1} always co-occur; item 2 sometimes joins them; item 3 independent.
        TransactionDataset::from_transactions(
            4,
            vec![
                vec![0, 1],
                vec![0, 1, 2],
                vec![0, 1, 2],
                vec![0, 1, 3],
                vec![2, 3],
                vec![3],
            ],
        )
        .unwrap()
    }

    #[test]
    fn closure_adds_implied_items() {
        let d = toy();
        // Item 0 only occurs together with item 1 (and vice versa).
        assert_eq!(closure(&d, &[0]), vec![0, 1]);
        assert_eq!(closure(&d, &[1]), vec![0, 1]);
        // {0,1,2} is its own closure.
        assert_eq!(closure(&d, &[0, 2]), vec![0, 1, 2]);
        assert_eq!(closure(&d, &[0, 1, 2]), vec![0, 1, 2]);
        // Empty itemset closure = items in every transaction (none here).
        assert_eq!(closure(&d, &[]), Vec::<ItemId>::new());
        // Unsupported itemset closes to itself.
        assert_eq!(closure(&d, &[0, 1, 2, 3]), vec![0, 1, 2, 3]);
    }

    #[test]
    fn closedness() {
        let d = toy();
        assert!(!is_closed(&d, &[0]));
        assert!(is_closed(&d, &[0, 1]));
        assert!(is_closed(&d, &[0, 1, 2]));
        assert!(is_closed(&d, &[3]));
        assert!(!is_closed(&d, &[0, 2]));
    }

    #[test]
    fn closed_mining_filters_non_closed() {
        let d = toy();
        let closed = closed_frequent_itemsets(&d, 3, 2).unwrap();
        let sets: Vec<Vec<ItemId>> = closed.iter().map(|c| c.items.clone()).collect();
        assert!(sets.contains(&vec![0, 1]));
        assert!(sets.contains(&vec![0, 1, 2]));
        assert!(sets.contains(&vec![2]));
        assert!(sets.contains(&vec![3]));
        assert!(!sets.contains(&vec![0]));
        assert!(!sets.contains(&vec![1]));
        assert!(!sets.contains(&vec![0, 2]));
        // Supports are exact.
        for c in &closed {
            assert_eq!(c.support, d.itemset_support(&c.items));
        }
    }

    #[test]
    fn generator_analysis_finds_large_closed_block() {
        // Plant a block of 6 items that always occur together in 5 transactions plus
        // scattered noise; the analysis should report it as a generator of
        // C(6,3) = 20 three-subsets.
        let mut txns = vec![vec![0, 1, 2, 3, 4, 5]; 5];
        txns.push(vec![6, 7]);
        txns.push(vec![0, 6]);
        txns.push(vec![7, 8]);
        let d = TransactionDataset::from_transactions(9, txns).unwrap();
        let analysis = closed_generator_analysis(&d, 3, 5).unwrap();
        assert_eq!(analysis.total_k_itemsets, 20);
        assert!(!analysis.closed_generators.is_empty());
        let top = &analysis.closed_generators[0];
        assert_eq!(top.items, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(top.support, 5);
        assert_eq!(top.k_subsets, 20);
    }

    #[test]
    fn generator_analysis_on_uncorrelated_data() {
        let d = toy();
        let analysis = closed_generator_analysis(&d, 2, 2).unwrap();
        // Q_{2,2} = |{(0,1), (0,2), (1,2)}| = 3.
        assert_eq!(analysis.total_k_itemsets, 3);
        // The largest generator is {0,1,2} with support 2, contributing 3 pairs.
        let top = &analysis.closed_generators[0];
        assert_eq!(top.items, vec![0, 1, 2]);
        assert_eq!(top.k_subsets, 3);
    }
}

//! Subtree-parallel depth-first bitset Eclat.
//!
//! [`Eclat::mine_k_bitmap`](crate::eclat::Eclat::mine_k_bitmap) walks the
//! prefix tree of frequent items strictly sequentially. [`ParallelEclat`]
//! fans the *item subtrees* of the same search out across workers: every
//! frequent item roots a `(prefix, covering-column)` frame on a shared work
//! queue ([`ExecutionPolicy::run_tasks`]); a worker claiming a frame either
//! mines its whole subtree inline with the exact sequential recursion, or —
//! while the queue is shallow and siblings are hungry — splits its children
//! off as fresh frames so idle workers can steal them.
//!
//! The output is **bit-identical** to the sequential miner at any worker
//! count, with or without transaction sharding, because three things hold:
//!
//! 1. every frame's covering column is the exact AND of its prefix's item
//!    columns, so every emitted support is the same exact popcount the
//!    sequential walk computes;
//! 2. the set of emitted `k`-itemsets is the set of frequent `k`-extensions
//!    of the frequent-item tail, independent of which worker visits which
//!    subtree or how subtrees are split into frames;
//! 3. the merged result is sorted canonically ([`sort_canonical`]) exactly
//!    like the sequential miner sorts its own output, and canonical order is
//!    a total order on `(items, support)` pairs.
//!
//! Under [`ExecutionPolicy::Sequential`] the single worker drains frames in
//! FIFO seed order without ever splitting beyond the roots, so even the
//! *traversal* is deterministic; under `Rayon` only the pre-sort merge order
//! varies, which the canonical sort erases.

use std::sync::atomic::{AtomicUsize, Ordering};

use sigfim_datasets::bitmap::{and_into, BitmapDataset, ColumnsRef};
use sigfim_datasets::sharded::ShardedBitmapDataset;
use sigfim_datasets::spill::SpilledShards;
use sigfim_datasets::transaction::{ItemId, TransactionDataset};
use sigfim_exec::{ExecutionPolicy, TaskQueue};

use crate::dispatch::{self, DispatchPath};
use crate::itemset::{sort_canonical, ItemsetSupport};
use crate::miner::{validate_mining_args, KItemsetMiner};
use crate::Result;

/// A vertical column source the subtree search ANDs against: either one
/// contiguous bitmap or a sharded bitmap addressed as the concatenation of
/// its per-shard segments (per-shard widths are word-aligned, so the
/// concatenated popcount equals the unsharded one exactly).
enum Columns<'a> {
    Bitmap(&'a BitmapDataset),
    Sharded {
        sharded: &'a ShardedBitmapDataset,
        /// Word offset of each shard's segment within a concatenated column.
        offsets: Vec<usize>,
        total_words: usize,
    },
    /// Shards of a spilled dataset pinned resident for the whole search (the
    /// caller holds the [`sigfim_datasets::spill::ShardGuard`]s); addressed
    /// exactly like [`Columns::Sharded`], so the search cannot tell the
    /// columns came back from spill files.
    Pinned {
        shards: &'a [ColumnsRef<'a>],
        /// Word offset of each shard's segment within a concatenated column.
        offsets: Vec<usize>,
        total_words: usize,
        item_supports: &'a [u64],
    },
}

impl<'a> Columns<'a> {
    fn sharded(sharded: &'a ShardedBitmapDataset) -> Self {
        let mut offsets = Vec::with_capacity(sharded.num_shards());
        let mut total_words = 0usize;
        for shard in sharded.shards() {
            offsets.push(total_words);
            total_words += shard.words_per_column();
        }
        Columns::Sharded {
            sharded,
            offsets,
            total_words,
        }
    }

    fn pinned(shards: &'a [ColumnsRef<'a>], item_supports: &'a [u64]) -> Self {
        let mut offsets = Vec::with_capacity(shards.len());
        let mut total_words = 0usize;
        for shard in shards {
            offsets.push(total_words);
            total_words += shard.words_per_column();
        }
        Columns::Pinned {
            shards,
            offsets,
            total_words,
            item_supports,
        }
    }

    /// Words in one (concatenated) column.
    fn total_words(&self) -> usize {
        match self {
            Columns::Bitmap(dataset) => dataset.words_per_column(),
            Columns::Sharded { total_words, .. } | Columns::Pinned { total_words, .. } => {
                *total_words
            }
        }
    }

    /// `(item, support)` for every item with support at least `min_support`,
    /// in ascending item order — the same tail the sequential miner builds.
    fn frequent_tail(&self, min_support: u64) -> Vec<(ItemId, u64)> {
        match self {
            Columns::Bitmap(dataset) => (0..dataset.num_items())
                .map(|item| (item, dataset.item_support(item)))
                .filter(|&(_, support)| support >= min_support)
                .collect(),
            Columns::Sharded { sharded, .. } => sharded
                .item_supports()
                .into_iter()
                .enumerate()
                .map(|(item, support)| (item as ItemId, support))
                .filter(|&(_, support)| support >= min_support)
                .collect(),
            Columns::Pinned { item_supports, .. } => item_supports
                .iter()
                .enumerate()
                .map(|(item, &support)| (item as ItemId, support))
                .filter(|&(_, support)| support >= min_support)
                .collect(),
        }
    }

    /// `dst = covering AND column(item)`, returning the exact popcount.
    fn and_item_into(&self, dst: &mut [u64], covering: &[u64], item: ItemId) -> u64 {
        match self {
            Columns::Bitmap(dataset) => and_into(dst, covering, dataset.column(item)),
            Columns::Sharded {
                sharded, offsets, ..
            } => {
                let mut total = 0u64;
                for (shard, &offset) in sharded.shards().iter().zip(offsets) {
                    let words = shard.words_per_column();
                    total += and_into(
                        &mut dst[offset..offset + words],
                        &covering[offset..offset + words],
                        shard.column(item),
                    );
                }
                total
            }
            Columns::Pinned {
                shards, offsets, ..
            } => {
                let mut total = 0u64;
                for (shard, &offset) in shards.iter().zip(offsets) {
                    let words = shard.words_per_column();
                    total += and_into(
                        &mut dst[offset..offset + words],
                        &covering[offset..offset + words],
                        shard.column(item),
                    );
                }
                total
            }
        }
    }

    /// Materialize `column(item)` into `dst` (used for root frames).
    fn copy_item_into(&self, dst: &mut [u64], item: ItemId) {
        match self {
            Columns::Bitmap(dataset) => dst.copy_from_slice(dataset.column(item)),
            Columns::Sharded {
                sharded, offsets, ..
            } => {
                for (shard, &offset) in sharded.shards().iter().zip(offsets) {
                    let words = shard.words_per_column();
                    dst[offset..offset + words].copy_from_slice(shard.column(item));
                }
            }
            Columns::Pinned {
                shards, offsets, ..
            } => {
                for (shard, &offset) in shards.iter().zip(offsets) {
                    let words = shard.words_per_column();
                    dst[offset..offset + words].copy_from_slice(shard.column(item));
                }
            }
        }
    }
}

/// One unit of queued work: mine the subtree below `prefix`, extending it
/// with tail items at index `tail_start` and later.
struct Frame {
    prefix: Vec<ItemId>,
    support: u64,
    /// AND of the prefix's item columns (concatenated layout when sharded).
    covering: Vec<u64>,
    tail_start: usize,
}

/// Live split-threshold controller: an exponentially-weighted moving average
/// of the queue depth observed at each frame claim, kept in ×8 fixed point
/// (one `AtomicUsize`, relaxed — the statistic only steers a performance
/// heuristic; output is bit-identical whatever it decides, see the module
/// docs). A persistently *deep* queue pulls the split threshold down toward
/// `workers` (splitting is pure overhead when nobody is idle); a persistently
/// *shallow* one pushes it up toward `4 × workers` (keep feeding stealers).
/// The fixed `pending < 2 × workers` rule this replaces is the controller's
/// exact initial state.
struct SplitController {
    /// EWMA of `queue.pending()` in ×8 fixed point (α = 1/8).
    ewma8: AtomicUsize,
}

impl SplitController {
    fn new(workers: usize) -> Self {
        SplitController {
            // Start at 2·workers so the first frames see the legacy
            // threshold: target = 4w − 2w = 2w.
            ewma8: AtomicUsize::new(2 * workers * 8),
        }
    }

    /// Fold one queue-depth observation in and return the current split
    /// threshold. Racy read-modify-write is fine: every interleaving yields
    /// a valid smoothed depth, and the decision it steers is correctness-free.
    fn split_target(&self, pending: usize, workers: usize) -> usize {
        let prev = self.ewma8.load(Ordering::Relaxed);
        let next = prev - prev / 8 + pending;
        self.ewma8.store(next, Ordering::Relaxed);
        (4 * workers)
            .saturating_sub(next / 8)
            .clamp(workers, 4 * workers)
    }
}

/// Shared read-only search parameters for the worker closures.
struct Search<'a> {
    columns: &'a Columns<'a>,
    tail: &'a [(ItemId, u64)],
    k: usize,
    min_support: u64,
    workers: usize,
    split: SplitController,
}

impl Search<'_> {
    /// Execute one frame: emit, split into child frames, or mine inline.
    fn run_frame(&self, frame: Frame, queue: &TaskQueue<'_, Frame>) -> Vec<ItemsetSupport> {
        let Frame {
            mut prefix,
            support,
            covering,
            tail_start,
        } = frame;
        let mut out = Vec::new();
        let depth = prefix.len();
        if depth == self.k {
            out.push(ItemsetSupport {
                items: prefix,
                support,
            });
            return out;
        }
        // Split only while it buys parallelism: more than one worker, the
        // children root real subtrees (a frame per leaf is pure overhead),
        // and the queue is shallow enough — judged against the live
        // queue-depth statistic, not a fixed constant — that someone may
        // actually be idle.
        let pending = queue.pending();
        let split = self.workers > 1
            && depth + 1 < self.k
            && pending < self.split.split_target(pending, self.workers);
        if split {
            let words = covering.len();
            for j in tail_start..self.tail.len() {
                let (item, _) = self.tail[j];
                let mut child = vec![0u64; words];
                let child_support = self.columns.and_item_into(&mut child, &covering, item);
                if child_support < self.min_support {
                    continue;
                }
                let mut child_prefix = prefix.clone();
                child_prefix.push(item);
                queue.push(Frame {
                    prefix: child_prefix,
                    support: child_support,
                    covering: child,
                    tail_start: j + 1,
                });
            }
        } else {
            // Mine the subtree inline with the sequential recursion: one
            // scratch column per remaining depth, exactly like
            // `Eclat::mine_k_bitmap`'s `dfs_bitmap`.
            let words = covering.len();
            let mut scratch = vec![vec![0u64; words]; self.k - depth];
            self.dfs(&covering, tail_start, &mut prefix, &mut scratch, &mut out);
        }
        out
    }

    /// Sequential depth-first extension below `covering`/`prefix`.
    fn dfs(
        &self,
        covering: &[u64],
        tail_start: usize,
        prefix: &mut Vec<ItemId>,
        scratch: &mut [Vec<u64>],
        out: &mut Vec<ItemsetSupport>,
    ) {
        for j in tail_start..self.tail.len() {
            let (item, _) = self.tail[j];
            let (level, deeper) = scratch.split_at_mut(1);
            let combined = &mut level[0];
            let support = self.columns.and_item_into(combined, covering, item);
            if support < self.min_support {
                continue;
            }
            prefix.push(item);
            if prefix.len() == self.k {
                out.push(ItemsetSupport {
                    items: prefix.clone(),
                    support,
                });
            } else {
                self.dfs(combined, j + 1, prefix, deeper, out);
            }
            prefix.pop();
        }
    }
}

/// Subtree-parallel depth-first bitset Eclat (see the module docs).
///
/// Bit-identical to [`Eclat::mine_k_bitmap`](crate::eclat::Eclat) at any
/// worker count; the policy only chooses how many workers drain the frame
/// queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelEclat {
    /// How frames are executed; [`ExecutionPolicy::Sequential`] degenerates
    /// to a deterministic single-worker drain.
    pub policy: ExecutionPolicy,
}

impl ParallelEclat {
    /// A parallel miner running frames under `policy`.
    pub fn new(policy: ExecutionPolicy) -> Self {
        Self { policy }
    }

    /// Mine all `k`-itemsets with support at least `min_support` from a
    /// bitmap dataset. Output is bit-identical to
    /// [`Eclat::mine_k_bitmap`](crate::eclat::Eclat) at any worker count.
    pub fn mine_k_bitmap(
        &self,
        dataset: &BitmapDataset,
        k: usize,
        min_support: u64,
    ) -> Result<Vec<ItemsetSupport>> {
        validate_mining_args(k, min_support)?;
        dispatch::record(DispatchPath::ParEclat);
        self.mine(&Columns::Bitmap(dataset), k, min_support)
    }

    /// Mine from a transaction-sharded bitmap: subtree parallelism composed
    /// with the sharded layout. Columns are addressed as the concatenation
    /// of per-shard segments; since shard widths are word-aligned the
    /// popcounts — and therefore the output — match the unsharded miner
    /// exactly.
    pub fn mine_k_sharded(
        &self,
        sharded: &ShardedBitmapDataset,
        k: usize,
        min_support: u64,
    ) -> Result<Vec<ItemsetSupport>> {
        validate_mining_args(k, min_support)?;
        dispatch::record(DispatchPath::ParEclatSharded);
        self.mine(&Columns::sharded(sharded), k, min_support)
    }

    /// Mine from an out-of-core spilled dataset. When the residency budget
    /// holds every shard, all shards are pinned resident for the duration of
    /// the search (depth-first subtree mining revisits columns constantly, so
    /// paging them would thrash) and the search runs exactly like
    /// [`ParallelEclat::mine_k_sharded`] over the pinned segments. When the
    /// budget is smaller, the search delegates to the level-wise
    /// residency-aware sweep ([`crate::sharded::mine_k_spilled`]), which
    /// touches each cold shard once per level — the output is bit-identical
    /// either way.
    pub fn mine_k_spilled(
        &self,
        spilled: &SpilledShards,
        k: usize,
        min_support: u64,
    ) -> Result<Vec<ItemsetSupport>> {
        validate_mining_args(k, min_support)?;
        if !spilled.budget_holds_all() {
            return crate::sharded::mine_k_spilled(spilled, k, min_support, self.policy);
        }
        dispatch::record(DispatchPath::ParEclatSharded);
        let guards: Vec<_> = (0..spilled.num_shards())
            .map(|index| spilled.shard(index))
            .collect();
        let shards: Vec<ColumnsRef<'_>> = guards.iter().map(|guard| guard.columns()).collect();
        let item_supports = spilled.item_supports();
        self.mine(&Columns::pinned(&shards, &item_supports), k, min_support)
    }

    fn mine(
        &self,
        columns: &Columns<'_>,
        k: usize,
        min_support: u64,
    ) -> Result<Vec<ItemsetSupport>> {
        let tail = columns.frequent_tail(min_support);
        if k == 1 {
            let mut output: Vec<ItemsetSupport> = tail
                .into_iter()
                .map(|(item, support)| ItemsetSupport {
                    items: vec![item],
                    support,
                })
                .collect();
            sort_canonical(&mut output);
            return Ok(output);
        }
        let workers = self.policy.worker_threads();
        let search = Search {
            columns,
            tail: &tail,
            k,
            min_support,
            workers,
            split: SplitController::new(workers),
        };
        let words = columns.total_words();
        let seeds: Vec<Frame> = tail
            .iter()
            .enumerate()
            .map(|(index, &(item, support))| {
                let mut covering = vec![0u64; words];
                columns.copy_item_into(&mut covering, item);
                Frame {
                    prefix: vec![item],
                    support,
                    covering,
                    tail_start: index + 1,
                }
            })
            .collect();
        let mut output = self
            .policy
            .run_tasks(seeds, |frame, queue| search.run_frame(frame, queue));
        sort_canonical(&mut output);
        Ok(output)
    }
}

impl KItemsetMiner for ParallelEclat {
    fn mine_k(
        &self,
        dataset: &TransactionDataset,
        k: usize,
        min_support: u64,
    ) -> Result<Vec<ItemsetSupport>> {
        validate_mining_args(k, min_support)?;
        let bitmap = BitmapDataset::from_dataset(dataset);
        self.mine_k_bitmap(&bitmap, k, min_support)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eclat::Eclat;

    fn sample() -> TransactionDataset {
        TransactionDataset::from_transactions(
            6,
            vec![
                vec![0, 1, 2, 4],
                vec![0, 1, 3],
                vec![0, 2, 4, 5],
                vec![1, 2, 3, 4],
                vec![0, 1, 2],
                vec![2, 3, 5],
                vec![0, 1, 2, 4, 5],
                vec![4, 5],
            ],
        )
        .unwrap()
    }

    fn policies() -> [ExecutionPolicy; 3] {
        [
            ExecutionPolicy::from_threads(1),
            ExecutionPolicy::from_threads(2),
            ExecutionPolicy::from_threads(8),
        ]
    }

    #[test]
    fn matches_sequential_bitmap_eclat_at_every_worker_count() {
        let data = sample();
        let bitmap = BitmapDataset::from_dataset(&data);
        for k in 1..=4 {
            for min_support in 1..=3 {
                let expected = Eclat.mine_k_bitmap(&bitmap, k, min_support).unwrap();
                for policy in policies() {
                    let got = ParallelEclat::new(policy)
                        .mine_k_bitmap(&bitmap, k, min_support)
                        .unwrap();
                    assert_eq!(got, expected, "k={k} s={min_support} policy={policy:?}");
                }
            }
        }
    }

    #[test]
    fn sharded_mining_matches_unsharded_at_every_worker_count() {
        let data = sample();
        let bitmap = BitmapDataset::from_dataset(&data);
        // Force several small shards so the segmented path actually runs.
        let sharded = ShardedBitmapDataset::with_shard_rows(&data, 64);
        assert!(sharded.num_shards() > 0);
        for k in 1..=3 {
            let expected = Eclat.mine_k_bitmap(&bitmap, k, 2).unwrap();
            for policy in policies() {
                let got = ParallelEclat::new(policy)
                    .mine_k_sharded(&sharded, k, 2)
                    .unwrap();
                assert_eq!(got, expected, "k={k} policy={policy:?}");
            }
        }
    }

    #[test]
    fn spilled_mining_matches_unsharded_on_both_budget_branches() {
        use sigfim_datasets::spill::{ShardResidency, SpillMode};

        let data = sample();
        let bitmap = BitmapDataset::from_dataset(&data);
        let sharded = ShardedBitmapDataset::with_shard_rows(&data, 64);
        // budget 1 byte → level-wise delegation; huge budget → pinned
        // depth-first search. Both must be bit-identical to the reference.
        for budget in [1u64, 1 << 30] {
            let residency = ShardResidency {
                budget_bytes: budget,
                mode: SpillMode::Read,
                dir: Some(std::env::temp_dir().join("sigfim-spill-tests")),
            };
            let spilled = SpilledShards::spill_sharded(&sharded, &residency).unwrap();
            assert_eq!(spilled.budget_holds_all(), budget > 1);
            for k in 1..=3 {
                let expected = Eclat.mine_k_bitmap(&bitmap, k, 2).unwrap();
                for policy in policies() {
                    let got = ParallelEclat::new(policy)
                        .mine_k_spilled(&spilled, k, 2)
                        .unwrap();
                    assert_eq!(got, expected, "budget {budget}, k={k}, policy={policy:?}");
                }
            }
        }
    }

    #[test]
    fn trait_entry_point_matches_the_csr_eclat() {
        let data = sample();
        let expected = Eclat.mine_k(&data, 3, 2).unwrap();
        let got = ParallelEclat::default().mine_k(&data, 3, 2).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        let data = sample();
        let bitmap = BitmapDataset::from_dataset(&data);
        assert!(ParallelEclat::default()
            .mine_k_bitmap(&bitmap, 0, 1)
            .is_err());
        assert!(ParallelEclat::default()
            .mine_k_bitmap(&bitmap, 2, 0)
            .is_err());
    }

    #[test]
    fn empty_and_infrequent_datasets_mine_to_empty() {
        let data = TransactionDataset::from_transactions(3, vec![vec![0], vec![1]]).unwrap();
        let bitmap = BitmapDataset::from_dataset(&data);
        let got = ParallelEclat::default()
            .mine_k_bitmap(&bitmap, 2, 2)
            .unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn dispatch_counters_track_both_entry_points() {
        let data = sample();
        let bitmap = BitmapDataset::from_dataset(&data);
        let sharded = ShardedBitmapDataset::with_shard_rows(&data, 64);
        let before = dispatch::dispatch_counts();
        ParallelEclat::default()
            .mine_k_bitmap(&bitmap, 2, 2)
            .unwrap();
        ParallelEclat::default()
            .mine_k_sharded(&sharded, 2, 2)
            .unwrap();
        let after = dispatch::dispatch_counts();
        assert!(after.par_eclat > before.par_eclat);
        assert!(after.par_eclat_sharded > before.par_eclat_sharded);
    }
}

//! Level-wise Apriori, restricted to a target itemset size `k`.
//!
//! The classic algorithm of Agrawal et al. adapted to the access pattern of the
//! paper: we only ever need the frequent itemsets of one fixed size `k` (2, 3 or 4 in
//! the experiments) at a *high* support threshold, so the candidate sets stay small
//! and a level-wise sweep with exact counting is the most economical strategy.
//!
//! Candidate counting is hybrid: per level the miner chooses between
//!
//! * **vertical counting** — intersect the tid-lists of each candidate's items
//!   (cheap when there are few candidates),
//! * **horizontal counting** — one pass over the transactions, hashing each
//!   transaction's k-subsets into the candidate table (cheap when transactions
//!   restricted to frequent items are short but candidates are many), and
//! * **bitmap counting** — AND + popcount over vertical bit-columns (cheap on
//!   dense datasets once the candidate count amortizes the column build; the
//!   bitmap is built lazily at the first level that wants it and then
//!   borrowed by every later level for free).
//!
//! The crossover is decided from the estimated subset-enumeration work, see
//! [`Apriori::counting_strategy`].

use sigfim_datasets::bitmap::BitmapDataset;
use sigfim_datasets::transaction::{ItemId, TransactionDataset};

use crate::counting::count_candidates_bitmap_with_supports;
pub use crate::counting::CountingStrategy;
use crate::itemset::{join_step, prune_step, sort_canonical, ItemsetSupport};
use crate::miner::{validate_mining_args, KItemsetMiner};
use crate::Result;

/// Configuration of the Apriori miner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Apriori {
    /// If `true`, the prune step (discarding candidates with an infrequent
    /// (k−1)-subset) is applied before counting. Disabling it is only useful for
    /// ablation benchmarks.
    pub prune: bool,
    /// Force a counting strategy instead of choosing per level.
    pub force_strategy: Option<CountingStrategy>,
}

impl Default for Apriori {
    fn default() -> Self {
        Apriori {
            prune: true,
            force_strategy: None,
        }
    }
}

impl Apriori {
    /// Decide how to count `num_candidates` candidates of size `level` given the
    /// total number of (restricted) transaction entries and the average restricted
    /// transaction length. `bitmap_ready` says whether an earlier level already
    /// built (and kept) the bit-columns, making the bitmap path build-free.
    /// Delegates to the unified density heuristic
    /// [`CountingStrategy::for_density`] unless a strategy is forced.
    pub fn counting_strategy(
        &self,
        num_candidates: usize,
        avg_restricted_len: f64,
        num_transactions: usize,
        num_items: usize,
        level: usize,
        bitmap_ready: bool,
    ) -> CountingStrategy {
        if let Some(forced) = self.force_strategy {
            return forced;
        }
        CountingStrategy::for_density(
            num_candidates,
            avg_restricted_len,
            num_transactions,
            num_items,
            level,
            bitmap_ready,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn count_level(
        &self,
        dataset: &TransactionDataset,
        tid_lists: &[Vec<u32>],
        item_supports: &[u64],
        bitmap: &mut Option<BitmapDataset>,
        candidates: &[Vec<ItemId>],
        level: usize,
        avg_restricted_len: f64,
    ) -> Vec<u64> {
        let strategy = self.counting_strategy(
            candidates.len(),
            avg_restricted_len,
            dataset.num_transactions(),
            dataset.num_items() as usize,
            level,
            bitmap.is_some(),
        );
        match strategy {
            CountingStrategy::Bitmap => {
                // Built at most once per mine_k call, then borrowed by every
                // later level that picks the bitmap. Item supports are
                // backend-invariant, so the level-1 scan already computed the
                // ordering data — no per-level column rescan.
                let bitmap = bitmap.get_or_insert_with(|| BitmapDataset::from_dataset(dataset));
                count_candidates_bitmap_with_supports(bitmap, item_supports, candidates)
            }
            other => other
                .counter()
                .count_with_tidlists(dataset, tid_lists, candidates),
        }
    }
}

/// The level-wise Apriori skeleton, shared by [`Apriori`] (density-dispatched
/// counting) and the shard-parallel miner (`crate::sharded::mine_k_sharded`):
/// level-1 seeding from the supplied item supports, then per level the
/// `join`/`prune` candidate generation, a caller-supplied counting pass, and
/// the frequency filter — so the two miners cannot drift apart in anything
/// but how a candidate batch is counted. Callers validate `(k, min_support)`
/// first; `count_level` receives `(candidates, level)` and is never invoked
/// for `k == 1`.
pub(crate) fn mine_k_levelwise<F>(
    supports: &[u64],
    k: usize,
    min_support: u64,
    prune: bool,
    mut count_level: F,
) -> Vec<ItemsetSupport>
where
    F: FnMut(&[Vec<ItemId>], usize) -> Vec<u64>,
{
    // Level 1: frequent items.
    let mut frequent_prev: Vec<Vec<ItemId>> = supports
        .iter()
        .enumerate()
        .filter(|&(_, &s)| s >= min_support)
        .map(|(i, _)| vec![i as ItemId])
        .collect();
    if k == 1 {
        let mut out: Vec<ItemsetSupport> = frequent_prev
            .into_iter()
            .map(|items| {
                let s = supports[items[0] as usize];
                ItemsetSupport { items, support: s }
            })
            .collect();
        sort_canonical(&mut out);
        return out;
    }

    let mut result = Vec::new();
    for level in 2..=k {
        if frequent_prev.len() < level {
            return Vec::new();
        }
        frequent_prev.sort_unstable();
        let mut candidates = join_step(&frequent_prev);
        if prune {
            candidates = prune_step(candidates, &frequent_prev);
        }
        if candidates.is_empty() {
            return Vec::new();
        }
        let counts = count_level(&candidates, level);
        let mut frequent_now = Vec::new();
        for (cand, count) in candidates.into_iter().zip(counts) {
            if count >= min_support {
                if level == k {
                    result.push(ItemsetSupport {
                        items: cand.clone(),
                        support: count,
                    });
                }
                frequent_now.push(cand);
            }
        }
        frequent_prev = frequent_now;
    }
    sort_canonical(&mut result);
    result
}

impl KItemsetMiner for Apriori {
    fn mine_k(
        &self,
        dataset: &TransactionDataset,
        k: usize,
        min_support: u64,
    ) -> Result<Vec<ItemsetSupport>> {
        validate_mining_args(k, min_support)?;
        let supports = dataset.item_supports();
        // Counting state is built lazily on the first level that actually
        // counts, so a k = 1 query never pays for tid-lists.
        let mut counting: Option<(Vec<Vec<u32>>, f64)> = None;
        let mut bitmap: Option<BitmapDataset> = None;
        let result = mine_k_levelwise(
            &supports,
            k,
            min_support,
            self.prune,
            |candidates, level| {
                let (tid_lists, avg_restricted_len) = counting.get_or_insert_with(|| {
                    let frequent_items =
                        supports.iter().filter(|&&s| s >= min_support).count() as f64;
                    let avg = if dataset.num_transactions() == 0 {
                        0.0
                    } else {
                        // Expected length of a transaction restricted to
                        // frequent items.
                        let freq_entries: u64 =
                            supports.iter().filter(|&&s| s >= min_support).sum();
                        (freq_entries as f64 / dataset.num_transactions() as f64)
                            .min(frequent_items)
                    };
                    (dataset.tid_lists(), avg)
                });
                self.count_level(
                    dataset,
                    tid_lists,
                    &supports,
                    &mut bitmap,
                    candidates,
                    level,
                    *avg_restricted_len,
                )
            },
        );
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TransactionDataset {
        TransactionDataset::from_transactions(
            5,
            vec![
                vec![0, 1, 2],
                vec![0, 1, 2, 3],
                vec![0, 1],
                vec![0, 1, 3],
                vec![0, 2, 3],
                vec![1, 2, 4],
                vec![0, 1, 2],
            ],
        )
        .unwrap()
    }

    #[test]
    fn frequent_single_items() {
        let mined = Apriori::default().mine_k(&toy(), 1, 4).unwrap();
        let items: Vec<_> = mined.iter().map(|m| m.items[0]).collect();
        assert_eq!(items, vec![0, 1, 2]);
        let supports: Vec<_> = mined.iter().map(|m| m.support).collect();
        assert_eq!(supports, vec![6, 6, 5]);
    }

    #[test]
    fn frequent_pairs_with_exact_supports() {
        let d = toy();
        let mined = Apriori::default().mine_k(&d, 2, 4).unwrap();
        let expected: Vec<(Vec<ItemId>, u64)> =
            vec![(vec![0, 1], 5), (vec![0, 2], 4), (vec![1, 2], 4)];
        assert_eq!(
            mined
                .iter()
                .map(|m| (m.items.clone(), m.support))
                .collect::<Vec<_>>(),
            expected
        );
    }

    #[test]
    fn frequent_triples() {
        let d = toy();
        let mined = Apriori::default().mine_k(&d, 3, 3).unwrap();
        assert_eq!(mined.len(), 1);
        assert_eq!(mined[0].items, vec![0, 1, 2]);
        assert_eq!(mined[0].support, 3);
        // Nothing of size 4 at threshold 2.
        assert!(Apriori::default().mine_k(&d, 4, 2).unwrap().is_empty());
    }

    #[test]
    fn no_frequent_items_means_empty_output() {
        let d = toy();
        assert!(Apriori::default().mine_k(&d, 2, 100).unwrap().is_empty());
    }

    #[test]
    fn supports_agree_with_reference_counting() {
        let d = toy();
        for k in 1..=3 {
            for s in 1..=4 {
                let mined = Apriori::default().mine_k(&d, k, s).unwrap();
                for m in &mined {
                    assert_eq!(
                        m.support,
                        d.itemset_support(&m.items),
                        "itemset {:?}",
                        m.items
                    );
                    assert!(m.support >= s);
                    assert_eq!(m.items.len(), k);
                }
            }
        }
    }

    #[test]
    fn forced_strategies_agree() {
        let d = toy();
        let vertical = Apriori {
            force_strategy: Some(CountingStrategy::Vertical),
            prune: true,
        };
        let horizontal = Apriori {
            force_strategy: Some(CountingStrategy::Horizontal),
            prune: true,
        };
        let bitmap = Apriori {
            force_strategy: Some(CountingStrategy::Bitmap),
            prune: true,
        };
        for k in 2..=3 {
            let reference = vertical.mine_k(&d, k, 2).unwrap();
            assert_eq!(horizontal.mine_k(&d, k, 2).unwrap(), reference, "k = {k}");
            // The per-level bitmap path (lazy column build, borrowed across
            // levels) counts identically too.
            assert_eq!(bitmap.mine_k(&d, k, 2).unwrap(), reference, "k = {k}");
        }
    }

    #[test]
    fn dense_levels_pick_the_bitmap_once_candidates_amortize_the_build() {
        // A dense 50%-density matrix: per candidate a tid-list walk touches
        // ~t/2 ids, the bitmap ⌈t/64⌉ words. With many candidates the build
        // amortizes and the level heuristic switches to the bitmap...
        let apriori = Apriori::default();
        let strategy = apriori.counting_strategy(2_000, 30.0, 4_000, 60, 3, false);
        assert_eq!(strategy, CountingStrategy::Bitmap);
        // ...and once a bitmap exists, even a small follow-up level rides it
        // for free where a cold level would not have paid the build.
        let warm = apriori.counting_strategy(40, 30.0, 4_000, 60, 4, true);
        assert_eq!(warm, CountingStrategy::Bitmap);
        // Tiny candidate batches against a cold dataset keep the tid-lists.
        let cold_small = apriori.counting_strategy(3, 30.0, 4_000, 60, 4, false);
        assert_ne!(cold_small, CountingStrategy::Bitmap);
        // Short restricted transactions keep the horizontal pass competitive.
        let sparse = apriori.counting_strategy(10, 2.0, 200, 60, 2, false);
        assert_eq!(sparse, CountingStrategy::Horizontal);
        // Auto-selected mining over a dense dataset matches the forced paths
        // end to end (the level heuristic only changes speed, never counts).
        let dense = TransactionDataset::from_transactions(
            20,
            (0..400)
                .map(|i| (0..20).filter(|j| (i + j) % 2 == 0).collect())
                .collect(),
        )
        .unwrap();
        let auto = Apriori::default();
        let forced = Apriori {
            force_strategy: Some(CountingStrategy::Vertical),
            prune: true,
        };
        for k in 2..=3 {
            assert_eq!(
                auto.mine_k(&dense, k, 150).unwrap(),
                forced.mine_k(&dense, k, 150).unwrap(),
                "k = {k}"
            );
        }
    }

    #[test]
    fn pruning_does_not_change_results() {
        let d = toy();
        let pruned = Apriori {
            prune: true,
            force_strategy: None,
        };
        let unpruned = Apriori {
            prune: false,
            force_strategy: None,
        };
        for k in 2..=4 {
            assert_eq!(
                pruned.mine_k(&d, k, 2).unwrap(),
                unpruned.mine_k(&d, k, 2).unwrap()
            );
        }
    }

    #[test]
    fn mine_up_to_collects_all_sizes() {
        let d = toy();
        let all = Apriori::default().mine_up_to(&d, 3, 3).unwrap();
        let per_size: Vec<usize> = (1..=3)
            .map(|k| Apriori::default().mine_k(&d, k, 3).unwrap().len())
            .collect();
        assert_eq!(all.len(), per_size.iter().sum::<usize>());
    }

    #[test]
    fn empty_dataset_yields_nothing() {
        let d = TransactionDataset::empty(10);
        assert!(Apriori::default().mine_k(&d, 2, 1).unwrap().is_empty());
    }
}

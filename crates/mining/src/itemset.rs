//! Itemset value types shared by every miner.
//!
//! An itemset is represented as a sorted, duplicate-free `Vec<ItemId>`; the
//! [`ItemsetSupport`] pair attaches its support (number of containing transactions).
//! The module also provides the candidate-generation primitives used by Apriori:
//! prefix joins of sorted (k−1)-itemsets and enumeration of (k−1)-subsets for the
//! prune step.

use serde::{Deserialize, Serialize};
use sigfim_datasets::transaction::ItemId;

/// An itemset together with its support in some dataset.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ItemsetSupport {
    /// The items, sorted ascending and distinct.
    pub items: Vec<ItemId>,
    /// Number of transactions containing every item of the itemset.
    pub support: u64,
}

impl ItemsetSupport {
    /// Create a supported itemset, normalizing (sorting and deduplicating) the items.
    pub fn new(mut items: Vec<ItemId>, support: u64) -> Self {
        items.sort_unstable();
        items.dedup();
        ItemsetSupport { items, support }
    }

    /// Size (number of items) of the itemset.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True for the empty itemset.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Canonical ordering: by items lexicographically, then by support. Useful to make
/// miner outputs comparable across algorithms.
pub fn sort_canonical(itemsets: &mut [ItemsetSupport]) {
    itemsets.sort_by(|a, b| a.items.cmp(&b.items).then(a.support.cmp(&b.support)));
}

/// Apriori candidate generation: join every pair of frequent (k−1)-itemsets that
/// share their first k−2 items, producing sorted candidate k-itemsets. The input
/// slices must be sorted and distinct (as produced by [`ItemsetSupport::new`]); the
/// input *list* must be sorted lexicographically (see [`sort_canonical`]).
pub fn join_step(frequent: &[Vec<ItemId>]) -> Vec<Vec<ItemId>> {
    let mut candidates = Vec::new();
    if frequent.is_empty() {
        return candidates;
    }
    let k_minus_1 = frequent[0].len();
    for i in 0..frequent.len() {
        for j in (i + 1)..frequent.len() {
            let a = &frequent[i];
            let b = &frequent[j];
            debug_assert_eq!(a.len(), k_minus_1);
            debug_assert_eq!(b.len(), k_minus_1);
            // Lexicographic sorting means all joinable partners of `a` follow it
            // contiguously; stop as soon as the shared prefix breaks.
            if k_minus_1 > 0 && a[..k_minus_1 - 1] != b[..k_minus_1 - 1] {
                break;
            }
            let mut candidate = a.clone();
            candidate.push(b[k_minus_1 - 1]);
            debug_assert!(candidate.windows(2).all(|w| w[0] < w[1]));
            candidates.push(candidate);
        }
    }
    candidates
}

/// Apriori prune step: keep only candidates all of whose (k−1)-subsets appear in the
/// frequent (k−1)-itemset list (supplied as a sorted slice for binary search).
pub fn prune_step(candidates: Vec<Vec<ItemId>>, frequent_prev: &[Vec<ItemId>]) -> Vec<Vec<ItemId>> {
    candidates
        .into_iter()
        .filter(|cand| {
            subsets_dropping_one(cand).all(|sub| frequent_prev.binary_search(&sub).is_ok())
        })
        .collect()
}

/// Iterator over the (k−1)-subsets of a k-itemset (each subset obtained by dropping
/// one element), in the order of the dropped position.
pub fn subsets_dropping_one(itemset: &[ItemId]) -> impl Iterator<Item = Vec<ItemId>> + '_ {
    (0..itemset.len()).map(move |skip| {
        itemset
            .iter()
            .enumerate()
            .filter_map(|(i, &x)| if i == skip { None } else { Some(x) })
            .collect()
    })
}

/// Enumerate all `k`-subsets of a sorted slice, invoking `visit` on each (the buffer
/// is reused between calls). Used by hash-based candidate counting and by the
/// brute-force reference miner.
pub fn for_each_k_subset<F: FnMut(&[ItemId])>(items: &[ItemId], k: usize, mut visit: F) {
    if k == 0 || k > items.len() {
        if k == 0 {
            visit(&[]);
        }
        return;
    }
    let mut indices: Vec<usize> = (0..k).collect();
    let mut buffer: Vec<ItemId> = indices.iter().map(|&i| items[i]).collect();
    loop {
        visit(&buffer);
        // Advance the combination (standard odometer).
        let mut pos = k;
        loop {
            if pos == 0 {
                return;
            }
            pos -= 1;
            if indices[pos] != pos + items.len() - k {
                break;
            }
            if pos == 0 {
                return;
            }
        }
        indices[pos] += 1;
        for i in pos + 1..k {
            indices[i] = indices[i - 1] + 1;
        }
        for i in pos..k {
            buffer[i] = items[indices[i]];
        }
    }
}

/// Number of `k`-subsets of an `n`-element set, saturating at `u64::MAX` (used to
/// decide between subset enumeration and candidate iteration when counting).
pub fn binomial_u64(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u64 = 1;
    for i in 0..k {
        // result * (n - i) / (i + 1), computed carefully to stay exact.
        let num = n - i;
        match result.checked_mul(num) {
            Some(v) => result = v / (i + 1),
            None => return u64::MAX,
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn itemset_support_normalizes() {
        let s = ItemsetSupport::new(vec![3, 1, 3, 2], 7);
        assert_eq!(s.items, vec![1, 2, 3]);
        assert_eq!(s.support, 7);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(ItemsetSupport::new(vec![], 0).is_empty());
    }

    #[test]
    fn join_step_pairs() {
        // Frequent 1-itemsets {1}, {3}, {7} join into all pairs.
        let frequent = vec![vec![1], vec![3], vec![7]];
        let cands = join_step(&frequent);
        assert_eq!(cands, vec![vec![1, 3], vec![1, 7], vec![3, 7]]);
    }

    #[test]
    fn join_step_requires_shared_prefix() {
        // {1,2}, {1,3}, {2,3}: only {1,2}+{1,3} share the prefix [1].
        let frequent = vec![vec![1, 2], vec![1, 3], vec![2, 3]];
        let cands = join_step(&frequent);
        assert_eq!(cands, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn prune_removes_candidates_with_infrequent_subsets() {
        let frequent_prev = vec![vec![1, 2], vec![1, 3], vec![2, 3], vec![2, 4]];
        let candidates = vec![vec![1, 2, 3], vec![1, 2, 4]];
        let pruned = prune_step(candidates, &frequent_prev);
        // {1,2,4} is dropped because {1,4} is not frequent.
        assert_eq!(pruned, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn subsets_dropping_one_enumerates_all() {
        let subs: Vec<_> = subsets_dropping_one(&[1, 2, 3]).collect();
        assert_eq!(subs, vec![vec![2, 3], vec![1, 3], vec![1, 2]]);
        let subs: Vec<_> = subsets_dropping_one(&[5]).collect();
        assert_eq!(subs, vec![Vec::<ItemId>::new()]);
    }

    #[test]
    fn k_subset_enumeration() {
        let mut seen = Vec::new();
        for_each_k_subset(&[1, 2, 3, 4], 2, |s| seen.push(s.to_vec()));
        assert_eq!(
            seen,
            vec![
                vec![1, 2],
                vec![1, 3],
                vec![1, 4],
                vec![2, 3],
                vec![2, 4],
                vec![3, 4]
            ]
        );
        let mut count = 0usize;
        for_each_k_subset(&[1, 2, 3, 4, 5, 6], 3, |_| count += 1);
        assert_eq!(count, 20);
        // Degenerate cases.
        let mut seen = Vec::new();
        for_each_k_subset(&[1, 2], 0, |s| seen.push(s.to_vec()));
        assert_eq!(seen, vec![Vec::<ItemId>::new()]);
        let mut seen = Vec::new();
        for_each_k_subset(&[1, 2], 3, |s| seen.push(s.to_vec()));
        assert!(seen.is_empty());
        let mut seen = Vec::new();
        for_each_k_subset(&[1, 2, 3], 3, |s| seen.push(s.to_vec()));
        assert_eq!(seen, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial_u64(5, 2), 10);
        assert_eq!(binomial_u64(10, 0), 1);
        assert_eq!(binomial_u64(10, 10), 1);
        assert_eq!(binomial_u64(3, 5), 0);
        assert_eq!(binomial_u64(52, 5), 2_598_960);
        // Saturation instead of overflow.
        assert_eq!(binomial_u64(10_000, 100), u64::MAX);
    }

    #[test]
    fn sort_canonical_orders_lexicographically() {
        let mut sets = vec![
            ItemsetSupport::new(vec![2, 3], 5),
            ItemsetSupport::new(vec![1, 9], 2),
            ItemsetSupport::new(vec![1, 2], 8),
        ];
        sort_canonical(&mut sets);
        assert_eq!(sets[0].items, vec![1, 2]);
        assert_eq!(sets[1].items, vec![1, 9]);
        assert_eq!(sets[2].items, vec![2, 3]);
    }
}

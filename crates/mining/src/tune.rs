//! Startup micro-benchmark picking the *miner* for `--miner auto`, the
//! mining-side sibling of [`sigfim_datasets::tune`] (which picks the kernel,
//! shard budget and replicate sampler).
//!
//! Subtree parallelism ([`crate::par_eclat::ParallelEclat`]) pays for its
//! frame queue only when workers are real and the machine's thread spin-up is
//! cheaper than the subtrees it parallelizes — on a single hardware core the
//! sequential bitset Eclat often wins outright. The tuner mines one
//! deterministic synthetic bitmap with both miners once at startup (gated by
//! the same `SIGFIM_TUNE=off|auto` switch the dataset tuner honors) and
//! remembers which was faster; [`tuned_miner`] folds that preference into the
//! `auto` miner resolution.
//!
//! The benchmark dataset is built **without any RNG** (this crate keeps
//! `rand` as a dev-dependency only): item membership comes from a splitmix64
//! hash of the `(transaction, item)` cell, which is deterministic across
//! processes and platforms.

use std::sync::OnceLock;
use std::time::Instant;

use sigfim_datasets::bitmap::BitmapDataset;
use sigfim_datasets::transaction::TransactionDataset;
use sigfim_datasets::tune::{resolve_tune_request, TuneMode};
use sigfim_exec::ExecutionPolicy;

use crate::eclat::Eclat;
use crate::miner::MinerKind;
use crate::par_eclat::ParallelEclat;

/// One miner micro-benchmark sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinerTuneTiming {
    /// The miner that was measured.
    pub miner: MinerKind,
    /// Median of the timed repetitions, in nanoseconds.
    pub median_ns: u64,
}

/// The cached per-process miner-tuner decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinerTuneDecision {
    /// `true` when the micro-benchmark actually ran (`SIGFIM_TUNE=auto`);
    /// `false` means the static preference below was used unmeasured.
    pub tuned: bool,
    /// Whether the subtree-parallel miner beat the sequential bitset Eclat on
    /// this machine. With tuning off this is statically `true`: parallelism
    /// gets the benefit of the doubt and only the worker count gates it.
    pub parallel_pays_off: bool,
    /// The measurements behind the decision (empty when tuning was off).
    pub timings: Vec<MinerTuneTiming>,
}

/// The process-wide miner-tuner decision, measured at most once.
///
/// # Panics
///
/// Panics (at first use) when `SIGFIM_TUNE` is set to an unknown value —
/// validate with [`sigfim_datasets::tune::resolve_tune_request`] at startup
/// to report it cleanly.
pub fn miner_decision() -> &'static MinerTuneDecision {
    static DECISION: OnceLock<MinerTuneDecision> = OnceLock::new();
    DECISION.get_or_init(|| {
        let mode = resolve_tune_request(std::env::var("SIGFIM_TUNE").ok().as_deref())
            .unwrap_or_else(|error| panic!("{error}"));
        match mode {
            TuneMode::Off => MinerTuneDecision {
                tuned: false,
                parallel_pays_off: true,
                timings: Vec::new(),
            },
            TuneMode::Auto => measure(),
        }
    })
}

/// The miner an `auto` request should resolve to, given whether the dense
/// bitmap mining path applies and how many workers the execution policy
/// provides. Sparse (CSR) data and single-worker policies always take the
/// sequential Eclat — the parallel miner's frame queue cannot pay for itself
/// there; otherwise the tuner's measured preference decides.
pub fn tuned_miner(bitmap_path: bool, workers: usize) -> MinerKind {
    if !bitmap_path || workers < 2 {
        return MinerKind::Eclat;
    }
    let decision = miner_decision();
    if decision.tuned && !decision.parallel_pays_off {
        MinerKind::Eclat
    } else {
        MinerKind::ParEclat
    }
}

/// splitmix64: the same deterministic mixer the dataset tuner patterns use.
fn mix(cell: u64) -> u64 {
    let mut z = cell.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic benchmark bitmap: hash-thresholded cell membership at
/// ~6% density over a shape small enough to measure in microseconds but deep
/// enough that k = 2 mining walks real subtrees.
fn synthetic_bitmap() -> BitmapDataset {
    const ITEMS: u64 = 40;
    const TRANSACTIONS: u64 = 1536;
    // 6% of u64::MAX, computed in integer space.
    const THRESHOLD: u64 = u64::MAX / 50 * 3;
    let transactions: Vec<Vec<u32>> = (0..TRANSACTIONS)
        .map(|t| {
            (0..ITEMS)
                .filter(|&i| mix(t * ITEMS + i) < THRESHOLD)
                .map(|i| i as u32)
                .collect()
        })
        .collect();
    let dataset = TransactionDataset::from_transactions(ITEMS as u32, transactions)
        .expect("hash-generated items are in range");
    BitmapDataset::from_dataset(&dataset)
}

/// Median of a small sample set (sorts in place).
fn median_ns(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Run the micro-benchmark and derive the decision.
fn measure() -> MinerTuneDecision {
    let bitmap = synthetic_bitmap();
    const K: usize = 2;
    const FLOOR: u64 = 3;
    const REPS: usize = 5;

    let time = |mine: &dyn Fn() -> usize| -> u64 {
        // One warm-up run populates caches and (for the parallel miner)
        // spins the worker pool up outside the timed region.
        let baseline = mine();
        let mut samples = [0u64; REPS];
        for sample in &mut samples {
            let start = Instant::now();
            let mined = mine();
            *sample = start.elapsed().as_nanos() as u64;
            assert_eq!(mined, baseline, "miners must agree run to run");
        }
        median_ns(&mut samples)
    };

    let sequential = time(&|| Eclat.mine_k_bitmap(&bitmap, K, FLOOR).unwrap().len());
    let parallel_miner = ParallelEclat::new(ExecutionPolicy::rayon(2));
    let parallel = time(&|| {
        parallel_miner
            .mine_k_bitmap(&bitmap, K, FLOOR)
            .unwrap()
            .len()
    });

    MinerTuneDecision {
        tuned: true,
        // Ties go to the sequential miner: equal speed means the frame queue
        // bought nothing.
        parallel_pays_off: parallel < sequential,
        timings: vec![
            MinerTuneTiming {
                miner: MinerKind::Eclat,
                median_ns: sequential,
            },
            MinerTuneTiming {
                miner: MinerKind::ParEclat,
                median_ns: parallel,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_bitmap_is_deterministic_and_non_trivial() {
        let a = synthetic_bitmap();
        let b = synthetic_bitmap();
        assert_eq!(a.num_entries(), b.num_entries());
        assert!(a.num_entries() > 0);
        // Both miners find the same (non-empty) k = 2 family on it.
        let sequential = Eclat.mine_k_bitmap(&a, 2, 3).unwrap();
        let parallel = ParallelEclat::new(ExecutionPolicy::rayon(2))
            .mine_k_bitmap(&a, 2, 3)
            .unwrap();
        assert_eq!(sequential, parallel);
        assert!(!sequential.is_empty());
    }

    #[test]
    fn decision_is_cached_and_consistent() {
        let decision = miner_decision();
        assert_eq!(decision, miner_decision());
        if decision.tuned {
            assert_eq!(decision.timings.len(), 2);
            let by_kind = |kind: MinerKind| {
                decision
                    .timings
                    .iter()
                    .find(|t| t.miner == kind)
                    .expect("both miners are measured")
                    .median_ns
            };
            assert_eq!(
                decision.parallel_pays_off,
                by_kind(MinerKind::ParEclat) < by_kind(MinerKind::Eclat)
            );
        } else {
            assert!(decision.timings.is_empty());
            assert!(decision.parallel_pays_off);
        }
    }

    #[test]
    fn auto_miner_resolution_gates_on_path_and_workers() {
        // CSR data or a single worker: always the sequential Eclat,
        // regardless of what the tuner measured.
        assert_eq!(tuned_miner(false, 8), MinerKind::Eclat);
        assert_eq!(tuned_miner(true, 1), MinerKind::Eclat);
        assert_eq!(tuned_miner(false, 1), MinerKind::Eclat);
        // Bitmap path with real workers: the tuner's preference decides.
        let expected = if miner_decision().tuned && !miner_decision().parallel_pays_off {
            MinerKind::Eclat
        } else {
            MinerKind::ParEclat
        };
        assert_eq!(tuned_miner(true, 2), expected);
        assert_eq!(tuned_miner(true, 8), expected);
    }
}

//! Exhaustive reference miner.
//!
//! Enumerates every k-combination of the frequent items and counts each candidate
//! exactly. `O(C(n', k))` in the number `n'` of frequent items, so only usable on
//! small problems — which is exactly its purpose: an oracle that the real miners are
//! validated against in unit, property and integration tests.

use sigfim_datasets::transaction::{ItemId, TransactionDataset};

use crate::counting::support_from_tidlists;
use crate::itemset::{binomial_u64, for_each_k_subset, sort_canonical, ItemsetSupport};
use crate::miner::{validate_mining_args, KItemsetMiner};
use crate::{MiningError, Result};

/// Largest candidate count the brute-force miner is willing to enumerate. Above this
/// the caller almost certainly meant to use a real miner, and silently grinding for
/// hours would be worse than an error.
pub const MAX_BRUTE_FORCE_CANDIDATES: u64 = 20_000_000;

/// The exhaustive reference miner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BruteForce;

impl KItemsetMiner for BruteForce {
    fn mine_k(
        &self,
        dataset: &TransactionDataset,
        k: usize,
        min_support: u64,
    ) -> Result<Vec<ItemsetSupport>> {
        validate_mining_args(k, min_support)?;
        let supports = dataset.item_supports();
        // Every item of a frequent k-itemset is itself frequent, so restricting the
        // universe to frequent items loses nothing.
        let frequent_items: Vec<ItemId> = (0..dataset.num_items())
            .filter(|&i| supports[i as usize] >= min_support)
            .collect();
        let candidates = binomial_u64(frequent_items.len() as u64, k as u64);
        if candidates > MAX_BRUTE_FORCE_CANDIDATES {
            return Err(MiningError::ProblemTooLarge {
                candidates,
                limit: MAX_BRUTE_FORCE_CANDIDATES,
            });
        }
        let tid_lists = dataset.tid_lists();
        let mut output = Vec::new();
        for_each_k_subset(&frequent_items, k, |candidate| {
            let support = support_from_tidlists(&tid_lists, candidate, dataset.num_transactions());
            if support >= min_support {
                output.push(ItemsetSupport {
                    items: candidate.to_vec(),
                    support,
                });
            }
        });
        sort_canonical(&mut output);
        Ok(output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::Apriori;

    fn toy() -> TransactionDataset {
        TransactionDataset::from_transactions(
            5,
            vec![
                vec![0, 1, 2],
                vec![0, 1, 3],
                vec![0, 1, 2, 3],
                vec![1, 2, 4],
                vec![0, 2, 4],
                vec![0, 1],
            ],
        )
        .unwrap()
    }

    #[test]
    fn matches_apriori() {
        let d = toy();
        for k in 1..=3 {
            for s in 1..=3 {
                assert_eq!(
                    BruteForce.mine_k(&d, k, s).unwrap(),
                    Apriori::default().mine_k(&d, k, s).unwrap(),
                    "k={k}, s={s}"
                );
            }
        }
    }

    #[test]
    fn rejects_infeasible_enumeration() {
        // 5000 items each occurring once => C(5000, 4) ≈ 2.6e13 candidates at s = 1.
        let transactions: Vec<Vec<ItemId>> = (0..5000u32).map(|i| vec![i]).collect();
        let d = TransactionDataset::from_transactions(5000, transactions).unwrap();
        let err = BruteForce.mine_k(&d, 4, 1).unwrap_err();
        match err {
            MiningError::ProblemTooLarge { candidates, limit } => {
                assert!(candidates > limit);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn exact_supports() {
        let d = toy();
        for m in BruteForce.mine_k(&d, 2, 2).unwrap() {
            assert_eq!(m.support, d.itemset_support(&m.items));
        }
    }
}

//! Property-based tests for the mining crate.
//!
//! The central invariant: every miner returns exactly the k-itemsets with support at
//! least `s`, with exact supports — so all algorithms must agree with each other and
//! with the brute-force oracle on random datasets.

use proptest::collection::vec;
use proptest::prelude::*;

use sigfim_datasets::bitmap::{BitmapDataset, DatasetBackend};
use sigfim_datasets::sharded::ShardedBitmapDataset;
use sigfim_datasets::spill::{ShardResidency, SpillMode, SpilledShards, MMAP_SUPPORTED};
use sigfim_datasets::transaction::{ItemId, TransactionDataset};
use sigfim_exec::ExecutionPolicy;
use sigfim_mining::counting::{
    count_candidates_bitmap, q_k_s, supports_of, BitmapCounter, HorizontalCounter, SupportCounter,
    SupportProfile, TidListCounter,
};
use sigfim_mining::miner::{KItemsetMiner, MinerKind};
use sigfim_mining::{Apriori, BruteForce, Eclat, FpGrowth, ParallelEclat};

/// Strategy: a small random dataset over up to 8 items with up to 24 transactions.
fn small_dataset() -> impl Strategy<Value = TransactionDataset> {
    vec(vec(0u32..8, 0..6), 1..24)
        .prop_map(|txns| TransactionDataset::from_transactions(8, txns).expect("items < 8"))
}

/// Strategy: a dataset whose shape spans the backend heuristic's whole range —
/// item universes up to 12, up to 90 transactions (so bit-columns span multiple
/// words), per-transaction lengths from 0 (empty transactions) to dense.
fn varied_density_dataset() -> impl Strategy<Value = TransactionDataset> {
    vec(vec(0u32..12, 0..10), 1..90)
        .prop_map(|txns| TransactionDataset::from_transactions(12, txns).expect("items < 12"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_miners_agree(dataset in small_dataset(), k in 1usize..5, s in 1u64..6) {
        let reference = BruteForce.mine_k(&dataset, k, s).unwrap();
        prop_assert_eq!(&Apriori::default().mine_k(&dataset, k, s).unwrap(), &reference);
        prop_assert_eq!(&Eclat.mine_k(&dataset, k, s).unwrap(), &reference);
        prop_assert_eq!(&FpGrowth.mine_k(&dataset, k, s).unwrap(), &reference);
    }

    #[test]
    fn mined_itemsets_have_exact_supports(dataset in small_dataset(), k in 1usize..4, s in 1u64..5) {
        for m in Apriori::default().mine_k(&dataset, k, s).unwrap() {
            prop_assert_eq!(m.support, dataset.itemset_support(&m.items));
            prop_assert!(m.support >= s);
            prop_assert_eq!(m.items.len(), k);
            // Items sorted and distinct.
            prop_assert!(m.items.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn q_is_monotone_in_s(dataset in small_dataset(), k in 1usize..4) {
        let mut previous = u64::MAX;
        for s in 1..=6u64 {
            let q = q_k_s(&dataset, k, s).unwrap();
            prop_assert!(q <= previous, "Q_{{k,s}} must be non-increasing in s");
            previous = q;
        }
    }

    #[test]
    fn support_profile_matches_direct_counts(dataset in small_dataset(), k in 1usize..4) {
        let profile = SupportProfile::new(&dataset, k, 1).unwrap();
        for s in 1..=6u64 {
            prop_assert_eq!(profile.q_at(s), q_k_s(&dataset, k, s).unwrap());
        }
    }

    #[test]
    fn batch_counting_matches_reference(dataset in small_dataset(), sets in vec(vec(0u32..8, 1..4), 1..10)) {
        let normalized: Vec<Vec<ItemId>> = sets
            .into_iter()
            .map(|mut s| {
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        let batch = supports_of(&dataset, &normalized);
        for (set, support) in normalized.iter().zip(batch) {
            prop_assert_eq!(support, dataset.itemset_support(set));
        }
    }

    #[test]
    fn mine_up_to_is_union_of_sizes(dataset in small_dataset(), s in 1u64..5) {
        for kind in [MinerKind::Apriori, MinerKind::Eclat, MinerKind::FpGrowth] {
            let mut union = Vec::new();
            for k in 1..=3 {
                union.extend(kind.mine_k(&dataset, k, s).unwrap());
            }
            sigfim_mining::itemset::sort_canonical(&mut union);
            let up_to = match kind {
                MinerKind::Apriori => Apriori::default().mine_up_to(&dataset, 3, s).unwrap(),
                MinerKind::Eclat => Eclat.mine_up_to(&dataset, 3, s).unwrap(),
                MinerKind::FpGrowth => FpGrowth.mine_up_to(&dataset, 3, s).unwrap(),
                MinerKind::BruteForce | MinerKind::ParEclat => unreachable!(),
            };
            prop_assert_eq!(union, up_to, "{}", kind.name());
        }
    }

    #[test]
    fn bitmap_backend_supports_match_tidlist_and_horizontal(
        dataset in varied_density_dataset(),
        k in 1usize..4,
        sets in vec(vec(0u32..12, 0..4), 1..12),
    ) {
        // Uniform-size candidate lists exercise all three counters (the
        // horizontal pass requires one size)...
        let uniform: Vec<Vec<ItemId>> = sets
            .iter()
            .cloned()
            .map(|mut s| {
                s.sort_unstable();
                s.dedup();
                s.truncate(k);
                s
            })
            .filter(|s| s.len() == k)
            .collect();
        if !uniform.is_empty() {
            let tidlist = TidListCounter.count(&dataset, &uniform);
            prop_assert_eq!(&BitmapCounter.count(&dataset, &uniform), &tidlist);
            prop_assert_eq!(&HorizontalCounter.count(&dataset, &uniform), &tidlist);
            for (set, &support) in uniform.iter().zip(&tidlist) {
                prop_assert_eq!(support, dataset.itemset_support(set));
            }
        }
        // ... and the raw bitmap batch path also covers mixed sizes and the
        // empty itemset (support = t by convention).
        let mut mixed: Vec<Vec<ItemId>> = sets
            .into_iter()
            .map(|mut s| {
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        mixed.push(Vec::new());
        let bitmap = BitmapDataset::from_dataset(&dataset);
        let counts = count_candidates_bitmap(&bitmap, &mixed);
        for (set, support) in mixed.iter().zip(counts) {
            prop_assert_eq!(support, dataset.itemset_support(set), "itemset {:?}", set);
        }
        prop_assert_eq!(
            bitmap.itemset_support(&[]),
            dataset.num_transactions() as u64
        );
    }

    #[test]
    fn bitmap_eclat_and_backend_profiles_match_csr(
        dataset in varied_density_dataset(),
        k in 1usize..4,
        floor in 1u64..5,
    ) {
        let bitmap = BitmapDataset::from_dataset(&dataset);
        let reference = Eclat.mine_k(&dataset, k, floor).unwrap();
        prop_assert_eq!(&Eclat.mine_k_bitmap(&bitmap, k, floor).unwrap(), &reference);
        // The support profile is identical whichever backend mined it.
        let csr_profile = SupportProfile::with_backend(
            MinerKind::Apriori, &dataset, k, floor, DatasetBackend::Csr).unwrap();
        let bitmap_profile = SupportProfile::with_backend(
            MinerKind::Apriori, &dataset, k, floor, DatasetBackend::Bitmap).unwrap();
        let auto_profile = SupportProfile::with_backend(
            MinerKind::Apriori, &dataset, k, floor, DatasetBackend::Auto).unwrap();
        prop_assert_eq!(&csr_profile, &bitmap_profile);
        prop_assert_eq!(&csr_profile, &auto_profile);
    }

    #[test]
    fn sharded_profiles_match_unsharded_at_1_2_and_8_threads(
        dataset in varied_density_dataset(),
        k in 1usize..4,
        floor in 1u64..5,
        width in 0usize..3,
    ) {
        // The acceptance contract of the sharded backend: a SupportProfile
        // mined over transaction shards equals the unsharded one at every
        // shard width and worker count — counting partial supports per shard
        // and reducing in fixed shard order loses nothing and reorders
        // nothing.
        let shard_rows = [64usize, 128, 512][width];
        let reference = SupportProfile::with_backend(
            MinerKind::Apriori, &dataset, k, floor, DatasetBackend::Csr).unwrap();
        let sharded = ShardedBitmapDataset::with_shard_rows(&dataset, shard_rows);
        for threads in [1usize, 2, 8] {
            let profile = SupportProfile::from_sharded(
                &sharded, k, floor, ExecutionPolicy::from_threads(threads)).unwrap();
            prop_assert_eq!(&profile, &reference, "width {}, {} thread(s)", shard_rows, threads);
        }
        // The backend-dispatch entry point agrees too.
        let dispatched = SupportProfile::with_backend(
            MinerKind::Apriori, &dataset, k, floor, DatasetBackend::Sharded).unwrap();
        prop_assert_eq!(&dispatched, &reference);
    }

    #[test]
    fn par_eclat_matches_sequential_at_1_2_and_8_workers(
        dataset in varied_density_dataset(),
        k in 1usize..5,
        floor in 1u64..5,
    ) {
        // The acceptance contract of the subtree-parallel miner: itemsets AND
        // supports, in canonical order, are bit-identical to the sequential
        // bitset Eclat at every worker count — with and without transaction
        // sharding.
        let bitmap = BitmapDataset::from_dataset(&dataset);
        let reference = Eclat.mine_k_bitmap(&bitmap, k, floor).unwrap();
        let sharded = ShardedBitmapDataset::with_shard_rows(&dataset, 64);
        for threads in [1usize, 2, 8] {
            let miner = ParallelEclat::new(ExecutionPolicy::from_threads(threads));
            let unsharded = miner.mine_k_bitmap(&bitmap, k, floor).unwrap();
            prop_assert_eq!(&unsharded, &reference, "{} worker(s), unsharded", threads);
            let over_shards = miner.mine_k_sharded(&sharded, k, floor).unwrap();
            prop_assert_eq!(&over_shards, &reference, "{} worker(s), sharded", threads);
        }
        // The MinerKind dispatch surface agrees with the CSR reference too.
        let csr_reference = Eclat.mine_k(&dataset, k, floor).unwrap();
        prop_assert_eq!(&MinerKind::ParEclat.mine_k(&dataset, k, floor).unwrap(), &csr_reference);
    }

    #[test]
    fn par_eclat_adaptive_split_stays_bit_identical_under_repetition(
        dataset in varied_density_dataset(),
        k in 2usize..5,
        floor in 1u64..4,
    ) {
        // The split threshold is steered by a live queue-depth EWMA whose
        // trajectory depends on scheduling — so hammer the same mining
        // problem repeatedly at 1/2/8 workers and require every run, whatever
        // split decisions its controller made, to be bit-identical to the
        // sequential reference.
        let bitmap = BitmapDataset::from_dataset(&dataset);
        let reference = Eclat.mine_k_bitmap(&bitmap, k, floor).unwrap();
        for threads in [1usize, 2, 8] {
            let miner = ParallelEclat::new(ExecutionPolicy::from_threads(threads));
            for round in 0..3 {
                let got = miner.mine_k_bitmap(&bitmap, k, floor).unwrap();
                prop_assert_eq!(&got, &reference, "{} worker(s), round {}", threads, round);
            }
        }
    }

    #[test]
    fn par_eclat_profiles_match_sequential_constructors(
        dataset in varied_density_dataset(),
        k in 1usize..4,
        floor in 1u64..5,
    ) {
        // SupportProfile (and thus Q_{k,s}) is bit-identical whichever miner
        // built it, so cached profiles can be shared freely across miners.
        let bitmap = BitmapDataset::from_dataset(&dataset);
        let sharded = ShardedBitmapDataset::with_shard_rows(&dataset, 64);
        let reference = SupportProfile::from_bitmap(&bitmap, k, floor).unwrap();
        for threads in [1usize, 2, 8] {
            let policy = ExecutionPolicy::from_threads(threads);
            let parallel = SupportProfile::from_bitmap_parallel(&bitmap, k, floor, policy).unwrap();
            prop_assert_eq!(&parallel, &reference, "{} worker(s), unsharded", threads);
            let over_shards =
                SupportProfile::from_sharded_parallel(&sharded, k, floor, policy).unwrap();
            prop_assert_eq!(&over_shards, &reference, "{} worker(s), sharded", threads);
        }
    }

    #[test]
    fn spilled_profiles_match_resident_at_1_2_and_8_threads(
        dataset in varied_density_dataset(),
        k in 1usize..4,
        floor in 1u64..5,
    ) {
        // The acceptance contract of the out-of-core backend: a
        // SupportProfile mined with shards paged through a residency budget —
        // even a budget so small only one shard is ever resident — equals the
        // fully-resident profile bit for bit, at every worker count, on both
        // fault paths, through both the level-wise and the depth-first miner.
        let sharded = ShardedBitmapDataset::with_shard_rows(&dataset, 64);
        let reference = SupportProfile::from_sharded(
            &sharded, k, floor, ExecutionPolicy::Sequential).unwrap();
        let modes: &[SpillMode] = if MMAP_SUPPORTED {
            &[SpillMode::Mmap, SpillMode::Read]
        } else {
            &[SpillMode::Read]
        };
        for &mode in modes {
            // 1 byte: spill-forced (at most one shard resident, constant
            // eviction). 1 GiB: everything fits, the depth-first miner pins.
            for budget in [1u64, 1 << 30] {
                let residency = ShardResidency {
                    budget_bytes: budget,
                    mode,
                    dir: Some(std::env::temp_dir().join("sigfim-spill-tests")),
                };
                let spilled = SpilledShards::spill_sharded(&sharded, &residency).unwrap();
                for threads in [1usize, 2, 8] {
                    let policy = ExecutionPolicy::from_threads(threads);
                    let levelwise = SupportProfile::from_spilled(&spilled, k, floor, policy).unwrap();
                    prop_assert_eq!(
                        &levelwise, &reference,
                        "{} budget {}, {} thread(s), level-wise", mode, budget, threads);
                    let parallel =
                        SupportProfile::from_spilled_parallel(&spilled, k, floor, policy).unwrap();
                    prop_assert_eq!(
                        &parallel, &reference,
                        "{} budget {}, {} thread(s), par-eclat", mode, budget, threads);
                }
            }
        }
    }

    #[test]
    fn closed_itemsets_are_a_subset_with_identical_support_structure(
        dataset in small_dataset(),
        s in 1u64..4,
    ) {
        let all = Eclat.mine_up_to(&dataset, 3, s).unwrap();
        let closed = sigfim_mining::closed::closed_frequent_itemsets(&dataset, 3, s).unwrap();
        // Every closed itemset is frequent, and closed per the closure operator.
        for c in &closed {
            prop_assert!(all.contains(c));
            prop_assert!(sigfim_mining::closed::is_closed(&dataset, &c.items));
        }
        // Every frequent itemset's closure (truncated to size <= 3) has the same support.
        for f in &all {
            let cl = sigfim_mining::closed::closure(&dataset, &f.items);
            prop_assert_eq!(dataset.itemset_support(&cl), f.support);
        }
    }
}

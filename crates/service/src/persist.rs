//! The service's durability layer: a typed façade over [`sigfim_store::Db`].
//!
//! [`ServiceDb`] owns the namespace layout of `sigfim serve --data-dir`:
//!
//! | namespace      | key                              | value                |
//! |----------------|----------------------------------|----------------------|
//! | `datasets`     | dataset id                       | FIMI text            |
//! | `thresholds`   | [`ThresholdRecord::storage_key`] | `ThresholdRecord`    |
//! | `observations` | [`ThresholdRecord::storage_key`] | [`ObservationMeta`]  |
//! | `jobs`         | job id                           | [`JobInfo`]          |
//!
//! All values are JSON through the workspace serde shim, so every record is
//! exactly a wire payload — a restarted server reconstructs protocol-level
//! state (warm threshold cache, registered datasets, job table) by reading
//! its own log back. Each namespace is schema-versioned (currently v1); a
//! future layout change registers a migration hook here and old stores are
//! rewritten forward on open.

use std::io;
use std::path::Path;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use sigfim_core::engine::{ThresholdRecord, ThresholdSink};
use sigfim_store::{ns, Db, DbOptions, NamespaceDef, StoreStats};

use crate::protocol::JobInfo;

/// The schema version this binary writes into every namespace.
const SCHEMA_V1: u32 = 1;

/// Monte-Carlo provenance of a persisted threshold: how many null-dataset
/// observations Algorithm 1's estimate rests on. Kept in its own namespace so
/// observation-level tooling can grow without touching the threshold records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservationMeta {
    /// The null model's stable fingerprint.
    pub fingerprint: u64,
    /// The itemset size the observations were mined at.
    pub k: u64,
    /// Null replicates observed for the estimate.
    pub replicates: u64,
}

/// A cheaply cloneable handle to the service's embedded store.
///
/// Doubles as the shared [`ThresholdSink`]: attached to the registry's
/// `ThresholdStore`, every Algorithm 1 estimate is written through to the
/// `thresholds` namespace the moment it is cached, so a crash between
/// analyses loses nothing.
#[derive(Debug, Clone)]
pub struct ServiceDb {
    db: Arc<Db>,
}

impl ServiceDb {
    /// Open (or create) the store under `dir` with the service's namespace
    /// layout, replaying and repairing its log segments.
    ///
    /// Inline compaction is disabled: the service schedules compaction on
    /// its job-worker pool (the registry polls [`ServiceDb::needs_compaction`]
    /// after every write-through), so no client write pays the log-rewrite
    /// latency.
    ///
    /// # Errors
    ///
    /// Propagates [`Db::open`] failures (I/O, foreign files in `dir`, a
    /// store written by a newer schema).
    pub fn open<P: AsRef<Path>>(dir: P) -> io::Result<ServiceDb> {
        ServiceDb::open_with(
            dir,
            DbOptions {
                compact_inline: false,
                ..DbOptions::default()
            },
        )
    }

    /// [`ServiceDb::open`] with explicit store options (segment size,
    /// compaction threshold, fsync policy).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServiceDb::open`].
    pub fn open_with<P: AsRef<Path>>(dir: P, options: DbOptions) -> io::Result<ServiceDb> {
        let namespaces = [
            NamespaceDef::new(ns::DATASETS, SCHEMA_V1),
            NamespaceDef::new(ns::THRESHOLDS, SCHEMA_V1),
            NamespaceDef::new(ns::OBSERVATIONS, SCHEMA_V1),
            NamespaceDef::new(ns::JOBS, SCHEMA_V1),
        ];
        Ok(ServiceDb {
            db: Arc::new(Db::open(dir, &namespaces, options)?),
        })
    }

    /// Persist a dataset's FIMI payload under `id` (replacing any previous
    /// payload).
    ///
    /// # Errors
    ///
    /// Propagates store write failures.
    pub fn put_dataset(&self, id: &str, fimi: &str) -> io::Result<()> {
        self.db.put(ns::DATASETS, id, fimi.as_bytes())
    }

    /// Drop the persisted payload of `id`; `false` when none was stored.
    ///
    /// # Errors
    ///
    /// Propagates store write failures.
    pub fn delete_dataset(&self, id: &str) -> io::Result<bool> {
        self.db.delete(ns::DATASETS, id)
    }

    /// Every persisted dataset as `(id, FIMI text)`, sorted by id.
    ///
    /// # Errors
    ///
    /// Fails when a stored payload is not UTF-8 (foreign tampering; the
    /// writer only stores text).
    pub fn datasets(&self) -> io::Result<Vec<(String, String)>> {
        self.db
            .entries(ns::DATASETS)
            .into_iter()
            .map(|(id, bytes)| match String::from_utf8(bytes) {
                Ok(fimi) => Ok((id, fimi)),
                Err(_) => Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("dataset `{id}` payload is not UTF-8"),
                )),
            })
            .collect()
    }

    /// Every persisted threshold record, sorted by storage key.
    ///
    /// # Errors
    ///
    /// Fails when a stored record does not decode (schema drift the
    /// migration layer should have caught).
    pub fn thresholds(&self) -> io::Result<Vec<ThresholdRecord>> {
        Ok(self
            .db
            .values::<ThresholdRecord>(ns::THRESHOLDS)?
            .into_iter()
            .map(|(_, record)| record)
            .collect())
    }

    /// Every persisted observation-metadata record, sorted by storage key.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServiceDb::thresholds`].
    pub fn observations(&self) -> io::Result<Vec<ObservationMeta>> {
        Ok(self
            .db
            .values::<ObservationMeta>(ns::OBSERVATIONS)?
            .into_iter()
            .map(|(_, meta)| meta)
            .collect())
    }

    /// Persist a job record under its id (replacing the previous state —
    /// jobs are written once per lifecycle transition, not per progress
    /// event).
    ///
    /// # Errors
    ///
    /// Propagates store write failures.
    pub fn put_job(&self, job: &JobInfo) -> io::Result<()> {
        self.db.put_value(ns::JOBS, &job.id, job)
    }

    /// Every persisted job record, sorted by id.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServiceDb::thresholds`].
    pub fn jobs(&self) -> io::Result<Vec<JobInfo>> {
        Ok(self
            .db
            .values::<JobInfo>(ns::JOBS)?
            .into_iter()
            .map(|(_, job)| job)
            .collect())
    }

    /// Persistence counters for `/v1/stats`.
    pub fn stats(&self) -> StoreStats {
        self.db.stats()
    }

    /// Whether accumulated dead bytes have crossed the store's compaction
    /// threshold — the registry's cue to queue a background compaction.
    pub fn needs_compaction(&self) -> bool {
        self.db.needs_compaction()
    }

    /// Run a compaction pass (the job-worker pool's entry point once
    /// [`ServiceDb::needs_compaction`] trips).
    ///
    /// # Errors
    ///
    /// Propagates store write failures.
    pub fn compact(&self) -> io::Result<()> {
        self.db.compact()
    }
}

impl ThresholdSink for ServiceDb {
    /// Write-through from the shared `ThresholdStore`: called under no cache
    /// lock, once per fresh Algorithm 1 estimate. Persistence failures are
    /// reported but do not fail the analysis that produced the estimate —
    /// the cache still holds it; only warmth across a restart is lost.
    fn persist(&self, record: &ThresholdRecord) {
        let key = record.storage_key();
        if let Err(error) = self
            .db
            .put_value(sigfim_store::ns::THRESHOLDS, &key, record)
        {
            eprintln!("sigfim-store: failed to persist threshold {key}: {error}");
            return;
        }
        let meta = ObservationMeta {
            fingerprint: record.fingerprint,
            k: record.k as u64,
            replicates: record.replicates as u64,
        };
        if let Err(error) = self
            .db
            .put_value(sigfim_store::ns::OBSERVATIONS, &key, &meta)
        {
            eprintln!("sigfim-store: failed to persist observation meta {key}: {error}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{JobInfo, JobState};
    use sigfim_core::engine::AnalysisRequest;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sigfim-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn datasets_jobs_and_meta_roundtrip_across_reopen() {
        let dir = temp_dir("roundtrip");
        {
            let db = ServiceDb::open(&dir).unwrap();
            db.put_dataset("retail", "1 2 3\n2 3\n").unwrap();
            db.put_dataset("toy", "0 1\n").unwrap();
            assert!(db.delete_dataset("toy").unwrap());
            assert!(!db.delete_dataset("toy").unwrap());
            let job = JobInfo {
                id: "job-00000001".into(),
                dataset: "retail".into(),
                request: AnalysisRequest::for_k(2),
                state: JobState::Queued,
                progress: Default::default(),
                error: None,
                result: None,
            };
            db.put_job(&job).unwrap();
            assert_eq!(db.stats().segments, 1);
        }
        let db = ServiceDb::open(&dir).unwrap();
        assert_eq!(
            db.datasets().unwrap(),
            vec![("retail".to_string(), "1 2 3\n2 3\n".to_string())]
        );
        let jobs = db.jobs().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].id, "job-00000001");
        assert_eq!(jobs[0].state, JobState::Queued);
        assert!(db.thresholds().unwrap().is_empty());
        assert!(db.observations().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sink_writes_thresholds_and_observation_meta() {
        use rand::SeedableRng;
        use sigfim_core::engine::{AnalysisEngine, AnalysisRequest, ThresholdStore};
        use sigfim_datasets::random::BernoulliModel;

        let dir = temp_dir("sink");
        let db = ServiceDb::open(&dir).unwrap();
        let store = ThresholdStore::default();
        store.set_persistence(Arc::new(db.clone()));

        let model = BernoulliModel::new(150, vec![0.1; 10]).unwrap();
        let dataset = model.sample(&mut rand::rngs::StdRng::seed_from_u64(5));
        let mut engine = AnalysisEngine::from_dataset(dataset)
            .unwrap()
            .with_threshold_store(store);
        engine
            .run(&AnalysisRequest::for_k(2).with_replicates(6))
            .unwrap();

        let records = db.thresholds().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].k, 2);
        let meta = db.observations().unwrap();
        assert_eq!(meta.len(), 1);
        assert_eq!(meta[0].fingerprint, records[0].fingerprint);
        assert_eq!(meta[0].replicates, 6);

        // A cold store preloaded from the records answers warm.
        let warm = ThresholdStore::default();
        assert_eq!(warm.preload(db.thresholds().unwrap()), 1);
        assert_eq!(warm.stats().entries, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

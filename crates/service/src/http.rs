//! A hand-rolled HTTP/1.1 JSON transport on `std::net` — no async runtime,
//! no external HTTP stack (the build environment is offline), just a bounded
//! pool of blocking worker threads sharing one `TcpListener`.
//!
//! Routes:
//!
//! | method + path              | operation                                    |
//! |----------------------------|----------------------------------------------|
//! | `POST /v1/analyze`         | full pipeline (inline, or a queued job with  |
//! |                            | `"detach": true` — 429 + `Retry-After` when  |
//! |                            | the queue is full)                           |
//! | `POST /v1/thresholds`      | Algorithm 1 against an inline null model     |
//! | `GET /v1/jobs/<id>`        | poll a detached job (state, live progress)   |
//! | `PUT /v1/datasets/<id>`    | register/replace a dataset (raw FIMI body)   |
//! | `DELETE /v1/datasets/<id>` | unregister a dataset, drop its payload       |
//! | `GET /v1/engines`          | list registered engines                      |
//! | `GET /v1/stats`            | service + store + job-queue counters         |
//! | `GET /healthz`             | liveness                                     |
//!
//! Every response body is an [`ApiResponse`] envelope; HTTP status codes
//! mirror [`crate::protocol::ApiError::http_status`]. Connections are
//! `Connection: close` one-shots — the expensive part of a request is the
//! Monte-Carlo run behind it, not the TCP handshake, so keep-alive
//! bookkeeping buys nothing here.
//!
//! The worker pool is bounded: `workers` threads accept and handle
//! connections, so at most `workers` analyses run concurrently and a traffic
//! burst queues in the listener backlog instead of spawning unbounded
//! threads. Worker counts use the same accounting rule as the compute layer
//! ([`ExecutionPolicy::worker_threads`]): `0` = one per available core.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use sigfim_exec::ExecutionPolicy;

use crate::protocol::{ApiError, ApiRequest, ApiResponse, ApiResult, PROTOCOL_VERSION};
use crate::registry::EngineRegistry;

/// Upper bound on request head (request line + headers) and body sizes, to
/// keep a malicious or confused client from ballooning worker memory.
const MAX_HEAD_BYTES: usize = 64 * 1024;
const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Per-connection socket timeout: a stalled client loses its slot instead of
/// pinning a worker forever.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);

/// Configuration of [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (e.g. `127.0.0.1:7878`; port 0 picks a free port).
    pub addr: String,
    /// Connection worker threads; `0` = one per available core (the
    /// [`ExecutionPolicy`] thread-accounting convention).
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 0,
        }
    }
}

/// A running server: worker threads accepting on a shared listener. Obtained
/// from [`serve`]; call [`ServerHandle::shutdown`] for an orderly stop, or
/// [`ServerHandle::join`] to serve until the process dies.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal every worker to stop, wake them, and join them. In-flight
    /// requests finish; queued-but-unaccepted connections are woken and
    /// closed.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Each worker is parked in accept(); one wake-up connection per
        // worker unblocks them all.
        for _ in &self.workers {
            let _ = TcpStream::connect(self.addr);
        }
        for worker in self.workers {
            let _ = worker.join();
        }
    }

    /// Block until every worker exits (i.e. forever, absent a shutdown from
    /// another handle holder or a listener failure).
    pub fn join(self) {
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

/// Bind `config.addr` and start the worker pool against `registry`. Returns
/// as soon as the listener is live — `GET /healthz` succeeds from that point.
///
/// # Errors
///
/// Propagates binding failures (address in use, permission, …).
pub fn serve(
    registry: Arc<EngineRegistry>,
    config: &ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(resolve_addr(&config.addr)?)?;
    let addr = listener.local_addr()?;
    let listener = Arc::new(listener);
    let shutdown = Arc::new(AtomicBool::new(false));
    // The same 0-means-all-cores accounting the Monte-Carlo layer uses.
    let workers = ExecutionPolicy::from_threads(config.workers).worker_threads();
    let handles = (0..workers)
        .map(|index| {
            let listener = Arc::clone(&listener);
            let registry = Arc::clone(&registry);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name(format!("sigfim-http-{index}"))
                .spawn(move || worker_loop(&listener, &registry, &shutdown))
                .expect("spawning a named worker thread cannot fail")
        })
        .collect();
    Ok(ServerHandle {
        addr,
        shutdown,
        workers: handles,
    })
}

fn resolve_addr(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("`{addr}` resolves to no address"),
        )
    })
}

fn worker_loop(listener: &TcpListener, registry: &EngineRegistry, shutdown: &AtomicBool) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            // Transient accept errors (aborted handshakes, fd pressure):
            // keep serving, but back off briefly so a *persistent* error
            // (e.g. EMFILE under overload) does not busy-spin every worker
            // at 100% CPU against the fds the in-flight requests need.
            Err(_) => {
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
        let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
        handle_connection(stream, registry);
    }
}

/// One parsed request.
struct HttpRequest {
    method: String,
    path: String,
    body: String,
}

/// A transport-level parse failure, mapped straight to a 400.
struct HttpParseError(String);

fn handle_connection(mut stream: TcpStream, registry: &EngineRegistry) {
    let response = match parse_request(&mut stream) {
        Ok(request) => route(registry, &request),
        Err(HttpParseError(detail)) => ApiResponse::error(ApiError::MalformedRequest { detail }),
    };
    write_response(&mut stream, &response);
}

fn parse_request(stream: &mut TcpStream) -> Result<HttpRequest, HttpParseError> {
    let mut reader = BufReader::new(stream);
    // The head is read through a hard `take` limit, so a newline-free line
    // cannot grow a worker's buffer past MAX_HEAD_BYTES: at the limit,
    // read_line returns a line without its terminator, which is rejected
    // below (`ends_with('\n')`) instead of being appended to forever.
    let mut head = (&mut reader).take(MAX_HEAD_BYTES as u64);
    let mut request_line = String::new();
    head.read_line(&mut request_line)
        .map_err(|e| HttpParseError(format!("could not read the request line: {e}")))?;
    if !request_line.ends_with('\n') {
        return Err(HttpParseError(
            "request line is unterminated or exceeds the 64 KiB head limit".into(),
        ));
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next(), parts.next()) {
        (Some(method), Some(path), Some(version)) if version.starts_with("HTTP/1") => {
            (method.to_string(), path.to_string())
        }
        _ => {
            return Err(HttpParseError(format!(
                "not an HTTP/1.x request line: {request_line:?}"
            )))
        }
    };

    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        head.read_line(&mut line)
            .map_err(|e| HttpParseError(format!("could not read headers: {e}")))?;
        if !line.ends_with('\n') {
            // Either the client closed mid-head or the take limit was hit.
            return Err(HttpParseError(
                "request head is unterminated or exceeds 64 KiB".into(),
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpParseError(format!("bad Content-Length: {value:?}")))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpParseError("request body exceeds 64 MiB".into()));
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| {
        HttpParseError(format!(
            "could not read the {content_length}-byte body: {e}"
        ))
    })?;
    let body = String::from_utf8(body)
        .map_err(|_| HttpParseError("request body is not valid UTF-8".into()))?;
    Ok(HttpRequest { method, path, body })
}

/// Dispatch a parsed request to the registry. Pure routing — every operation
/// goes through [`EngineRegistry::handle`] or its read-only accessors, so the
/// HTTP layer adds no behaviour of its own.
fn route(registry: &EngineRegistry, request: &HttpRequest) -> ApiResponse {
    // The two id-bearing route families parse their path segment first; the
    // method check comes after so a wrong method on a real resource path is
    // a 405, not a 404.
    if let Some(id) = request
        .path
        .strip_prefix("/v1/jobs/")
        .filter(|id| !id.is_empty())
    {
        return match request.method.as_str() {
            "GET" => registry.handle(&ApiRequest::job_status(id)),
            _ => ApiResponse::error(ApiError::MethodNotAllowed {
                method: request.method.clone(),
                path: request.path.clone(),
            }),
        };
    }
    if let Some(id) = request
        .path
        .strip_prefix("/v1/datasets/")
        .filter(|id| !id.is_empty() && !id.contains('/'))
    {
        return match request.method.as_str() {
            // The PUT body is the raw FIMI text, not a JSON envelope: it is
            // exactly the file an operator would pass to `--dataset`, so
            // `curl -T retail.dat` uploads without re-encoding.
            "PUT" => registry.handle(&ApiRequest::put_dataset(id, request.body.clone())),
            "DELETE" => registry.handle(&ApiRequest::delete_dataset(id)),
            _ => ApiResponse::error(ApiError::MethodNotAllowed {
                method: request.method.clone(),
                path: request.path.clone(),
            }),
        };
    }
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => ApiResponse::ok(ApiResult::Health),
        ("GET", "/v1/engines") => ApiResponse::ok(ApiResult::Engines(registry.engines())),
        ("GET", "/v1/stats") => ApiResponse::ok(ApiResult::Stats(registry.stats())),
        ("POST", "/v1/analyze") => post_envelope(registry, request, expect_analyze),
        ("POST", "/v1/thresholds") => post_envelope(registry, request, expect_thresholds),
        (
            _,
            path @ ("/healthz" | "/v1/engines" | "/v1/stats" | "/v1/analyze" | "/v1/thresholds"),
        ) => ApiResponse::error(ApiError::MethodNotAllowed {
            method: request.method.clone(),
            path: path.to_string(),
        }),
        (_, path) => ApiResponse::error(ApiError::NotFound {
            path: path.to_string(),
        }),
    }
}

/// Parse a POST body as an envelope, check it is the operation the path
/// promises, and dispatch it.
///
/// The protocol version is checked on the *raw* JSON value, before the typed
/// envelope is interpreted: a future-version envelope whose kinds or fields
/// this server does not know must come back as the typed
/// `unsupported_protocol_version` error (so clients can negotiate), not as a
/// misparse.
fn post_envelope(
    registry: &EngineRegistry,
    request: &HttpRequest,
    expect: fn(&ApiRequest) -> Result<(), ApiError>,
) -> ApiResponse {
    let value: serde::Value = match serde_json::from_str(&request.body) {
        Ok(value) => value,
        Err(error) => {
            return ApiResponse::error(ApiError::MalformedRequest {
                detail: error.to_string(),
            })
        }
    };
    match value
        .get_field("protocol_version")
        .map(serde::Value::as_u64)
    {
        Some(Ok(version)) => {
            if version != u64::from(PROTOCOL_VERSION) {
                return ApiResponse::error(ApiError::UnsupportedProtocolVersion {
                    requested: u32::try_from(version).unwrap_or(u32::MAX),
                    supported: PROTOCOL_VERSION,
                });
            }
        }
        Some(Err(_)) => {
            return ApiResponse::error(ApiError::MalformedRequest {
                detail: "`protocol_version` must be an unsigned integer".into(),
            })
        }
        None => {
            return ApiResponse::error(ApiError::MalformedRequest {
                detail: "the envelope is missing `protocol_version`".into(),
            })
        }
    }
    let envelope: ApiRequest = match serde_json::from_value(&value) {
        Ok(envelope) => envelope,
        Err(error) => {
            return ApiResponse::error(ApiError::MalformedRequest {
                detail: error.to_string(),
            })
        }
    };
    if let Err(error) = expect(&envelope) {
        return ApiResponse::error(error);
    }
    registry.handle(&envelope)
}

fn expect_analyze(envelope: &ApiRequest) -> Result<(), ApiError> {
    match &envelope.body {
        crate::protocol::ApiRequestBody::Analyze { .. } => Ok(()),
        _ => Err(ApiError::MalformedRequest {
            detail: "POST /v1/analyze takes an `analyze` envelope".into(),
        }),
    }
}

fn expect_thresholds(envelope: &ApiRequest) -> Result<(), ApiError> {
    match &envelope.body {
        crate::protocol::ApiRequestBody::Thresholds { .. } => Ok(()),
        _ => Err(ApiError::MalformedRequest {
            detail: "POST /v1/thresholds takes a `thresholds` envelope".into(),
        }),
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

fn write_response(stream: &mut TcpStream, response: &ApiResponse) {
    let status = response.http_status();
    let body = serde_json::to_string(response).unwrap_or_else(|_| {
        // The envelope serializer is infallible over our types; this arm only
        // guards the signature.
        "{\"status\":\"error\"}".to_string()
    });
    // Shed-load responses carry the standard backoff header alongside the
    // typed `overloaded` body, so plain HTTP clients honor it too.
    let retry_after = match response.as_error() {
        Some(ApiError::Overloaded { retry_after_secs }) => {
            format!("Retry-After: {retry_after_secs}\r\n")
        }
        _ => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{retry_after}Connection: close\r\n\r\n",
        reason_phrase(status),
        body.len()
    );
    // A client that hung up mid-response is its own problem; nothing to do.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_and_reasons() {
        let config = ServerConfig::default();
        assert_eq!(config.workers, 0);
        assert!(config.addr.starts_with("127.0.0.1"));
        assert_eq!(reason_phrase(200), "OK");
        assert_eq!(reason_phrase(404), "Not Found");
        assert_eq!(reason_phrase(999), "Unknown");
        assert!(resolve_addr("127.0.0.1:0").is_ok());
        assert!(resolve_addr("definitely not an address").is_err());
    }
}

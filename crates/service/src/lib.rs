//! # sigfim-service
//!
//! The multi-tenant service front-end of the `sigfim` workspace: the layer
//! that turns the session-oriented [`AnalysisEngine`] into something many
//! users hit over the network.
//!
//! The expensive part of the paper's method — Algorithm 1's Monte-Carlo
//! estimate of the Poisson threshold — is reusable across every query
//! against the same `(null model, k, ε, Δ)`: exactly the shape of a
//! long-lived service. Three pieces deliver that here:
//!
//! * [`registry::EngineRegistry`] — dataset ids → **dyn-erased** engines
//!   ([`sigfim_core::engine::DynAnalysisEngine`]), each behind its own lock,
//!   all attached to one process-wide
//!   [`ThresholdStore`](sigfim_core::engine::ThresholdStore) keyed by the
//!   null-model fingerprint — so two tenants analyzing the same null serve
//!   each other's thresholds, and the store's LRU bound keeps it from
//!   growing without limit.
//! * [`protocol`] — a versioned JSON wire protocol: [`protocol::ApiRequest`]
//!   / [`protocol::ApiResponse`] envelopes with a `protocol_version` field
//!   and a typed error taxonomy ([`protocol::ApiError`]), wrapping the
//!   engine's own serializable request/response types so a wire round-trip
//!   reconstructs exactly what an in-process call returns.
//! * [`http`] — a hand-rolled HTTP/1.1 transport on `std::net` with a
//!   bounded worker pool (no async runtime, no external HTTP stack), exposed
//!   on the CLI as `sigfim serve`.
//!
//! ```no_run
//! use std::sync::Arc;
//! use sigfim_core::engine::AnalysisRequest;
//! use sigfim_service::http::{serve, ServerConfig};
//! use sigfim_service::registry::EngineRegistry;
//! # fn load_dataset() -> sigfim_datasets::transaction::TransactionDataset { unimplemented!() }
//!
//! let registry = Arc::new(EngineRegistry::with_cache_capacity(1024));
//! registry.register_dataset("retail", load_dataset()).unwrap();
//! let server = serve(
//!     Arc::clone(&registry),
//!     &ServerConfig { addr: "127.0.0.1:7878".into(), workers: 4 },
//! )
//! .unwrap();
//! println!("serving on http://{}", server.addr());
//! server.join();
//! ```
//!
//! [`AnalysisEngine`]: sigfim_core::engine::AnalysisEngine

pub mod http;
pub mod jobs;
pub mod persist;
pub mod protocol;
pub mod registry;

pub use http::{serve, ServerConfig, ServerHandle};
pub use jobs::{JobTable, Work, DEFAULT_QUEUE_CAPACITY};
pub use persist::{ObservationMeta, ServiceDb};
pub use protocol::{
    ApiError, ApiRequest, ApiRequestBody, ApiResponse, ApiResult, EngineInfo, JobInfo, JobState,
    JobStats, KernelStats, ModelSpec, ResidencyStats, ServiceStats, TunerTiming, PROTOCOL_VERSION,
};
pub use registry::{EngineRegistry, RecoverySummary};
pub use sigfim_store::{DbOptions, StoreStats};

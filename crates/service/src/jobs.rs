//! The asynchronous job tier: a bounded in-memory queue plus the table of
//! every job the process knows about.
//!
//! A detached `POST /v1/analyze` becomes a [`JobInfo`] here: accepted into a
//! FIFO queue bounded at [`JobTable::capacity`] (past it, submission fails
//! with [`ApiError::Overloaded`] — HTTP 429 — instead of growing without
//! limit), claimed by a worker thread, run with a
//! [`SnapshotObserver`] attached so `GET /v1/jobs/<id>` polls see live
//! per-`k` progress, and finally frozen as `Done`/`Failed`.
//!
//! The table is transport- and persistence-agnostic: the registry persists
//! the [`JobInfo`] records this module hands back on every lifecycle
//! transition (queued, claimed, finished), never on progress events — polls
//! read progress from the in-memory observer, so a running job costs zero
//! store writes until it completes.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use sigfim_core::engine::{AnalysisRequest, AnalysisResponse};
use sigfim_core::progress::SnapshotObserver;

use crate::protocol::{ApiError, JobInfo, JobState, JobStats};

/// Queue bound when the operator does not configure one.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// The `Retry-After` hint handed to shedded clients: long enough to thin a
/// burst, short enough that a queue draining at Monte-Carlo speed is retried
/// before it empties.
const RETRY_AFTER_SECS: u64 = 2;

/// One tracked job: its wire record plus, while running, the live observer
/// the worker feeds.
struct JobEntry {
    info: JobInfo,
    observer: Option<Arc<SnapshotObserver>>,
}

struct TableState {
    /// Ids waiting for a worker, oldest first.
    queue: VecDeque<String>,
    /// Every job by id (BTreeMap: listings and recovery are id-ordered).
    jobs: BTreeMap<String, JobEntry>,
    /// The numeric suffix of the next minted id.
    next_id: u64,
    /// A store compaction is waiting for a worker. A flag, not a count:
    /// compacting once clears every accumulated request.
    compaction_requested: bool,
    /// Set once: wakes blocked workers so they can exit.
    shutdown: bool,
}

/// A job claimed by a worker: everything needed to run it.
pub struct ClaimedJob {
    /// The job id, for the completion call.
    pub id: String,
    /// The dataset to analyze.
    pub dataset: String,
    /// The analysis request.
    pub request: AnalysisRequest,
    /// The observer to thread into `run_observed`; polls read it live.
    pub observer: Arc<SnapshotObserver>,
}

/// A unit of work handed to a pool worker by [`JobTable::claim_work`].
// A `Work` lives only from claim to destructure on the worker's stack, so
// boxing the job variant would buy nothing but an allocation per claim.
#[allow(clippy::large_enum_variant)]
pub enum Work {
    /// A claimed analysis job plus its updated `Running` record (persist
    /// it) — exactly what [`JobTable::claim`] returns.
    Job(ClaimedJob, JobInfo),
    /// Run one store compaction pass. Dispatched ahead of queued jobs: the
    /// request means dead bytes already crossed the store's threshold, and
    /// an analysis run ahead of it would only write more.
    Compaction,
}

/// The process-wide job table. Shared between the submitting transport
/// threads, the worker pool, and the stats endpoint.
pub struct JobTable {
    state: Mutex<TableState>,
    /// Signaled on submit and shutdown; workers wait on it in [`JobTable::claim`].
    ready: Condvar,
    capacity: usize,
}

impl std::fmt::Debug for JobTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("JobTable")
            .field("capacity", &self.capacity)
            .field("queued", &stats.queued)
            .field("running", &stats.running)
            .finish()
    }
}

impl JobTable {
    /// An empty table whose queue sheds load past `capacity` pending jobs
    /// (`0` is coerced to 1: a queue that can never accept is a
    /// misconfiguration, not a policy).
    pub fn new(capacity: usize) -> Self {
        JobTable {
            state: Mutex::new(TableState {
                queue: VecDeque::new(),
                jobs: BTreeMap::new(),
                next_id: 1,
                compaction_requested: false,
                shutdown: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured queue bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> MutexGuard<'_, TableState> {
        // A poisoned lock means a panicking submitter or worker; the table's
        // maps are consistent between any two operations, so recover.
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Accept a job into the queue, or shed it when the queue is full.
    /// Returns the freshly minted `Queued` record (persist it, hand it to
    /// the client).
    ///
    /// # Errors
    ///
    /// [`ApiError::Overloaded`] when `capacity` jobs are already waiting.
    pub fn submit(
        &self,
        dataset: impl Into<String>,
        request: AnalysisRequest,
    ) -> Result<JobInfo, ApiError> {
        let mut state = self.lock();
        if state.queue.len() >= self.capacity {
            return Err(ApiError::Overloaded {
                retry_after_secs: RETRY_AFTER_SECS,
            });
        }
        let id = format!("job-{:08}", state.next_id);
        state.next_id += 1;
        let info = JobInfo {
            id: id.clone(),
            dataset: dataset.into(),
            request,
            state: JobState::Queued,
            progress: Default::default(),
            result: None,
            error: None,
        };
        state.jobs.insert(
            id.clone(),
            JobEntry {
                info: info.clone(),
                observer: None,
            },
        );
        state.queue.push_back(id);
        drop(state);
        self.ready.notify_one();
        Ok(info)
    }

    /// Block until a job is available (or shutdown), claim it, and mark it
    /// `Running` with a fresh observer attached. Returns `None` on shutdown
    /// — the worker loop's exit signal. The second tuple element is the
    /// updated `Running` record, for persistence.
    ///
    /// Compaction requests are invisible to this entry point; pools that
    /// also serve maintenance work drain through [`JobTable::claim_work`].
    pub fn claim(&self) -> Option<(ClaimedJob, JobInfo)> {
        let mut state = self.lock();
        loop {
            if state.shutdown {
                return None;
            }
            if let Some(claimed) = claim_job(&mut state) {
                return Some(claimed);
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Block until *any* work is available: a pending store compaction (at
    /// priority — see [`Work::Compaction`]), then the oldest queued job.
    /// Returns `None` on shutdown, exactly like [`JobTable::claim`].
    pub fn claim_work(&self) -> Option<Work> {
        let mut state = self.lock();
        loop {
            if state.shutdown {
                return None;
            }
            if state.compaction_requested {
                state.compaction_requested = false;
                return Some(Work::Compaction);
            }
            if let Some((claimed, running)) = claim_job(&mut state) {
                return Some(Work::Job(claimed, running));
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Ask the worker pool to run a store compaction pass. Idempotent while
    /// one is pending: repeated requests (every persisted write past the
    /// dead-byte threshold re-triggers) collapse into a single flag.
    pub fn request_compaction(&self) {
        let mut state = self.lock();
        if state.shutdown || state.compaction_requested {
            return;
        }
        state.compaction_requested = true;
        drop(state);
        self.ready.notify_one();
    }

    /// Record a claimed job's outcome: freeze the observer's final progress
    /// into the record, drop the observer, and mark `Done` or `Failed`.
    /// Returns the terminal record, for persistence.
    pub fn complete(
        &self,
        id: &str,
        outcome: Result<AnalysisResponse, ApiError>,
    ) -> Option<JobInfo> {
        let mut state = self.lock();
        let entry = state.jobs.get_mut(id)?;
        if let Some(observer) = entry.observer.take() {
            entry.info.progress = observer.snapshot();
        }
        match outcome {
            Ok(response) => {
                entry.info.state = JobState::Done;
                entry.info.result = Some(response);
            }
            Err(error) => {
                entry.info.state = JobState::Failed;
                entry.info.error = Some(error);
            }
        }
        Some(entry.info.clone())
    }

    /// The job's current record; running jobs get their progress refreshed
    /// from the live observer.
    pub fn get(&self, id: &str) -> Option<JobInfo> {
        let state = self.lock();
        let entry = state.jobs.get(id)?;
        let mut info = entry.info.clone();
        if let Some(observer) = &entry.observer {
            info.progress = observer.snapshot();
        }
        Some(info)
    }

    /// Install job records recovered from the store after a restart.
    /// Deterministic per the crash-recovery contract:
    ///
    /// * `Queued` jobs are re-enqueued in id order — they were accepted and
    ///   never started, so they simply wait their turn again.
    /// * `Running` jobs are marked `Failed` (the run died with the process;
    ///   its partial Monte-Carlo state is gone, and silently re-running
    ///   could double work the client already observed as started).
    /// * Terminal jobs are kept verbatim so old ids stay pollable.
    ///
    /// Returns the records whose state *changed* (the interrupted ones), so
    /// the caller can persist the transitions.
    pub fn recover(&self, records: Vec<JobInfo>) -> Vec<JobInfo> {
        let mut interrupted = Vec::new();
        let mut state = self.lock();
        for mut info in records {
            // Keep minting above every recovered id, whatever its state.
            if let Some(serial) = info
                .id
                .strip_prefix("job-")
                .and_then(|s| s.parse::<u64>().ok())
            {
                state.next_id = state.next_id.max(serial + 1);
            }
            match info.state {
                JobState::Queued => state.queue.push_back(info.id.clone()),
                JobState::Running => {
                    info.state = JobState::Failed;
                    info.error = Some(ApiError::EngineFailure {
                        detail: "job was interrupted by a server restart".into(),
                    });
                    interrupted.push(info.clone());
                }
                JobState::Done | JobState::Failed => {}
            }
            state.jobs.insert(
                info.id.clone(),
                JobEntry {
                    info,
                    observer: None,
                },
            );
        }
        drop(state);
        self.ready.notify_all();
        interrupted
    }

    /// Wake every blocked worker and make [`JobTable::claim`] return `None` from now
    /// on. Idempotent.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.ready.notify_all();
    }

    /// Lifecycle counters for `/v1/stats`.
    pub fn stats(&self) -> JobStats {
        let state = self.lock();
        let mut stats = JobStats {
            capacity: self.capacity as u64,
            ..JobStats::default()
        };
        for entry in state.jobs.values() {
            match entry.info.state {
                JobState::Queued => stats.queued += 1,
                JobState::Running => stats.running += 1,
                JobState::Done => stats.done += 1,
                JobState::Failed => stats.failed += 1,
            }
        }
        stats
    }
}

/// Pop the oldest queued job and mark it `Running` with a fresh observer.
/// The locked core shared by [`JobTable::claim`] and [`JobTable::claim_work`].
fn claim_job(state: &mut TableState) -> Option<(ClaimedJob, JobInfo)> {
    let id = state.queue.pop_front()?;
    let entry = state
        .jobs
        .get_mut(&id)
        .expect("queued ids always have a table entry");
    let observer = Arc::new(SnapshotObserver::new());
    entry.info.state = JobState::Running;
    entry.observer = Some(Arc::clone(&observer));
    let claimed = ClaimedJob {
        id: id.clone(),
        dataset: entry.info.dataset.clone(),
        request: entry.info.request.clone(),
        observer,
    };
    Some((claimed, entry.info.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> AnalysisRequest {
        AnalysisRequest::for_k(2).with_replicates(4)
    }

    #[test]
    fn submit_claim_complete_lifecycle() {
        let table = JobTable::new(4);
        let queued = table.submit("retail", request()).unwrap();
        assert_eq!(queued.id, "job-00000001");
        assert_eq!(queued.state, JobState::Queued);
        assert_eq!(table.stats().queued, 1);

        let (claimed, running) = table.claim().unwrap();
        assert_eq!(claimed.id, queued.id);
        assert_eq!(running.state, JobState::Running);
        assert_eq!(table.get(&queued.id).unwrap().state, JobState::Running);

        // Progress flows through the observer into polls.
        use sigfim_core::engine::{AnalysisStage, ProgressObserver};
        claimed.observer.stage_started(2, AnalysisStage::Threshold);
        claimed.observer.replicate_completed(2, 3, 8);
        let polled = table.get(&queued.id).unwrap();
        assert_eq!(
            polled
                .progress
                .progress_for(2)
                .unwrap()
                .completed_replicates,
            3
        );

        let done = table
            .complete(
                &claimed.id,
                Err(ApiError::EngineFailure {
                    detail: "boom".into(),
                }),
            )
            .unwrap();
        assert_eq!(done.state, JobState::Failed);
        // The final progress is frozen into the record.
        assert_eq!(
            done.progress.progress_for(2).unwrap().completed_replicates,
            3
        );
        assert_eq!(table.stats().failed, 1);
        assert!(table
            .complete(
                "job-99999999",
                Err(ApiError::EngineFailure { detail: "".into() })
            )
            .is_none());
    }

    #[test]
    fn backpressure_sheds_past_capacity() {
        let table = JobTable::new(2);
        table.submit("a", request()).unwrap();
        table.submit("a", request()).unwrap();
        let shed = table.submit("a", request()).unwrap_err();
        assert_eq!(shed.code(), "overloaded");
        assert_eq!(shed.http_status(), 429);
        // Draining one slot readmits.
        let _ = table.claim().unwrap();
        assert!(table.submit("a", request()).is_ok());
    }

    #[test]
    fn recovery_is_deterministic() {
        let seed = JobTable::new(8);
        let q1 = seed.submit("a", request()).unwrap();
        let q2 = seed.submit("a", request()).unwrap();
        let (claimed, running) = seed.claim().unwrap();
        assert_eq!(claimed.id, q1.id);
        let done = seed
            .complete(
                &claimed.id,
                Err(ApiError::EngineFailure { detail: "x".into() }),
            )
            .unwrap();

        let _ = running;

        // Simulate a restart from the persisted records: one running-at-crash,
        // one still queued, one terminal.
        let fresh = JobTable::new(8);
        let interrupted = fresh.recover(vec![
            JobInfo {
                id: "job-00000003".into(),
                state: JobState::Running,
                ..q2.clone()
            },
            q2.clone(),
            done.clone(),
        ]);
        assert_eq!(interrupted.len(), 1);
        assert_eq!(interrupted[0].state, JobState::Failed);
        assert!(interrupted[0]
            .error
            .as_ref()
            .unwrap()
            .to_string()
            .contains("restart"));
        // The queued job is claimable again; terminal ones are pollable.
        assert_eq!(fresh.get(&done.id).unwrap().state, JobState::Failed);
        let (reclaimed, _) = fresh.claim().unwrap();
        assert_eq!(reclaimed.id, q2.id);
        // Minting resumes above the highest recovered id.
        let next = fresh.submit("a", request()).unwrap();
        assert_eq!(next.id, "job-00000004");
    }

    #[test]
    fn compaction_outranks_queued_jobs_and_requests_coalesce() {
        let table = JobTable::new(4);
        let queued = table.submit("a", request()).unwrap();
        // Requested twice; dispatched once.
        table.request_compaction();
        table.request_compaction();
        assert!(matches!(table.claim_work(), Some(Work::Compaction)));
        match table.claim_work() {
            Some(Work::Job(claimed, running)) => {
                assert_eq!(claimed.id, queued.id);
                assert_eq!(running.state, JobState::Running);
            }
            _ => panic!("the queued job must follow the compaction"),
        }
        // A drained flag re-arms.
        table.request_compaction();
        assert!(matches!(table.claim_work(), Some(Work::Compaction)));
    }

    #[test]
    fn request_compaction_wakes_a_blocked_worker() {
        let table = Arc::new(JobTable::new(2));
        let waiter = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || matches!(table.claim_work(), Some(Work::Compaction)))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        table.request_compaction();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn shutdown_unblocks_claim() {
        let table = Arc::new(JobTable::new(2));
        let waiter = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || table.claim().is_none())
        };
        // Give the waiter a moment to park, then release it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        table.shutdown();
        assert!(waiter.join().unwrap());
        // Post-shutdown claims return None immediately.
        assert!(table.claim().is_none());
    }
}

//! The versioned JSON wire protocol of the sigfim service.
//!
//! Every request and response travels inside an envelope carrying the
//! protocol version, so clients and servers from different releases fail
//! loudly (a typed [`ApiError::UnsupportedProtocolVersion`]) instead of
//! misinterpreting each other. The payloads themselves reuse the engine's
//! own serializable types — [`AnalysisRequest`], [`AnalysisResponse`],
//! [`ThresholdRun`] — so a wire round-trip reconstructs exactly what an
//! in-process engine call returns (enforced by the loopback smoke test).
//!
//! The envelopes and the error taxonomy have hand-written `Serialize` /
//! `Deserialize` impls because they are data-carrying enums, which the
//! vendored serde derive does not generate; the wire shape is a tagged map
//! (`"kind"` / `"code"` discriminants) as upstream serde would produce with
//! `#[serde(tag = ...)]`.

use std::fmt;

use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use sigfim_core::engine::{AnalysisRequest, AnalysisResponse, CacheStats, ThresholdRun};
use sigfim_datasets::bitmap::DatasetBackend;
use sigfim_datasets::random::{BernoulliModel, BoxedNullModel};

/// The protocol version this crate speaks. Bump on any incompatible change to
/// the envelopes, the error taxonomy, or the payload types.
pub const PROTOCOL_VERSION: u32 = 1;

/// The typed failure taxonomy of the service: everything a request can die of,
/// each with the fields a client needs to react programmatically. Transported
/// inside an [`ApiResponse`] with `"status": "error"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// The request named a protocol version this server does not speak.
    UnsupportedProtocolVersion {
        /// The version the client asked for.
        requested: u32,
        /// The version this server supports.
        supported: u32,
    },
    /// The request body was not a valid protocol envelope (bad JSON, missing
    /// fields, unknown kind, …).
    MalformedRequest {
        /// What failed to parse.
        detail: String,
    },
    /// The request named a dataset id with no registered engine.
    UnknownDataset {
        /// The id that was not found.
        dataset: String,
    },
    /// The envelope was well-formed but the analysis request inside it was
    /// rejected by validation (empty `ks`, zero replicates, …).
    InvalidRequest {
        /// The validation failure.
        detail: String,
    },
    /// The engine accepted the request but the pipeline failed while running
    /// it.
    EngineFailure {
        /// The pipeline error.
        detail: String,
    },
    /// No route at this path.
    NotFound {
        /// The path that was requested.
        path: String,
    },
    /// The path exists but not for this HTTP method.
    MethodNotAllowed {
        /// The method that was used.
        method: String,
        /// The path it was used on.
        path: String,
    },
    /// The job queue is at capacity; retry after backing off. Transported
    /// as HTTP 429 with a `Retry-After` header.
    Overloaded {
        /// How long the client should back off, in seconds.
        retry_after_secs: u64,
    },
    /// The request named a job id this server does not know.
    UnknownJob {
        /// The id that was not found.
        job: String,
    },
}

impl ApiError {
    /// The stable machine-readable discriminant (`"unknown_dataset"`, …).
    pub fn code(&self) -> &'static str {
        match self {
            ApiError::UnsupportedProtocolVersion { .. } => "unsupported_protocol_version",
            ApiError::MalformedRequest { .. } => "malformed_request",
            ApiError::UnknownDataset { .. } => "unknown_dataset",
            ApiError::InvalidRequest { .. } => "invalid_request",
            ApiError::EngineFailure { .. } => "engine_failure",
            ApiError::NotFound { .. } => "not_found",
            ApiError::MethodNotAllowed { .. } => "method_not_allowed",
            ApiError::Overloaded { .. } => "overloaded",
            ApiError::UnknownJob { .. } => "unknown_job",
        }
    }

    /// The HTTP status the transport maps this error to.
    pub fn http_status(&self) -> u16 {
        match self {
            ApiError::UnsupportedProtocolVersion { .. }
            | ApiError::MalformedRequest { .. }
            | ApiError::InvalidRequest { .. } => 400,
            ApiError::UnknownDataset { .. }
            | ApiError::NotFound { .. }
            | ApiError::UnknownJob { .. } => 404,
            ApiError::MethodNotAllowed { .. } => 405,
            ApiError::Overloaded { .. } => 429,
            ApiError::EngineFailure { .. } => 500,
        }
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::UnsupportedProtocolVersion {
                requested,
                supported,
            } => write!(
                f,
                "protocol version {requested} is not supported (this server speaks {supported})"
            ),
            ApiError::MalformedRequest { detail } => write!(f, "malformed request: {detail}"),
            ApiError::UnknownDataset { dataset } => {
                write!(f, "no engine registered for dataset `{dataset}`")
            }
            ApiError::InvalidRequest { detail } => write!(f, "invalid request: {detail}"),
            ApiError::EngineFailure { detail } => write!(f, "analysis failed: {detail}"),
            ApiError::NotFound { path } => write!(f, "no route at `{path}`"),
            ApiError::MethodNotAllowed { method, path } => {
                write!(f, "method {method} is not allowed on `{path}`")
            }
            ApiError::Overloaded { retry_after_secs } => write!(
                f,
                "the job queue is at capacity; retry in {retry_after_secs}s"
            ),
            ApiError::UnknownJob { job } => write!(f, "no job with id `{job}`"),
        }
    }
}

impl std::error::Error for ApiError {}

impl Serialize for ApiError {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("code".to_string(), Value::Str(self.code().to_string())),
            ("message".to_string(), Value::Str(self.to_string())),
        ];
        match self {
            ApiError::UnsupportedProtocolVersion {
                requested,
                supported,
            } => {
                fields.push(("requested".into(), Value::U64(u64::from(*requested))));
                fields.push(("supported".into(), Value::U64(u64::from(*supported))));
            }
            ApiError::MalformedRequest { detail }
            | ApiError::InvalidRequest { detail }
            | ApiError::EngineFailure { detail } => {
                fields.push(("detail".into(), Value::Str(detail.clone())));
            }
            ApiError::UnknownDataset { dataset } => {
                fields.push(("dataset".into(), Value::Str(dataset.clone())));
            }
            ApiError::NotFound { path } => {
                fields.push(("path".into(), Value::Str(path.clone())));
            }
            ApiError::MethodNotAllowed { method, path } => {
                fields.push(("method".into(), Value::Str(method.clone())));
                fields.push(("path".into(), Value::Str(path.clone())));
            }
            ApiError::Overloaded { retry_after_secs } => {
                fields.push(("retry_after_secs".into(), Value::U64(*retry_after_secs)));
            }
            ApiError::UnknownJob { job } => {
                fields.push(("job".into(), Value::Str(job.clone())));
            }
        }
        Value::Map(fields)
    }
}

/// Pull a required field out of an envelope map.
fn field<'a>(
    value: &'a Value,
    ty: &'static str,
    name: &'static str,
) -> Result<&'a Value, SerdeError> {
    value
        .get_field(name)
        .ok_or_else(|| SerdeError::missing_field(ty, name))
}

fn string_field(value: &Value, ty: &'static str, name: &'static str) -> Result<String, SerdeError> {
    Ok(field(value, ty, name)?.as_str()?.to_owned())
}

impl Deserialize for ApiError {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let code = string_field(value, "ApiError", "code")?;
        match code.as_str() {
            "unsupported_protocol_version" => Ok(ApiError::UnsupportedProtocolVersion {
                requested: field(value, "ApiError", "requested")?.as_u64()? as u32,
                supported: field(value, "ApiError", "supported")?.as_u64()? as u32,
            }),
            "malformed_request" => Ok(ApiError::MalformedRequest {
                detail: string_field(value, "ApiError", "detail")?,
            }),
            "unknown_dataset" => Ok(ApiError::UnknownDataset {
                dataset: string_field(value, "ApiError", "dataset")?,
            }),
            "invalid_request" => Ok(ApiError::InvalidRequest {
                detail: string_field(value, "ApiError", "detail")?,
            }),
            "engine_failure" => Ok(ApiError::EngineFailure {
                detail: string_field(value, "ApiError", "detail")?,
            }),
            "not_found" => Ok(ApiError::NotFound {
                path: string_field(value, "ApiError", "path")?,
            }),
            "method_not_allowed" => Ok(ApiError::MethodNotAllowed {
                method: string_field(value, "ApiError", "method")?,
                path: string_field(value, "ApiError", "path")?,
            }),
            "overloaded" => Ok(ApiError::Overloaded {
                retry_after_secs: field(value, "ApiError", "retry_after_secs")?.as_u64()?,
            }),
            "unknown_job" => Ok(ApiError::UnknownJob {
                job: string_field(value, "ApiError", "job")?,
            }),
            other => Err(SerdeError::unknown_variant("ApiError", other)),
        }
    }
}

/// A null model described *on the wire* — what the dataset-less
/// `POST /v1/thresholds` endpoint takes (the shape of the paper's Table 2,
/// which runs Algorithm 1 against null models alone, no dataset attached).
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// The paper's Bernoulli reference model: `transactions` rows, item `i`
    /// present independently with probability `frequencies[i]`.
    Bernoulli {
        /// The number of transactions of every generated dataset.
        transactions: usize,
        /// Per-item occurrence frequencies.
        frequencies: Vec<f64>,
    },
}

impl ModelSpec {
    /// Materialize the described model behind the dyn-erased boundary.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::InvalidRequest`] when the model parameters are
    /// rejected (no items, frequencies outside `[0, 1]`, …).
    pub fn build(&self) -> Result<BoxedNullModel, ApiError> {
        match self {
            ModelSpec::Bernoulli {
                transactions,
                frequencies,
            } => BernoulliModel::new(*transactions, frequencies.clone())
                .map(|model| Box::new(model) as BoxedNullModel)
                .map_err(|error| ApiError::InvalidRequest {
                    detail: error.to_string(),
                }),
        }
    }
}

impl Serialize for ModelSpec {
    fn to_value(&self) -> Value {
        match self {
            ModelSpec::Bernoulli {
                transactions,
                frequencies,
            } => Value::Map(vec![
                ("model".into(), Value::Str("bernoulli".into())),
                ("transactions".into(), transactions.to_value()),
                ("frequencies".into(), frequencies.to_value()),
            ]),
        }
    }
}

impl Deserialize for ModelSpec {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let model = string_field(value, "ModelSpec", "model")?;
        match model.as_str() {
            "bernoulli" => Ok(ModelSpec::Bernoulli {
                transactions: usize::from_value(field(value, "ModelSpec", "transactions")?)?,
                frequencies: Vec::<f64>::from_value(field(value, "ModelSpec", "frequencies")?)?,
            }),
            other => Err(SerdeError::unknown_variant("ModelSpec", other)),
        }
    }
}

/// The request-side envelope: protocol version plus one typed operation.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiRequest {
    /// The protocol version the client speaks; checked against
    /// [`PROTOCOL_VERSION`] before anything else is interpreted.
    pub protocol_version: u32,
    /// The operation to perform.
    pub body: ApiRequestBody,
}

/// The operations a client can POST.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiRequestBody {
    /// Run the full pipeline against a registered dataset
    /// (`POST /v1/analyze`).
    Analyze {
        /// The registered dataset id to analyze.
        dataset: String,
        /// The analysis request, exactly as the in-process engine takes it.
        request: AnalysisRequest,
        /// When `true`, enqueue the analysis as a background job and return
        /// a [`JobInfo`] immediately instead of holding the connection for
        /// the result. Additive: serialized only when set, absent means
        /// the pre-jobs synchronous behaviour.
        detach: bool,
    },
    /// Run Algorithm 1 alone against an inline null model
    /// (`POST /v1/thresholds`; dataset-less, à la the paper's Table 2).
    Thresholds {
        /// The null model to estimate thresholds for.
        model: ModelSpec,
        /// The threshold request (only the Algorithm 1 fields are consulted).
        request: AnalysisRequest,
    },
    /// Poll a background job (`GET /v1/jobs/<id>`).
    JobStatus {
        /// The job id returned by a detached analyze.
        id: String,
    },
    /// Register (or replace) a dataset from an inline FIMI payload
    /// (`PUT /v1/datasets/<id>`).
    PutDataset {
        /// The registry id the dataset will be served under.
        id: String,
        /// The dataset body in FIMI format (whitespace-separated item ids,
        /// one transaction per line).
        fimi: String,
    },
    /// Unregister a dataset and drop its persisted payload
    /// (`DELETE /v1/datasets/<id>`).
    DeleteDataset {
        /// The registry id to remove.
        id: String,
    },
}

impl ApiRequest {
    /// An analyze envelope at the current protocol version.
    pub fn analyze(dataset: impl Into<String>, request: AnalysisRequest) -> Self {
        ApiRequest {
            protocol_version: PROTOCOL_VERSION,
            body: ApiRequestBody::Analyze {
                dataset: dataset.into(),
                request,
                detach: false,
            },
        }
    }

    /// A detached analyze envelope: enqueue and return a job id.
    pub fn analyze_detached(dataset: impl Into<String>, request: AnalysisRequest) -> Self {
        ApiRequest {
            protocol_version: PROTOCOL_VERSION,
            body: ApiRequestBody::Analyze {
                dataset: dataset.into(),
                request,
                detach: true,
            },
        }
    }

    /// A job-status envelope at the current protocol version.
    pub fn job_status(id: impl Into<String>) -> Self {
        ApiRequest {
            protocol_version: PROTOCOL_VERSION,
            body: ApiRequestBody::JobStatus { id: id.into() },
        }
    }

    /// A dataset-registration envelope at the current protocol version.
    pub fn put_dataset(id: impl Into<String>, fimi: impl Into<String>) -> Self {
        ApiRequest {
            protocol_version: PROTOCOL_VERSION,
            body: ApiRequestBody::PutDataset {
                id: id.into(),
                fimi: fimi.into(),
            },
        }
    }

    /// A dataset-removal envelope at the current protocol version.
    pub fn delete_dataset(id: impl Into<String>) -> Self {
        ApiRequest {
            protocol_version: PROTOCOL_VERSION,
            body: ApiRequestBody::DeleteDataset { id: id.into() },
        }
    }

    /// A thresholds envelope at the current protocol version.
    pub fn thresholds(model: ModelSpec, request: AnalysisRequest) -> Self {
        ApiRequest {
            protocol_version: PROTOCOL_VERSION,
            body: ApiRequestBody::Thresholds { model, request },
        }
    }

    /// Check the envelope's protocol version.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::UnsupportedProtocolVersion`] when it differs from
    /// [`PROTOCOL_VERSION`].
    pub fn validate_version(&self) -> Result<(), ApiError> {
        if self.protocol_version != PROTOCOL_VERSION {
            return Err(ApiError::UnsupportedProtocolVersion {
                requested: self.protocol_version,
                supported: PROTOCOL_VERSION,
            });
        }
        Ok(())
    }
}

impl Serialize for ApiRequest {
    fn to_value(&self) -> Value {
        let mut fields = vec![(
            "protocol_version".to_string(),
            Value::U64(u64::from(self.protocol_version)),
        )];
        match &self.body {
            ApiRequestBody::Analyze {
                dataset,
                request,
                detach,
            } => {
                fields.push(("kind".into(), Value::Str("analyze".into())));
                fields.push(("dataset".into(), Value::Str(dataset.clone())));
                fields.push(("request".into(), request.to_value()));
                // Additive: absent means synchronous, like pre-jobs clients.
                if *detach {
                    fields.push(("detach".into(), Value::Bool(true)));
                }
            }
            ApiRequestBody::Thresholds { model, request } => {
                fields.push(("kind".into(), Value::Str("thresholds".into())));
                fields.push(("model".into(), model.to_value()));
                fields.push(("request".into(), request.to_value()));
            }
            ApiRequestBody::JobStatus { id } => {
                fields.push(("kind".into(), Value::Str("job_status".into())));
                fields.push(("id".into(), Value::Str(id.clone())));
            }
            ApiRequestBody::PutDataset { id, fimi } => {
                fields.push(("kind".into(), Value::Str("put_dataset".into())));
                fields.push(("id".into(), Value::Str(id.clone())));
                fields.push(("fimi".into(), Value::Str(fimi.clone())));
            }
            ApiRequestBody::DeleteDataset { id } => {
                fields.push(("kind".into(), Value::Str("delete_dataset".into())));
                fields.push(("id".into(), Value::Str(id.clone())));
            }
        }
        Value::Map(fields)
    }
}

impl Deserialize for ApiRequest {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let protocol_version = field(value, "ApiRequest", "protocol_version")?.as_u64()? as u32;
        let kind = string_field(value, "ApiRequest", "kind")?;
        let body = match kind.as_str() {
            "analyze" => ApiRequestBody::Analyze {
                dataset: string_field(value, "ApiRequest", "dataset")?,
                request: AnalysisRequest::from_value(field(value, "ApiRequest", "request")?)?,
                detach: match value.get_field("detach") {
                    Some(detach) => detach.as_bool()?,
                    None => false,
                },
            },
            "thresholds" => ApiRequestBody::Thresholds {
                model: ModelSpec::from_value(field(value, "ApiRequest", "model")?)?,
                request: AnalysisRequest::from_value(field(value, "ApiRequest", "request")?)?,
            },
            "job_status" => ApiRequestBody::JobStatus {
                id: string_field(value, "ApiRequest", "id")?,
            },
            "put_dataset" => ApiRequestBody::PutDataset {
                id: string_field(value, "ApiRequest", "id")?,
                fimi: string_field(value, "ApiRequest", "fimi")?,
            },
            "delete_dataset" => ApiRequestBody::DeleteDataset {
                id: string_field(value, "ApiRequest", "id")?,
            },
            other => return Err(SerdeError::unknown_variant("ApiRequest", other)),
        };
        Ok(ApiRequest {
            protocol_version,
            body,
        })
    }
}

/// One registered engine, as listed by `GET /v1/engines`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineInfo {
    /// The registry id requests route by.
    pub id: String,
    /// Transactions of the engine's null model (and dataset, when present).
    pub transactions: usize,
    /// Items in the engine's universe.
    pub items: usize,
    /// Whether the engine holds a dataset (false = threshold-only engine).
    pub has_dataset: bool,
    /// The configured physical dataset backend.
    pub backend: DatasetBackend,
    /// The null model's stable fingerprint — the cache-sharing identity: two
    /// engines listing the same fingerprint serve each other's thresholds.
    pub fingerprint: u64,
}

/// One startup-tuner measurement, as reported in [`KernelStats`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TunerTiming {
    /// What was measured: `kernel:<mode>`, `shard_budget_bytes:<n>`,
    /// `sampler:<mode>` or `miner:<kind>`.
    pub subject: String,
    /// Median of the timed repetitions, in nanoseconds.
    pub median_ns: u64,
}

/// The process-wide counting-kernel configuration and startup-tuner decision,
/// as reported by `GET /v1/stats`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KernelStats {
    /// The kernel mode dispatch resolved to (e.g. `avx512`), after the
    /// `--kernels` flag / `SIGFIM_KERNELS` override and the tuner had their
    /// say.
    pub mode: String,
    /// Whether the startup micro-benchmark actually ran (`SIGFIM_TUNE=auto`);
    /// `false` means static fallbacks were used unmeasured.
    pub tuned: bool,
    /// The concrete kernel the tuner picked for `auto` dispatch.
    pub tuner_kernel: String,
    /// The shard budget (bytes of column data per shard) new sharded
    /// datasets are sized by.
    pub shard_budget_bytes: usize,
    /// Every micro-benchmark measurement behind the decision (empty when
    /// tuning was off).
    pub tuner_timings: Vec<TunerTiming>,
    /// The replicate sampler the tuner prefers when `auto` dispatch has a
    /// choice (the density and model gates still apply per run). Additive
    /// field, defaulted on deserialization.
    #[serde(default)]
    pub tuner_sampler: String,
    /// The k-itemset miner the tuner prefers for `--miner auto` on the
    /// multi-worker bitmap path. Additive field, defaulted on
    /// deserialization.
    #[serde(default)]
    pub tuner_miner: String,
}

/// Aggregate service counters, as reported by `GET /v1/stats`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Number of registered engines.
    pub engines: usize,
    /// `analyze` operations accepted since startup.
    pub analyze_requests: u64,
    /// `thresholds` operations accepted since startup.
    pub threshold_requests: u64,
    /// Counters of the process-wide shared threshold store (hits, misses,
    /// entries, evictions, capacity).
    pub threshold_store: CacheStats,
    /// Aggregated counters of every registered engine's per-engine
    /// `SupportProfile` cache (hits/misses/entries/evictions summed across
    /// engines; `capacity` is the summed bound, or `None` if any engine's
    /// cache is unbounded). Defaulted on deserialization so responses from
    /// pre-profile-stats servers (which speak the same protocol version —
    /// the field is additive) still parse, reading as zeroed counters.
    #[serde(default)]
    pub profile_caches: CacheStats,
    /// Resolved counting-kernel mode and the startup auto-tuner's decision
    /// (chosen kernel, shard budget, micro-bench timings). Additive field,
    /// defaulted on deserialization like `profile_caches`.
    #[serde(default)]
    pub kernels: KernelStats,
    /// Process-wide per-miner dispatch counts: how many mining passes each
    /// entry point (Apriori/Eclat/FP-Growth/brute-force/bitset Eclat/
    /// sharded/par-eclat) has served since startup. Additive field,
    /// defaulted on deserialization.
    #[serde(default)]
    pub miner_dispatch: sigfim_mining::DispatchCounts,
    /// Process-wide replicate-pipeline counters: null datasets sampled per
    /// sampler mode and replicates served straight from `ObservationStore`s
    /// without sampling. Additive field, defaulted on deserialization.
    #[serde(default)]
    pub replicates: sigfim_core::ReplicateStats,
    /// Job-queue counters (queued/running/done/failed plus the configured
    /// queue capacity). Additive field, defaulted on deserialization.
    #[serde(default)]
    pub jobs: JobStats,
    /// Persistence-layer counters of the embedded store backing `--data-dir`
    /// (segment count, live/dead bytes, compactions). `None` when the server
    /// runs without durability. Additive field, defaulted on
    /// deserialization.
    #[serde(default)]
    pub store: Option<sigfim_store::StoreStats>,
    /// Out-of-core shard-residency counters (`--shard-residency` /
    /// `SIGFIM_RESIDENCY`): the process-wide spill configuration and the
    /// lifetime spill/eviction/refault totals across every spilled view.
    /// Additive field, defaulted on deserialization; all-zero (mode `mmap`
    /// or `read`, budget 0) when no residency budget is configured.
    #[serde(default)]
    pub residency: ResidencyStats,
}

/// Out-of-core residency counters inside [`ServiceStats`]. Every field is
/// additive (defaulted on deserialization): the struct postdates wire
/// baseline v1, so pre-spill servers simply omit it.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResidencyStats {
    /// The process-wide spill mode (`mmap`, `read` or `off`).
    #[serde(default)]
    pub mode: String,
    /// The configured residency budget in bytes; 0 when none is set (views
    /// stay fully resident).
    #[serde(default)]
    pub budget_bytes: u64,
    /// Datasets whose sharded view has been spilled since startup.
    #[serde(default)]
    pub spilled_datasets: u64,
    /// Shard spill files written since startup.
    #[serde(default)]
    pub spilled_shards: u64,
    /// Shards evicted from residency since startup.
    #[serde(default)]
    pub evictions: u64,
    /// Cold shards faulted back in since startup.
    #[serde(default)]
    pub refaults: u64,
}

/// Job-queue counters inside [`ServiceStats`]. Every field is additive
/// (defaulted on deserialization): the struct itself postdates wire baseline
/// v1, so pre-jobs servers simply omit it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct JobStats {
    /// Jobs waiting in the queue.
    #[serde(default)]
    pub queued: u64,
    /// Jobs currently held by a worker.
    #[serde(default)]
    pub running: u64,
    /// Jobs finished successfully since startup (including recovered ones).
    #[serde(default)]
    pub done: u64,
    /// Jobs that ended in an error since startup.
    #[serde(default)]
    pub failed: u64,
    /// The queue's bound; enqueueing past it yields [`ApiError::Overloaded`].
    #[serde(default)]
    pub capacity: u64,
}

/// The lifecycle state of a background job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is running the analysis.
    Running,
    /// Finished; [`JobInfo::result`] carries the response.
    Done,
    /// Ended in an error; [`JobInfo::error`] carries it.
    Failed,
}

impl JobState {
    /// The stable wire name (`"queued"`, `"running"`, `"done"`, `"failed"`).
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// Whether the job will never change again.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed)
    }

    fn parse(name: &str) -> Result<Self, SerdeError> {
        match name {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "done" => Ok(JobState::Done),
            "failed" => Ok(JobState::Failed),
            other => Err(SerdeError::unknown_variant("JobState", other)),
        }
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything `GET /v1/jobs/<id>` reports about a background job: the same
/// record is the durable row in the store's `jobs` namespace, so a restarted
/// server answers polls for jobs it accepted before the crash.
///
/// Hand-written serde: `result`/`error` presence depends on `state`, and the
/// payload types ([`AnalysisRequest`], [`AnalysisResponse`]) have no
/// `Default`, which rules out the derive's `#[serde(default)]` path.
#[derive(Debug, Clone, PartialEq)]
pub struct JobInfo {
    /// The id the job is polled by (`job-00000001`, …).
    pub id: String,
    /// The dataset the analysis runs against.
    pub dataset: String,
    /// The submitted analysis request.
    pub request: AnalysisRequest,
    /// Where the job is in its lifecycle.
    pub state: JobState,
    /// Live per-`k` progress (stage, replicate counts, cache provenance).
    /// Empty until the job starts; frozen at its final value once terminal.
    pub progress: sigfim_core::progress::ProgressSnapshot,
    /// The analysis response, once `state` is [`JobState::Done`].
    pub result: Option<AnalysisResponse>,
    /// The failure, once `state` is [`JobState::Failed`].
    pub error: Option<ApiError>,
}

impl Serialize for JobInfo {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("id".to_string(), Value::Str(self.id.clone())),
            ("dataset".to_string(), Value::Str(self.dataset.clone())),
            ("request".to_string(), self.request.to_value()),
            ("state".to_string(), Value::Str(self.state.name().into())),
            ("progress".to_string(), self.progress.to_value()),
        ];
        if let Some(result) = &self.result {
            fields.push(("result".into(), result.to_value()));
        }
        if let Some(error) = &self.error {
            fields.push(("error".into(), error.to_value()));
        }
        Value::Map(fields)
    }
}

impl Deserialize for JobInfo {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        Ok(JobInfo {
            id: string_field(value, "JobInfo", "id")?,
            dataset: string_field(value, "JobInfo", "dataset")?,
            request: AnalysisRequest::from_value(field(value, "JobInfo", "request")?)?,
            state: JobState::parse(&string_field(value, "JobInfo", "state")?)?,
            progress: sigfim_core::progress::ProgressSnapshot::from_value(field(
                value, "JobInfo", "progress",
            )?)?,
            result: match value.get_field("result") {
                Some(result) => Some(AnalysisResponse::from_value(result)?),
                None => None,
            },
            error: match value.get_field("error") {
                Some(error) => Some(ApiError::from_value(error)?),
                None => None,
            },
        })
    }
}

/// The response-side envelope: protocol version plus either a typed result or
/// a typed error.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiResponse {
    /// The protocol version the server speaks.
    pub protocol_version: u32,
    /// The outcome.
    pub result: ApiResult,
}

/// Everything a [`ApiResponse`] can carry.
///
/// Variant sizes are deliberately asymmetric (`Stats` carries the kernel and
/// dispatch counters inline): one envelope exists per request, so boxing the
/// large variants would buy nothing and cost an allocation per response.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum ApiResult {
    /// The outcome of an analyze operation — exactly the in-process
    /// [`AnalysisResponse`].
    Analysis(AnalysisResponse),
    /// The outcome of a thresholds operation.
    Thresholds(Vec<ThresholdRun>),
    /// The engine listing.
    Engines(Vec<EngineInfo>),
    /// The service counters.
    Stats(ServiceStats),
    /// Liveness (`GET /healthz`).
    Health,
    /// A background job's current state — returned by a detached analyze
    /// (just accepted, `queued`) and by every `GET /v1/jobs/<id>` poll.
    Job(JobInfo),
    /// A dataset was registered; carries its engine listing entry.
    Dataset(EngineInfo),
    /// A dataset was removed; carries the id that is now free.
    DatasetDeleted(String),
    /// A typed failure.
    Error(ApiError),
}

impl ApiResult {
    fn kind(&self) -> &'static str {
        match self {
            ApiResult::Analysis(_) => "analysis",
            ApiResult::Thresholds(_) => "thresholds",
            ApiResult::Engines(_) => "engines",
            ApiResult::Stats(_) => "stats",
            ApiResult::Health => "health",
            ApiResult::Job(_) => "job",
            ApiResult::Dataset(_) => "dataset",
            ApiResult::DatasetDeleted(_) => "dataset_deleted",
            ApiResult::Error(_) => "error",
        }
    }
}

impl ApiResponse {
    /// A success envelope at the current protocol version.
    pub fn ok(result: ApiResult) -> Self {
        debug_assert!(
            !matches!(result, ApiResult::Error(_)),
            "use ApiResponse::error"
        );
        ApiResponse {
            protocol_version: PROTOCOL_VERSION,
            result,
        }
    }

    /// An error envelope at the current protocol version.
    pub fn error(error: ApiError) -> Self {
        ApiResponse {
            protocol_version: PROTOCOL_VERSION,
            result: ApiResult::Error(error),
        }
    }

    /// The HTTP status the transport sends this envelope with.
    pub fn http_status(&self) -> u16 {
        match &self.result {
            ApiResult::Error(error) => error.http_status(),
            _ => 200,
        }
    }

    /// The carried error, if this is an error envelope.
    pub fn as_error(&self) -> Option<&ApiError> {
        match &self.result {
            ApiResult::Error(error) => Some(error),
            _ => None,
        }
    }
}

impl Serialize for ApiResponse {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            (
                "protocol_version".to_string(),
                Value::U64(u64::from(self.protocol_version)),
            ),
            (
                "status".to_string(),
                Value::Str(
                    if matches!(self.result, ApiResult::Error(_)) {
                        "error"
                    } else {
                        "ok"
                    }
                    .into(),
                ),
            ),
            ("kind".to_string(), Value::Str(self.result.kind().into())),
        ];
        match &self.result {
            ApiResult::Analysis(response) => fields.push(("result".into(), response.to_value())),
            ApiResult::Thresholds(runs) => fields.push(("result".into(), runs.to_value())),
            ApiResult::Engines(engines) => fields.push(("result".into(), engines.to_value())),
            ApiResult::Stats(stats) => fields.push(("result".into(), stats.to_value())),
            ApiResult::Health => fields.push(("result".into(), Value::Str("ok".into()))),
            ApiResult::Job(job) => fields.push(("result".into(), job.to_value())),
            ApiResult::Dataset(info) => fields.push(("result".into(), info.to_value())),
            ApiResult::DatasetDeleted(id) => fields.push(("result".into(), Value::Str(id.clone()))),
            ApiResult::Error(error) => fields.push(("error".into(), error.to_value())),
        }
        Value::Map(fields)
    }
}

impl Deserialize for ApiResponse {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let protocol_version = field(value, "ApiResponse", "protocol_version")?.as_u64()? as u32;
        let kind = string_field(value, "ApiResponse", "kind")?;
        let result = match kind.as_str() {
            "analysis" => ApiResult::Analysis(AnalysisResponse::from_value(field(
                value,
                "ApiResponse",
                "result",
            )?)?),
            "thresholds" => ApiResult::Thresholds(Vec::<ThresholdRun>::from_value(field(
                value,
                "ApiResponse",
                "result",
            )?)?),
            "engines" => ApiResult::Engines(Vec::<EngineInfo>::from_value(field(
                value,
                "ApiResponse",
                "result",
            )?)?),
            "stats" => ApiResult::Stats(ServiceStats::from_value(field(
                value,
                "ApiResponse",
                "result",
            )?)?),
            "health" => ApiResult::Health,
            "job" => ApiResult::Job(JobInfo::from_value(field(value, "ApiResponse", "result")?)?),
            "dataset" => ApiResult::Dataset(EngineInfo::from_value(field(
                value,
                "ApiResponse",
                "result",
            )?)?),
            "dataset_deleted" => ApiResult::DatasetDeleted(
                field(value, "ApiResponse", "result")?.as_str()?.to_owned(),
            ),
            "error" => {
                ApiResult::Error(ApiError::from_value(field(value, "ApiResponse", "error")?)?)
            }
            other => return Err(SerdeError::unknown_variant("ApiResponse", other)),
        };
        Ok(ApiResponse {
            protocol_version,
            result,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_statuses_and_messages_are_consistent() {
        let errors = vec![
            ApiError::UnsupportedProtocolVersion {
                requested: 9,
                supported: PROTOCOL_VERSION,
            },
            ApiError::MalformedRequest {
                detail: "bad json".into(),
            },
            ApiError::UnknownDataset {
                dataset: "retail".into(),
            },
            ApiError::InvalidRequest {
                detail: "ks empty".into(),
            },
            ApiError::EngineFailure {
                detail: "mining blew up".into(),
            },
            ApiError::NotFound {
                path: "/v2/zap".into(),
            },
            ApiError::MethodNotAllowed {
                method: "PUT".into(),
                path: "/v1/analyze".into(),
            },
            ApiError::Overloaded {
                retry_after_secs: 2,
            },
            ApiError::UnknownJob {
                job: "job-00000042".into(),
            },
        ];
        for error in &errors {
            assert!(!error.code().is_empty());
            assert!((400..=599).contains(&error.http_status()), "{error}");
            // The envelope always carries the code and a human message.
            let value = error.to_value();
            assert_eq!(
                value.get_field("code").unwrap().as_str().unwrap(),
                error.code()
            );
            assert!(value.get_field("message").is_some());
        }
        // Distinct variants have distinct codes.
        let codes: std::collections::HashSet<_> = errors.iter().map(|e| e.code()).collect();
        assert_eq!(codes.len(), errors.len());
    }

    #[test]
    fn envelope_versions_are_validated() {
        let request = ApiRequest::analyze("retail", AnalysisRequest::for_k(2));
        assert_eq!(request.protocol_version, PROTOCOL_VERSION);
        assert!(request.validate_version().is_ok());
        let stale = ApiRequest {
            protocol_version: PROTOCOL_VERSION + 1,
            ..request
        };
        let error = stale.validate_version().unwrap_err();
        assert_eq!(error.code(), "unsupported_protocol_version");
        assert_eq!(error.http_status(), 400);
    }

    #[test]
    fn model_spec_builds_and_rejects() {
        let spec = ModelSpec::Bernoulli {
            transactions: 50,
            frequencies: vec![0.2, 0.1],
        };
        let model = spec.build().unwrap();
        use sigfim_datasets::random::NullModel;
        assert_eq!(model.num_transactions(), 50);
        assert_eq!(model.num_items(), 2);
        let bad = ModelSpec::Bernoulli {
            transactions: 50,
            frequencies: vec![1.5],
        };
        assert_eq!(bad.build().unwrap_err().code(), "invalid_request");
    }

    #[test]
    fn job_and_dataset_envelopes_roundtrip() {
        // Detach rides the analyze envelope additively: absent = false.
        let detached = ApiRequest::analyze_detached("retail", AnalysisRequest::for_k(2));
        let text = serde_json::to_string(&detached).unwrap();
        assert!(text.contains("\"detach\""));
        let back: ApiRequest = serde_json::from_str(&text).unwrap();
        assert_eq!(back, detached);
        let sync = ApiRequest::analyze("retail", AnalysisRequest::for_k(2));
        let text = serde_json::to_string(&sync).unwrap();
        assert!(!text.contains("\"detach\""));
        let back: ApiRequest = serde_json::from_str(&text).unwrap();
        assert_eq!(back, sync);

        for request in [
            ApiRequest::job_status("job-00000007"),
            ApiRequest::put_dataset("retail", "1 2 3\n2 3\n"),
            ApiRequest::delete_dataset("retail"),
        ] {
            let text = serde_json::to_string(&request).unwrap();
            let back: ApiRequest = serde_json::from_str(&text).unwrap();
            assert_eq!(back, request);
        }

        // A queued JobInfo (no result, no error) and a failed one survive
        // the wire; state strings are the stable lowercase names.
        let queued = JobInfo {
            id: "job-00000001".into(),
            dataset: "retail".into(),
            request: AnalysisRequest::for_k(2),
            state: JobState::Queued,
            progress: sigfim_core::progress::ProgressSnapshot::default(),
            result: None,
            error: None,
        };
        let response = ApiResponse::ok(ApiResult::Job(queued.clone()));
        let text = serde_json::to_string(&response).unwrap();
        assert!(text.contains("\"queued\""));
        let back: ApiResponse = serde_json::from_str(&text).unwrap();
        assert_eq!(back, response);
        let failed = JobInfo {
            state: JobState::Failed,
            error: Some(ApiError::EngineFailure {
                detail: "mining blew up".into(),
            }),
            ..queued
        };
        assert!(failed.state.is_terminal());
        let text = serde_json::to_string(&failed).unwrap();
        let back: JobInfo = serde_json::from_str(&text).unwrap();
        assert_eq!(back, failed);
    }

    #[test]
    fn response_status_reflects_the_result() {
        let ok = ApiResponse::ok(ApiResult::Health);
        assert_eq!(ok.http_status(), 200);
        assert!(ok.as_error().is_none());
        let err = ApiResponse::error(ApiError::NotFound { path: "/x".into() });
        assert_eq!(err.http_status(), 404);
        assert_eq!(err.as_error().unwrap().code(), "not_found");
    }
}

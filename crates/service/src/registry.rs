//! The [`EngineRegistry`]: dataset ids → dyn-erased engines, plus the
//! process-wide shared [`ThresholdStore`].
//!
//! This is the service's tenancy layer. Each registered dataset gets a
//! long-lived [`DynAnalysisEngine`] behind its own lock (requests against
//! different datasets run concurrently; requests against the same dataset
//! serialize, which is what keeps the engine's internal caches coherent), and
//! every engine is attached to one shared threshold store keyed by
//! `(model fingerprint, k, ε, Δ, seed, backend, restarts)` — so two tenants
//! analyzing the same null model serve each other's Algorithm 1 results.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use sigfim_core::engine::{
    AnalysisEngine, AnalysisRequest, AnalysisResponse, DynAnalysisEngine, ProgressObserver,
    ThresholdRun, ThresholdStore,
};
use sigfim_core::CoreError;
use sigfim_datasets::transaction::TransactionDataset;

use crate::jobs::{JobTable, Work, DEFAULT_QUEUE_CAPACITY};
use crate::persist::ServiceDb;
use crate::protocol::{
    ApiError, ApiRequest, ApiRequestBody, ApiResponse, ApiResult, EngineInfo, JobInfo, JobState,
    KernelStats, ModelSpec, ResidencyStats, ServiceStats, TunerTiming,
};

/// Snapshot the process-wide kernel dispatch and startup-tuner decision for
/// `/v1/stats`. Forces kernel dispatch (and, under `SIGFIM_TUNE=auto`, the
/// one-shot micro-benchmark) on first call; both are cached for the process
/// lifetime, so polling is free.
fn kernel_stats() -> KernelStats {
    let decision = sigfim_datasets::tune::decision();
    let miner = sigfim_mining::miner_decision();
    let mut tuner_timings: Vec<TunerTiming> = decision
        .timings
        .iter()
        .map(|timing| TunerTiming {
            subject: match timing.subject {
                sigfim_datasets::tune::TuneSubject::Kernel(mode) => {
                    format!("kernel:{}", mode.name())
                }
                sigfim_datasets::tune::TuneSubject::ShardBudgetBytes(bytes) => {
                    format!("shard_budget_bytes:{bytes}")
                }
                sigfim_datasets::tune::TuneSubject::Sampler(mode) => {
                    format!("sampler:{}", mode.name())
                }
            },
            median_ns: timing.median_ns,
        })
        .collect();
    tuner_timings.extend(miner.timings.iter().map(|timing| TunerTiming {
        subject: format!("miner:{}", timing.miner.name()),
        median_ns: timing.median_ns,
    }));
    KernelStats {
        mode: sigfim_datasets::kernels().name().to_string(),
        tuned: decision.tuned,
        tuner_kernel: decision.kernel.name().to_string(),
        shard_budget_bytes: decision.shard_budget_bytes,
        tuner_timings,
        tuner_sampler: decision.sampler.name().to_string(),
        // What `--miner auto` resolves to on the multi-worker bitmap path —
        // the only configuration where the tuner's preference is consulted.
        tuner_miner: sigfim_mining::tuned_miner(true, 2).name().to_string(),
    }
}

/// Snapshot the process-wide out-of-core configuration and spill counters
/// for `/v1/stats`.
fn residency_stats() -> ResidencyStats {
    let counters = sigfim_datasets::spill_counters();
    ResidencyStats {
        mode: sigfim_datasets::process_spill_mode().name().to_string(),
        budget_bytes: sigfim_datasets::process_residency_budget().unwrap_or(0),
        spilled_datasets: counters.spilled_datasets,
        spilled_shards: counters.spilled_shards,
        evictions: counters.evictions,
        refaults: counters.refaults,
    }
}

/// Map a pipeline error onto the wire taxonomy: parameter rejections are the
/// client's fault (`invalid_request`), everything else is the engine's
/// (`engine_failure`).
fn map_core_error(error: CoreError) -> ApiError {
    match error {
        CoreError::InvalidParameter { .. } => ApiError::InvalidRequest {
            detail: error.to_string(),
        },
        other => ApiError::EngineFailure {
            detail: other.to_string(),
        },
    }
}

/// Recover a lock from poisoning: engines and the registry map hold memoized
/// state whose invariants hold between any two operations, so a panicked
/// holder cannot leave them in a state worth propagating to every tenant.
macro_rules! relock {
    ($guard:expr) => {
        $guard.unwrap_or_else(|poisoned| poisoned.into_inner())
    };
}

/// Dataset ids → engines, with one shared threshold store across all of them.
///
/// ```
/// use sigfim_core::engine::AnalysisRequest;
/// use sigfim_service::registry::EngineRegistry;
/// use sigfim_datasets::transaction::TransactionDataset;
///
/// let dataset = TransactionDataset::from_transactions(
///     3,
///     vec![vec![0, 1], vec![0, 1, 2], vec![2], vec![0, 1]],
/// )
/// .unwrap();
/// let registry = EngineRegistry::new();
/// registry.register_dataset("toy", dataset).unwrap();
/// let response = registry
///     .analyze("toy", &AnalysisRequest::for_k(2).with_replicates(4))
///     .unwrap();
/// assert_eq!(response.runs.len(), 1);
/// ```
/// One registered tenant: the engine behind its lock, plus the listing
/// snapshot captured at registration. Every `EngineInfo` field is immutable
/// after registration (the registry owns the engine; nothing reconfigures
/// it), so `engines()` serves the snapshot without touching live engine
/// locks — a monitoring call never waits behind a long Monte-Carlo run.
#[derive(Debug)]
struct Tenant {
    engine: Arc<Mutex<DynAnalysisEngine>>,
    info: EngineInfo,
    /// The profile-cache counters as last observed by [`EngineRegistry::stats`].
    /// Served when the engine lock is held by a running analysis, so the
    /// stats endpoint is non-blocking *and* its aggregates stay monotonic
    /// across polls (a busy tenant reports its previous counters instead of
    /// dropping out of the sum).
    last_profile_stats: Arc<Mutex<sigfim_core::engine::CacheStats>>,
}

#[derive(Debug)]
pub struct EngineRegistry {
    engines: RwLock<HashMap<String, Tenant>>,
    store: ThresholdStore,
    analyze_requests: AtomicU64,
    threshold_requests: AtomicU64,
    /// The asynchronous job tier. `Arc` so worker threads can block on
    /// [`JobTable::claim`] without keeping the whole registry alive — a
    /// dropped registry shuts the table down (see [`Drop`]) and the workers
    /// exit instead of pinning it forever.
    jobs: Arc<JobTable>,
    /// The durability layer, once [`EngineRegistry::attach_db`] wires one
    /// up. `None` = fully in-memory service (the pre-store behaviour).
    persist: Mutex<Option<ServiceDb>>,
}

impl Default for EngineRegistry {
    fn default() -> Self {
        EngineRegistry::from_parts(ThresholdStore::default(), DEFAULT_QUEUE_CAPACITY)
    }
}

impl Drop for EngineRegistry {
    fn drop(&mut self) {
        // Wake blocked job workers so their threads exit with the registry.
        self.jobs.shutdown();
    }
}

/// What [`EngineRegistry::attach_db`] restored from a freshly opened store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoverySummary {
    /// Datasets re-registered from persisted FIMI payloads.
    pub datasets: usize,
    /// Threshold records preloaded into the shared store (warm cache).
    pub thresholds: usize,
    /// Jobs that were `Queued` at the crash and are waiting again.
    pub jobs_requeued: usize,
    /// Jobs that were `Running` at the crash, now deterministically
    /// `Failed`.
    pub jobs_interrupted: usize,
}

impl EngineRegistry {
    /// An empty registry with a fresh, unbounded shared store.
    pub fn new() -> Self {
        EngineRegistry::default()
    }

    /// An empty registry whose shared store is LRU-bounded at `capacity`
    /// threshold entries.
    pub fn with_cache_capacity(capacity: usize) -> Self {
        EngineRegistry::from_parts(
            ThresholdStore::with_capacity(capacity),
            DEFAULT_QUEUE_CAPACITY,
        )
    }

    /// An empty registry sharing an existing store (e.g. with engines that
    /// live outside the registry).
    pub fn with_store(store: ThresholdStore) -> Self {
        EngineRegistry::from_parts(store, DEFAULT_QUEUE_CAPACITY)
    }

    /// An empty registry whose job queue sheds load (HTTP 429) past
    /// `queue_capacity` pending jobs, with an optionally LRU-bounded store.
    pub fn with_capacities(cache_capacity: Option<usize>, queue_capacity: usize) -> Self {
        EngineRegistry::from_parts(
            match cache_capacity {
                Some(capacity) => ThresholdStore::with_capacity(capacity),
                None => ThresholdStore::default(),
            },
            queue_capacity,
        )
    }

    /// The one real constructor (`Drop` rules out struct-update syntax over
    /// `default()`).
    fn from_parts(store: ThresholdStore, queue_capacity: usize) -> Self {
        EngineRegistry {
            engines: RwLock::default(),
            store,
            analyze_requests: AtomicU64::new(0),
            threshold_requests: AtomicU64::new(0),
            jobs: Arc::new(JobTable::new(queue_capacity)),
            persist: Mutex::new(None),
        }
    }

    /// A handle to the shared threshold store.
    pub fn store(&self) -> ThresholdStore {
        self.store.clone()
    }

    /// Register `dataset` under `id` with the paper's Bernoulli null derived
    /// from it.
    ///
    /// # Errors
    ///
    /// [`ApiError::InvalidRequest`] when the id is already taken or the
    /// dataset is rejected (empty).
    pub fn register_dataset(
        &self,
        id: impl Into<String>,
        dataset: TransactionDataset,
    ) -> Result<(), ApiError> {
        let engine = AnalysisEngine::from_dataset_dyn(dataset).map_err(map_core_error)?;
        self.register_engine(id, engine)
    }

    /// Register a pre-built engine (any null model, any backend/policy
    /// configuration) under `id`. The engine is re-pointed at the registry's
    /// shared threshold store; thresholds it already cached in a private
    /// store are left behind.
    ///
    /// # Errors
    ///
    /// [`ApiError::InvalidRequest`] when the id is already taken.
    pub fn register_engine(
        &self,
        id: impl Into<String>,
        mut engine: DynAnalysisEngine,
    ) -> Result<(), ApiError> {
        let id = id.into();
        engine.set_threshold_store(self.store.clone());
        use sigfim_datasets::random::NullModel;
        let info = EngineInfo {
            id: id.clone(),
            transactions: engine.model().num_transactions(),
            items: engine.model().num_items(),
            has_dataset: engine.dataset().is_some(),
            backend: engine.backend(),
            fingerprint: engine.fingerprint(),
        };
        let mut engines = relock!(self.engines.write());
        if engines.contains_key(&id) {
            return Err(ApiError::InvalidRequest {
                detail: format!("dataset id `{id}` is already registered"),
            });
        }
        engines.insert(
            id,
            Tenant {
                engine: Arc::new(Mutex::new(engine)),
                info,
                last_profile_stats: Arc::new(
                    Mutex::new(sigfim_core::engine::CacheStats::default()),
                ),
            },
        );
        Ok(())
    }

    /// Remove the engine registered under `id`, if any. Its thresholds stay
    /// in the shared store (they are keyed by model fingerprint, not by id).
    pub fn deregister(&self, id: &str) -> bool {
        relock!(self.engines.write()).remove(id).is_some()
    }

    fn engine(&self, id: &str) -> Result<Arc<Mutex<DynAnalysisEngine>>, ApiError> {
        relock!(self.engines.read())
            .get(id)
            .map(|tenant| Arc::clone(&tenant.engine))
            .ok_or_else(|| ApiError::UnknownDataset {
                dataset: id.to_string(),
            })
    }

    /// Run the full pipeline against the engine registered under `dataset`.
    /// Holds that engine's lock for the duration of the run; other datasets
    /// are not blocked.
    ///
    /// # Errors
    ///
    /// [`ApiError::UnknownDataset`] for an unregistered id,
    /// [`ApiError::InvalidRequest`] / [`ApiError::EngineFailure`] for
    /// pipeline rejections and failures.
    pub fn analyze(
        &self,
        dataset: &str,
        request: &AnalysisRequest,
    ) -> Result<AnalysisResponse, ApiError> {
        self.analyze_requests.fetch_add(1, Ordering::Relaxed);
        let engine = self.engine(dataset)?;
        let mut engine = relock!(engine.lock());
        let result = engine.run(request).map_err(map_core_error);
        drop(engine);
        // The run may have written thresholds through the sink; settle the
        // store's dead-byte debt on the worker pool, not a client write.
        if let Some(db) = relock!(self.persist.lock()).clone() {
            self.schedule_compaction_if_needed(&db);
        }
        result
    }

    /// [`EngineRegistry::analyze`] with a progress observer attached — the
    /// job workers' entry point, so `GET /v1/jobs/<id>` polls see live
    /// per-`k` progress.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EngineRegistry::analyze`].
    pub fn analyze_observed(
        &self,
        dataset: &str,
        request: &AnalysisRequest,
        observer: &dyn ProgressObserver,
    ) -> Result<AnalysisResponse, ApiError> {
        self.analyze_requests.fetch_add(1, Ordering::Relaxed);
        let engine = self.engine(dataset)?;
        let mut engine = relock!(engine.lock());
        engine
            .run_observed(request, observer)
            .map_err(map_core_error)
    }

    /// Run Algorithm 1 alone against an inline null model (dataset-less, the
    /// shape of the paper's Table 2). The transient engine is attached to the
    /// shared store, so repeated threshold queries for the same model — from
    /// any tenant — hit the cache.
    ///
    /// # Errors
    ///
    /// [`ApiError::InvalidRequest`] for rejected model parameters or
    /// requests, [`ApiError::EngineFailure`] for Algorithm 1 failures.
    pub fn thresholds(
        &self,
        model: &ModelSpec,
        request: &AnalysisRequest,
    ) -> Result<Vec<ThresholdRun>, ApiError> {
        self.threshold_requests.fetch_add(1, Ordering::Relaxed);
        let model = model.build()?;
        let mut engine = AnalysisEngine::from_model(model).with_threshold_store(self.store.clone());
        engine.thresholds(request).map_err(map_core_error)
    }

    /// Register (or replace) a dataset from a FIMI-format payload and, when
    /// a store is attached, persist the payload so a restarted server
    /// re-registers it. The wire entry point of `PUT /v1/datasets/<id>`.
    ///
    /// Unlike [`EngineRegistry::register_dataset`], an existing id is
    /// *replaced* — PUT semantics — and its thresholds stay shared (they are
    /// keyed by model fingerprint, which changes only if the data did).
    ///
    /// # Errors
    ///
    /// [`ApiError::InvalidRequest`] for unparseable FIMI or an empty
    /// dataset, [`ApiError::EngineFailure`] when the payload cannot be
    /// persisted (the in-memory registration is rolled back — a PUT that
    /// returns success must survive a restart).
    pub fn put_dataset(&self, id: &str, fimi: &str) -> Result<EngineInfo, ApiError> {
        let labeled = sigfim_datasets::fimi::read_fimi_bytes(fimi).map_err(|error| {
            ApiError::InvalidRequest {
                detail: format!("FIMI payload rejected: {error}"),
            }
        })?;
        let replaced = self.deregister(id);
        self.register_dataset(id, labeled.dataset)?;
        let persist = relock!(self.persist.lock()).clone();
        if let Some(db) = persist {
            if let Err(error) = db.put_dataset(id, fimi) {
                // Roll back: a PUT acknowledged durable must be durable.
                self.deregister(id);
                return Err(ApiError::EngineFailure {
                    detail: format!("dataset `{id}` could not be persisted: {error}"),
                });
            }
            self.schedule_compaction_if_needed(&db);
        }
        let _ = replaced;
        Ok(self
            .engine_info(id)
            .expect("the dataset was registered just above"))
    }

    /// Unregister a dataset and drop its persisted payload. The wire entry
    /// point of `DELETE /v1/datasets/<id>`. Shared thresholds survive (other
    /// tenants over the same null model still use them).
    ///
    /// # Errors
    ///
    /// [`ApiError::UnknownDataset`] when no engine holds the id.
    pub fn delete_dataset(&self, id: &str) -> Result<(), ApiError> {
        if !self.deregister(id) {
            return Err(ApiError::UnknownDataset {
                dataset: id.to_string(),
            });
        }
        let persist = relock!(self.persist.lock()).clone();
        if let Some(db) = persist {
            if let Err(error) = db.delete_dataset(id) {
                eprintln!("sigfim-store: failed to drop dataset `{id}` payload: {error}");
            }
            self.schedule_compaction_if_needed(&db);
        }
        Ok(())
    }

    /// Accept an analysis as a background job: validate the dataset id,
    /// enqueue, persist the `Queued` record, and return it immediately —
    /// the submitting connection never waits on the Monte-Carlo run.
    ///
    /// # Errors
    ///
    /// [`ApiError::UnknownDataset`] for an unregistered id (failing fast at
    /// submission beats a job that only fails once claimed),
    /// [`ApiError::Overloaded`] when the queue is at capacity.
    pub fn submit_job(&self, dataset: &str, request: AnalysisRequest) -> Result<JobInfo, ApiError> {
        self.engine(dataset)?;
        let info = self.jobs.submit(dataset, request)?;
        self.persist_job(&info);
        Ok(info)
    }

    /// The current record of a job, with live progress when it is running.
    /// The wire entry point of `GET /v1/jobs/<id>`.
    ///
    /// # Errors
    ///
    /// [`ApiError::UnknownJob`] for an id this process never minted or
    /// recovered.
    pub fn job_status(&self, id: &str) -> Result<JobInfo, ApiError> {
        self.jobs.get(id).ok_or_else(|| ApiError::UnknownJob {
            job: id.to_string(),
        })
    }

    /// Start `workers` background threads draining the job queue (`0` is
    /// coerced to 1). Each claimed job runs through
    /// [`EngineRegistry::analyze_observed`] and is persisted on every
    /// lifecycle transition. The same pool absorbs store maintenance: the
    /// store opens with inline compaction disabled, the write-through paths
    /// request a compaction once dead bytes cross the threshold, and a
    /// worker runs it here ahead of queued jobs — so no client write or
    /// submission ever pays the log-rewrite latency. Threads hold the
    /// registry weakly: dropping the last external `Arc` shuts the queue
    /// down and the workers exit.
    pub fn start_job_workers(self: &Arc<Self>, workers: usize) -> usize {
        let workers = workers.max(1);
        for index in 0..workers {
            let weak = Arc::downgrade(self);
            let jobs = Arc::clone(&self.jobs);
            std::thread::Builder::new()
                .name(format!("sigfim-job-{index}"))
                .spawn(move || loop {
                    // Block on the queue holding only the table, never the
                    // registry — claim_work() returns None once the registry
                    // drops (its Drop shuts the table down).
                    let Some(work) = jobs.claim_work() else {
                        return;
                    };
                    let Some(registry) = weak.upgrade() else {
                        return;
                    };
                    match work {
                        Work::Compaction => {
                            let persist = relock!(registry.persist.lock()).clone();
                            if let Some(db) = persist {
                                if let Err(error) = db.compact() {
                                    eprintln!(
                                        "sigfim-store: background compaction failed: {error}"
                                    );
                                }
                            }
                        }
                        Work::Job(claimed, running) => {
                            registry.persist_job(&running);
                            let outcome = registry.analyze_observed(
                                &claimed.dataset,
                                &claimed.request,
                                claimed.observer.as_ref(),
                            );
                            if let Some(done) = registry.jobs.complete(&claimed.id, outcome) {
                                registry.persist_job(&done);
                            }
                        }
                    }
                })
                .expect("spawning a named worker thread cannot fail");
        }
        workers
    }

    /// Attach an opened store: preload the shared threshold cache from its
    /// records (a re-queried threshold is a [`CacheStatus::Hit`] with zero
    /// new replicates), re-register persisted datasets, recover the job
    /// table (`Queued` re-enqueued in id order, `Running` at the crash
    /// deterministically `Failed`), and write every future threshold,
    /// dataset and job transition through.
    ///
    /// Call once, before serving traffic and before registering
    /// CLI-provided datasets (ids already registered win over persisted
    /// payloads and are skipped).
    ///
    /// # Errors
    ///
    /// Propagates store reads/writes and fails on a persisted dataset whose
    /// FIMI payload no longer parses (store tampering — the writer only
    /// persists payloads it parsed).
    ///
    /// [`CacheStatus::Hit`]: sigfim_core::engine::CacheStatus
    pub fn attach_db(&self, db: ServiceDb) -> io::Result<RecoverySummary> {
        let mut summary = RecoverySummary {
            thresholds: self.store.preload(db.thresholds()?),
            ..RecoverySummary::default()
        };
        self.store.set_persistence(Arc::new(db.clone()));
        for (id, fimi) in db.datasets()? {
            let labeled = sigfim_datasets::fimi::read_fimi_bytes(&fimi).map_err(|error| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("persisted dataset `{id}` is not valid FIMI: {error}"),
                )
            })?;
            if self.register_dataset(&id, labeled.dataset).is_ok() {
                summary.datasets += 1;
            }
        }
        let records = db.jobs()?;
        summary.jobs_requeued = records
            .iter()
            .filter(|job| job.state == JobState::Queued)
            .count();
        let interrupted = self.jobs.recover(records);
        summary.jobs_interrupted = interrupted.len();
        for job in &interrupted {
            db.put_job(job)?;
        }
        *relock!(self.persist.lock()) = Some(db);
        Ok(summary)
    }

    /// The listing snapshot of one registered engine.
    fn engine_info(&self, id: &str) -> Option<EngineInfo> {
        relock!(self.engines.read())
            .get(id)
            .map(|tenant| tenant.info.clone())
    }

    /// Write a job record through to the store, when one is attached.
    /// Persistence failures are reported, not propagated: the in-memory
    /// table still serves polls; only restart durability is degraded.
    fn persist_job(&self, job: &JobInfo) {
        let persist = relock!(self.persist.lock()).clone();
        if let Some(db) = persist {
            if let Err(error) = db.put_job(job) {
                eprintln!("sigfim-store: failed to persist job {}: {error}", job.id);
            }
            self.schedule_compaction_if_needed(&db);
        }
    }

    /// Hand the store's dead-byte debt to the worker pool: once a
    /// write-through (job transition, dataset payload, threshold sink during
    /// an analysis) pushes the store past its compaction threshold, queue a
    /// [`Work::Compaction`] instead of compacting inline on the caller.
    /// Repeated triggers coalesce in the table until a worker drains one.
    fn schedule_compaction_if_needed(&self, db: &ServiceDb) {
        if db.needs_compaction() {
            self.jobs.request_compaction();
        }
    }

    /// The registered engines, sorted by id. Served from the registration
    /// snapshots — never blocks behind a running analysis.
    pub fn engines(&self) -> Vec<EngineInfo> {
        let engines = relock!(self.engines.read());
        let mut infos: Vec<EngineInfo> =
            engines.values().map(|tenant| tenant.info.clone()).collect();
        infos.sort_by(|a, b| a.id.cmp(&b.id));
        infos
    }

    /// Aggregate counters: engines, accepted operations, shared-store stats,
    /// and the per-engine profile caches summed across tenants. Monitoring
    /// must never queue behind analysis work, so the aggregation holds no
    /// lock while waiting: engine handles are cloned out of the registry map
    /// first (as the analyze path does), and an engine whose lock is held by
    /// a running analysis contributes its *last observed* counters instead
    /// of blocking — `/v1/stats` stays O(engines), non-blocking, and
    /// monotonic across polls (counters never regress; a busy tenant's
    /// numbers are merely one poll stale).
    pub fn stats(&self) -> ServiceStats {
        type StatsHandles = (
            Arc<Mutex<DynAnalysisEngine>>,
            Arc<Mutex<sigfim_core::engine::CacheStats>>,
        );
        let (num_engines, handles): (usize, Vec<StatsHandles>) = {
            let engines = relock!(self.engines.read());
            (
                engines.len(),
                engines
                    .values()
                    .map(|tenant| {
                        (
                            Arc::clone(&tenant.engine),
                            Arc::clone(&tenant.last_profile_stats),
                        )
                    })
                    .collect(),
            )
        };
        let mut profile_caches = sigfim_core::engine::CacheStats::default();
        let mut bounded = true;
        let mut capacity_sum = 0usize;
        for (engine, snapshot) in handles {
            let stats = match engine.try_lock() {
                Ok(engine) => {
                    let fresh = engine.profile_cache_stats();
                    *relock!(snapshot.lock()) = fresh;
                    fresh
                }
                Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                    let fresh = poisoned.into_inner().profile_cache_stats();
                    *relock!(snapshot.lock()) = fresh;
                    fresh
                }
                // Mid-analysis: serve the previous observation rather than
                // block the monitoring call behind the replicate loop.
                Err(std::sync::TryLockError::WouldBlock) => *relock!(snapshot.lock()),
            };
            profile_caches.hits += stats.hits;
            profile_caches.misses += stats.misses;
            profile_caches.entries += stats.entries;
            profile_caches.evictions += stats.evictions;
            match stats.capacity {
                Some(capacity) => capacity_sum += capacity,
                None => bounded = false,
            }
        }
        profile_caches.capacity = bounded.then_some(capacity_sum);
        ServiceStats {
            engines: num_engines,
            analyze_requests: self.analyze_requests.load(Ordering::Relaxed),
            threshold_requests: self.threshold_requests.load(Ordering::Relaxed),
            threshold_store: self.store.stats(),
            profile_caches,
            kernels: kernel_stats(),
            miner_dispatch: sigfim_mining::dispatch_counts(),
            replicates: sigfim_core::replicate_stats(),
            jobs: self.jobs.stats(),
            store: relock!(self.persist.lock()).as_ref().map(ServiceDb::stats),
            residency: residency_stats(),
        }
    }

    /// Dispatch one protocol envelope: version check, then the operation.
    /// This is the transport-independent entry point — the HTTP layer and
    /// in-process callers route through the same code, which is what makes
    /// loopback responses bit-identical to direct calls.
    pub fn handle(&self, request: &ApiRequest) -> ApiResponse {
        if let Err(error) = request.validate_version() {
            return ApiResponse::error(error);
        }
        let result = match &request.body {
            ApiRequestBody::Analyze {
                dataset,
                request,
                detach: false,
            } => self.analyze(dataset, request).map(ApiResult::Analysis),
            ApiRequestBody::Analyze {
                dataset,
                request,
                detach: true,
            } => self
                .submit_job(dataset, request.clone())
                .map(ApiResult::Job),
            ApiRequestBody::Thresholds { model, request } => {
                self.thresholds(model, request).map(ApiResult::Thresholds)
            }
            ApiRequestBody::JobStatus { id } => self.job_status(id).map(ApiResult::Job),
            ApiRequestBody::PutDataset { id, fimi } => {
                self.put_dataset(id, fimi).map(ApiResult::Dataset)
            }
            ApiRequestBody::DeleteDataset { id } => self
                .delete_dataset(id)
                .map(|()| ApiResult::DatasetDeleted(id.clone())),
        };
        match result {
            Ok(result) => ApiResponse::ok(result),
            Err(error) => ApiResponse::error(error),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sigfim_core::engine::CacheStatus;
    use sigfim_datasets::random::{BernoulliModel, NullModel};

    fn sample_dataset(seed: u64) -> TransactionDataset {
        BernoulliModel::new(200, vec![0.1; 12])
            .unwrap()
            .sample(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn registration_routing_and_duplicate_rejection() {
        let registry = EngineRegistry::new();
        registry.register_dataset("a", sample_dataset(1)).unwrap();
        registry.register_dataset("b", sample_dataset(2)).unwrap();
        let duplicate = registry.register_dataset("a", sample_dataset(3));
        assert_eq!(duplicate.unwrap_err().code(), "invalid_request");

        let infos = registry.engines();
        assert_eq!(
            infos.iter().map(|i| i.id.as_str()).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert!(infos.iter().all(|i| i.has_dataset && i.transactions == 200));

        let request = AnalysisRequest::for_k(2).with_replicates(4);
        assert!(registry.analyze("a", &request).is_ok());
        let missing = registry.analyze("nope", &request).unwrap_err();
        assert_eq!(missing.code(), "unknown_dataset");

        assert!(registry.deregister("b"));
        assert!(!registry.deregister("b"));
        assert_eq!(registry.engines().len(), 1);
    }

    #[test]
    fn cross_tenant_threshold_sharing_through_the_registry() {
        // Two ids over byte-identical datasets → same Bernoulli fingerprint:
        // the second tenant's first query is a shared-store hit.
        let registry = EngineRegistry::new();
        let dataset = sample_dataset(7);
        registry.register_dataset("first", dataset.clone()).unwrap();
        registry.register_dataset("second", dataset).unwrap();

        let request = AnalysisRequest::for_k(2).with_replicates(6);
        let cold = registry.analyze("first", &request).unwrap();
        assert_eq!(cold.runs[0].threshold_cache, CacheStatus::Miss);
        let warm = registry.analyze("second", &request).unwrap();
        assert_eq!(warm.runs[0].threshold_cache, CacheStatus::Hit);
        assert_eq!(warm.runs[0].report.threshold, cold.runs[0].report.threshold);

        let stats = registry.stats();
        assert_eq!(stats.engines, 2);
        assert_eq!(stats.analyze_requests, 2);
        assert_eq!(stats.threshold_store.hits, 1);
        assert_eq!(stats.threshold_store.misses, 1);

        // The kernel/tuner surface reports the resolved process-wide state:
        // a concrete supported mode, the tuner's concrete pick, and a
        // positive shard budget — with timings exactly when the tuner ran.
        let kernel_names = ["scalar", "unrolled", "avx2", "avx512"];
        assert!(kernel_names.contains(&stats.kernels.mode.as_str()));
        assert!(kernel_names.contains(&stats.kernels.tuner_kernel.as_str()));
        assert!(stats.kernels.shard_budget_bytes > 0);
        assert_eq!(stats.kernels.tuned, !stats.kernels.tuner_timings.is_empty());
        // The tuner's sampler and miner picks are concrete names.
        assert!(["cellwise", "gaps"].contains(&stats.kernels.tuner_sampler.as_str()));
        assert!(["eclat", "par-eclat"].contains(&stats.kernels.tuner_miner.as_str()));
        // And the analyses above registered in the dispatch counters — both
        // the mining passes and the null replicates they consumed.
        assert!(stats.miner_dispatch.total() > 0);
        assert!(stats.replicates.total_sampled() > 0);
    }

    #[test]
    fn dataset_less_thresholds_share_the_store_too() {
        let registry = EngineRegistry::new();
        let spec = ModelSpec::Bernoulli {
            transactions: 150,
            frequencies: vec![0.12; 10],
        };
        let request = AnalysisRequest::for_k(2).with_replicates(5);
        let cold = registry.thresholds(&spec, &request).unwrap();
        assert_eq!(cold[0].threshold_cache, CacheStatus::Miss);
        // The transient engine is gone, but its thresholds persist in the
        // shared store: a repeat — and any registered engine over the same
        // model — hits.
        let warm = registry.thresholds(&spec, &request).unwrap();
        assert_eq!(warm[0].threshold_cache, CacheStatus::Hit);
        assert_eq!(warm[0].estimate, cold[0].estimate);
        assert_eq!(registry.stats().threshold_requests, 2);

        let bad = ModelSpec::Bernoulli {
            transactions: 10,
            frequencies: vec![2.0],
        };
        assert_eq!(
            registry.thresholds(&bad, &request).unwrap_err().code(),
            "invalid_request"
        );
    }

    #[test]
    fn handle_dispatches_and_checks_versions() {
        let registry = EngineRegistry::new();
        registry.register_dataset("d", sample_dataset(4)).unwrap();

        let ok = registry.handle(&ApiRequest::analyze(
            "d",
            AnalysisRequest::for_k(2).with_replicates(4),
        ));
        assert_eq!(ok.http_status(), 200);
        assert!(matches!(ok.result, ApiResult::Analysis(_)));

        let mut stale = ApiRequest::analyze("d", AnalysisRequest::for_k(2));
        stale.protocol_version = 99;
        let rejected = registry.handle(&stale);
        assert_eq!(
            rejected.as_error().unwrap().code(),
            "unsupported_protocol_version"
        );

        // Validation failures surface as invalid_request through handle too.
        let invalid = registry.handle(&ApiRequest::analyze(
            "d",
            AnalysisRequest::for_ks(Vec::<usize>::new()),
        ));
        assert_eq!(invalid.as_error().unwrap().code(), "invalid_request");
    }

    #[test]
    fn background_compaction_runs_on_the_worker_pool() {
        let dir =
            std::env::temp_dir().join(format!("sigfim-registry-compact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A tiny dead-byte threshold with inline compaction off: every
        // write-through past it must queue a Work::Compaction instead.
        let db = ServiceDb::open_with(
            &dir,
            sigfim_store::DbOptions {
                compact_dead_bytes: 256,
                compact_inline: false,
                fsync: false,
                ..sigfim_store::DbOptions::default()
            },
        )
        .unwrap();
        let registry = Arc::new(EngineRegistry::new());
        registry.attach_db(db).unwrap();
        registry.start_job_workers(1);

        // Churn one dataset payload well past the threshold.
        for round in 0..50u32 {
            let fimi = format!("0 1 2\n1 2\n0 {}\n", round % 3);
            registry.put_dataset("churn", &fimi).unwrap();
        }

        // The compaction runs asynchronously on the pool; poll the stats
        // the operator would watch.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let store = registry.stats().store.expect("a store is attached");
            if store.compactions > 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no background compaction ran within 10s"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        // Compaction preserved the live payload.
        assert_eq!(registry.engines().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn registered_engines_keep_their_model_identity() {
        // register_engine accepts any dyn engine — here a swap-null one — and
        // re-points it at the shared store.
        let registry = EngineRegistry::new();
        let dataset = sample_dataset(9);
        let engine = AnalysisEngine::with_swap_null_dyn(dataset.clone(), 2.0).unwrap();
        let expected_fingerprint = engine.fingerprint();
        registry.register_engine("swap", engine).unwrap();
        let info = &registry.engines()[0];
        assert_eq!(info.fingerprint, expected_fingerprint);
        let engine_handle = registry.engine("swap").unwrap();
        assert!(relock!(engine_handle.lock())
            .threshold_store()
            .shares_with(&registry.store()));
        // And it answers requests.
        let response = registry
            .analyze("swap", &AnalysisRequest::for_k(2).with_replicates(4))
            .unwrap();
        assert_eq!(response.runs.len(), 1);
        // Sanity: the swap fingerprint differs from the Bernoulli one for the
        // same dataset.
        assert_ne!(
            expected_fingerprint,
            BernoulliModel::from_dataset(&dataset).fingerprint()
        );
    }
}

//! The [`EngineRegistry`]: dataset ids → dyn-erased engines, plus the
//! process-wide shared [`ThresholdStore`].
//!
//! This is the service's tenancy layer. Each registered dataset gets a
//! long-lived [`DynAnalysisEngine`] behind its own lock (requests against
//! different datasets run concurrently; requests against the same dataset
//! serialize, which is what keeps the engine's internal caches coherent), and
//! every engine is attached to one shared threshold store keyed by
//! `(model fingerprint, k, ε, Δ, seed, backend, restarts)` — so two tenants
//! analyzing the same null model serve each other's Algorithm 1 results.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use sigfim_core::engine::{
    AnalysisEngine, AnalysisRequest, AnalysisResponse, DynAnalysisEngine, ThresholdRun,
    ThresholdStore,
};
use sigfim_core::CoreError;
use sigfim_datasets::transaction::TransactionDataset;

use crate::protocol::{
    ApiError, ApiRequest, ApiRequestBody, ApiResponse, ApiResult, EngineInfo, KernelStats,
    ModelSpec, ServiceStats, TunerTiming,
};

/// Snapshot the process-wide kernel dispatch and startup-tuner decision for
/// `/v1/stats`. Forces kernel dispatch (and, under `SIGFIM_TUNE=auto`, the
/// one-shot micro-benchmark) on first call; both are cached for the process
/// lifetime, so polling is free.
fn kernel_stats() -> KernelStats {
    let decision = sigfim_datasets::tune::decision();
    let miner = sigfim_mining::miner_decision();
    let mut tuner_timings: Vec<TunerTiming> = decision
        .timings
        .iter()
        .map(|timing| TunerTiming {
            subject: match timing.subject {
                sigfim_datasets::tune::TuneSubject::Kernel(mode) => {
                    format!("kernel:{}", mode.name())
                }
                sigfim_datasets::tune::TuneSubject::ShardBudgetBytes(bytes) => {
                    format!("shard_budget_bytes:{bytes}")
                }
                sigfim_datasets::tune::TuneSubject::Sampler(mode) => {
                    format!("sampler:{}", mode.name())
                }
            },
            median_ns: timing.median_ns,
        })
        .collect();
    tuner_timings.extend(miner.timings.iter().map(|timing| TunerTiming {
        subject: format!("miner:{}", timing.miner.name()),
        median_ns: timing.median_ns,
    }));
    KernelStats {
        mode: sigfim_datasets::kernels().name().to_string(),
        tuned: decision.tuned,
        tuner_kernel: decision.kernel.name().to_string(),
        shard_budget_bytes: decision.shard_budget_bytes,
        tuner_timings,
        tuner_sampler: decision.sampler.name().to_string(),
        // What `--miner auto` resolves to on the multi-worker bitmap path —
        // the only configuration where the tuner's preference is consulted.
        tuner_miner: sigfim_mining::tuned_miner(true, 2).name().to_string(),
    }
}

/// Map a pipeline error onto the wire taxonomy: parameter rejections are the
/// client's fault (`invalid_request`), everything else is the engine's
/// (`engine_failure`).
fn map_core_error(error: CoreError) -> ApiError {
    match error {
        CoreError::InvalidParameter { .. } => ApiError::InvalidRequest {
            detail: error.to_string(),
        },
        other => ApiError::EngineFailure {
            detail: other.to_string(),
        },
    }
}

/// Recover a lock from poisoning: engines and the registry map hold memoized
/// state whose invariants hold between any two operations, so a panicked
/// holder cannot leave them in a state worth propagating to every tenant.
macro_rules! relock {
    ($guard:expr) => {
        $guard.unwrap_or_else(|poisoned| poisoned.into_inner())
    };
}

/// Dataset ids → engines, with one shared threshold store across all of them.
///
/// ```
/// use sigfim_core::engine::AnalysisRequest;
/// use sigfim_service::registry::EngineRegistry;
/// use sigfim_datasets::transaction::TransactionDataset;
///
/// let dataset = TransactionDataset::from_transactions(
///     3,
///     vec![vec![0, 1], vec![0, 1, 2], vec![2], vec![0, 1]],
/// )
/// .unwrap();
/// let registry = EngineRegistry::new();
/// registry.register_dataset("toy", dataset).unwrap();
/// let response = registry
///     .analyze("toy", &AnalysisRequest::for_k(2).with_replicates(4))
///     .unwrap();
/// assert_eq!(response.runs.len(), 1);
/// ```
/// One registered tenant: the engine behind its lock, plus the listing
/// snapshot captured at registration. Every `EngineInfo` field is immutable
/// after registration (the registry owns the engine; nothing reconfigures
/// it), so `engines()` serves the snapshot without touching live engine
/// locks — a monitoring call never waits behind a long Monte-Carlo run.
#[derive(Debug)]
struct Tenant {
    engine: Arc<Mutex<DynAnalysisEngine>>,
    info: EngineInfo,
    /// The profile-cache counters as last observed by [`EngineRegistry::stats`].
    /// Served when the engine lock is held by a running analysis, so the
    /// stats endpoint is non-blocking *and* its aggregates stay monotonic
    /// across polls (a busy tenant reports its previous counters instead of
    /// dropping out of the sum).
    last_profile_stats: Arc<Mutex<sigfim_core::engine::CacheStats>>,
}

#[derive(Debug, Default)]
pub struct EngineRegistry {
    engines: RwLock<HashMap<String, Tenant>>,
    store: ThresholdStore,
    analyze_requests: AtomicU64,
    threshold_requests: AtomicU64,
}

impl EngineRegistry {
    /// An empty registry with a fresh, unbounded shared store.
    pub fn new() -> Self {
        EngineRegistry::default()
    }

    /// An empty registry whose shared store is LRU-bounded at `capacity`
    /// threshold entries.
    pub fn with_cache_capacity(capacity: usize) -> Self {
        EngineRegistry {
            store: ThresholdStore::with_capacity(capacity),
            ..EngineRegistry::default()
        }
    }

    /// An empty registry sharing an existing store (e.g. with engines that
    /// live outside the registry).
    pub fn with_store(store: ThresholdStore) -> Self {
        EngineRegistry {
            store,
            ..EngineRegistry::default()
        }
    }

    /// A handle to the shared threshold store.
    pub fn store(&self) -> ThresholdStore {
        self.store.clone()
    }

    /// Register `dataset` under `id` with the paper's Bernoulli null derived
    /// from it.
    ///
    /// # Errors
    ///
    /// [`ApiError::InvalidRequest`] when the id is already taken or the
    /// dataset is rejected (empty).
    pub fn register_dataset(
        &self,
        id: impl Into<String>,
        dataset: TransactionDataset,
    ) -> Result<(), ApiError> {
        let engine = AnalysisEngine::from_dataset_dyn(dataset).map_err(map_core_error)?;
        self.register_engine(id, engine)
    }

    /// Register a pre-built engine (any null model, any backend/policy
    /// configuration) under `id`. The engine is re-pointed at the registry's
    /// shared threshold store; thresholds it already cached in a private
    /// store are left behind.
    ///
    /// # Errors
    ///
    /// [`ApiError::InvalidRequest`] when the id is already taken.
    pub fn register_engine(
        &self,
        id: impl Into<String>,
        mut engine: DynAnalysisEngine,
    ) -> Result<(), ApiError> {
        let id = id.into();
        engine.set_threshold_store(self.store.clone());
        use sigfim_datasets::random::NullModel;
        let info = EngineInfo {
            id: id.clone(),
            transactions: engine.model().num_transactions(),
            items: engine.model().num_items(),
            has_dataset: engine.dataset().is_some(),
            backend: engine.backend(),
            fingerprint: engine.fingerprint(),
        };
        let mut engines = relock!(self.engines.write());
        if engines.contains_key(&id) {
            return Err(ApiError::InvalidRequest {
                detail: format!("dataset id `{id}` is already registered"),
            });
        }
        engines.insert(
            id,
            Tenant {
                engine: Arc::new(Mutex::new(engine)),
                info,
                last_profile_stats: Arc::new(
                    Mutex::new(sigfim_core::engine::CacheStats::default()),
                ),
            },
        );
        Ok(())
    }

    /// Remove the engine registered under `id`, if any. Its thresholds stay
    /// in the shared store (they are keyed by model fingerprint, not by id).
    pub fn deregister(&self, id: &str) -> bool {
        relock!(self.engines.write()).remove(id).is_some()
    }

    fn engine(&self, id: &str) -> Result<Arc<Mutex<DynAnalysisEngine>>, ApiError> {
        relock!(self.engines.read())
            .get(id)
            .map(|tenant| Arc::clone(&tenant.engine))
            .ok_or_else(|| ApiError::UnknownDataset {
                dataset: id.to_string(),
            })
    }

    /// Run the full pipeline against the engine registered under `dataset`.
    /// Holds that engine's lock for the duration of the run; other datasets
    /// are not blocked.
    ///
    /// # Errors
    ///
    /// [`ApiError::UnknownDataset`] for an unregistered id,
    /// [`ApiError::InvalidRequest`] / [`ApiError::EngineFailure`] for
    /// pipeline rejections and failures.
    pub fn analyze(
        &self,
        dataset: &str,
        request: &AnalysisRequest,
    ) -> Result<AnalysisResponse, ApiError> {
        self.analyze_requests.fetch_add(1, Ordering::Relaxed);
        let engine = self.engine(dataset)?;
        let mut engine = relock!(engine.lock());
        engine.run(request).map_err(map_core_error)
    }

    /// Run Algorithm 1 alone against an inline null model (dataset-less, the
    /// shape of the paper's Table 2). The transient engine is attached to the
    /// shared store, so repeated threshold queries for the same model — from
    /// any tenant — hit the cache.
    ///
    /// # Errors
    ///
    /// [`ApiError::InvalidRequest`] for rejected model parameters or
    /// requests, [`ApiError::EngineFailure`] for Algorithm 1 failures.
    pub fn thresholds(
        &self,
        model: &ModelSpec,
        request: &AnalysisRequest,
    ) -> Result<Vec<ThresholdRun>, ApiError> {
        self.threshold_requests.fetch_add(1, Ordering::Relaxed);
        let model = model.build()?;
        let mut engine = AnalysisEngine::from_model(model).with_threshold_store(self.store.clone());
        engine.thresholds(request).map_err(map_core_error)
    }

    /// The registered engines, sorted by id. Served from the registration
    /// snapshots — never blocks behind a running analysis.
    pub fn engines(&self) -> Vec<EngineInfo> {
        let engines = relock!(self.engines.read());
        let mut infos: Vec<EngineInfo> =
            engines.values().map(|tenant| tenant.info.clone()).collect();
        infos.sort_by(|a, b| a.id.cmp(&b.id));
        infos
    }

    /// Aggregate counters: engines, accepted operations, shared-store stats,
    /// and the per-engine profile caches summed across tenants. Monitoring
    /// must never queue behind analysis work, so the aggregation holds no
    /// lock while waiting: engine handles are cloned out of the registry map
    /// first (as the analyze path does), and an engine whose lock is held by
    /// a running analysis contributes its *last observed* counters instead
    /// of blocking — `/v1/stats` stays O(engines), non-blocking, and
    /// monotonic across polls (counters never regress; a busy tenant's
    /// numbers are merely one poll stale).
    pub fn stats(&self) -> ServiceStats {
        type StatsHandles = (
            Arc<Mutex<DynAnalysisEngine>>,
            Arc<Mutex<sigfim_core::engine::CacheStats>>,
        );
        let (num_engines, handles): (usize, Vec<StatsHandles>) = {
            let engines = relock!(self.engines.read());
            (
                engines.len(),
                engines
                    .values()
                    .map(|tenant| {
                        (
                            Arc::clone(&tenant.engine),
                            Arc::clone(&tenant.last_profile_stats),
                        )
                    })
                    .collect(),
            )
        };
        let mut profile_caches = sigfim_core::engine::CacheStats::default();
        let mut bounded = true;
        let mut capacity_sum = 0usize;
        for (engine, snapshot) in handles {
            let stats = match engine.try_lock() {
                Ok(engine) => {
                    let fresh = engine.profile_cache_stats();
                    *relock!(snapshot.lock()) = fresh;
                    fresh
                }
                Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                    let fresh = poisoned.into_inner().profile_cache_stats();
                    *relock!(snapshot.lock()) = fresh;
                    fresh
                }
                // Mid-analysis: serve the previous observation rather than
                // block the monitoring call behind the replicate loop.
                Err(std::sync::TryLockError::WouldBlock) => *relock!(snapshot.lock()),
            };
            profile_caches.hits += stats.hits;
            profile_caches.misses += stats.misses;
            profile_caches.entries += stats.entries;
            profile_caches.evictions += stats.evictions;
            match stats.capacity {
                Some(capacity) => capacity_sum += capacity,
                None => bounded = false,
            }
        }
        profile_caches.capacity = bounded.then_some(capacity_sum);
        ServiceStats {
            engines: num_engines,
            analyze_requests: self.analyze_requests.load(Ordering::Relaxed),
            threshold_requests: self.threshold_requests.load(Ordering::Relaxed),
            threshold_store: self.store.stats(),
            profile_caches,
            kernels: kernel_stats(),
            miner_dispatch: sigfim_mining::dispatch_counts(),
            replicates: sigfim_core::replicate_stats(),
        }
    }

    /// Dispatch one protocol envelope: version check, then the operation.
    /// This is the transport-independent entry point — the HTTP layer and
    /// in-process callers route through the same code, which is what makes
    /// loopback responses bit-identical to direct calls.
    pub fn handle(&self, request: &ApiRequest) -> ApiResponse {
        if let Err(error) = request.validate_version() {
            return ApiResponse::error(error);
        }
        let result = match &request.body {
            ApiRequestBody::Analyze { dataset, request } => {
                self.analyze(dataset, request).map(ApiResult::Analysis)
            }
            ApiRequestBody::Thresholds { model, request } => {
                self.thresholds(model, request).map(ApiResult::Thresholds)
            }
        };
        match result {
            Ok(result) => ApiResponse::ok(result),
            Err(error) => ApiResponse::error(error),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sigfim_core::engine::CacheStatus;
    use sigfim_datasets::random::{BernoulliModel, NullModel};

    fn sample_dataset(seed: u64) -> TransactionDataset {
        BernoulliModel::new(200, vec![0.1; 12])
            .unwrap()
            .sample(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn registration_routing_and_duplicate_rejection() {
        let registry = EngineRegistry::new();
        registry.register_dataset("a", sample_dataset(1)).unwrap();
        registry.register_dataset("b", sample_dataset(2)).unwrap();
        let duplicate = registry.register_dataset("a", sample_dataset(3));
        assert_eq!(duplicate.unwrap_err().code(), "invalid_request");

        let infos = registry.engines();
        assert_eq!(
            infos.iter().map(|i| i.id.as_str()).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert!(infos.iter().all(|i| i.has_dataset && i.transactions == 200));

        let request = AnalysisRequest::for_k(2).with_replicates(4);
        assert!(registry.analyze("a", &request).is_ok());
        let missing = registry.analyze("nope", &request).unwrap_err();
        assert_eq!(missing.code(), "unknown_dataset");

        assert!(registry.deregister("b"));
        assert!(!registry.deregister("b"));
        assert_eq!(registry.engines().len(), 1);
    }

    #[test]
    fn cross_tenant_threshold_sharing_through_the_registry() {
        // Two ids over byte-identical datasets → same Bernoulli fingerprint:
        // the second tenant's first query is a shared-store hit.
        let registry = EngineRegistry::new();
        let dataset = sample_dataset(7);
        registry.register_dataset("first", dataset.clone()).unwrap();
        registry.register_dataset("second", dataset).unwrap();

        let request = AnalysisRequest::for_k(2).with_replicates(6);
        let cold = registry.analyze("first", &request).unwrap();
        assert_eq!(cold.runs[0].threshold_cache, CacheStatus::Miss);
        let warm = registry.analyze("second", &request).unwrap();
        assert_eq!(warm.runs[0].threshold_cache, CacheStatus::Hit);
        assert_eq!(warm.runs[0].report.threshold, cold.runs[0].report.threshold);

        let stats = registry.stats();
        assert_eq!(stats.engines, 2);
        assert_eq!(stats.analyze_requests, 2);
        assert_eq!(stats.threshold_store.hits, 1);
        assert_eq!(stats.threshold_store.misses, 1);

        // The kernel/tuner surface reports the resolved process-wide state:
        // a concrete supported mode, the tuner's concrete pick, and a
        // positive shard budget — with timings exactly when the tuner ran.
        let kernel_names = ["scalar", "unrolled", "avx2", "avx512"];
        assert!(kernel_names.contains(&stats.kernels.mode.as_str()));
        assert!(kernel_names.contains(&stats.kernels.tuner_kernel.as_str()));
        assert!(stats.kernels.shard_budget_bytes > 0);
        assert_eq!(stats.kernels.tuned, !stats.kernels.tuner_timings.is_empty());
        // The tuner's sampler and miner picks are concrete names.
        assert!(["cellwise", "gaps"].contains(&stats.kernels.tuner_sampler.as_str()));
        assert!(["eclat", "par-eclat"].contains(&stats.kernels.tuner_miner.as_str()));
        // And the analyses above registered in the dispatch counters — both
        // the mining passes and the null replicates they consumed.
        assert!(stats.miner_dispatch.total() > 0);
        assert!(stats.replicates.total_sampled() > 0);
    }

    #[test]
    fn dataset_less_thresholds_share_the_store_too() {
        let registry = EngineRegistry::new();
        let spec = ModelSpec::Bernoulli {
            transactions: 150,
            frequencies: vec![0.12; 10],
        };
        let request = AnalysisRequest::for_k(2).with_replicates(5);
        let cold = registry.thresholds(&spec, &request).unwrap();
        assert_eq!(cold[0].threshold_cache, CacheStatus::Miss);
        // The transient engine is gone, but its thresholds persist in the
        // shared store: a repeat — and any registered engine over the same
        // model — hits.
        let warm = registry.thresholds(&spec, &request).unwrap();
        assert_eq!(warm[0].threshold_cache, CacheStatus::Hit);
        assert_eq!(warm[0].estimate, cold[0].estimate);
        assert_eq!(registry.stats().threshold_requests, 2);

        let bad = ModelSpec::Bernoulli {
            transactions: 10,
            frequencies: vec![2.0],
        };
        assert_eq!(
            registry.thresholds(&bad, &request).unwrap_err().code(),
            "invalid_request"
        );
    }

    #[test]
    fn handle_dispatches_and_checks_versions() {
        let registry = EngineRegistry::new();
        registry.register_dataset("d", sample_dataset(4)).unwrap();

        let ok = registry.handle(&ApiRequest::analyze(
            "d",
            AnalysisRequest::for_k(2).with_replicates(4),
        ));
        assert_eq!(ok.http_status(), 200);
        assert!(matches!(ok.result, ApiResult::Analysis(_)));

        let mut stale = ApiRequest::analyze("d", AnalysisRequest::for_k(2));
        stale.protocol_version = 99;
        let rejected = registry.handle(&stale);
        assert_eq!(
            rejected.as_error().unwrap().code(),
            "unsupported_protocol_version"
        );

        // Validation failures surface as invalid_request through handle too.
        let invalid = registry.handle(&ApiRequest::analyze(
            "d",
            AnalysisRequest::for_ks(Vec::<usize>::new()),
        ));
        assert_eq!(invalid.as_error().unwrap().code(), "invalid_request");
    }

    #[test]
    fn registered_engines_keep_their_model_identity() {
        // register_engine accepts any dyn engine — here a swap-null one — and
        // re-points it at the shared store.
        let registry = EngineRegistry::new();
        let dataset = sample_dataset(9);
        let engine = AnalysisEngine::with_swap_null_dyn(dataset.clone(), 2.0).unwrap();
        let expected_fingerprint = engine.fingerprint();
        registry.register_engine("swap", engine).unwrap();
        let info = &registry.engines()[0];
        assert_eq!(info.fingerprint, expected_fingerprint);
        let engine_handle = registry.engine("swap").unwrap();
        assert!(relock!(engine_handle.lock())
            .threshold_store()
            .shares_with(&registry.store()));
        // And it answers requests.
        let response = registry
            .analyze("swap", &AnalysisRequest::for_k(2).with_replicates(4))
            .unwrap();
        assert_eq!(response.runs.len(), 1);
        // Sanity: the swap fingerprint differs from the Bernoulli one for the
        // same dataset.
        assert_ne!(
            expected_fingerprint,
            BernoulliModel::from_dataset(&dataset).fingerprint()
        );
    }
}

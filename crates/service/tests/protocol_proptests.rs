//! Property tests for the wire protocol: every envelope and every error
//! variant must survive a JSON round-trip unchanged — the contract that makes
//! loopback responses reconstruct exactly what in-process calls return.

use proptest::collection::vec;
use proptest::prelude::*;

use sigfim_core::engine::{AnalysisRequest, CacheStats, CacheStatus, LambdaMode, ThresholdRun};
use sigfim_core::montecarlo::{CurvePoint, ThresholdEstimate};
use sigfim_core::ReplicateStats;
use sigfim_datasets::bitmap::DatasetBackend;
use sigfim_mining::miner::MinerKind;
use sigfim_mining::DispatchCounts;
use sigfim_service::{
    ApiError, ApiRequest, ApiRequestBody, ApiResponse, ApiResult, EngineInfo, JobStats,
    KernelStats, ModelSpec, ResidencyStats, ServiceStats, StoreStats, TunerTiming,
    PROTOCOL_VERSION,
};

/// A JSON round-trip through the wire format.
fn round_trip<T: serde::Serialize + serde::Deserialize>(value: &T) -> T {
    let json = serde_json::to_string(value).expect("serialization is infallible");
    serde_json::from_str(&json).expect("round-trip parse")
}

fn miner_from(index: u64) -> MinerKind {
    match index % 3 {
        0 => MinerKind::Apriori,
        1 => MinerKind::Eclat,
        _ => MinerKind::FpGrowth,
    }
}

fn backend_from(index: u64) -> DatasetBackend {
    DatasetBackend::ALL[index as usize % DatasetBackend::ALL.len()]
}

fn request_from(ks: Vec<usize>, knobs: (f64, f64, f64), flags: u64, seed: u64) -> AnalysisRequest {
    let (alpha, beta, epsilon) = knobs;
    AnalysisRequest::for_ks(ks)
        .with_alpha(alpha)
        .with_beta(beta)
        .with_epsilon(epsilon)
        .with_replicates((flags % 200 + 1) as usize)
        .with_seed(seed)
        .with_miner(miner_from(flags))
        .with_lambda_mode(if flags.is_multiple_of(2) {
            LambdaMode::Faithful
        } else {
            LambdaMode::Conservative
        })
        .with_baseline(flags.is_multiple_of(3))
        .with_max_restarts((flags % 7 + 1) as usize)
}

/// Every error variant, with payloads derived from the given seeds.
fn all_error_variants(n: u64, text: &str) -> Vec<ApiError> {
    vec![
        ApiError::UnsupportedProtocolVersion {
            requested: (n % 1000) as u32,
            supported: PROTOCOL_VERSION,
        },
        ApiError::MalformedRequest {
            detail: format!("malformed-{text}"),
        },
        ApiError::UnknownDataset {
            dataset: format!("dataset-{text}"),
        },
        ApiError::InvalidRequest {
            detail: format!("invalid-{text}"),
        },
        ApiError::EngineFailure {
            detail: format!("failure-{text}"),
        },
        ApiError::NotFound {
            path: format!("/v9/{text}"),
        },
        ApiError::MethodNotAllowed {
            method: if n.is_multiple_of(2) { "PUT" } else { "DELETE" }.into(),
            path: format!("/v1/{text}"),
        },
        ApiError::Overloaded {
            retry_after_secs: n % 120,
        },
        ApiError::UnknownJob {
            job: format!("job-{text}"),
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn analysis_requests_round_trip(
        ks in vec(1usize..7, 1..5),
        alpha in 0.001f64..0.5,
        beta in 0.001f64..0.5,
        epsilon in 0.0001f64..0.2,
        flags in 0u64..10_000,
        seed in 0u64..u64::MAX,
    ) {
        let request = request_from(ks, (alpha, beta, epsilon), flags, seed);
        prop_assert_eq!(round_trip(&request), request);
    }

    #[test]
    fn analyze_and_threshold_envelopes_round_trip(
        ks in vec(1usize..7, 1..4),
        flags in 0u64..10_000,
        seed in 0u64..u64::MAX,
        id in 0u64..1_000_000,
        transactions in 1usize..5_000,
        frequencies in vec(0.0f64..1.0, 1..12),
    ) {
        let request = request_from(ks, (0.05, 0.05, 0.01), flags, seed);
        let analyze = ApiRequest::analyze(format!("tenant-{id}"), request.clone());
        prop_assert_eq!(round_trip(&analyze), analyze);

        let thresholds = ApiRequest::thresholds(
            ModelSpec::Bernoulli { transactions, frequencies },
            request,
        );
        let parsed = round_trip(&thresholds);
        prop_assert_eq!(parsed, thresholds);
    }

    #[test]
    fn error_envelopes_round_trip_with_codes_and_statuses(
        n in 0u64..1_000_000,
        text_seed in 0u64..1_000_000,
    ) {
        let text = format!("t{text_seed}");
        let variants = all_error_variants(n, &text);
        prop_assert_eq!(variants.len(), 9, "update this test when the taxonomy grows");
        for error in variants {
            // The error itself round-trips...
            let json = serde_json::to_string(&error).unwrap();
            let parsed: ApiError = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(&parsed, &error);
            // ...and so does the full error envelope, preserving status codes.
            let response = ApiResponse::error(error.clone());
            let wired = round_trip(&response);
            prop_assert_eq!(wired.http_status(), error.http_status());
            prop_assert_eq!(wired.as_error().unwrap().code(), error.code());
            prop_assert_eq!(wired, response);
        }
    }

    #[test]
    fn result_envelopes_round_trip(
        k in 1usize..6,
        s_min in 1u64..10_000,
        lambda in 0.0f64..50.0,
        hit in 0u64..2,
        engines in vec(0u64..1_000, 0..5),
        counters in vec(0u64..1_000_000, 6),
    ) {
        // Thresholds result with a synthetic (finite-float) estimate.
        let estimate = ThresholdEstimate {
            k,
            epsilon: 0.01,
            replicates: 32,
            s_tilde: s_min.saturating_sub(1).max(1),
            s_min,
            pool_size: 7,
            curve: vec![CurvePoint { s: s_min, b1: 0.001, b2: 0.0005, lambda }],
        };
        let runs = vec![ThresholdRun {
            k,
            threshold_cache: if hit == 0 { CacheStatus::Miss } else { CacheStatus::Hit },
            estimate,
        }];
        let response = ApiResponse::ok(ApiResult::Thresholds(runs));
        prop_assert_eq!(round_trip(&response), response);

        // Engine listing.
        let infos: Vec<EngineInfo> = engines
            .iter()
            .enumerate()
            .map(|(i, &fp)| EngineInfo {
                id: format!("engine-{i}"),
                transactions: (fp % 500 + 1) as usize,
                items: (fp % 60 + 1) as usize,
                has_dataset: fp.is_multiple_of(2),
                backend: backend_from(fp),
                fingerprint: fp.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            })
            .collect();
        let response = ApiResponse::ok(ApiResult::Engines(infos));
        prop_assert_eq!(round_trip(&response), response);

        // Service stats (including the cache counters the acceptance criteria
        // inspect: evictions and capacity).
        let stats = ServiceStats {
            engines: counters[0] as usize,
            analyze_requests: counters[1],
            threshold_requests: counters[2],
            threshold_store: CacheStats {
                hits: counters[3],
                misses: counters[4],
                entries: counters[5] as usize,
                evictions: counters[1] / 2,
                capacity: if counters[2].is_multiple_of(2) {
                    None
                } else {
                    Some(counters[2] as usize)
                },
            },
            profile_caches: CacheStats {
                hits: counters[5],
                misses: counters[3],
                entries: counters[4] as usize,
                evictions: counters[0] / 3,
                capacity: if counters[1].is_multiple_of(2) {
                    Some(counters[1] as usize)
                } else {
                    None
                },
            },
            kernels: KernelStats {
                mode: "avx512".to_string(),
                tuned: counters[0].is_multiple_of(2),
                tuner_kernel: "avx2".to_string(),
                shard_budget_bytes: (counters[3] as usize + 1) * 1024,
                tuner_timings: vec![
                    TunerTiming {
                        subject: "kernel:scalar".to_string(),
                        median_ns: counters[4],
                    },
                    TunerTiming {
                        subject: format!("shard_budget_bytes:{}", counters[5]),
                        median_ns: counters[5],
                    },
                    TunerTiming {
                        subject: "sampler:gaps".to_string(),
                        median_ns: counters[0],
                    },
                    TunerTiming {
                        subject: "miner:par-eclat".to_string(),
                        median_ns: counters[1],
                    },
                ],
                tuner_sampler: if counters[1].is_multiple_of(2) { "gaps" } else { "cellwise" }
                    .to_string(),
                tuner_miner: if counters[2].is_multiple_of(2) { "par-eclat" } else { "eclat" }
                    .to_string(),
            },
            miner_dispatch: DispatchCounts {
                apriori: counters[0],
                eclat: counters[1],
                fp_growth: counters[2],
                brute_force: counters[3],
                eclat_bitmap: counters[4],
                sharded: counters[5],
                par_eclat: counters[0].wrapping_add(counters[1]),
                par_eclat_sharded: counters[2].wrapping_add(counters[3]),
            },
            replicates: ReplicateStats {
                sampled_cellwise: counters[4],
                sampled_gaps: counters[5],
                observations_reused: counters[0].wrapping_add(counters[5]),
            },
            jobs: JobStats {
                queued: counters[0],
                running: counters[1] % 8,
                done: counters[2],
                failed: counters[3],
                capacity: counters[4] % 1024 + 1,
            },
            store: if counters[5].is_multiple_of(2) {
                None
            } else {
                Some(StoreStats {
                    segments: counters[0] % 64 + 1,
                    live_bytes: counters[1],
                    dead_bytes: counters[2],
                    compactions: counters[3] % 32,
                    last_compaction_op: counters[4].is_multiple_of(2).then_some(counters[5]),
                })
            },
            residency: ResidencyStats {
                mode: if counters[0].is_multiple_of(2) { "mmap" } else { "read" }.to_string(),
                budget_bytes: counters[1],
                spilled_datasets: counters[2],
                spilled_shards: counters[3],
                evictions: counters[4],
                refaults: counters[5],
            },
        };
        let response = ApiResponse::ok(ApiResult::Stats(stats));
        prop_assert_eq!(round_trip(&response), response);

        // Health.
        let health = ApiResponse::ok(ApiResult::Health);
        prop_assert_eq!(round_trip(&health), health);
    }
}

#[test]
fn analysis_result_envelopes_round_trip_a_real_response() {
    // A real engine response (reports, curves, itemsets and all) survives the
    // wire unchanged — the typed backbone of the loopback bit-identity test.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sigfim_core::engine::AnalysisEngine;
    use sigfim_datasets::random::BernoulliModel;

    let dataset = BernoulliModel::new(150, vec![0.15; 8])
        .unwrap()
        .sample(&mut StdRng::seed_from_u64(5));
    let mut engine = AnalysisEngine::from_dataset(dataset).unwrap();
    let response = engine
        .run(&AnalysisRequest::for_k_range(2..=3).with_replicates(6))
        .unwrap();
    let envelope = ApiResponse::ok(ApiResult::Analysis(response));
    let parsed: ApiResponse =
        serde_json::from_str(&serde_json::to_string(&envelope).unwrap()).unwrap();
    assert_eq!(parsed, envelope);
}

#[test]
fn stats_payloads_from_older_servers_still_parse() {
    // The replicate counters, tuner sampler/miner picks, and the job/store
    // counters are additive, `#[serde(default)]` fields: a stats payload
    // serialized before they existed must still parse, reading as
    // zeroed/empty values.
    let modern = ServiceStats {
        engines: 3,
        analyze_requests: 11,
        threshold_requests: 7,
        threshold_store: CacheStats::default(),
        profile_caches: CacheStats::default(),
        kernels: KernelStats::default(),
        miner_dispatch: DispatchCounts::default(),
        replicates: ReplicateStats::default(),
        jobs: JobStats::default(),
        store: None,
        residency: ResidencyStats::default(),
    };
    let mut json = serde_json::to_string(&modern).unwrap();
    // Strip the new fields to reconstruct the previous release's payload.
    let jobs_json = "\"jobs\":{\"queued\":0,\"running\":0,\"done\":0,\"failed\":0,\"capacity\":0}";
    let residency_json = "\"residency\":{\"mode\":\"\",\"budget_bytes\":0,\"spilled_datasets\":0,\
                          \"spilled_shards\":0,\"evictions\":0,\"refaults\":0}";
    for field in [
        "\"replicates\":{\"sampled_cellwise\":0,\"sampled_gaps\":0,\"observations_reused\":0},",
        ",\"replicates\":{\"sampled_cellwise\":0,\"sampled_gaps\":0,\"observations_reused\":0}",
        "\"tuner_sampler\":\"\",",
        ",\"tuner_sampler\":\"\"",
        "\"tuner_miner\":\"\",",
        ",\"tuner_miner\":\"\"",
        &format!("{jobs_json},"),
        &format!(",{jobs_json}"),
        "\"store\":null,",
        ",\"store\":null",
        &format!("{residency_json},"),
        &format!(",{residency_json}"),
    ] {
        json = json.replace(field, "");
    }
    assert!(
        !json.contains("replicates")
            && !json.contains("tuner_sampler")
            && !json.contains("\"jobs\"")
            && !json.contains("\"store\"")
            && !json.contains("\"residency\""),
        "stale-payload reconstruction failed: {json}"
    );
    let parsed: ServiceStats = serde_json::from_str(&json).expect("old payload parses");
    assert_eq!(parsed, modern);

    // A pre-jobs server also omits individual JobStats fields when the
    // struct itself arrives from a mixed-version aggregator: every field is
    // independently defaulted.
    let partial: JobStats = serde_json::from_str("{\"queued\":4}").unwrap();
    assert_eq!(
        partial,
        JobStats {
            queued: 4,
            ..JobStats::default()
        }
    );
}

#[test]
fn request_body_accessors_cover_both_kinds() {
    let analyze = ApiRequest::analyze("d", AnalysisRequest::for_k(2));
    assert!(matches!(analyze.body, ApiRequestBody::Analyze { .. }));
    let thresholds = ApiRequest::thresholds(
        ModelSpec::Bernoulli {
            transactions: 10,
            frequencies: vec![0.5],
        },
        AnalysisRequest::for_k(2),
    );
    assert!(matches!(thresholds.body, ApiRequestBody::Thresholds { .. }));
    // Unknown kinds and missing fields are parse errors, not panics.
    assert!(
        serde_json::from_str::<ApiRequest>("{\"protocol_version\":1,\"kind\":\"zap\"}").is_err()
    );
    assert!(serde_json::from_str::<ApiRequest>("{\"kind\":\"analyze\"}").is_err());
    assert!(serde_json::from_str::<ApiError>("{\"code\":\"mystery\"}").is_err());
}

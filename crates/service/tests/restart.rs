//! Crash-restart integration test for the durable service tier: everything
//! `sigfim serve --data-dir` persists must come back after the process dies.
//!
//! The "crash" is simulated in-process: a first registry + store are built,
//! loaded with a dataset, a finished analysis, queued jobs and a
//! mid-flight job record, then dropped without any orderly teardown — every
//! record was already durable at write time (the store fsyncs per frame), so
//! dropping is exactly what `kill -9` leaves behind. A second registry over
//! the same `--data-dir` must then:
//!
//! * re-register the persisted dataset;
//! * answer the same analysis request with `CacheStatus::Hit` and **zero**
//!   new Monte-Carlo replicates (the threshold cache restarts warm);
//! * re-enqueue jobs that were `Queued` at the crash and run them to
//!   completion once workers start;
//! * deterministically mark the job that was `Running` at the crash as
//!   `Failed` (its partial Monte-Carlo state died with the process).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim_core::engine::{AnalysisRequest, CacheStatus};
use sigfim_datasets::random::BernoulliModel;
use sigfim_service::{ApiError, EngineRegistry, JobInfo, JobState, ServiceDb};

fn temp_data_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sigfim-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fimi_payload(seed: u64) -> String {
    let dataset = BernoulliModel::new(220, vec![0.12; 10])
        .unwrap()
        .sample(&mut StdRng::seed_from_u64(seed));
    let mut bytes = Vec::new();
    sigfim_datasets::fimi::write_fimi(&dataset, &mut bytes).unwrap();
    String::from_utf8(bytes).unwrap()
}

fn poll_terminal(registry: &EngineRegistry, id: &str) -> JobInfo {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    loop {
        let job = registry.job_status(id).expect("recovered job is pollable");
        if job.state.is_terminal() {
            return job;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job {id} never finished: {job:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
}

#[test]
fn restart_restores_datasets_warm_thresholds_and_the_job_table() {
    let dir = temp_data_dir("full");
    let fimi = fimi_payload(17);
    let request = AnalysisRequest::for_k(2).with_replicates(8).with_seed(3);

    // ---- Phase 1: a server accumulates durable state, then "crashes". ----
    let cold_report = {
        let registry = Arc::new(EngineRegistry::new());
        let summary = registry.attach_db(ServiceDb::open(&dir).unwrap()).unwrap();
        assert_eq!(summary, Default::default(), "fresh store restores nothing");

        // Upload a dataset (persisted as FIMI) and analyze it synchronously:
        // the threshold estimate write-throughs into the store.
        registry.put_dataset("retail", &fimi).unwrap();
        let cold = registry.analyze("retail", &request).unwrap();
        assert_eq!(cold.runs[0].threshold_cache, CacheStatus::Miss);

        // Enqueue two detached jobs and start NO workers: they are accepted,
        // persisted as Queued, and still pending when the process dies —
        // the kill-mid-queue shape.
        let q1 = registry
            .submit_job(
                "retail",
                AnalysisRequest::for_k(2).with_replicates(6).with_seed(9),
            )
            .unwrap();
        let q2 = registry
            .submit_job(
                "retail",
                AnalysisRequest::for_k(2).with_replicates(6).with_seed(10),
            )
            .unwrap();
        assert_eq!(
            (q1.state, q2.state),
            (JobState::Queued, JobState::Queued),
            "no workers are draining; submissions return without running"
        );

        cold.runs[0].report.clone()
    };

    // Simulate a job caught mid-run by the crash: append a Running record
    // with a short-lived handle, after the first registry (and its store
    // handle) is fully dropped — exactly the record a worker's claim
    // transition would have left in the log the next open replays.
    {
        let db = ServiceDb::open(&dir).unwrap();
        let interrupted = JobInfo {
            id: "job-00000077".into(),
            dataset: "retail".into(),
            request: request.clone(),
            state: JobState::Running,
            progress: Default::default(),
            result: None,
            error: None,
        };
        db.put_job(&interrupted).unwrap();
    }

    // ---- Phase 2: a new process over the same --data-dir. ----
    let registry = Arc::new(EngineRegistry::new());
    let summary = registry.attach_db(ServiceDb::open(&dir).unwrap()).unwrap();
    assert_eq!(summary.datasets, 1, "the persisted dataset re-registers");
    assert!(
        summary.thresholds >= 1,
        "threshold records preload the cache"
    );
    assert_eq!(
        summary.jobs_requeued, 2,
        "queued jobs wait their turn again"
    );
    assert_eq!(summary.jobs_interrupted, 1, "the mid-run job is closed out");

    // The dataset is served again under its id.
    let engines = registry.engines();
    assert_eq!(engines.len(), 1);
    assert_eq!(engines[0].id, "retail");

    // The same query is warm: a cache hit, an identical report, and — the
    // acceptance criterion — zero new null replicates sampled.
    let sampled_before = sigfim_core::replicate_stats().total_sampled();
    let warm = registry.analyze("retail", &request).unwrap();
    assert_eq!(warm.runs[0].threshold_cache, CacheStatus::Hit);
    assert_eq!(warm.runs[0].report, cold_report);
    assert_eq!(
        sigfim_core::replicate_stats().total_sampled(),
        sampled_before,
        "a restored threshold must not re-run Algorithm 1"
    );

    // The job that was Running at the crash is deterministically Failed.
    let interrupted = registry.job_status("job-00000077").unwrap();
    assert_eq!(interrupted.state, JobState::Failed);
    assert!(matches!(
        interrupted.error,
        Some(ApiError::EngineFailure { ref detail }) if detail.contains("restart")
    ));

    // The re-queued jobs run to completion once workers start.
    registry.start_job_workers(1);
    let done1 = poll_terminal(&registry, "job-00000001");
    let done2 = poll_terminal(&registry, "job-00000002");
    assert_eq!(done1.state, JobState::Done);
    assert_eq!(done2.state, JobState::Done);
    assert!(done1.result.is_some() && done2.result.is_some());

    // New ids mint above everything recovered (including the hand-written
    // 77), and the store stats surface through the service.
    let fresh = registry
        .submit_job("retail", AnalysisRequest::for_k(2).with_replicates(4))
        .unwrap();
    assert_eq!(fresh.id, "job-00000078");
    let stats = registry.stats();
    let store = stats.store.expect("an attached store reports its counters");
    assert!(store.segments >= 1);
    assert!(store.live_bytes > 0);
    let _ = poll_terminal(&registry, &fresh.id);

    let _ = std::fs::remove_dir_all(&dir);
}
